//! Quick calibration: does Fig 13's shape emerge?
use pgmoe_train::experiments::{fig13, table2, ModelScale};
use pgmoe_train::TrainerConfig;
use pgmoe_workload::TaskKind;

fn main() {
    let cfg = TrainerConfig::default();
    println!("== Fig 13 (SQuAD-like, Base-8 analogue) ==");
    for p in fig13(&cfg, 3) {
        println!("level {}: EM {:.1} F1 {:.1}", p.level, p.scores.exact_match, p.scores.f1);
    }
    println!("== Table 2 sample (WebQA-like, Base-8) ==");
    for c in table2(&cfg, &[ModelScale::BASE_8], &[TaskKind::WebQaLike, TaskKind::XsumLike]) {
        println!(
            "{:?} {:?}: EM {:.1} F1 {:.1} R1 {:.1} R2 {:.1} agree {:.2}",
            c.task,
            c.mode,
            c.scores.exact_match,
            c.scores.f1,
            c.scores.rouge1,
            c.scores.rouge2,
            c.routing_agreement
        );
    }
}
