//! The pretrain → rewire → fine-tune loop (the paper's recipe).

use crate::metrics::{exact_match, f1, rouge_n, Scores};
use pgmoe_model::net::{SwitchNet, SwitchNetConfig};
use pgmoe_model::GatingMode;
use pgmoe_tensor::nn::optim::Adam;
use pgmoe_tensor::nn::Layer;
use pgmoe_tensor::{ops, Tensor};
use pgmoe_workload::TaskSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of a training run.
///
/// The paper fine-tunes with a constant learning rate of 1e-4 over a fixed
/// number of steps, applying "the exact same fine-tuning configurations
/// across all model architectures" (Section V) — [`Trainer`] enforces that
/// symmetry by deriving every variant from one pretrained checkpoint and one
/// data stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Pretraining steps for the conventional base checkpoint.
    pub pretrain_steps: usize,
    /// Fine-tuning steps per variant.
    pub finetune_steps: usize,
    /// Examples per optimisation step.
    pub batch_size: usize,
    /// Learning rate (paper: 1e-4; scaled up here because the models are
    /// tiny and trained for far fewer steps).
    pub learning_rate: f32,
    /// Held-out evaluation examples.
    pub eval_examples: usize,
    /// Master seed for weights and data order.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            pretrain_steps: 2000,
            finetune_steps: 600,
            batch_size: 8,
            learning_rate: 1e-3,
            eval_examples: 200,
            seed: 0xF1_7E,
        }
    }
}

impl TrainerConfig {
    /// The full reproduction recipe used by the Table II / Fig 13 harness:
    /// long enough pretraining for the recall circuit to emerge on the
    /// SQuAD-like task (the scores jump between 4k and 8k steps), then the
    /// paper-style identical fine-tune per variant.
    pub fn paper() -> Self {
        TrainerConfig { pretrain_steps: 8000, finetune_steps: 800, ..TrainerConfig::default() }
    }

    /// A fast configuration for unit tests.
    pub fn smoke() -> Self {
        TrainerConfig {
            pretrain_steps: 40,
            finetune_steps: 30,
            batch_size: 4,
            eval_examples: 40,
            ..TrainerConfig::default()
        }
    }
}

/// Result of fine-tuning one gate-topology variant.
#[derive(Debug, Clone)]
pub struct FinetuneOutcome {
    /// The gating mode that was fine-tuned.
    pub mode: GatingMode,
    /// Evaluation scores on held-out data.
    pub scores: Scores,
    /// Mean training loss over the last 10 % of fine-tuning steps.
    pub final_loss: f32,
    /// Fraction of held-out routing decisions where the variant's selection
    /// agrees with the conventional baseline's (routing-fidelity
    /// diagnostic; not a paper metric but useful for analysis).
    pub routing_agreement: f64,
}

/// Runs the paper's pretrain → rewire → fine-tune protocol on one task.
///
/// # Example
///
/// ```no_run
/// use pgmoe_train::{Trainer, TrainerConfig};
/// use pgmoe_workload::{TaskKind, TaskSpec};
/// use pgmoe_model::GatingMode;
///
/// let task = TaskSpec::new(TaskKind::SquadLike, 4, 7);
/// let mut trainer = Trainer::new(task, 8, TrainerConfig::default());
/// let outcomes = trainer.run(&[GatingMode::Conventional, GatingMode::Pregated { level: 1 }]);
/// assert_eq!(outcomes.len(), 2);
/// ```
#[derive(Debug)]
pub struct Trainer {
    task: TaskSpec,
    net_cfg: SwitchNetConfig,
    cfg: TrainerConfig,
    pretrained: Option<SwitchNet>,
}

impl Trainer {
    /// Creates a trainer for `task` with `num_experts` experts per block.
    pub fn new(task: TaskSpec, num_experts: usize, cfg: TrainerConfig) -> Self {
        let net_cfg = SwitchNetConfig::small(
            task.vocab_size(),
            task.seq_len(),
            num_experts,
            GatingMode::Conventional,
        );
        Trainer { task, net_cfg, cfg, pretrained: None }
    }

    /// Overrides the network architecture (depth/width) before running.
    pub fn with_net_config(mut self, f: impl FnOnce(&mut SwitchNetConfig)) -> Self {
        f(&mut self.net_cfg);
        self
    }

    /// The task being trained.
    pub fn task(&self) -> &TaskSpec {
        &self.task
    }

    /// Pretrains the conventional checkpoint (idempotent).
    pub fn pretrain(&mut self) -> &SwitchNet {
        if self.pretrained.is_none() {
            let mut rng = StdRng::seed_from_u64(self.cfg.seed);
            let mut net = SwitchNet::new(self.net_cfg.clone(), &mut rng);
            let mut opt = Adam::new(self.cfg.learning_rate);
            self.train_loop(&mut net, &mut opt, self.cfg.pretrain_steps, 0);
            self.pretrained = Some(net);
        }
        self.pretrained.as_ref().expect("just created")
    }

    /// Fine-tunes one variant per mode from the shared pretrained checkpoint
    /// and evaluates each on the same held-out set.
    pub fn run(&mut self, modes: &[GatingMode]) -> Vec<FinetuneOutcome> {
        self.pretrain();
        let baseline = self.finetune_one(GatingMode::Conventional);
        modes
            .iter()
            .map(|&mode| {
                let (net, final_loss) = if mode == GatingMode::Conventional {
                    baseline.clone()
                } else {
                    self.finetune_one(mode)
                };
                let scores = self.evaluate(&net);
                let routing_agreement = self.routing_agreement(&baseline.0, &net);
                FinetuneOutcome {
                    mode,
                    scores,
                    final_loss: net_loss(final_loss),
                    routing_agreement,
                }
            })
            .collect()
    }

    fn finetune_one(&mut self, mode: GatingMode) -> (SwitchNet, Vec<f32>) {
        self.pretrain();
        let mut net = self.pretrained.as_ref().expect("pretrained").clone();
        net.rewire(mode);
        let mut opt = Adam::new(self.cfg.learning_rate);
        // Identical fine-tuning stream for every variant: offset the data
        // index stream past pretraining deterministically.
        let losses = self.train_loop(&mut net, &mut opt, self.cfg.finetune_steps, 1_000_000);
        (net, losses)
    }

    /// Runs `steps` optimisation steps; returns per-step mean losses.
    fn train_loop(
        &self,
        net: &mut SwitchNet,
        opt: &mut Adam,
        steps: usize,
        data_offset: u64,
    ) -> Vec<f32> {
        let answer = self.task.answer_len();
        let seq = self.task.seq_len();
        let positions: Vec<usize> = (seq - answer..seq).collect();
        let mut losses = Vec::with_capacity(steps);
        for step in 0..steps {
            net.zero_grad();
            let mut step_loss = 0.0;
            for i in 0..self.cfg.batch_size {
                let idx = data_offset + (step * self.cfg.batch_size + i) as u64;
                let ex = self.task.sample_indexed(idx);
                let logits = net.forward(&ex.input);
                let ans_logits = logits.gather_rows(&positions);
                let (loss, dans) = ops::cross_entropy_from_logits(&ans_logits, &ex.target);
                step_loss += loss;
                let mut dlogits = Tensor::zeros([seq, self.task.vocab_size()]);
                dlogits.scatter_add_rows(&positions, &dans);
                net.backward(&dlogits);
            }
            opt.begin_step();
            net.visit_params(&mut |p| opt.step(p));
            losses.push(step_loss / self.cfg.batch_size as f32);
        }
        losses
    }

    /// Scores a network on the held-out stream (disjoint from training by
    /// construction: indices beyond any training offset).
    pub fn evaluate(&self, net: &SwitchNet) -> Scores {
        let answer = self.task.answer_len();
        let per_example: Vec<(f64, f64, f64, f64)> = (0..self.cfg.eval_examples)
            .map(|i| {
                let ex = self.task.sample_indexed(10_000_000 + i as u64);
                let pred = net.predict(&ex.input, answer);
                (
                    exact_match(&pred, &ex.target),
                    f1(&pred, &ex.target),
                    rouge_n(&pred, &ex.target, 1),
                    rouge_n(&pred, &ex.target, 2),
                )
            })
            .collect();
        Scores::aggregate(&per_example)
    }

    /// Fraction of (example, block, token) routing decisions on held-out
    /// data where `net` selects the same expert as `baseline`.
    fn routing_agreement(&self, baseline: &SwitchNet, net: &SwitchNet) -> f64 {
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..self.cfg.eval_examples.min(50) {
            let ex = self.task.sample_indexed(10_000_000 + i as u64);
            let (_, base_routes) = baseline.forward_inference_traced(&ex.input);
            let (_, routes) = net.forward_inference_traced(&ex.input);
            for (a, b) in base_routes.iter().zip(&routes) {
                for (ea, eb) in a.expert.iter().zip(&b.expert) {
                    agree += usize::from(ea == eb);
                    total += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            agree as f64 / total as f64
        }
    }
}

fn net_loss(losses: Vec<f32>) -> f32 {
    if losses.is_empty() {
        return f32::NAN;
    }
    let tail = (losses.len() / 10).max(1);
    losses[losses.len() - tail..].iter().sum::<f32>() / tail as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmoe_workload::TaskKind;

    #[test]
    fn pretraining_reduces_loss() {
        let task = TaskSpec::new(TaskKind::WebQaLike, 2, 11);
        let trainer = Trainer::new(task, 4, TrainerConfig::smoke());
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = SwitchNet::new(trainer.net_cfg.clone(), &mut rng);
        let mut opt = Adam::new(trainer.cfg.learning_rate);
        let losses = trainer.train_loop(&mut net, &mut opt, 40, 0);
        let head: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "loss should decrease: {head} → {tail}");
    }

    #[test]
    fn finetuned_variants_share_pretrained_history() {
        let task = TaskSpec::new(TaskKind::WebQaLike, 2, 12);
        let mut trainer = Trainer::new(task, 4, TrainerConfig::smoke());
        let outcomes = trainer.run(&[GatingMode::Conventional, GatingMode::Pregated { level: 1 }]);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.final_loss.is_finite());
            assert!(o.scores.f1 >= 0.0 && o.scores.f1 <= 100.0);
        }
        // Conventional agrees with itself perfectly.
        assert!((outcomes[0].routing_agreement - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let task = TaskSpec::new(TaskKind::SquadLike, 2, 13);
        let trainer = Trainer::new(task, 4, TrainerConfig::smoke());
        let mut rng = StdRng::seed_from_u64(13);
        let net = SwitchNet::new(trainer.net_cfg.clone(), &mut rng);
        let a = trainer.evaluate(&net);
        let b = trainer.evaluate(&net);
        assert_eq!(a, b);
    }

    #[test]
    fn training_beats_untrained_baseline() {
        let task = TaskSpec::new(TaskKind::WebQaLike, 2, 14);
        let mut trainer = Trainer::new(task, 4, TrainerConfig::smoke());
        let mut rng = StdRng::seed_from_u64(14);
        let untrained = trainer.evaluate(&SwitchNet::new(trainer.net_cfg.clone(), &mut rng));
        trainer.pretrain();
        let trained = trainer.evaluate(trainer.pretrained.as_ref().unwrap());
        assert!(
            trained.f1 > untrained.f1,
            "training should help: {} vs {}",
            trained.f1,
            untrained.f1
        );
    }
}
