//! Drivers for the paper's accuracy experiments (Table II, Fig 13).

use crate::metrics::Scores;
use crate::{Trainer, TrainerConfig};
use pgmoe_model::GatingMode;
use pgmoe_workload::{TaskKind, TaskSpec};

/// A scaled-down analogue of one of Table II's model sizes.
///
/// The paper's rows are Switch-Base-8, Switch-Base-128 and Switch-Large-128;
/// the analogues scale expert count and depth down to what a CPU can
/// fine-tune in seconds while preserving the comparison structure
/// (same pretrained checkpoint, same fine-tuning recipe per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelScale {
    /// Display name tying the row back to Table II.
    pub name: &'static str,
    /// Experts per MoE block.
    pub num_experts: usize,
    /// Transformer blocks.
    pub num_blocks: usize,
    /// Hidden width.
    pub d_model: usize,
}

impl ModelScale {
    /// Analogue of Switch-Base with 8 experts.
    pub const BASE_8: ModelScale =
        ModelScale { name: "Base-8 (analogue)", num_experts: 8, num_blocks: 4, d_model: 32 };
    /// Analogue of Switch-Base with 128 experts (scaled to 16).
    pub const BASE_128: ModelScale =
        ModelScale { name: "Base-128 (analogue)", num_experts: 16, num_blocks: 4, d_model: 32 };
    /// Analogue of Switch-Large with 128 experts (scaled to 16, deeper/wider).
    pub const LARGE_128: ModelScale =
        ModelScale { name: "Large-128 (analogue)", num_experts: 16, num_blocks: 6, d_model: 48 };

    /// Table II's three rows.
    pub const TABLE2: [ModelScale; 3] = [Self::BASE_8, Self::BASE_128, Self::LARGE_128];
}

/// One (model, task, variant) cell of Table II.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Model-scale row.
    pub scale: ModelScale,
    /// Dataset analogue.
    pub task: TaskKind,
    /// Gating variant (conventional baseline or pre-gated).
    pub mode: GatingMode,
    /// Evaluation scores.
    pub scores: Scores,
    /// Routing agreement with the conventional baseline.
    pub routing_agreement: f64,
}

/// Regenerates Table II: for each model scale and task, fine-tune the
/// conventional and pre-gated (level 1) variants from a shared pretrained
/// checkpoint and score both.
pub fn table2(cfg: &TrainerConfig, scales: &[ModelScale], tasks: &[TaskKind]) -> Vec<Table2Cell> {
    let mut cells = Vec::new();
    for &scale in scales {
        for &task_kind in tasks {
            let task = TaskSpec::new(task_kind, 4, cfg.seed ^ task_seed(task_kind));
            let mut trainer =
                Trainer::new(task, scale.num_experts, cfg.clone()).with_net_config(|c| {
                    c.num_blocks = scale.num_blocks;
                    c.d_model = scale.d_model;
                    c.d_ff = 2 * scale.d_model;
                });
            let outcomes =
                trainer.run(&[GatingMode::Conventional, GatingMode::Pregated { level: 1 }]);
            for o in outcomes {
                cells.push(Table2Cell {
                    scale,
                    task: task_kind,
                    mode: o.mode,
                    scores: o.scores,
                    routing_agreement: o.routing_agreement,
                });
            }
        }
    }
    cells
}

/// One point of Fig 13: scores at a given pre-gate activation level.
#[derive(Debug, Clone)]
pub struct Fig13Point {
    /// Activation level (0 = conventional MoE).
    pub level: usize,
    /// Evaluation scores (the paper plots ExactMatch and F1).
    pub scores: Scores,
}

/// Regenerates Fig 13: Base-8-analogue on the SQuAD-like task, activation
/// levels 0 (conventional) through `max_level`.
pub fn fig13(cfg: &TrainerConfig, max_level: usize) -> Vec<Fig13Point> {
    let scale = ModelScale::BASE_8;
    let task = TaskSpec::new(TaskKind::SquadLike, 4, cfg.seed ^ 0x5AD);
    let mut trainer = Trainer::new(task, scale.num_experts, cfg.clone()).with_net_config(|c| {
        c.num_blocks = scale.num_blocks.max(max_level + 1);
        c.d_model = scale.d_model;
        c.d_ff = 2 * scale.d_model;
    });
    let modes: Vec<GatingMode> = (0..=max_level)
        .map(|l| if l == 0 { GatingMode::Conventional } else { GatingMode::Pregated { level: l } })
        .collect();
    trainer
        .run(&modes)
        .into_iter()
        .map(|o| Fig13Point { level: o.mode.level(), scores: o.scores })
        .collect()
}

fn task_seed(kind: TaskKind) -> u64 {
    match kind {
        TaskKind::XsumLike => 0x1111,
        TaskKind::WebQaLike => 0x2222,
        TaskKind::SquadLike => 0x3333,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_produces_two_variants_per_cell() {
        let cfg = TrainerConfig::smoke();
        let cells = table2(&cfg, &[ModelScale::BASE_8], &[TaskKind::WebQaLike]);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].mode, GatingMode::Conventional);
        assert_eq!(cells[1].mode, GatingMode::Pregated { level: 1 });
    }

    #[test]
    fn fig13_levels_are_monotone_in_level_index() {
        let cfg = TrainerConfig::smoke();
        let points = fig13(&cfg, 2);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].level, 0);
        assert_eq!(points[2].level, 2);
    }

    #[test]
    fn scales_carry_paper_row_names() {
        assert!(ModelScale::TABLE2[0].name.contains("Base-8"));
        assert!(ModelScale::TABLE2[2].name.contains("Large-128"));
    }
}
