//! # pgmoe-train
//!
//! Fine-tuning and accuracy evaluation for the Pre-gated MoE reproduction
//! (ISCA 2024) — the numeric side of the paper: Table II and Fig 13.
//!
//! The paper's recipe (Sections IV-B and V):
//!
//! 1. start from *pretrained conventional* SwitchTransformer weights;
//! 2. re-wire the gate topology into the pre-gated architecture (weights
//!    kept as-is);
//! 3. fine-tune every variant — conventional and pre-gated — with the same
//!    data, steps and constant learning rate;
//! 4. compare downstream metrics (Rouge for summarization, ExactMatch/F1
//!    for QA).
//!
//! This crate reproduces that recipe end to end on trainable scaled-down
//! Switch models (`pgmoe-model::net`) over synthetic domain-structured tasks
//! (`pgmoe-workload::task`): [`Trainer`] implements the optimisation loop,
//! [`metrics`] the scoring functions, and [`experiments`] the drivers that
//! regenerate Table II and Fig 13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
mod trainer;

pub use trainer::{FinetuneOutcome, Trainer, TrainerConfig};
