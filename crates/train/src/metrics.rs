//! Scoring functions: ExactMatch, F1, Rouge-1, Rouge-2.
//!
//! These are token-level analogues of the paper's evaluation metrics
//! (Section V): ExactMatch/F1 for the closed-book QA tasks, Rouge-1/Rouge-2
//! for summarization. Inputs are token-id sequences rather than words, which
//! preserves the metrics' comparative behaviour.

/// Exact match: 1.0 if prediction equals the reference exactly, else 0.0.
pub fn exact_match(prediction: &[usize], reference: &[usize]) -> f64 {
    if prediction == reference {
        1.0
    } else {
        0.0
    }
}

/// Token-level F1: harmonic mean of precision and recall over token
/// multisets (the SQuAD scoring rule, over token ids).
pub fn f1(prediction: &[usize], reference: &[usize]) -> f64 {
    if prediction.is_empty() && reference.is_empty() {
        return 1.0;
    }
    let overlap = multiset_overlap(prediction, reference);
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / prediction.len() as f64;
    let recall = overlap as f64 / reference.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Rouge-N recall-oriented overlap: n-gram overlap F1 between prediction and
/// reference (Rouge-1 for `n = 1`, Rouge-2 for `n = 2`).
pub fn rouge_n(prediction: &[usize], reference: &[usize], n: usize) -> f64 {
    assert!(n >= 1, "rouge order must be >= 1");
    let pred_grams = ngrams(prediction, n);
    let ref_grams = ngrams(reference, n);
    if pred_grams.is_empty() && ref_grams.is_empty() {
        return 1.0;
    }
    let overlap = multiset_overlap(&pred_grams, &ref_grams);
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / pred_grams.len() as f64;
    let recall = overlap as f64 / ref_grams.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

fn ngrams(tokens: &[usize], n: usize) -> Vec<Vec<usize>> {
    if tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.to_vec()).collect()
}

fn multiset_overlap<T: PartialEq + Clone>(a: &[T], b: &[T]) -> usize {
    let mut remaining: Vec<T> = b.to_vec();
    let mut overlap = 0;
    for item in a {
        if let Some(pos) = remaining.iter().position(|r| r == item) {
            remaining.swap_remove(pos);
            overlap += 1;
        }
    }
    overlap
}

/// Aggregate evaluation scores over a test set (all in `[0, 100]`, matching
/// the paper's Table II presentation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scores {
    /// Mean exact match × 100.
    pub exact_match: f64,
    /// Mean token F1 × 100.
    pub f1: f64,
    /// Mean Rouge-1 × 100.
    pub rouge1: f64,
    /// Mean Rouge-2 × 100.
    pub rouge2: f64,
}

impl Scores {
    /// Averages per-example metric tuples.
    pub fn aggregate(per_example: &[(f64, f64, f64, f64)]) -> Scores {
        if per_example.is_empty() {
            return Scores::default();
        }
        let n = per_example.len() as f64;
        Scores {
            exact_match: 100.0 * per_example.iter().map(|t| t.0).sum::<f64>() / n,
            f1: 100.0 * per_example.iter().map(|t| t.1).sum::<f64>() / n,
            rouge1: 100.0 * per_example.iter().map(|t| t.2).sum::<f64>() / n,
            rouge2: 100.0 * per_example.iter().map(|t| t.3).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_all_or_nothing() {
        assert_eq!(exact_match(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(exact_match(&[1, 3], &[1, 2]), 0.0);
        assert_eq!(exact_match(&[1], &[1, 2]), 0.0);
    }

    #[test]
    fn f1_rewards_partial_overlap() {
        assert_eq!(f1(&[1, 2], &[1, 2]), 1.0);
        let half = f1(&[1, 3], &[1, 2]);
        assert!((half - 0.5).abs() < 1e-9);
        assert_eq!(f1(&[3, 4], &[1, 2]), 0.0);
    }

    #[test]
    fn f1_handles_duplicates_as_multisets() {
        // prediction [1,1] vs reference [1,2]: overlap 1, P=0.5, R=0.5.
        assert!((f1(&[1, 1], &[1, 2]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rouge1_equals_f1_on_unigrams() {
        let p = [1, 2, 3];
        let r = [2, 3, 4];
        assert!((rouge_n(&p, &r, 1) - f1(&p, &r)).abs() < 1e-9);
    }

    #[test]
    fn rouge2_requires_adjacent_pairs() {
        assert_eq!(rouge_n(&[1, 2, 3], &[1, 2, 3], 2), 1.0);
        // Same tokens, different order: no common bigram.
        assert_eq!(rouge_n(&[3, 2, 1], &[1, 2, 3], 2), 0.0);
    }

    #[test]
    fn rouge_of_too_short_sequences() {
        assert_eq!(rouge_n(&[1], &[1], 2), 1.0); // both empty bigram sets
        assert_eq!(rouge_n(&[1, 2], &[1], 2), 0.0);
    }

    #[test]
    fn aggregate_scales_to_percent() {
        let s = Scores::aggregate(&[(1.0, 1.0, 1.0, 1.0), (0.0, 0.5, 0.5, 0.0)]);
        assert!((s.exact_match - 50.0).abs() < 1e-9);
        assert!((s.f1 - 75.0).abs() < 1e-9);
    }
}
