//! The perf-regression gate: measure the substrate GEMM kernels, compare
//! against the committed `BENCH_substrate.json` baseline, fail loud on
//! regression.
//!
//! Raw wall-clock milliseconds are machine-dependent, so the gate compares
//! **speedups over the seed ikj loop measured on the same machine in the
//! same run** — a machine-normalized metric that transfers between the
//! laptop that committed the baseline and the CI runner that checks it. A
//! candidate fails when any kernel's speedup drops more than `tolerance`
//! (default 25 %) below the baseline's.
//!
//! Consumers:
//! * `benches/substrate.rs` calls [`measure_gemm_512`] +
//!   [`assert_speedup_floors`] and refreshes the committed baseline;
//! * the `bench_gate` binary (CI's `bench-gate` job) re-measures, runs
//!   [`compare`] against the committed baseline, and writes the candidate
//!   JSON as a build artifact.

use pregated_moe::tensor::{kernel, quant, QuantMode, QuantizedTensor, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// One gate measurement: best-of-N wall times of the 512³ GEMM kernels and
/// their speedups over the seed ikj loop, plus the machine shape they were
/// taken on. Field names match the committed `BENCH_substrate.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gemm512Measurement {
    /// Configured worker threads (`PGMOE_THREADS` / available parallelism).
    pub threads: usize,
    /// Hardware threads the machine exposes.
    pub hardware_threads: usize,
    /// Seed ikj loop, best-of-N ms — the per-machine normalizer.
    pub seed_ikj_ms: f64,
    /// Register-tiled serial GEMM, ms.
    pub blocked_serial_ms: f64,
    /// Worker-pool parallel GEMM, ms.
    pub blocked_parallel_ms: f64,
    /// Fused int8-dequant GEMM, ms.
    pub dequant_int8_fused_ms: f64,
    /// `seed_ikj_ms / blocked_serial_ms`.
    pub speedup_blocked_serial: f64,
    /// `seed_ikj_ms / blocked_parallel_ms`.
    pub speedup_blocked_parallel: f64,
    /// `seed_ikj_ms / dequant_int8_fused_ms`.
    pub speedup_dequant_int8_fused: f64,
}

/// Best-of-N wall time of `f`, in milliseconds (the minimum is the
/// standard low-noise estimator for microbenchmarks on shared machines).
pub fn time_best_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times the 512³ GEMM kernel family (seed ikj, blocked serial, blocked
/// parallel, fused int8 dequant), cross-checking every output against the
/// seed loop before the timings are trusted. Best-of-9 per kernel: the
/// minimum is robust against neighbour noise on shared CI runners, and the
/// whole measurement still takes well under a second.
///
/// # Panics
///
/// Panics if any kernel's output diverges from the reference — a wrong
/// kernel's timing is meaningless.
pub fn measure_gemm_512() -> Gemm512Measurement {
    const N: usize = 512;
    const RUNS: usize = 9;
    let threads = WorkerPool::global().num_threads();
    let hardware_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rng = StdRng::seed_from_u64(7);
    let a = pregated_moe::tensor::init::normal([N, N], 0.0, 1.0, &mut rng).into_vec();
    let b = pregated_moe::tensor::init::normal([N, N], 0.0, 1.0, &mut rng).into_vec();
    let mut out_naive = vec![0.0f32; N * N];
    let mut out_serial = vec![0.0f32; N * N];
    let mut out_parallel = vec![0.0f32; N * N];

    let seed_ikj_ms = time_best_ms(RUNS, || {
        kernel::matmul_skip_zeros_into(black_box(&mut out_naive), &a, &b, N, N, N)
    });
    let blocked_serial_ms = time_best_ms(RUNS, || {
        kernel::matmul_serial_into(black_box(&mut out_serial), &a, &b, N, N, N)
    });
    let blocked_parallel_ms =
        time_best_ms(RUNS, || kernel::matmul_into(black_box(&mut out_parallel), &a, &b, N, N, N));
    // The fused dequantizing GEMM consumes int8 panels directly; it must
    // stay in the blocked kernels' league, not the seed loop's.
    let bq = QuantizedTensor::quantize(
        &pregated_moe::tensor::Tensor::from_vec([N, N], b.clone()).unwrap(),
        QuantMode::int8(),
    );
    let mut out_dequant = vec![0.0f32; N * N];
    let dequant_int8_fused_ms = time_best_ms(RUNS, || {
        quant::matmul_dequant_into(black_box(&mut out_dequant), &a, &bq, N, N, N)
    });

    // The three f32 paths must agree before their timings mean anything.
    for (x, y) in out_naive.iter().zip(&out_serial) {
        assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()), "serial kernel diverged: {x} vs {y}");
    }
    assert!(
        out_serial.iter().zip(&out_parallel).all(|(x, y)| x.to_bits() == y.to_bits()),
        "parallel kernel must be bitwise identical to serial"
    );
    // And the fused kernel must equal dequantize-then-matmul bitwise.
    let deq = bq.dequantize();
    let mut out_ref = vec![0.0f32; N * N];
    kernel::matmul_into(&mut out_ref, &a, deq.as_slice(), N, N, N);
    assert!(
        out_ref.iter().zip(&out_dequant).all(|(x, y)| x.to_bits() == y.to_bits()),
        "fused dequant GEMM must be bitwise identical to dequantize-then-matmul"
    );

    Gemm512Measurement {
        threads,
        hardware_threads,
        seed_ikj_ms,
        blocked_serial_ms,
        blocked_parallel_ms,
        dequant_int8_fused_ms,
        speedup_blocked_serial: seed_ikj_ms / blocked_serial_ms,
        speedup_blocked_parallel: seed_ikj_ms / blocked_parallel_ms,
        speedup_dequant_int8_fused: seed_ikj_ms / dequant_int8_fused_ms,
    }
}

/// The absolute speedup floors the substrate bench has asserted since PR 2:
/// blocked ≥ 1.5x everywhere; on ≥ 2 hardware threads ≥ 2x regardless of
/// configured threads and ≥ 4x with ≥ 2 configured; fused dequant ≥ 1.2x.
///
/// # Panics
///
/// Panics when a floor is broken.
pub fn assert_speedup_floors(m: &Gemm512Measurement) {
    assert!(
        m.speedup_blocked_serial >= 1.5,
        "blocked GEMM must be >= 1.5x the seed ikj loop on one thread \
         (got {:.2}x: naive {:.2} ms vs {:.2} ms)",
        m.speedup_blocked_serial,
        m.seed_ikj_ms,
        m.blocked_serial_ms
    );
    assert!(
        m.speedup_dequant_int8_fused >= 1.2,
        "fused int8-dequant GEMM must be >= 1.2x the seed ikj loop \
         (got {:.2}x: naive {:.2} ms vs {:.2} ms)",
        m.speedup_dequant_int8_fused,
        m.seed_ikj_ms,
        m.dequant_int8_fused_ms
    );
    if m.hardware_threads >= 2 {
        assert!(
            m.speedup_blocked_parallel >= 2.0,
            "blocked(-parallel) GEMM must be >= 2x the seed ikj loop on a multi-core \
             machine (got {:.2}x: naive {:.2} ms vs {:.2} ms)",
            m.speedup_blocked_parallel,
            m.seed_ikj_ms,
            m.blocked_parallel_ms
        );
        if m.threads >= 2 {
            assert!(
                m.speedup_blocked_parallel >= 4.0,
                "blocked-parallel GEMM must be >= 4x the seed ikj loop on {} threads \
                 with >= 2 hardware threads (got {:.2}x)",
                m.threads,
                m.speedup_blocked_parallel
            );
        }
    }
}

impl Gemm512Measurement {
    /// Renders the measurement in the committed `BENCH_substrate.json`
    /// layout.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"substrate/gemm_512\",\n  \"m\": 512,\n  \"k\": 512,\n  \
             \"n\": 512,\n  \"threads\": {},\n  \"hardware_threads\": {},\n  \
             \"seed_ikj_ms\": {:.3},\n  \"blocked_serial_ms\": {:.3},\n  \
             \"blocked_parallel_ms\": {:.3},\n  \"dequant_int8_fused_ms\": {:.3},\n  \
             \"speedup_blocked_serial\": {:.3},\n  \"speedup_blocked_parallel\": {:.3},\n  \
             \"speedup_dequant_int8_fused\": {:.3}\n}}\n",
            self.threads,
            self.hardware_threads,
            self.seed_ikj_ms,
            self.blocked_serial_ms,
            self.blocked_parallel_ms,
            self.dequant_int8_fused_ms,
            self.speedup_blocked_serial,
            self.speedup_blocked_parallel,
            self.speedup_dequant_int8_fused,
        )
    }

    /// Parses a `BENCH_substrate.json`-shaped document (flat string/number
    /// object; no external JSON crate in this offline workspace).
    ///
    /// Returns `None` when any required numeric field is missing.
    pub fn parse_json(text: &str) -> Option<Self> {
        let num = |key: &str| -> Option<f64> {
            let tag = format!("\"{key}\"");
            let rest = &text[text.find(&tag)? + tag.len()..];
            let rest = rest.trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        Some(Gemm512Measurement {
            threads: num("threads")? as usize,
            hardware_threads: num("hardware_threads")? as usize,
            seed_ikj_ms: num("seed_ikj_ms")?,
            blocked_serial_ms: num("blocked_serial_ms")?,
            blocked_parallel_ms: num("blocked_parallel_ms")?,
            dequant_int8_fused_ms: num("dequant_int8_fused_ms")?,
            speedup_blocked_serial: num("speedup_blocked_serial")?,
            speedup_blocked_parallel: num("speedup_blocked_parallel")?,
            speedup_dequant_int8_fused: num("speedup_dequant_int8_fused")?,
        })
    }
}

/// The sub-byte kernel gate: best-of-N wall times of the fused Q4_0
/// dequantizing GEMM at a decode-like shape (m = 8, k = n = 512), where
/// the `O(k·n)` panel-dequant pass dominates and the SIMD nibble-unpack
/// microkernels actually matter (at 512³ the dequant pass is ~1/512 of
/// the arithmetic and any SIMD gain drowns). Both fused variants run
/// **serially**, so `speedup_q4_simd` — dispatched-over-forced-scalar on
/// the same machine in the same run — is thread-independent and
/// machine-normalized the same way the GEMM speedups are.
#[derive(Debug, Clone, PartialEq)]
pub struct Q4FusedMeasurement {
    /// The unfused scalar baseline — dequantize all of `B`, then the
    /// blocked serial GEMM — in ms (the normalizer: at m = 8 the dequant
    /// pass dominates *any* Q4 path, so the dense seed loop would be the
    /// wrong yardstick).
    pub q4_unfused_ms: f64,
    /// Fused Q4 GEMM with the scalar panel-dequant fallback forced, ms.
    pub q4_fused_scalar_ms: f64,
    /// Fused Q4 GEMM through runtime dispatch (AVX2 when available), ms.
    pub q4_fused_simd_ms: f64,
    /// Whether the dispatched run actually used the SIMD tier (false on
    /// non-AVX2 machines or under `PGMOE_NO_SIMD` — the two fused timings
    /// then measure the same code and their ratio is ~1 and ungated).
    pub simd: bool,
    /// `q4_unfused_ms / q4_fused_scalar_ms` — fusing the dequant into the
    /// panel loop must beat materialize-then-multiply even without SIMD.
    pub speedup_q4_scalar: f64,
    /// `q4_fused_scalar_ms / q4_fused_simd_ms` — the SIMD acceptance
    /// headline.
    pub speedup_q4_simd: f64,
}

/// Times the fused Q4_0 GEMM at the decode shape (unfused
/// dequantize-then-matmul, forced-scalar fused, dispatched fused),
/// cross-checking all outputs bitwise before the timings are trusted —
/// the scalar and dispatched paths must agree with dequantize-then-matmul
/// bit for bit, SIMD or not.
///
/// # Panics
///
/// Panics if any path's output diverges from the serial reference.
pub fn measure_q4_fused() -> Q4FusedMeasurement {
    const M: usize = 8;
    const K: usize = 512;
    const N: usize = 512;
    const RUNS: usize = 25;
    let mut rng = StdRng::seed_from_u64(11);
    let a = pregated_moe::tensor::init::normal([M, K], 0.0, 1.0, &mut rng).into_vec();
    let b = pregated_moe::tensor::init::normal([K, N], 0.0, 1.0, &mut rng);
    let bq = QuantizedTensor::quantize(&b, QuantMode::Q4);

    let mut out_unfused = vec![0.0f32; M * N];
    let q4_unfused_ms = time_best_ms(RUNS, || {
        let deq = bq.dequantize();
        kernel::matmul_serial_into(black_box(&mut out_unfused), &a, deq.as_slice(), M, K, N);
    });
    let mut out_scalar = vec![0.0f32; M * N];
    let q4_fused_scalar_ms = time_best_ms(RUNS, || {
        quant::matmul_dequant_scalar_into(black_box(&mut out_scalar), &a, &bq, M, K, N)
    });
    let mut out_simd = vec![0.0f32; M * N];
    let q4_fused_simd_ms = time_best_ms(RUNS, || {
        quant::matmul_dequant_serial_into(black_box(&mut out_simd), &a, &bq, M, K, N)
    });

    assert!(
        out_unfused.iter().zip(&out_scalar).all(|(x, y)| x.to_bits() == y.to_bits()),
        "scalar fused Q4 GEMM must be bitwise identical to dequantize-then-matmul"
    );
    assert!(
        out_unfused.iter().zip(&out_simd).all(|(x, y)| x.to_bits() == y.to_bits()),
        "dispatched fused Q4 GEMM must be bitwise identical to the scalar path"
    );

    Q4FusedMeasurement {
        q4_unfused_ms,
        q4_fused_scalar_ms,
        q4_fused_simd_ms,
        simd: pregated_moe::tensor::simd::enabled(),
        speedup_q4_scalar: q4_unfused_ms / q4_fused_scalar_ms,
        speedup_q4_simd: q4_fused_scalar_ms / q4_fused_simd_ms,
    }
}

/// The sub-byte acceptance bars: fusing the dequant into the panel loop
/// must clear 1.2x over materialize-then-multiply even in pure scalar
/// code (the fallback is a real kernel, not a penalty box), and on
/// hardware with the AVX2 tier the SIMD dispatch must clear another 1.2x
/// over that scalar fused path.
///
/// # Panics
///
/// Panics when a floor is broken.
pub fn assert_q4_floors(m: &Q4FusedMeasurement) {
    assert!(
        m.speedup_q4_scalar >= 1.2,
        "scalar fused Q4 GEMM must be >= 1.2x dequantize-then-matmul at the decode shape \
         (got {:.2}x: unfused {:.3} ms vs {:.3} ms)",
        m.speedup_q4_scalar,
        m.q4_unfused_ms,
        m.q4_fused_scalar_ms
    );
    if m.simd {
        assert!(
            m.speedup_q4_simd >= 1.2,
            "AVX2 fused Q4 dequant must be >= 1.2x the scalar fused path \
             (got {:.2}x: scalar {:.3} ms vs {:.3} ms)",
            m.speedup_q4_simd,
            m.q4_fused_scalar_ms,
            m.q4_fused_simd_ms
        );
    }
}

impl Q4FusedMeasurement {
    /// Parses the Q4-gate fields out of a `BENCH_substrate.json`-shaped
    /// document; `None` when the baseline predates the Q4 gate.
    pub fn parse_json(text: &str) -> Option<Self> {
        let num = |key: &str| -> Option<f64> {
            let tag = format!("\"{key}\"");
            let rest = &text[text.find(&tag)? + tag.len()..];
            let rest = rest.trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        Some(Q4FusedMeasurement {
            q4_unfused_ms: num("q4_unfused_ms")?,
            q4_fused_scalar_ms: num("q4_fused_scalar_ms")?,
            q4_fused_simd_ms: num("q4_fused_simd_ms")?,
            simd: num("q4_simd")? != 0.0,
            speedup_q4_scalar: num("speedup_q4_scalar")?,
            speedup_q4_simd: num("speedup_q4_simd")?,
        })
    }
}

/// Splices the Q4-gate fields into a rendered baseline document, keeping
/// the committed file one flat JSON object.
///
/// # Panics
///
/// Panics if `json` is not a `}`-terminated object.
pub fn merge_q4_json(json: &str, q4: &Q4FusedMeasurement) -> String {
    let body = json.trim_end().strip_suffix('}').expect("json object").trim_end();
    format!(
        "{body},\n  \"q4_unfused_ms\": {:.3},\n  \"q4_fused_scalar_ms\": {:.3},\n  \
         \"q4_fused_simd_ms\": {:.3},\n  \"q4_simd\": {},\n  \
         \"speedup_q4_scalar\": {:.3},\n  \"speedup_q4_simd\": {:.3}\n}}\n",
        q4.q4_unfused_ms,
        q4.q4_fused_scalar_ms,
        q4.q4_fused_simd_ms,
        u8::from(q4.simd),
        q4.speedup_q4_scalar,
        q4.speedup_q4_simd,
    )
}

/// Gate verdicts for the Q4 fused kernels. The scalar figure is a
/// serial-vs-serial single-thread ratio and always gates; the SIMD figure
/// gates only when both baseline and candidate actually ran the AVX2 tier
/// (a non-AVX2 runner's ~1.0 "speedup" is a machine difference, not a
/// kernel regression — reported informationally).
pub fn compare_q4(
    baseline: &Q4FusedMeasurement,
    candidate: &Q4FusedMeasurement,
    tolerance: f64,
) -> Vec<GateLine> {
    let line = |metric: &str, base: f64, cand: f64, gated: bool| GateLine {
        metric: metric.to_string(),
        baseline: base,
        candidate: cand,
        gated,
        ok: !gated || cand >= base * (1.0 - tolerance),
    };
    let simd_comparable = baseline.simd && candidate.simd;
    vec![
        line("speedup_q4_scalar", baseline.speedup_q4_scalar, candidate.speedup_q4_scalar, true),
        line(
            "speedup_q4_simd",
            baseline.speedup_q4_simd,
            candidate.speedup_q4_simd,
            simd_comparable,
        ),
    ]
}

/// Host-side scheduler cost of the decode loop — wall microseconds per
/// generated token of the `block_latency` scheduler-overhead workload
/// (Switch-Base-64, Pre-gated, batch-1 steady state), measured with the
/// compiled-plan cache on and off in the same process. The ratio is
/// machine-normalized the same way the GEMM speedups are: both runs share
/// the machine, so `speedup_plan_cache` transfers between the laptop that
/// committed the baseline and the CI runner that checks it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanHostMeasurement {
    /// Host µs per generated token with plan replay (the default path).
    pub plan_on_us_per_token: f64,
    /// Host µs per generated token with `SimOptions::without_plan_cache`.
    pub plan_off_us_per_token: f64,
    /// `plan_off_us_per_token / plan_on_us_per_token`.
    pub speedup_plan_cache: f64,
}

/// Times the `block_latency`-style batch-1 decode loop (block latencies
/// sampled, long outputs, routing counts stable — the cache-hit steady
/// state) with the plan cache on and off (best-of-N wall clock each). The
/// on-run is cross-checked to actually replay plans before its timing is
/// trusted.
///
/// # Panics
///
/// Panics if the plan-cache-on run reports fewer hits than misses — a
/// hitless run would time the interpreter twice and the speedup would be
/// meaningless.
pub fn measure_plan_host() -> PlanHostMeasurement {
    use pregated_moe::prelude::*;
    const RUNS: usize = 7;
    // Long outputs relative to prompts: the measurement targets the
    // cache-hit steady state of the decode loop, not prefill.
    let request = DecodeRequest { input_tokens: 16, output_tokens: 512, batch_size: 1 };
    let run = |plan: bool| {
        let opts = SimOptions::new(OffloadPolicy::Pregated);
        let opts = if plan { opts } else { opts.without_plan_cache() };
        InferenceSim::new(ModelConfig::switch_base(64), opts).run(request, 4).expect("run")
    };
    let report = run(true);
    assert!(
        report.plan_cache_hits > report.plan_cache_misses,
        "the gate workload must spend most decode iterations replaying plans \
         ({} hits / {} misses)",
        report.plan_cache_hits,
        report.plan_cache_misses
    );
    let tokens = (report.plan_cache_hits + report.plan_cache_misses) as f64;
    let on_ms = time_best_ms(RUNS, || {
        black_box(run(true));
    });
    let off_ms = time_best_ms(RUNS, || {
        black_box(run(false));
    });
    PlanHostMeasurement {
        plan_on_us_per_token: on_ms * 1e3 / tokens,
        plan_off_us_per_token: off_ms * 1e3 / tokens,
        speedup_plan_cache: off_ms / on_ms,
    }
}

/// The compiled-plan acceptance bar: replay must cut host µs/token by at
/// least 1.3x versus the interpreted core on the same machine.
///
/// # Panics
///
/// Panics when the floor is broken.
pub fn assert_plan_floor(m: &PlanHostMeasurement) {
    assert!(
        m.speedup_plan_cache >= 1.3,
        "compiled-plan replay must be >= 1.3x the interpreted decode loop \
         (got {:.2}x: {:.1} us/token interpreted vs {:.1} us/token replayed)",
        m.speedup_plan_cache,
        m.plan_off_us_per_token,
        m.plan_on_us_per_token
    );
}

impl PlanHostMeasurement {
    /// Parses the plan-gate fields out of a `BENCH_substrate.json`-shaped
    /// document; `None` when the baseline predates the plan gate.
    pub fn parse_json(text: &str) -> Option<Self> {
        let num = |key: &str| -> Option<f64> {
            let tag = format!("\"{key}\"");
            let rest = &text[text.find(&tag)? + tag.len()..];
            let rest = rest.trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        Some(PlanHostMeasurement {
            plan_on_us_per_token: num("plan_on_us_per_token")?,
            plan_off_us_per_token: num("plan_off_us_per_token")?,
            speedup_plan_cache: num("speedup_plan_cache")?,
        })
    }
}

/// Splices the plan-gate fields into a rendered GEMM measurement so the
/// committed baseline stays one flat JSON object.
///
/// # Panics
///
/// Panics if `gemm_json` is not a `}`-terminated object.
pub fn merge_plan_json(gemm_json: &str, plan: &PlanHostMeasurement) -> String {
    let body = gemm_json.trim_end().strip_suffix('}').expect("json object").trim_end();
    format!(
        "{body},\n  \"plan_on_us_per_token\": {:.3},\n  \"plan_off_us_per_token\": {:.3},\n  \
         \"speedup_plan_cache\": {:.3}\n}}\n",
        plan.plan_on_us_per_token, plan.plan_off_us_per_token, plan.speedup_plan_cache,
    )
}

/// Gate verdict for the plan-cache speedup: same tolerance semantics as
/// [`compare`], always gated (both runs share one machine, so the ratio has
/// no thread-count caveat).
pub fn compare_plan(
    baseline: &PlanHostMeasurement,
    candidate: &PlanHostMeasurement,
    tolerance: f64,
) -> GateLine {
    GateLine {
        metric: "speedup_plan_cache".to_string(),
        baseline: baseline.speedup_plan_cache,
        candidate: candidate.speedup_plan_cache,
        gated: true,
        ok: candidate.speedup_plan_cache >= baseline.speedup_plan_cache * (1.0 - tolerance),
    }
}

/// One gated metric's verdict.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Metric name (`speedup_blocked_serial`, ...).
    pub metric: String,
    /// The committed baseline's speedup.
    pub baseline: f64,
    /// This run's speedup.
    pub candidate: f64,
    /// Whether this metric participates in the pass/fail decision (false
    /// when the machines' thread contexts make it incomparable — reported
    /// informationally only).
    pub gated: bool,
    /// Whether the candidate cleared `baseline × (1 − tolerance)` (always
    /// true for ungated lines).
    pub ok: bool,
}

/// Threads a measurement could actually use: configured workers capped by
/// real cores.
fn effective_parallelism(m: &Gemm512Measurement) -> usize {
    m.threads.min(m.hardware_threads).max(1)
}

/// Compares a candidate measurement against the committed baseline on the
/// machine-normalized speedups. A metric fails when the candidate's speedup
/// falls more than `tolerance` (fraction, e.g. `0.25`) below the
/// baseline's. The serial speedup is a single-thread figure and compares
/// across any two machines; the *parallel* and *fused-dequant* kernels both
/// fan work across the worker pool, so their speedups scale with core count
/// and are gated only when the candidate has at least the baseline's
/// effective parallelism (a 2-core CI runner cannot be expected to
/// reproduce a 16-core laptop's pool-parallel speedups — that is a machine
/// difference, not a kernel regression). Returns every verdict; the gate
/// fails if any gated line is not ok.
pub fn compare(
    baseline: &Gemm512Measurement,
    candidate: &Gemm512Measurement,
    tolerance: f64,
) -> Vec<GateLine> {
    let line = |metric: &str, base: f64, cand: f64, gated: bool| GateLine {
        metric: metric.to_string(),
        baseline: base,
        candidate: cand,
        gated,
        ok: !gated || cand >= base * (1.0 - tolerance),
    };
    let parallel_comparable = effective_parallelism(candidate) >= effective_parallelism(baseline);
    vec![
        line(
            "speedup_blocked_serial",
            baseline.speedup_blocked_serial,
            candidate.speedup_blocked_serial,
            true,
        ),
        line(
            "speedup_blocked_parallel",
            baseline.speedup_blocked_parallel,
            candidate.speedup_blocked_parallel,
            parallel_comparable,
        ),
        // matmul_dequant_into is worker-pool parallel too, so its speedup
        // over the single-thread seed loop carries the same thread caveat.
        line(
            "speedup_dequant_int8_fused",
            baseline.speedup_dequant_int8_fused,
            candidate.speedup_dequant_int8_fused,
            parallel_comparable,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Gemm512Measurement {
        Gemm512Measurement {
            threads: 1,
            hardware_threads: 1,
            seed_ikj_ms: 16.0,
            blocked_serial_ms: 7.6,
            blocked_parallel_ms: 7.7,
            dequant_int8_fused_ms: 5.5,
            speedup_blocked_serial: 2.105,
            speedup_blocked_parallel: 2.078,
            speedup_dequant_int8_fused: 2.909,
        }
    }

    #[test]
    fn json_round_trips() {
        let m = fixture();
        let parsed = Gemm512Measurement::parse_json(&m.to_json()).expect("parse");
        assert_eq!(parsed.threads, 1);
        assert!((parsed.seed_ikj_ms - 16.0).abs() < 1e-9);
        assert!((parsed.speedup_dequant_int8_fused - 2.909).abs() < 1e-9);
    }

    #[test]
    fn committed_baseline_parses() {
        let text = include_str!("../../../BENCH_substrate.json");
        let baseline = Gemm512Measurement::parse_json(text).expect("committed baseline");
        assert!(baseline.speedup_blocked_serial > 1.0, "baseline must beat the seed loop");
        assert!(baseline.seed_ikj_ms > 0.0);
    }

    #[test]
    fn identical_measurement_passes_the_gate() {
        let m = fixture();
        assert!(compare(&m, &m, 0.25).iter().all(|l| l.ok));
    }

    #[test]
    fn small_noise_within_tolerance_passes() {
        let base = fixture();
        let mut cand = fixture();
        cand.speedup_blocked_serial *= 0.85; // −15 % < 25 % tolerance
        cand.speedup_dequant_int8_fused *= 0.80;
        assert!(compare(&base, &cand, 0.25).iter().all(|l| l.ok));
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        // A kernel regressing to half its speedup (e.g. the blocked loop
        // degenerating back toward the seed ikj path) must fail.
        let base = fixture();
        let mut cand = fixture();
        cand.blocked_serial_ms *= 2.0;
        cand.speedup_blocked_serial /= 2.0;
        let verdicts = compare(&base, &cand, 0.25);
        assert!(!verdicts.iter().all(|l| l.ok), "2x slowdown must fail");
        let bad: Vec<_> = verdicts.iter().filter(|l| !l.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "speedup_blocked_serial");
        // Equivalent view: a doctored baseline twice as fast as reality
        // fails the real measurement — the local verification recipe.
        let mut doctored = fixture();
        doctored.speedup_blocked_serial *= 2.0;
        doctored.speedup_blocked_parallel *= 2.0;
        doctored.speedup_dequant_int8_fused *= 2.0;
        assert!(!compare(&doctored, &base, 0.25).iter().all(|l| l.ok));
    }

    #[test]
    fn parallel_speedup_is_informational_across_thread_mismatch() {
        // A baseline refreshed on a 16-core laptop must not make a 2-core
        // CI runner fail on the parallel figure alone — that is a machine
        // difference, not a kernel regression. Serial/dequant still gate.
        let mut base = fixture();
        base.threads = 16;
        base.hardware_threads = 16;
        base.speedup_blocked_parallel = 9.0;
        let mut cand = fixture();
        cand.threads = 2;
        cand.hardware_threads = 2;
        cand.speedup_blocked_parallel = 3.0;
        let verdicts = compare(&base, &cand, 0.25);
        assert!(verdicts.iter().all(|l| l.ok), "{verdicts:?}");
        let parallel = verdicts.iter().find(|l| l.metric == "speedup_blocked_parallel").unwrap();
        assert!(!parallel.gated, "incomparable parallel figure must be informational");
        let dequant = verdicts.iter().find(|l| l.metric == "speedup_dequant_int8_fused").unwrap();
        assert!(!dequant.gated, "fused dequant is pool-parallel: same thread caveat");
        // A genuine serial regression on the same mismatched machines
        // still fails.
        cand.speedup_blocked_serial /= 2.0;
        assert!(!compare(&base, &cand, 0.25).iter().all(|l| l.ok));
        // Equal-or-more parallelism gates the parallel figure again.
        let mut fast_cand = fixture();
        fast_cand.threads = 16;
        fast_cand.hardware_threads = 16;
        fast_cand.speedup_blocked_parallel = 3.0;
        let v = compare(&base, &fast_cand, 0.25);
        let parallel = v.iter().find(|l| l.metric == "speedup_blocked_parallel").unwrap();
        assert!(parallel.gated && !parallel.ok, "real parallel regression must fail");
    }

    #[test]
    fn floors_hold_for_the_fixture_and_reject_regressions() {
        assert_speedup_floors(&fixture());
        let mut bad = fixture();
        bad.speedup_blocked_serial = 1.2;
        let err = std::panic::catch_unwind(move || assert_speedup_floors(&bad));
        assert!(err.is_err(), "a 1.2x blocked speedup breaks the 1.5x floor");
    }

    fn plan_fixture() -> PlanHostMeasurement {
        PlanHostMeasurement {
            plan_on_us_per_token: 0.6,
            plan_off_us_per_token: 1.0,
            speedup_plan_cache: 1.667,
        }
    }

    #[test]
    fn plan_fields_round_trip_through_the_merged_baseline() {
        let merged = merge_plan_json(&fixture().to_json(), &plan_fixture());
        // Both halves of the spliced document parse back unchanged.
        let gemm = Gemm512Measurement::parse_json(&merged).expect("gemm half");
        assert!((gemm.speedup_blocked_serial - 2.105).abs() < 1e-9);
        let plan = PlanHostMeasurement::parse_json(&merged).expect("plan half");
        assert!((plan.plan_on_us_per_token - 0.6).abs() < 1e-9);
        assert!((plan.speedup_plan_cache - 1.667).abs() < 1e-9);
    }

    #[test]
    fn plan_parse_is_none_on_a_pre_plan_baseline() {
        // A baseline committed before the plan gate existed has only the
        // GEMM fields — the gate treats the plan figure as informational.
        assert!(PlanHostMeasurement::parse_json(&fixture().to_json()).is_none());
    }

    #[test]
    fn committed_baseline_has_plan_fields() {
        let text = include_str!("../../../BENCH_substrate.json");
        let plan = PlanHostMeasurement::parse_json(text).expect("committed plan baseline");
        assert!(plan.speedup_plan_cache >= 1.3, "committed baseline must clear the plan floor");
        assert_plan_floor(&plan);
    }

    #[test]
    fn plan_compare_gates_on_tolerance() {
        let base = plan_fixture();
        let mut cand = plan_fixture();
        cand.speedup_plan_cache *= 0.85; // −15 % < 25 % tolerance
        let v = compare_plan(&base, &cand, 0.25);
        assert!(v.gated && v.ok, "{v:?}");
        cand.speedup_plan_cache = base.speedup_plan_cache / 2.0;
        let v = compare_plan(&base, &cand, 0.25);
        assert!(v.gated && !v.ok, "a 2x replay slowdown must fail: {v:?}");
    }

    #[test]
    fn plan_floor_rejects_sub_1_3x_replay() {
        let mut bad = plan_fixture();
        bad.speedup_plan_cache = 1.1;
        let err = std::panic::catch_unwind(move || assert_plan_floor(&bad));
        assert!(err.is_err(), "1.1x replay breaks the 1.3x acceptance bar");
    }

    fn q4_fixture() -> Q4FusedMeasurement {
        Q4FusedMeasurement {
            q4_unfused_ms: 0.60,
            q4_fused_scalar_ms: 0.40,
            q4_fused_simd_ms: 0.25,
            simd: true,
            speedup_q4_scalar: 1.5,
            speedup_q4_simd: 1.6,
        }
    }

    #[test]
    fn q4_fields_round_trip_through_the_merged_baseline() {
        let merged =
            merge_q4_json(&merge_plan_json(&fixture().to_json(), &plan_fixture()), &q4_fixture());
        // All three slices of the spliced document parse back unchanged.
        let gemm = Gemm512Measurement::parse_json(&merged).expect("gemm slice");
        assert!((gemm.speedup_blocked_serial - 2.105).abs() < 1e-9);
        let plan = PlanHostMeasurement::parse_json(&merged).expect("plan slice");
        assert!((plan.speedup_plan_cache - 1.667).abs() < 1e-9);
        let q4 = Q4FusedMeasurement::parse_json(&merged).expect("q4 slice");
        assert_eq!(q4, q4_fixture());
    }

    #[test]
    fn q4_parse_is_none_on_a_pre_q4_baseline() {
        assert!(Q4FusedMeasurement::parse_json(&fixture().to_json()).is_none());
    }

    #[test]
    fn committed_baseline_has_q4_fields() {
        let text = include_str!("../../../BENCH_substrate.json");
        let q4 = Q4FusedMeasurement::parse_json(text).expect("committed q4 baseline");
        assert!(q4.speedup_q4_scalar >= 1.2, "committed baseline must clear the scalar floor");
        assert_q4_floors(&q4);
    }

    #[test]
    fn q4_floors_hold_for_the_fixture_and_reject_regressions() {
        assert_q4_floors(&q4_fixture());
        // A sub-1.2x SIMD ratio on AVX2 hardware breaks the floor...
        let mut bad = q4_fixture();
        bad.speedup_q4_simd = 1.05;
        let err = std::panic::catch_unwind(move || assert_q4_floors(&bad));
        assert!(err.is_err(), "1.05x SIMD-over-scalar breaks the 1.2x bar");
        // ...but the same ratio without the AVX2 tier is expected (the two
        // timings measure the same scalar code) — only the scalar floor
        // applies there.
        let mut no_simd = q4_fixture();
        no_simd.speedup_q4_simd = 1.0;
        no_simd.simd = false;
        assert_q4_floors(&no_simd);
        let mut slow_scalar = q4_fixture();
        slow_scalar.simd = false;
        slow_scalar.speedup_q4_scalar = 0.9;
        let err = std::panic::catch_unwind(move || assert_q4_floors(&slow_scalar));
        assert!(err.is_err(), "a sub-unfused scalar fused path must fail even without SIMD");
    }

    #[test]
    fn q4_simd_line_is_informational_across_simd_mismatch() {
        // Baseline from an AVX2 laptop, candidate from a runner without the
        // tier (or with PGMOE_NO_SIMD forced): the SIMD ratio is
        // incomparable and must not fail the gate; the scalar line still
        // gates both ways.
        let base = q4_fixture();
        let mut cand = q4_fixture();
        cand.simd = false;
        cand.speedup_q4_simd = 1.0;
        let verdicts = compare_q4(&base, &cand, 0.25);
        assert!(verdicts.iter().all(|l| l.ok), "{verdicts:?}");
        let simd = verdicts.iter().find(|l| l.metric == "speedup_q4_simd").unwrap();
        assert!(!simd.gated, "SIMD figure must be informational on a scalar-only candidate");
        // A genuine scalar regression still fails on the mismatched pair.
        cand.speedup_q4_scalar /= 2.0;
        assert!(!compare_q4(&base, &cand, 0.25).iter().all(|l| l.ok));
        // Matched SIMD tiers gate the SIMD ratio for real.
        let mut slow_simd = q4_fixture();
        slow_simd.speedup_q4_simd = base.speedup_q4_simd / 2.0;
        let v = compare_q4(&base, &slow_simd, 0.25);
        let simd = v.iter().find(|l| l.metric == "speedup_q4_simd").unwrap();
        assert!(simd.gated && !simd.ok, "a real SIMD regression must fail");
    }
}
