//! Drivers for the systems-side tables and figures.

use crate::paper_request;
use pregated_moe::model::analytics::{flops_per_sequence, CapacityBreakdown, Table1Row};
use pregated_moe::prelude::*;
use pregated_moe::runtime::{
    csv_block_latencies, csv_fleet_summary, csv_peak_memory, csv_throughputs, RuntimeError,
};

fn zoo() -> Vec<ModelConfig> {
    vec![
        ModelConfig::switch_base(8),
        ModelConfig::switch_base(64),
        ModelConfig::switch_base(128),
        ModelConfig::switch_large_128(),
    ]
}

fn run(
    model: &ModelConfig,
    opts: SimOptions,
    request: DecodeRequest,
) -> Result<RunReport, RuntimeError> {
    InferenceSim::new(model.clone(), opts).run(request, 1)
}

/// Table I: model configurations of Google's SwitchTransformer.
pub fn table1() -> String {
    let mut out = String::from("== Table I: SwitchTransformer model zoo ==\n");
    out.push_str(&format!(
        "{:<18} {:>8} {:>7} {:>11} {:>13}  (paper: 0.7/3.8/7.5/26.4 B; 2.8/15.2/30/105.6 GB)\n",
        "model", "experts", "layers", "params (B)", "capacity (GB)"
    ));
    for cfg in zoo() {
        let row = Table1Row::of(&cfg);
        out.push_str(&format!(
            "{:<18} {:>8} {:>7} {:>11.1} {:>13.1}\n",
            row.name, row.experts, row.layers, row.params_b, row.capacity_gb
        ));
    }
    out
}

/// Fig 2: GFLOPs per sequence, MoE vs dense, against expert count.
pub fn fig2() -> String {
    let seq = 256;
    let mut out = String::from("== Fig 2: FLOPs per sequence (seq=256) ==\n");
    out.push_str("series: Switch-Base (MoE) | dense T5-Base equivalent\n");
    for experts in [1usize, 8, 16, 32, 64, 128, 256] {
        let mut cfg = ModelConfig::switch_base(experts.max(2));
        cfg.num_experts = experts;
        let moe = flops_per_sequence(&cfg, seq) / 1e9;
        out.push_str(&format!("  {experts:>3} experts: {moe:>7.1} GFLOPs/seq\n"));
    }
    let dense = flops_per_sequence(&ModelConfig::switch_base(8).dense_equivalent(), seq) / 1e9;
    let large = flops_per_sequence(&ModelConfig::switch_large_128(), seq) / 1e9;
    out.push_str(&format!("  dense T5-Base:  {dense:>7.1} GFLOPs/seq (constant)\n"));
    out.push_str(&format!("  Switch-Large:   {large:>7.1} GFLOPs/seq (constant in experts)\n"));
    out.push_str("shape: MoE FLOPs are flat in expert count — Fig 2's claim.\n");
    out
}

/// Fig 3: memory capacity decomposition (MoE vs non-MoE parameters).
pub fn fig3() -> String {
    let mut out = String::from("== Fig 3: model capacity decomposition ==\n");
    out.push_str(&format!(
        "{:<18} {:>10} {:>12} {:>10}\n",
        "model", "MoE (GB)", "non-MoE (GB)", "MoE frac"
    ));
    let mut configs = zoo();
    configs.insert(3, ModelConfig::switch_base(256));
    for cfg in configs {
        let b = CapacityBreakdown::of(&cfg);
        out.push_str(&format!(
            "{:<18} {:>10.1} {:>12.2} {:>9.1}%\n",
            b.name,
            b.moe_bytes as f64 / 1e9,
            b.non_moe_bytes as f64 / 1e9,
            100.0 * b.moe_fraction()
        ));
    }
    out.push_str("shape: expert parameters dominate capacity (paper: up to 75× a dense T5).\n");
    out
}

/// Per-model sweep rows: each policy paired with its report (None = OOM).
pub type PolicySweepRow = (ModelConfig, Vec<(OffloadPolicy, Option<RunReport>)>);

/// Runs the four policies over the zoo, returning reports (None = OOM).
pub fn policy_sweep(request: DecodeRequest) -> Vec<PolicySweepRow> {
    zoo()
        .into_iter()
        .map(|cfg| {
            let rows = OffloadPolicy::ALL
                .iter()
                .map(|&policy| {
                    let report = match run(&cfg, SimOptions::new(policy), request) {
                        Ok(r) => Some(r),
                        Err(RuntimeError::OutOfMemory(_)) => None,
                        Err(e) => panic!("unexpected config error: {e}"),
                    };
                    (policy, report)
                })
                .collect();
            (cfg, rows)
        })
        .collect()
}

/// Fig 10: average MoE-block latency, normalized to GPU-only (to Pre-gated
/// for Switch-Large, where GPU-only OOMs) — exactly the paper's chart.
pub fn fig10() -> String {
    let mut out = String::from("== Fig 10: MoE block latency (normalized) ==\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>10} {:>12} {:>12}   (paper: 1 / 1.2 / ~2 / 7-54-107-125)\n",
        "model", "GPU-only", "Pre-gated", "OnDemand", "Prefetch"
    ));
    for (cfg, rows) in policy_sweep(paper_request()) {
        let lat = |p: OffloadPolicy| {
            rows.iter()
                .find(|(q, _)| *q == p)
                .and_then(|(_, r)| r.as_ref())
                .map(|r| r.mean_block_latency().as_nanos() as f64)
        };
        let base = lat(OffloadPolicy::GpuOnly).or(lat(OffloadPolicy::Pregated)).expect("baseline");
        let cell = |p| match lat(p) {
            Some(v) => format!("{:.2}", v / base),
            None => "OOM".to_string(),
        };
        out.push_str(&format!(
            "{:<18} {:>9} {:>10} {:>12} {:>12}\n",
            cfg.name,
            cell(OffloadPolicy::GpuOnly),
            cell(OffloadPolicy::Pregated),
            cell(OffloadPolicy::OnDemand),
            cell(OffloadPolicy::PrefetchAll),
        ));
    }
    out
}

/// Fig 11: end-to-end inference throughput (tokens/s).
pub fn fig11() -> String {
    let mut out = String::from("== Fig 11: end-to-end throughput (tokens/s) ==\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>10} {:>12} {:>12}   (paper Base avg: 137 / 111 / ~74 / ~4; Large: OOM / 42 / 26 / 0.8)\n",
        "model", "GPU-only", "Pre-gated", "OnDemand", "Prefetch"
    ));
    for (cfg, rows) in policy_sweep(paper_request()) {
        let cell = |p: OffloadPolicy| {
            rows.iter()
                .find(|(q, _)| *q == p)
                .and_then(|(_, r)| r.as_ref())
                .map(|r| format!("{:.1}", r.tokens_per_sec))
                .unwrap_or_else(|| "OOM".to_string())
        };
        out.push_str(&format!(
            "{:<18} {:>9} {:>10} {:>12} {:>12}\n",
            cfg.name,
            cell(OffloadPolicy::GpuOnly),
            cell(OffloadPolicy::Pregated),
            cell(OffloadPolicy::OnDemand),
            cell(OffloadPolicy::PrefetchAll),
        ));
    }
    out
}

/// Fig 12: peak GPU memory, normalized to GPU-only (to Prefetch for
/// Switch-Large) — includes the 256-expert scalability point.
pub fn fig12() -> String {
    let mut out = String::from("== Fig 12: peak GPU memory (normalized) ==\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>10} {:>12} {:>12}   (paper avg: 1 / 0.23 / 0.23 / 0.51)\n",
        "model", "GPU-only", "Pre-gated", "OnDemand", "Prefetch"
    ));
    let mut configs = zoo();
    configs.insert(3, ModelConfig::switch_base(256));
    let request = crate::smoke_request();
    for cfg in configs {
        let peak = |policy| match run(&cfg, SimOptions::new(policy), request) {
            Ok(r) => Some(r.peak_hbm_bytes as f64),
            Err(RuntimeError::OutOfMemory(_)) => None,
            Err(e) => panic!("unexpected: {e}"),
        };
        let gpu = peak(OffloadPolicy::GpuOnly);
        let pf = peak(OffloadPolicy::PrefetchAll);
        let base = gpu.or(pf).expect("baseline");
        let cell = |p| match peak(p) {
            Some(v) => format!("{:.3}", v / base),
            None => "OOM".to_string(),
        };
        out.push_str(&format!(
            "{:<18} {:>9} {:>10} {:>12} {:>12}\n",
            cfg.name,
            cell(OffloadPolicy::GpuOnly),
            cell(OffloadPolicy::Pregated),
            cell(OffloadPolicy::OnDemand),
            cell(OffloadPolicy::PrefetchAll),
        ));
    }
    out
}

/// Fig 14: block latency vs number of activated experts (Switch-Base-64),
/// each design normalized to GPU-only at the same activation count.
pub fn fig14() -> String {
    let cfg = ModelConfig::switch_base(64);
    let request = crate::smoke_request();
    let mut out = String::from("== Fig 14: effect of activated experts (Switch-Base-64) ==\n");
    out.push_str(&format!(
        "{:<22} {:>9} {:>10} {:>12} {:>12}\n",
        "active experts", "GPU-only", "Pre-gated", "OnDemand", "Prefetch"
    ));
    for k in [1usize, 4, 16, 32, 64] {
        let lat = |policy| {
            run(&cfg, SimOptions::new(policy).with_active_experts(k), request)
                .map(|r| r.mean_block_latency().as_nanos() as f64)
                .unwrap_or(f64::NAN)
        };
        let gpu = lat(OffloadPolicy::GpuOnly);
        out.push_str(&format!(
            "{:<22} {:>9.2} {:>10.2} {:>12.2} {:>12.2}\n",
            format!("{k} ({:.2}%)", 100.0 * k as f64 / 64.0),
            1.0,
            lat(OffloadPolicy::Pregated) / gpu,
            lat(OffloadPolicy::OnDemand) / gpu,
            lat(OffloadPolicy::PrefetchAll) / gpu,
        ));
    }
    out.push_str(
        "shape: all offloading designs degrade as activation density rises;\n\
                  the Prefetch↔Pre-gated gap closes at 100% (paper Section VI-D).\n",
    );
    out
}

/// Fig 15: expert caching on Switch-Large-128 over a Zipf-hot routing trace;
/// throughput normalized to Pre-gated MoE without cache.
pub fn fig15() -> String {
    let cfg = ModelConfig::switch_large_128();
    let hot = RoutingKind::Zipf { s: 1.6 };
    // Warm the cache over a full 64-token decode, as a serving system would.
    let request = crate::paper_request();
    let base = run(&cfg, SimOptions::new(OffloadPolicy::Pregated).with_routing(hot), request)
        .expect("base run")
        .tokens_per_sec;
    let mut out =
        String::from("== Fig 15: expert caching, Switch-Large-128, Zipf-hot routing ==\n");
    out.push_str("(normalized to Pre-gated MoE w/o cache; paper shows OnDemand gaining most)\n");
    for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand] {
        let none = run(&cfg, SimOptions::new(policy).with_routing(hot), request).expect("run");
        out.push_str(&format!(
            "{:<16} {:<6} {:>5}: {:>5.2}\n",
            policy.paper_name(),
            "none",
            "-",
            none.tokens_per_sec / base
        ));
        for replacement in Replacement::ALL {
            for fraction in [0.01, 0.10, 0.20] {
                let r = run(
                    &cfg,
                    SimOptions::new(policy)
                        .with_routing(hot)
                        .with_cache(CacheConfig::new(fraction, replacement)),
                    request,
                )
                .expect("run");
                let hits = r.cache_stats.map(|s| s.hit_rate()).unwrap_or(0.0);
                out.push_str(&format!(
                    "{:<16} {:<6} {:>4.0}%: {:>5.2}  (hit {:>4.1}%)\n",
                    policy.paper_name(),
                    replacement.to_string(),
                    fraction * 100.0,
                    r.tokens_per_sec / base,
                    hits * 100.0
                ));
            }
        }
    }
    out
}

/// Fig 16: SSD offloading, Switch-Large + Switch-XXL, normalized to
/// Pre-gated MoE.
pub fn fig16() -> String {
    let request = crate::smoke_request();
    let mut out = String::from("== Fig 16: SSD offloading (normalized throughput) ==\n");
    out.push_str(&format!(
        "{:<18} {:>10} {:>12} {:>12}   (paper: 1 / ~0.9 / 0.01)\n",
        "model", "Pre-gated", "OnDemand", "Prefetch"
    ));
    for cfg in [ModelConfig::switch_large_128(), ModelConfig::switch_xxl()] {
        let tput = |policy| {
            run(&cfg, SimOptions::new(policy).with_ssd_offload(), request)
                .map(|r| r.tokens_per_sec)
                .unwrap_or(f64::NAN)
        };
        let pg = tput(OffloadPolicy::Pregated);
        out.push_str(&format!(
            "{:<18} {:>10.2} {:>12.2} {:>12.3}\n",
            cfg.name,
            1.0,
            tput(OffloadPolicy::OnDemand) / pg,
            tput(OffloadPolicy::PrefetchAll) / pg,
        ));
    }
    out
}

/// Fig 9 (qualitative): execution timelines per policy for one decode
/// iteration on Switch-Base-64.
pub fn timeline() -> String {
    let cfg = ModelConfig::switch_base(64);
    let request = DecodeRequest { input_tokens: 32, output_tokens: 2, batch_size: 1 };
    let mut out = String::from("== Fig 9: execution timelines (final decode iteration) ==\n");
    out.push_str("glyphs: A attention, G gate, E expert exec, F dense ffn / fetch (copy row)\n");
    for policy in OffloadPolicy::ALL {
        match run(&cfg, SimOptions::new(policy).with_timeline(), request) {
            Ok(r) => {
                out.push_str(&format!(
                    "\n-- {} --\n{}",
                    policy.paper_name(),
                    r.timeline.unwrap_or_default()
                ));
            }
            Err(e) => out.push_str(&format!("\n-- {} -- {e}\n", policy.paper_name())),
        }
    }
    out
}

/// Writes the artifact's CSV files into `dir` and returns their paths: the
/// paper artifact's three (`block_lats`, `throughputs`, `peak_mems`) plus
/// `fleet.csv`, the iso-GPU shootout summary.
pub fn write_artifact_csvs(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let reports: Vec<RunReport> = policy_sweep(paper_request())
        .into_iter()
        .flat_map(|(_, rows)| rows.into_iter().filter_map(|(_, r)| r))
        .collect();
    let files = [
        ("block_lats.csv", csv_block_latencies(&reports)),
        ("throughputs.csv", csv_throughputs(&reports)),
        ("peak_mems.csv", csv_peak_memory(&reports)),
        ("fleet.csv", csv_fleet_summary(&crate::ablations::fleet_shootout_runs())),
    ];
    let mut paths = Vec::new();
    for (name, content) in files {
        let path = dir.join(name);
        std::fs::write(&path, content)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_every_model() {
        let t = table1();
        for name in ["Switch-Base-8", "Switch-Base-128", "Switch-Large-128"] {
            assert!(t.contains(name), "missing {name}:\n{t}");
        }
    }

    #[test]
    fn fig10_marks_gpu_only_oom_on_large() {
        let f = fig10();
        let large_row = f.lines().find(|l| l.contains("Switch-Large")).expect("row");
        assert!(large_row.contains("OOM"), "{large_row}");
    }

    #[test]
    fn fig16_normalizes_to_pregated() {
        let f = fig16();
        for line in f.lines().filter(|l| l.contains("Switch-")) {
            assert!(line.contains("1.00"), "{line}");
        }
    }

    #[test]
    fn csvs_are_written() {
        let dir = std::env::temp_dir().join("pgmoe-csv-test");
        let paths = write_artifact_csvs(&dir).expect("write");
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().any(|p| p.ends_with("fleet.csv")), "fleet summary written");
        for p in paths {
            let content = std::fs::read_to_string(&p).unwrap();
            assert!(content.lines().count() > 1, "{p:?} empty");
            std::fs::remove_file(p).ok();
        }
    }
}
