//! # pgmoe-bench
//!
//! The benchmark harness that regenerates every table and figure in the
//! Pre-gated MoE paper's evaluation (ISCA 2024), mirroring the artifact's
//! `scripts/eval_all.py`.
//!
//! Each `fig*`/`table*` function returns a formatted report whose rows/series
//! correspond 1:1 to the paper's plots; the `repro` binary prints them and
//! writes the artifact-style CSV files (`block_lats.csv`, `throughputs.csv`,
//! `peak_mems.csv`). The Criterion benches under `benches/` time the same
//! drivers.
//!
//! ```sh
//! cargo run --release -p pgmoe-bench --bin repro -- all
//! cargo run --release -p pgmoe-bench --bin repro -- fig10
//! ```

#![forbid(unsafe_code)]

pub mod ablations;
pub mod accuracy;
pub mod figures;
pub mod gate;

/// Workload used by the systems figures: short QA-style prompt, 64 generated
/// tokens (the fine-tuning output budget), batch 1 (Section VI-A).
pub fn paper_request() -> pregated_moe::prelude::DecodeRequest {
    pregated_moe::prelude::DecodeRequest { input_tokens: 32, output_tokens: 64, batch_size: 1 }
}

/// A faster request for smoke runs and Criterion iterations.
pub fn smoke_request() -> pregated_moe::prelude::DecodeRequest {
    pregated_moe::prelude::DecodeRequest { input_tokens: 32, output_tokens: 8, batch_size: 1 }
}
