//! Drivers for the accuracy experiments: Table II and Fig 13.

use pregated_moe::model::GatingMode;
use pregated_moe::train::experiments::{fig13 as fig13_points, table2 as table2_cells, ModelScale};
use pregated_moe::train::TrainerConfig;
use pregated_moe::workload::TaskKind;

/// Table II: per (model scale, task), the conventional baseline vs the
/// pre-gated variant — fine-tuned from one shared pretrained checkpoint.
///
/// `full` selects the long recipe (several minutes); otherwise a reduced one
/// (~1 min) that preserves the comparison but with lower absolute scores.
pub fn table2(full: bool) -> String {
    let cfg = if full { TrainerConfig::paper() } else { TrainerConfig::default() };
    let mut out = String::from("== Table II: effect of the pre-gate on model accuracy ==\n");
    out.push_str(&format!(
        "(trainable scaled-down analogues; recipe: pretrain {} steps, fine-tune {} per variant)\n",
        cfg.pretrain_steps, cfg.finetune_steps
    ));
    out.push_str(&format!(
        "{:<22} {:<16} {:<22} {:>7} {:>7} {:>7} {:>7}\n",
        "model", "task", "variant", "EM", "F1", "R1", "R2"
    ));
    let cells = table2_cells(&cfg, &ModelScale::TABLE2, &TaskKind::ALL);
    for c in &cells {
        let variant = match c.mode {
            GatingMode::Conventional => "Conventional".to_string(),
            GatingMode::Pregated { level } => format!("Pre-gated (N={level})"),
        };
        out.push_str(&format!(
            "{:<22} {:<16} {:<22} {:>7.1} {:>7.1} {:>7.1} {:>7.1}\n",
            c.scale.name,
            c.task.dataset_name(),
            variant,
            c.scores.exact_match,
            c.scores.f1,
            c.scores.rouge1,
            c.scores.rouge2
        ));
    }
    out.push_str(
        "shape: Pre-gated (N=1) tracks the conventional gate within noise on every\n\
         (model, task) cell — the paper's Table II claim.\n",
    );
    out
}

/// Fig 13: accuracy vs pre-gate activation level N (0 = conventional).
pub fn fig13(full: bool) -> String {
    let cfg = if full { TrainerConfig::paper() } else { TrainerConfig::default() };
    let mut out =
        String::from("== Fig 13: accuracy vs pre-gate activation level (SQuAD-like) ==\n");
    out.push_str(&format!("{:<26} {:>7} {:>7}\n", "variant", "EM", "F1"));
    for p in fig13_points(&cfg, 3) {
        let name = if p.level == 0 {
            "Conventional MoE".to_string()
        } else {
            format!("Pre-gated MoE (N={})", p.level)
        };
        out.push_str(&format!("{:<26} {:>7.1} {:>7.1}\n", name, p.scores.exact_match, p.scores.f1));
    }
    out.push_str(
        "shape: N=1 matches the conventional gate; accuracy decays as the pre-gate\n\
         selects for blocks further ahead (paper Fig 13).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    // The accuracy drivers train real models; exercised by `repro` and the
    // train crate's own tests. Here we only verify report formatting with
    // the smallest possible budget.
    use super::*;

    #[test]
    #[ignore = "trains models; run explicitly or via `repro -- table2`"]
    fn table2_smoke_formats() {
        let t = table2(false);
        assert!(t.contains("Conventional"));
        assert!(t.contains("Pre-gated"));
    }
}
