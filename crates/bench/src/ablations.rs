//! Ablations beyond the paper's figures, probing the design choices
//! DESIGN.md calls out (Section VI-D spirit).

use pregated_moe::model::GatingMode;
use pregated_moe::prelude::*;

fn run(cfg: &ModelConfig, opts: SimOptions, request: DecodeRequest) -> RunReport {
    InferenceSim::new(cfg.clone(), opts).run(request, 1).expect("ablation run")
}

/// PCIe-bandwidth sensitivity: where does Pre-gated MoE stop hiding the
/// fetch? The overlap window is one block of compute; once the per-expert
/// migration exceeds it, exposure grows linearly — this sweep locates the
/// crossover the paper's calibration sits just inside.
pub fn pcie_sweep() -> String {
    let cfg = ModelConfig::switch_base(64);
    let request = crate::smoke_request();
    let mut out = String::from("== Ablation: PCIe bandwidth sensitivity (Switch-Base-64) ==\n");
    out.push_str(&format!(
        "{:<14} {:>14} {:>14} {:>10}\n",
        "PCIe (GB/s)", "Pre-gated", "GPU-only", "exposed"
    ));
    for gbps in [4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
        let machine = MachineConfig::a100_like().with_pcie_bandwidth(gbps * 1e9);
        let mut opts = SimOptions::new(OffloadPolicy::Pregated);
        opts.machine = machine.clone();
        let pg = run(&cfg, opts, request).mean_block_latency();
        let mut gpu_opts = SimOptions::new(OffloadPolicy::GpuOnly);
        gpu_opts.machine = machine;
        let gpu = run(&cfg, gpu_opts, request).mean_block_latency();
        out.push_str(&format!(
            "{:<14} {:>14} {:>14} {:>9.2}x\n",
            gbps,
            format!("{pg}"),
            format!("{gpu}"),
            pg.as_nanos() as f64 / gpu.as_nanos() as f64
        ));
    }
    out.push_str("shape: below ~8 GB/s the fetch no longer hides under one block of compute.\n");
    out
}

/// Pre-gate activation level vs *latency*: deeper lookahead gives the
/// runtime more overlap slack (the accuracy cost is Fig 13's subject).
pub fn level_sweep() -> String {
    let cfg = ModelConfig::switch_base(64);
    let request = crate::smoke_request();
    let mut out = String::from("== Ablation: pre-gate activation level vs block latency ==\n");
    for level in 1..=3usize {
        let mut opts = SimOptions::new(OffloadPolicy::Pregated);
        opts.gating = GatingMode::Pregated { level };
        let r = run(&cfg, opts, request);
        out.push_str(&format!(
            "level N={level}: mean block {}  (first {level} block(s) per iteration serialize)\n",
            r.mean_block_latency()
        ));
    }
    out.push_str(
        "shape: latency is flat in N at PCIe gen4 — the level-1 window already\n\
                  hides the fetch, so deeper lookahead only buys slack, not speed.\n",
    );
    out
}

/// Batch-size sensitivity: more concurrent sequences activate more distinct
/// experts per block, eroding the sparse-activation advantage (the paper
/// serves batch 1 for this reason).
pub fn batch_sweep() -> String {
    let cfg = ModelConfig::switch_base(64);
    let mut out = String::from("== Ablation: batch size (distinct experts per block grow) ==\n");
    for batch in [1usize, 4, 16, 64] {
        // Approximate batched decode: activation count ≈ expected distinct
        // experts over `batch` top-1 draws.
        let k = expected_distinct(batch, 64);
        let r = run(
            &cfg,
            SimOptions::new(OffloadPolicy::Pregated).with_active_experts(k),
            crate::smoke_request(),
        );
        let gpu = run(
            &cfg,
            SimOptions::new(OffloadPolicy::GpuOnly).with_active_experts(k),
            crate::smoke_request(),
        );
        out.push_str(&format!(
            "batch {batch:>3} (≈{k:>2} active experts/block): Pre-gated {:.2}x GPU-only\n",
            r.mean_block_latency().as_nanos() as f64 / gpu.mean_block_latency().as_nanos() as f64
        ));
    }
    out
}

/// Top-k routing (NLLB-MoE activates top-2): the migration doubles but so
/// does the execution window, so Pre-gated's hiding survives.
pub fn topk_sweep() -> String {
    let cfg = ModelConfig::switch_base(64);
    let request = crate::smoke_request();
    let mut out =
        String::from("== Ablation: top-k routing (NLLB-style top-2 vs Switch top-1) ==\n");
    for k in [1usize, 2, 4] {
        let pg =
            run(&cfg, SimOptions::new(OffloadPolicy::Pregated).with_active_experts(k), request);
        let od =
            run(&cfg, SimOptions::new(OffloadPolicy::OnDemand).with_active_experts(k), request);
        out.push_str(&format!(
            "top-{k}: Pre-gated {} vs OnDemand {}  (advantage {:.2}x)\n",
            pg.mean_block_latency(),
            od.mean_block_latency(),
            od.mean_block_latency().as_nanos() as f64 / pg.mean_block_latency().as_nanos() as f64
        ));
    }
    out
}

/// Expert-precision sweep: all four offload policies × {f32, f16, int8,
/// q4, q4k} expert storage. Reduced precision shrinks the migrated bytes
/// (the cost every offloading policy pays per fetch) and the expert
/// kernels' HBM traffic, so block latency drops everywhere and the
/// OnDemand/Prefetch penalty compresses toward the GPU-only bound; the
/// sub-byte formats roughly double the int8 win again.
pub fn precision_sweep() -> String {
    use pregated_moe::model::ExpertPrecision;
    let cfg = ModelConfig::switch_base(64);
    let request = crate::smoke_request();
    let mut out = String::from(
        "== Ablation: expert storage precision (Switch-Base-64, policies × {f32, f16, int8, q4, \
         q4k}) ==\n",
    );
    out.push_str(&format!(
        "{:<16} {:>10} {:>16} {:>14} {:>12}\n",
        "policy", "precision", "mean block", "fetched (MB)", "vs f32"
    ));
    for policy in OffloadPolicy::ALL {
        let mut f32_block_ns = 0.0f64;
        for precision in ExpertPrecision::ALL {
            let r = run(&cfg, SimOptions::new(policy).with_expert_precision(precision), request);
            let block_ns = r.mean_block_latency().as_nanos() as f64;
            if precision == ExpertPrecision::F32 {
                f32_block_ns = block_ns;
            }
            out.push_str(&format!(
                "{:<16} {:>10} {:>16} {:>14.1} {:>11.2}x\n",
                policy.paper_name(),
                precision.to_string(),
                format!("{}", r.mean_block_latency()),
                r.expert_fetch_bytes as f64 / 1e6,
                f32_block_ns / block_ns.max(1.0),
            ));
        }
    }
    out.push_str(
        "shape: int8 (~3.8x smaller experts) compresses every offloading policy's\n\
         block latency toward GPU-only; fetched bytes shrink by the same factor.\n\
         q4/q4k (~7.1x smaller than f32) roughly halve the int8 fetch bytes again.\n",
    );
    out
}

/// The pluggable-scheduler shootout: the paper's four built-ins plus the
/// two trait schedulers the closed enum could not express
/// (`Speculative-Top8`, `Cache-Pinned-8`), each reporting throughput, mean
/// block latency, total migrated bytes, and on-demand miss-stall bytes on a
/// Zipf-hot trace. The new columns make the speculative tradeoff visible:
/// fewer critical-path bytes, more link bytes.
pub fn policies_sweep() -> String {
    let cfg = ModelConfig::switch_base(64);
    let request = DecodeRequest { input_tokens: 32, output_tokens: 16, batch_size: 1 };
    let zipf = RoutingKind::Zipf { s: 1.2 };
    let mut specs: Vec<PolicySpec> = OffloadPolicy::ALL.iter().map(|&p| p.scheduler()).collect();
    specs.push(PolicySpec::speculative_top_m(8));
    specs.push(PolicySpec::cache_pinned(8));
    let mut out = String::from(
        "== Scheduler shootout: six expert schedulers (Switch-Base-64, Zipf 1.2) ==\n",
    );
    out.push_str(&format!(
        "{:<18} {:>10} {:>16} {:>14} {:>12}\n",
        "scheduler", "tokens/s", "mean block", "fetched (MB)", "demand (MB)"
    ));
    for spec in specs {
        let r = run(&cfg, SimOptions::new(spec).with_routing(zipf), request);
        out.push_str(&format!(
            "{:<18} {:>10.1} {:>16} {:>14.1} {:>12.1}\n",
            r.policy,
            r.tokens_per_sec,
            format!("{}", r.mean_block_latency()),
            r.expert_fetch_bytes as f64 / 1e6,
            r.demand_fetch_bytes as f64 / 1e6,
        ));
    }
    out.push_str(
        "shape: Speculative-Top8 trades link bytes for miss stalls (lower demand MB\n\
         than Pre-gated, higher fetched MB); Cache-Pinned-8 buys migration savings\n\
         with pinned HBM. Add your own via the ExpertScheduler trait.\n",
    );
    out
}

/// GPUs per deployment in the iso-GPU fleet shootout.
const FLEET_GPUS: usize = 4;

/// The iso-GPU deployments of the fleet shootout, in presentation order:
/// `[f32 replica fleet, int8 replica fleet, expert-parallel cluster]` — all
/// serving the identical Poisson stream on the same number of GPUs. Shared
/// by the `repro -- fleet` report and the `fleet.csv` artifact
/// (`repro -- csv`).
pub fn fleet_shootout_runs() -> Vec<FleetStats> {
    let model = ModelConfig::switch_base(64);
    let request = DecodeRequest { input_tokens: 16, output_tokens: 16, batch_size: 1 };
    let arrivals: Vec<ArrivedRequest> =
        ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: 150.0 }, request, 2, 7)
            .take(32)
            .collect();
    let mut runs: Vec<FleetStats> = Vec::new();
    for precision in [ExpertPrecision::F32, ExpertPrecision::Int8] {
        let fleet = FleetSim::new(
            model.clone(),
            SimOptions::new(OffloadPolicy::Pregated).with_expert_precision(precision),
            FleetConfig::new(FLEET_GPUS, BatchConfig::new(4)),
        );
        runs.push(fleet.serve(arrivals.clone(), &mut JoinShortestQueue::new()).expect("fleet run"));
    }
    runs.push(
        serve_cluster(
            model,
            &ClusterConfig::a100_nvlink(FLEET_GPUS),
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(4),
            arrivals,
        )
        .expect("cluster run"),
    );
    runs
}

/// The iso-GPU fleet shootout (`repro -- fleet`): N single-GPU Pre-gated
/// offload replicas vs ONE N-GPU expert-parallel cluster on the same
/// Poisson stream, scored by tokens/s-per-GPU — the TCO metric behind the
/// paper's economic claim (Sections III-A, VII). Also sweeps the dispatch
/// policies on a domain-skewed cached population. Self-asserts both
/// headline results.
pub fn fleet_shootout() -> String {
    const GPUS: usize = FLEET_GPUS;
    let model = ModelConfig::switch_base(64);
    let mut out = String::from(
        "== Fleet shootout: offload replicas vs iso-GPU expert parallelism (Switch-Base-64) ==\n",
    );
    out.push_str(&format!(
        "{:<40} {:>5} {:>9} {:>14} {:>10}\n",
        "deployment", "GPUs", "tokens/s", "tok/s-per-GPU", "p95"
    ));
    let runs = fleet_shootout_runs();
    let labels = [
        format!("{GPUS}x Pre-gated replicas (f32)"),
        format!("{GPUS}x Pre-gated replicas (int8)"),
        format!("1x {GPUS}-GPU expert-parallel cluster"),
    ];
    for (label, s) in labels.iter().zip(&runs) {
        out.push_str(&format!(
            "{:<40} {:>5} {:>9.1} {:>14.1} {:>10}\n",
            label,
            s.gpus,
            s.tokens_per_sec,
            s.tokens_per_sec_per_gpu(),
            format!("{}", s.p95()),
        ));
    }
    let cluster = &runs[2];
    let int8_ratio = runs[1].tokens_per_sec_per_gpu() / cluster.tokens_per_sec_per_gpu();
    let f32_ratio = runs[0].tokens_per_sec_per_gpu() / cluster.tokens_per_sec_per_gpu();
    out.push_str(&format!(
        "TCO: int8 replicas {int8_ratio:.2}x, f32 replicas {f32_ratio:.2}x the cluster's \
         tokens/s-per-GPU.\n"
    ));
    assert!(
        int8_ratio >= 1.3 && f32_ratio > 1.0,
        "offload replicas must beat iso-GPU expert parallelism per GPU \
         (int8 {int8_ratio:.2}x, f32 {f32_ratio:.2}x)"
    );

    // Dispatch-policy sweep on a domain-skewed cached population.
    let decode_heavy = DecodeRequest { input_tokens: 4, output_tokens: 32, batch_size: 1 };
    let skewed: Vec<ArrivedRequest> =
        ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: 80.0 }, decode_heavy, 2, 11)
            .take(40)
            .collect();
    let cached_fleet = FleetSim::new(
        model,
        SimOptions::new(OffloadPolicy::Pregated)
            .with_routing(RoutingKind::ZipfDomains { s: 1.5, domains: 4 })
            .with_cache(CacheConfig::new(0.15, Replacement::Lru)),
        FleetConfig::new(GPUS, BatchConfig::new(4)),
    );
    out.push_str(&format!(
        "{:<28} {:>9} {:>13} {:>13}\n",
        "dispatch", "tokens/s", "fetched (GB)", "demand (GB)"
    ));
    let mut demand = Vec::new();
    let mut dispatchers: Vec<Box<dyn DispatchPolicy>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(JoinShortestQueue::new()),
        Box::new(CacheAffinity::new(8)),
    ];
    for d in dispatchers.iter_mut() {
        let s = cached_fleet.serve(skewed.clone(), d.as_mut()).expect("dispatch run");
        out.push_str(&format!(
            "{:<28} {:>9.1} {:>13.2} {:>13.2}\n",
            s.dispatch,
            s.tokens_per_sec,
            s.expert_fetch_bytes as f64 / 1e9,
            s.demand_fetch_bytes as f64 / 1e9,
        ));
        demand.push(s.demand_fetch_bytes);
    }
    assert!(
        demand[2] < demand[0],
        "cache-affinity must strictly cut demand-fetch bytes vs round-robin"
    );
    out.push_str(
        "shape: N cheap offload replicas beat an N-GPU sharded cluster per GPU (the\n\
         paper's TCO claim), and cache-affinity dispatch keeps each Zipf domain's hot\n\
         experts warm on one replica. Implement DispatchPolicy to add your own.\n",
    );
    out
}

/// The chaos suite (`repro -- chaos`): fault injection, replica failure
/// recovery, autoscaling, and online policy switching on the controlled
/// fleet layer. Every row is recomputed and the robustness claims are
/// self-asserted — a regression in recovery or the controller loop panics
/// here, not just in CI.
pub fn chaos_suite() -> String {
    let model = ModelConfig::switch_base(8);
    let controlled = |replicas: usize, policy: OffloadPolicy| {
        ControlledFleet::new(
            model.clone(),
            SimOptions::new(policy),
            FleetConfig::new(replicas, BatchConfig::new(4)),
        )
    };
    let request = DecodeRequest { input_tokens: 16, output_tokens: 8, batch_size: 1 };
    let trace = |n: usize, seed: u64| -> Vec<ArrivedRequest> {
        ArrivalStream::new(
            ArrivalProcess::Diurnal { trough_per_sec: 15.0, peak_per_sec: 350.0, period_s: 1.0 },
            request,
            1,
            seed,
        )
        .take(n)
        .collect()
    };
    let mut out =
        String::from("== Chaos suite: faults, recovery, autoscaling, policy switching ==\n");

    // Kill-one-replica recovery: zero requests lost, full token delivery.
    let burst = trace(48, 23);
    let expected_tokens: usize = burst.iter().map(|a| a.request.output_tokens).sum();
    let plan = FaultPlan::new().kill_at(burst[12].arrival_ns + 1, 1);
    let survived = controlled(3, OffloadPolicy::Pregated)
        .serve(burst.clone(), &mut JoinShortestQueue::new(), &plan, &mut NoControl)
        .expect("kill run");
    let ctl = survived.control.as_ref().expect("control stats");
    out.push_str(&format!(
        "kill 1 of 3 replicas: {}/{} requests served, {}/{} tokens, {} redispatched, \
         {} tokens re-decoded\n",
        survived.request_latencies.len(),
        burst.len(),
        survived.total_tokens,
        expected_tokens,
        ctl.redispatched,
        ctl.dropped_tokens,
    ));
    assert_eq!(survived.request_latencies.len(), burst.len(), "zero requests lost to the kill");
    assert_eq!(survived.total_tokens, expected_tokens, "every stream completed in full");

    // Autoscaling on the diurnal trace, billed elastically.
    let wave = trace(96, 17);
    let opts = ControlOptions { window_ns: 25_000_000, warmup_ns: 25_000_000 };
    let mut scaler = QueueAutoScaler::new(1, 5, 4);
    let adaptive = controlled(1, OffloadPolicy::Pregated)
        .with_control(opts)
        .serve(wave.clone(), &mut JoinShortestQueue::new(), &FaultPlan::new(), &mut scaler)
        .expect("adaptive run");
    let c = adaptive.control.as_ref().expect("control stats");
    out.push_str(&format!(
        "autoscaler on diurnal load: peak {} replicas ({} ups, {} downs), \
         {:.1} tokens/s-per-GPU at p99 {}\n",
        c.peak_replicas,
        c.scale_ups,
        c.scale_downs,
        adaptive.tokens_per_gpu_second(),
        adaptive.p99(),
    ));
    assert!(c.scale_ups > 0 && c.scale_downs > 0, "diurnal load must exercise both knobs");
    assert_eq!(adaptive.request_latencies.len(), wave.len());

    // Drift-triggered online policy switch cuts miss-stall bytes.
    let drifting = trace(48, 29);
    let stay = controlled(2, OffloadPolicy::OnDemand)
        .with_control(opts)
        .serve(drifting.clone(), &mut RoundRobin::new(), &FaultPlan::new(), &mut NoControl)
        .expect("unswitched run");
    let mut switcher = DriftSwitcher::new(PolicySpec::from(OffloadPolicy::Pregated), 1e-9, 1);
    let switched = controlled(2, OffloadPolicy::OnDemand)
        .with_control(opts)
        .serve(drifting, &mut RoundRobin::new(), &FaultPlan::new(), &mut switcher)
        .expect("switched run");
    out.push_str(&format!(
        "drift switch (OnDemand -> Pre-gated): demand-fetch {:.3} GB -> {:.3} GB\n",
        stay.demand_fetch_bytes as f64 / 1e9,
        switched.demand_fetch_bytes as f64 / 1e9,
    ));
    assert!(switcher.fired(), "the drift detector must fire on on-demand traffic");
    assert!(
        switched.demand_fetch_bytes < stay.demand_fetch_bytes,
        "switching policies mid-run must cut demand-fetch bytes"
    );
    assert_eq!(switched.total_tokens, stay.total_tokens, "no request lost across the swap");

    out.push_str(
        "shape: replica death redispatches with zero loss, the queue scaler rides the\n\
         diurnal wave on elastic billing, and the drift detector swaps policies on live\n\
         replicas. See tests/fleet_chaos.rs for the CI gate.\n",
    );
    out
}

/// Paged-KV capacity gate: the same mixed short/long-context trace served
/// under the same tight HBM budget, unpaged (worst-case contiguous KV
/// reserved at admission) versus block-paged with chunked prefill and
/// tenant-shared prefix reuse. Asserts the wins the subsystem exists for —
/// at least 2x the admitted concurrent batch and strictly higher tokens/s
/// — so a regression fails the bench, not just the figures.
pub fn paged_kv_gate() -> String {
    use pregated_moe::runtime::{PagedKvConfig, PlacementPlan};
    use pregated_moe::workload::mixed_context_trace;
    let cfg = ModelConfig::switch_base(8);
    let opts = SimOptions::new(OffloadPolicy::Pregated);
    // 512-token prompts, 384 of them a per-tenant shared system prefix,
    // arrivals 50us apart: admission capacity, not arrival spacing, bounds
    // the concurrent batch.
    let arrivals = mixed_context_trace(24, 512, 384, 2, 50_000);
    let base = PlacementPlan::new(&cfg, &opts, 0, 1);
    let long = PlacementPlan::new(&cfg, &opts, 512 + 24, 1).activation_bytes();
    let budget = base.static_non_activation_bytes() + 2 * long + 2 * 8 * base.expert_bytes();
    let serve = |batch: BatchConfig| {
        BatchScheduler::new(cfg.clone(), opts.clone(), batch)
            .serve(arrivals.iter().copied())
            .expect("mixed trace serves")
    };
    let unpaged = serve(BatchConfig::new(16).with_hbm_budget(budget));
    let paged = serve(
        BatchConfig::new(16)
            .with_hbm_budget(budget)
            .with_paged_kv(PagedKvConfig::new(16).with_prefill_chunk(256)),
    );
    let kv = paged.kv.expect("paged run reports kv stats");
    let mut out = String::from("== Paged KV: block paging + prefix reuse vs worst-case KV ==\n");
    out.push_str(&format!(
        "unpaged: peak batch {:2}, {:8.1} tokens/s, p99 {}\n",
        unpaged.peak_batch,
        unpaged.tokens_per_sec,
        unpaged.p99(),
    ));
    out.push_str(&format!(
        "paged:   peak batch {:2}, {:8.1} tokens/s, p99 {} \
         ({} KV blocks peak, {:.1} MB deduped, {} cache shrinks)\n",
        paged.peak_batch,
        paged.tokens_per_sec,
        paged.p99(),
        kv.peak_blocks,
        kv.shared_hit_bytes as f64 / 1e6,
        kv.cache_shrink_events,
    ));
    assert_eq!(unpaged.request_latencies.len(), arrivals.len(), "unpaged run must complete");
    assert_eq!(paged.request_latencies.len(), arrivals.len(), "paged run must complete");
    assert!(
        paged.peak_batch >= 2 * unpaged.peak_batch,
        "paged peak batch {} must be at least twice unpaged {}",
        paged.peak_batch,
        unpaged.peak_batch
    );
    assert!(
        paged.tokens_per_sec > unpaged.tokens_per_sec,
        "paged tokens/s {} must beat unpaged {}",
        paged.tokens_per_sec,
        unpaged.tokens_per_sec
    );
    assert!(kv.shared_hit_bytes > 0, "tenant-shared prefixes must dedup blocks");
    out.push_str(
        "shape: block paging frees the worst-case decode reservation and prefix reuse\n\
         stores each tenant's system prompt once, so the same HBM budget admits a\n\
         2x+ larger batch at higher tokens/s. See tests/paged_kv.rs for the CI gate.\n",
    );
    out
}

/// Section III-A's motivation, quantified: multi-GPU expert parallelism
/// leaves GPUs idle at batch 1, while Pre-gated MoE matches the work to one
/// GPU + CPU memory.
pub fn multi_gpu_motivation() -> String {
    use pregated_moe::runtime::{simulate_expert_parallel, ClusterConfig};
    let mut out = String::from("== Motivation (Section III-A): expert-parallel multi-GPU ==\n");
    let cfg = ModelConfig::switch_large_128();
    out.push_str(&format!(
        "{:<8} {:>16} {:>14} {:>12}\n",
        "GPUs", "block latency", "expert util", "idle frac"
    ));
    for gpus in [2usize, 4, 8, 16] {
        match simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(gpus), 16, 7) {
            Ok(r) => out.push_str(&format!(
                "{:<8} {:>16} {:>13.1}% {:>11.1}%\n",
                gpus,
                format!("{}", r.mean_block_latency),
                100.0 * r.expert_utilization,
                100.0 * r.idle_block_fraction
            )),
            Err(e) => out.push_str(&format!("{gpus:<8} {e}\n")),
        }
    }
    let single = InferenceSim::new(cfg, SimOptions::new(OffloadPolicy::Pregated))
        .run(crate::smoke_request(), 1)
        .expect("run");
    out.push_str(&format!(
        "Pre-gated MoE on ONE GPU + CPU memory: block {} at {:.1} GB peak —\n\
         the TCO argument: top-1 routing leaves (g-1)/g of an expert-parallel\n\
         cluster idle every block, while offloading needs no second GPU.\n",
        single.mean_block_latency(),
        single.peak_hbm_bytes as f64 / 1e9
    ));
    out
}

/// Compiled-plan tracer (`repro -- plans`): captures the op-IR one decode
/// iteration lowers to under two schedulers and diffs the streams. The
/// diff is *asserted* nonempty — two different migration policies must
/// compile different plans, and an empty diff would mean the plan IR
/// stopped carrying the decisions the scheduler hooks inject.
pub fn plans_diff() -> String {
    let cfg = ModelConfig::switch_base(8);
    let request = crate::smoke_request();
    let trace = |spec: PolicySpec| {
        InferenceSim::new(cfg.clone(), SimOptions::new(spec))
            .trace_plan(request, 1)
            .expect("plan capture")
    };
    let pregated = trace(PolicySpec::from(OffloadPolicy::Pregated));
    let speculative = trace(PolicySpec::speculative_top_m(4));
    let (diff, differing) = pregated.diff(&speculative);
    assert!(
        differing > 0,
        "two schedulers compiled identical decode plans:\n{}",
        pregated.render()
    );
    let mut out =
        String::from("== Compiled decode plans (op-IR): Pre-gated vs Speculative-TopM ==\n");
    out.push_str(&format!(
        "{}: {} ops   {}: {} ops   {} line(s) differ\n",
        pregated.policy(),
        pregated.ops().len(),
        speculative.policy(),
        speculative.ops().len(),
        differing
    ));
    out.push_str(&diff);
    out.push_str(
        "shape: same attention/FFN/gate skeleton, different fetch sets — the\n\
         speculative margin prefetches extra experts per block, the pre-gate\n\
         moves only the activated set.\n",
    );
    out
}

fn expected_distinct(draws: usize, experts: usize) -> usize {
    let e = experts as f64;
    ((e * (1.0 - (1.0 - 1.0 / e).powi(draws as i32))).round() as usize).clamp(1, experts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_sweep_shows_monotone_exposure() {
        let report = pcie_sweep();
        // Exposure factor column must be non-increasing as bandwidth grows.
        let factors: Vec<f64> = report
            .lines()
            .filter(|l| l.contains('x') && !l.contains("shape"))
            .filter_map(|l| l.split_whitespace().last()?.trim_end_matches('x').parse().ok())
            .collect();
        assert!(factors.len() >= 5, "{report}");
        for w in factors.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "exposure must shrink with bandwidth: {factors:?}");
        }
    }

    #[test]
    fn level_sweep_runs_all_levels() {
        let report = level_sweep();
        for level in 1..=3 {
            assert!(report.contains(&format!("N={level}")), "{report}");
        }
    }

    #[test]
    fn precision_sweep_reports_all_cells_and_int8_wins() {
        let report = precision_sweep();
        for policy in OffloadPolicy::ALL {
            let rows = report.lines().filter(|l| l.starts_with(policy.paper_name())).count();
            assert_eq!(rows, 5, "{policy}: one row per precision\n{report}");
        }
        // Every reduced-precision row's speedup-vs-f32 column must be
        // >= 1.0 (never a slowdown) and offloading policies must show a
        // real gain.
        let speedups = |needle: &str| -> Vec<f64> {
            report
                .lines()
                .filter(|l| l.contains(needle))
                .filter_map(|l| l.split_whitespace().last()?.trim_end_matches('x').parse().ok())
                .collect()
        };
        let int8_speedups = speedups(" int8 ");
        assert_eq!(int8_speedups.len(), 4, "{report}");
        assert!(int8_speedups.iter().all(|&s| s >= 1.0), "{int8_speedups:?}\n{report}");
        assert!(
            int8_speedups.iter().any(|&s| s > 1.2),
            "offloading policies should gain >1.2x from int8: {int8_speedups:?}"
        );
        // The sub-byte formats never lose to f32 either, and at least one
        // offloading policy beats its own int8 cell (fewer migrated bytes).
        let q4_speedups = speedups(" q4 ");
        assert_eq!(q4_speedups.len(), 4, "{report}");
        assert!(q4_speedups.iter().all(|&s| s >= 1.0), "{q4_speedups:?}\n{report}");
        assert!(
            q4_speedups.iter().zip(&int8_speedups).any(|(&q, &i)| q > i),
            "q4 should beat int8 for at least one offloading policy:\n{report}"
        );
        assert_eq!(speedups(" q4k ").len(), 4, "{report}");
    }

    #[test]
    fn policies_sweep_reports_all_six_and_speculation_trades_bytes_for_stalls() {
        let report = policies_sweep();
        let row = |name: &str| -> Vec<f64> {
            report
                .lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("missing row {name}:\n{report}"))
                .split_whitespace()
                .filter_map(|t| t.trim_end_matches("ms").trim_end_matches("µs").parse().ok())
                .collect()
        };
        for name in [
            "GPU-only",
            "Pre-gated MoE",
            "MoE-OnDemand",
            "MoE-Prefetch",
            "Speculative-Top8",
            "Cache-Pinned-8",
        ] {
            assert!(report.lines().any(|l| l.starts_with(name)), "missing {name}:\n{report}");
        }
        // Columns: tokens/s, mean block, fetched MB, demand MB (last two are
        // the final numeric fields on every row).
        let pg = row("Pre-gated MoE");
        let spec = row("Speculative-Top8");
        let (pg_fetched, pg_demand) = (pg[pg.len() - 2], pg[pg.len() - 1]);
        let (sp_fetched, sp_demand) = (spec[spec.len() - 2], spec[spec.len() - 1]);
        assert!(
            sp_demand < pg_demand,
            "SpeculativeTopM demand {sp_demand} must undercut Pre-gated {pg_demand}\n{report}"
        );
        assert!(
            sp_fetched > pg_fetched * 1.5,
            "the margin must cost measurably more link bytes: {sp_fetched} vs {pg_fetched}"
        );
    }

    #[test]
    fn fleet_shootout_reports_and_self_asserts() {
        // The function self-asserts the TCO ratio and the affinity win;
        // here we pin the report shape so the repro target stays parseable.
        let report = fleet_shootout();
        for needle in [
            "Pre-gated replicas (f32)",
            "Pre-gated replicas (int8)",
            "4-GPU expert-parallel cluster",
            "round-robin",
            "join-shortest-queue",
            "cache-affinity",
            "TCO:",
        ] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
    }

    #[test]
    fn chaos_suite_reports_and_self_asserts() {
        // Recovery, autoscaling, and policy-switch claims self-assert
        // inside; here we pin the report shape for the repro target.
        let report = chaos_suite();
        for needle in [
            "kill 1 of 3 replicas: 48/48 requests served",
            "autoscaler on diurnal load",
            "drift switch (OnDemand -> Pre-gated)",
        ] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
    }

    #[test]
    fn plans_diff_reports_and_self_asserts() {
        // The function self-asserts the diff is nonempty (two schedulers
        // must compile different op streams); here we pin the report shape
        // so the `repro -- plans` target stays parseable.
        let report = plans_diff();
        for needle in ["Pre-gated MoE", "Speculative-Top4", "ops", "line(s) differ", "fetch"] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
    }

    #[test]
    fn topk_advantage_persists_at_top2() {
        let report = topk_sweep();
        let advantage: Vec<f64> = report
            .lines()
            .filter_map(|l| l.split("advantage ").nth(1)?.trim_end_matches("x)").parse().ok())
            .collect();
        assert!(advantage.iter().take(2).all(|&a| a > 1.3), "{report}");
    }
}
