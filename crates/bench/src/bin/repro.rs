//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p pgmoe-bench --bin repro -- all          # everything but training
//! cargo run --release -p pgmoe-bench --bin repro -- fig10
//! cargo run --release -p pgmoe-bench --bin repro -- table2 --full
//! cargo run --release -p pgmoe-bench --bin repro -- csv out/    # artifact CSVs
//! ```

use pgmoe_bench::{ablations, accuracy, figures};

const USAGE: &str = "usage: repro -- <target> [--full]
targets:
  table1 fig2 fig3           analytic (instant)
  fig10 fig11 fig12 fig14    systems latency/throughput/memory
  fig15 fig16 timeline       caching / SSD / Fig 9 timelines
  table2 fig13 [--full]      accuracy (trains models; --full = paper recipe)
  precision                  expert-precision sweep (policies x f32/f16/int8/q4/q4k)
  policies                   six-scheduler shootout (4 built-ins + Speculative-TopM + Cache-Pinned)
  fleet                      iso-GPU fleet shootout (N offload replicas vs N-GPU expert parallelism)
  chaos                      fault injection + recovery + autoscaling + policy-switch suite
  paged                      paged-KV gate (block paging + prefix reuse vs worst-case KV)
  plans                      compiled decode-plan diff (Pre-gated vs Speculative-TopM op-IR)
  ablations                  PCIe/level/batch/top-k/precision/scheduler/fleet sweeps
  csv <dir>                  write artifact-style CSV files (incl. fleet.csv)
  all                        every figure target (table1, fig2-3, fig10-16, timeline)
  everything                 all + table2 + fig13 (slow); sweeps run via ablations/fleet";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    match target {
        "table1" => print!("{}", figures::table1()),
        "fig2" => print!("{}", figures::fig2()),
        "fig3" => print!("{}", figures::fig3()),
        "fig10" => print!("{}", figures::fig10()),
        "fig11" => print!("{}", figures::fig11()),
        "fig12" => print!("{}", figures::fig12()),
        "fig14" => print!("{}", figures::fig14()),
        "fig15" => print!("{}", figures::fig15()),
        "fig16" => print!("{}", figures::fig16()),
        "timeline" | "fig9" => print!("{}", figures::timeline()),
        "table2" => print!("{}", accuracy::table2(full)),
        "fig13" => print!("{}", accuracy::fig13(full)),
        "precision" => print!("{}", ablations::precision_sweep()),
        "policies" => print!("{}", ablations::policies_sweep()),
        "fleet" => print!("{}", ablations::fleet_shootout()),
        "chaos" => print!("{}", ablations::chaos_suite()),
        "paged" => print!("{}", ablations::paged_kv_gate()),
        "plans" => print!("{}", ablations::plans_diff()),
        "ablations" => {
            print!("{}", ablations::pcie_sweep());
            print!("{}", ablations::level_sweep());
            print!("{}", ablations::batch_sweep());
            print!("{}", ablations::topk_sweep());
            print!("{}", ablations::precision_sweep());
            print!("{}", ablations::policies_sweep());
            print!("{}", ablations::multi_gpu_motivation());
            print!("{}", ablations::fleet_shootout());
            print!("{}", ablations::paged_kv_gate());
        }
        "motivation" => print!("{}", ablations::multi_gpu_motivation()),
        "csv" => {
            let dir = args.get(1).cloned().unwrap_or_else(|| "repro-out".to_string());
            let paths =
                figures::write_artifact_csvs(std::path::Path::new(&dir)).expect("write CSVs");
            for p in paths {
                println!("wrote {}", p.display());
            }
        }
        "all" => main_all(),
        "everything" => {
            main_all();
            println!("{}", accuracy::table2(full));
            println!("{}", accuracy::fig13(full));
        }
        "-h" | "--help" | "help" => println!("{USAGE}"),
        other => {
            eprintln!("unknown target `{other}`\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn main_all() {
    for section in [
        figures::table1(),
        figures::fig2(),
        figures::fig3(),
        figures::fig10(),
        figures::fig11(),
        figures::fig12(),
        figures::fig14(),
        figures::fig15(),
        figures::fig16(),
        figures::timeline(),
    ] {
        println!("{section}");
    }
}
