//! `bench_gate` — the perf-regression gate CI runs on every PR.
//!
//! Re-times the substrate GEMM + fused-dequant kernels (the same
//! measurement `benches/substrate.rs` takes) and compares the
//! machine-normalized speedups against the committed
//! `BENCH_substrate.json` baseline. Exits non-zero when any kernel's
//! speedup regressed more than the tolerance (default 25 %). The candidate
//! measurement is always written out so CI can archive it as an artifact.
//!
//! ```sh
//! cargo run --release -p pgmoe-bench --bin bench_gate
//! cargo run --release -p pgmoe-bench --bin bench_gate -- \
//!     --baseline BENCH_substrate.json --out BENCH_candidate.json --tolerance 0.25
//! ```
//!
//! Verify the gate bites by doctoring a baseline (inject a 2x "expected"
//! speedup the real tree cannot reach):
//!
//! ```sh
//! sed -E 's/("speedup_[a-z0-9_]+": )([0-9.]+)/\1 99.0/' BENCH_substrate.json > /tmp/doctored.json
//! cargo run --release -p pgmoe-bench --bin bench_gate -- --baseline /tmp/doctored.json && echo BUG
//! ```

use pgmoe_bench::gate::{self, Gemm512Measurement};

const USAGE: &str = "usage: bench_gate [--baseline <path>] [--out <path>] [--tolerance <frac>]
defaults: --baseline <workspace>/BENCH_substrate.json
          --out      <workspace>/BENCH_candidate.json
          --tolerance 0.25  (fail when a speedup drops >25% below baseline)";

fn main() {
    let mut baseline_path: String =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_substrate.json").into();
    let mut out_path: String =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_candidate.json").into();
    let mut tolerance = 0.25f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = it.next().expect("--baseline <path>").clone(),
            "--out" => out_path = it.next().expect("--out <path>").clone(),
            "--tolerance" => {
                tolerance = it.next().expect("--tolerance <frac>").parse().expect("fraction")
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("bench_gate: cannot read baseline {baseline_path}: {err}");
            std::process::exit(2);
        }
    };
    let Some(baseline) = Gemm512Measurement::parse_json(&baseline_text) else {
        eprintln!("bench_gate: baseline {baseline_path} is not a gemm_512 measurement");
        std::process::exit(2);
    };

    println!("bench_gate: measuring 512^3 GEMM kernels (best of 9)...");
    let candidate = gate::measure_gemm_512();
    println!("bench_gate: measuring fused Q4 dequant kernels (best of 25)...");
    let q4_candidate = gate::measure_q4_fused();
    println!("bench_gate: measuring compiled-plan host speedup (best of 7)...");
    let plan_candidate = gate::measure_plan_host();
    let candidate_json = gate::merge_q4_json(
        &gate::merge_plan_json(&candidate.to_json(), &plan_candidate),
        &q4_candidate,
    );
    if let Err(err) = std::fs::write(&out_path, candidate_json) {
        eprintln!("bench_gate: could not write candidate {out_path}: {err}");
    } else {
        println!("bench_gate: candidate written to {out_path}");
    }

    println!(
        "bench_gate: baseline from {baseline_path} ({} thr / {} hw), candidate on {} thr / {} hw, \
         tolerance {:.0}%",
        baseline.threads,
        baseline.hardware_threads,
        candidate.threads,
        candidate.hardware_threads,
        tolerance * 100.0
    );
    let mut verdicts = gate::compare(&baseline, &candidate, tolerance);
    match gate::Q4FusedMeasurement::parse_json(&baseline_text) {
        Some(q4_baseline) => {
            verdicts.extend(gate::compare_q4(&q4_baseline, &q4_candidate, tolerance))
        }
        None => println!(
            "  speedup_q4_scalar/simd       no baseline yet — candidate {:.2}x / {:.2}x \
             (informational)",
            q4_candidate.speedup_q4_scalar, q4_candidate.speedup_q4_simd
        ),
    }
    match gate::PlanHostMeasurement::parse_json(&baseline_text) {
        Some(plan_baseline) => {
            verdicts.push(gate::compare_plan(&plan_baseline, &plan_candidate, tolerance))
        }
        None => println!(
            "  speedup_plan_cache           no baseline yet — candidate {:.2}x (informational)",
            plan_candidate.speedup_plan_cache
        ),
    }
    let mut failed = false;
    for v in &verdicts {
        println!(
            "  {:<28} baseline {:>6.2}x  candidate {:>6.2}x  {}",
            v.metric,
            v.baseline,
            v.candidate,
            if !v.gated {
                "skipped (fewer effective threads than baseline — informational)"
            } else if v.ok {
                "ok"
            } else {
                "REGRESSED"
            }
        );
        failed |= !v.ok;
    }
    // Absolute acceptance bars on top of the relative gate: plan replay
    // must beat the interpreted decode loop by >= 1.3x on this machine,
    // and the fused Q4 floors (scalar fused >= 1.2x over unfused
    // dequantize-then-matmul; SIMD >= 1.2x over scalar when the AVX2 tier
    // ran) must hold.
    gate::assert_plan_floor(&plan_candidate);
    gate::assert_q4_floors(&q4_candidate);
    if failed {
        eprintln!(
            "bench_gate: FAIL — kernel speedup regressed more than {:.0}% vs the committed \
             baseline. If the slowdown is intentional, refresh BENCH_substrate.json by running \
             `PGMOE_THREADS=2 cargo bench -p pgmoe-bench --bench substrate` (pin the thread \
             count so the parallel figure stays comparable with CI) and commit the result.",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_gate: PASS");
}
