//! `http_bench` — closed-loop load harness for the `pgmoe-serve` front door.
//!
//! Starts an in-process HTTP server (the same `Server` binary deployments
//! use), drives it with N concurrent keep-alive clients over real
//! loopback sockets, and reports wire-level QoS: tokens/s, TTFT
//! p50/p95/p99, whole-request latency, and how many requests the SLO
//! governor shed with 429. Every accepted stream is integrity-checked —
//! the tokens received chunk-by-chunk must match the final `done` line's
//! declared list — so a throughput number from this harness also certifies
//! zero lost or corrupted responses.
//!
//! ```sh
//! cargo run --release -p pgmoe-bench --bin http_bench
//! cargo run --release -p pgmoe-bench --bin http_bench -- \
//!     --requests 256 --concurrency 32 --max-tokens 16 --target-ttft-ms 2000
//! ```

use pregated_moe::serve::client;
use pregated_moe::serve::{ServeConfig, Server, SloConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: http_bench [--requests <n>] [--concurrency <n>] [--max-tokens <n>]
                  [--prompt-len <n>] [--target-ttft-ms <ms>] [--io-workers <n>]
defaults: --requests 128 --concurrency 16 --max-tokens 8 --prompt-len 6
          --target-ttft-ms 60000 --io-workers 2";

struct Args {
    requests: usize,
    concurrency: usize,
    max_tokens: usize,
    prompt_len: usize,
    target_ttft_ms: u64,
    io_workers: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        requests: 128,
        concurrency: 16,
        max_tokens: 8,
        prompt_len: 6,
        target_ttft_ms: 60_000,
        io_workers: 2,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value\n{USAGE}"))
                .parse()
                .unwrap_or_else(|_| panic!("{name} needs an integer\n{USAGE}"))
        };
        match arg.as_str() {
            "--requests" => out.requests = num("--requests").max(1),
            "--concurrency" => out.concurrency = num("--concurrency").max(1),
            "--max-tokens" => out.max_tokens = num("--max-tokens").max(1),
            "--prompt-len" => out.prompt_len = num("--prompt-len").max(1),
            "--target-ttft-ms" => out.target_ttft_ms = num("--target-ttft-ms").max(1) as u64,
            "--io-workers" => out.io_workers = num("--io-workers").max(1),
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    out
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    let mut cfg = ServeConfig::demo();
    cfg.io_workers = args.io_workers;
    cfg.queue_capacity = args.requests.max(cfg.queue_capacity);
    cfg.slo = SloConfig { target_ttft: Duration::from_millis(args.target_ttft_ms) };
    let vocab = cfg.engine.net.vocab;

    let handle = Server::start(cfg).expect("server must start");
    let addr = handle.addr();
    println!(
        "http_bench: {} requests x {} tokens, {} concurrent clients -> http://{addr}",
        args.requests, args.max_tokens, args.concurrency
    );

    let next = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));
    let retries = Arc::new(AtomicUsize::new(0));
    let ttfts: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let totals: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let tokens = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(args.concurrency + 1));
    let deadline = Duration::from_secs(300);

    let workers: Vec<_> = (0..args.concurrency)
        .map(|w| {
            let (next, shed, failed, retries, ttfts, totals, tokens, barrier) = (
                Arc::clone(&next),
                Arc::clone(&shed),
                Arc::clone(&failed),
                Arc::clone(&retries),
                Arc::clone(&ttfts),
                Arc::clone(&totals),
                Arc::clone(&tokens),
                Arc::clone(&barrier),
            );
            let (requests, max_tokens, prompt_len) =
                (args.requests, args.max_tokens, args.prompt_len);
            std::thread::spawn(move || {
                barrier.wait();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        break;
                    }
                    // Deterministic per-request prompt, varied across the run
                    // so the engine sees a mixed batch.
                    let prompt: Vec<usize> =
                        (0..prompt_len).map(|j| (i * 31 + j * 7 + w) % vocab).collect();
                    let started = Instant::now();
                    // Honor server backpressure the way a production client
                    // would: 429/503 responses are retried with capped
                    // exponential backoff (retry-after hint compressed by
                    // the cap so shed storms resolve in bench time).
                    let policy = client::RetryPolicy {
                        max_retries: 3,
                        base_delay: Duration::from_millis(25),
                        max_delay: Duration::from_millis(250),
                        jitter_seed: ((w as u64) << 32) | i as u64,
                    };
                    match client::generate_with_retry(addr, &prompt, max_tokens, deadline, policy) {
                        Ok(r) if r.response.status == 200 && r.response.verified() => {
                            retries.fetch_add(r.retries as usize, Ordering::Relaxed);
                            tokens.fetch_add(r.response.tokens.len(), Ordering::Relaxed);
                            if let Some(t) = r.response.ttft {
                                ttfts.lock().unwrap().push(t);
                            }
                            totals.lock().unwrap().push(started.elapsed());
                        }
                        Ok(r) if r.response.status == 429 => {
                            retries.fetch_add(r.retries as usize, Ordering::Relaxed);
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(r) => {
                            let resp = r.response;
                            eprintln!("request {i}: status {} body {}", resp.status, resp.body);
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => {
                            eprintln!("request {i}: transport error {err}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    barrier.wait();
    let bench_started = Instant::now();
    for worker in workers {
        worker.join().expect("client thread must not panic");
    }
    let wall = bench_started.elapsed();

    let mut ttfts = Arc::try_unwrap(ttfts).unwrap().into_inner().unwrap();
    let mut totals = Arc::try_unwrap(totals).unwrap().into_inner().unwrap();
    ttfts.sort_unstable();
    totals.sort_unstable();
    let ok = totals.len();
    let shed = shed.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    let tokens = tokens.load(Ordering::Relaxed);
    let retries = retries.load(Ordering::Relaxed);

    println!("\n{:<28} {:>12}", "metric", "value");
    println!("{:<28} {:>12}", "completed streams", ok);
    println!("{:<28} {:>12}", "shed (429, retries spent)", shed);
    println!("{:<28} {:>12}", "backpressure retries", retries);
    println!("{:<28} {:>12}", "failed", failed);
    println!("{:<28} {:>12}", "tokens streamed", tokens);
    println!("{:<28} {:>12.1}", "tokens/s (wire)", tokens as f64 / wall.as_secs_f64().max(1e-9));
    println!("{:<28} {:>12.1?}", "TTFT p50", percentile(&ttfts, 0.50));
    println!("{:<28} {:>12.1?}", "TTFT p95", percentile(&ttfts, 0.95));
    println!("{:<28} {:>12.1?}", "TTFT p99", percentile(&ttfts, 0.99));
    println!("{:<28} {:>12.1?}", "request p50", percentile(&totals, 0.50));
    println!("{:<28} {:>12.1?}", "request p99", percentile(&totals, 0.99));

    let stats = handle.shutdown().expect("engine returns stats");
    println!("{:<28} {:>12}", "engine tokens (sim)", stats.total_tokens);

    assert_eq!(failed, 0, "no request may fail outright");
    assert_eq!(ok + shed, args.requests, "every request must complete or be shed");
    assert_eq!(
        tokens,
        ok * args.max_tokens,
        "every accepted stream must deliver all requested tokens"
    );
    assert_eq!(stats.total_tokens, tokens, "engine-side accounting must match wire-side delivery");
    println!("\nhttp_bench: all integrity checks passed.");
}
