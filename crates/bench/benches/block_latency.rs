//! Fig 10 bench: per-policy MoE-block latency measurement runs.
//!
//! Each benchmark simulates a short decode under one (model, policy) pair —
//! the measurement that generates Fig 10's bars. Criterion's statistics sit
//! on top of the simulator's deterministic output, so the interesting output
//! is the *simulated* latency printed by `repro -- fig10`; the bench tracks
//! the harness's own cost and guards against regressions in the scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmoe_bench::smoke_request;
use pregated_moe::prelude::*;

fn bench_block_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_block_latency");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for experts in [8usize, 64, 128] {
        for policy in OffloadPolicy::ALL {
            let cfg = ModelConfig::switch_base(experts);
            group.bench_with_input(
                BenchmarkId::new(policy.paper_name(), experts),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        InferenceSim::new(cfg.clone(), SimOptions::new(policy))
                            .run(smoke_request(), 1)
                            .map(|r| r.mean_block_latency())
                            .ok()
                    })
                },
            );
        }
    }
    // The Switch-Large row (GPU-only OOMs by design; measure the CPU-GPU trio).
    for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand, OffloadPolicy::PrefetchAll] {
        group.bench_function(BenchmarkId::new(policy.paper_name(), "large-128"), |b| {
            b.iter(|| {
                InferenceSim::new(ModelConfig::switch_large_128(), SimOptions::new(policy))
                    .run(smoke_request(), 1)
                    .expect("fits")
                    .mean_block_latency()
            })
        });
    }
    group.finish();
}

/// Host-side cost of the continuous-batching scheduler itself — the loop
/// the zero-allocation IterScratch refactor targets. The simulated QoS
/// output is deterministic; what this tracks is wall-clock per serve call.
fn bench_scheduler_host_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_host");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let request = DecodeRequest { input_tokens: 16, output_tokens: 8, batch_size: 1 };
    let arrivals: Vec<ArrivedRequest> =
        ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: 50.0 }, request, 4, 11)
            .take(24)
            .collect();
    for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand] {
        group.bench_function(BenchmarkId::new("serve_24req_batch8", policy.paper_name()), |b| {
            b.iter(|| {
                serve_batched(
                    ModelConfig::switch_base(64),
                    SimOptions::new(policy),
                    BatchConfig::new(8),
                    arrivals.clone(),
                )
                .expect("serve")
                .tokens_per_sec
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_latency, bench_scheduler_host_overhead);
criterion_main!(benches);
