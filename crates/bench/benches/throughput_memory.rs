//! Fig 11 + Fig 12 bench: end-to-end throughput and peak-memory runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmoe_bench::smoke_request;
use pregated_moe::prelude::*;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_throughput");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for experts in [8usize, 64, 128] {
        let cfg = ModelConfig::switch_base(experts);
        for policy in OffloadPolicy::ALL {
            group.bench_with_input(
                BenchmarkId::new(policy.paper_name(), experts),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        InferenceSim::new(cfg.clone(), SimOptions::new(policy))
                            .run(smoke_request(), 1)
                            .map(|r| r.tokens_per_sec)
                            .ok()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_peak_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_peak_memory");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for experts in [8usize, 64, 128, 256] {
        let cfg = ModelConfig::switch_base(experts);
        for policy in OffloadPolicy::ALL {
            group.bench_with_input(
                BenchmarkId::new(policy.paper_name(), experts),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        InferenceSim::new(cfg.clone(), SimOptions::new(policy))
                            .run(smoke_request(), 1)
                            .map(|r| r.peak_hbm_bytes)
                            .ok()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_peak_memory);
criterion_main!(benches);
