//! Fig 14 + Fig 15 + Fig 16 bench: activation-density sweep, expert caching
//! and SSD offloading.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmoe_bench::smoke_request;
use pregated_moe::prelude::*;

fn bench_active_experts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_active_experts");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let cfg = ModelConfig::switch_base(64);
    for k in [1usize, 4, 16, 32, 64] {
        for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand, OffloadPolicy::PrefetchAll]
        {
            group.bench_function(BenchmarkId::new(policy.paper_name(), k), |b| {
                b.iter(|| {
                    InferenceSim::new(cfg.clone(), SimOptions::new(policy).with_active_experts(k))
                        .run(smoke_request(), 1)
                        .expect("run")
                        .mean_block_latency()
                })
            });
        }
    }
    group.finish();
}

fn bench_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_caching");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let cfg = ModelConfig::switch_large_128();
    let hot = RoutingKind::Zipf { s: 1.6 };
    for replacement in Replacement::ALL {
        for fraction in [0.01f64, 0.10, 0.20] {
            group.bench_function(
                BenchmarkId::new(replacement.to_string(), format!("{:.0}%", fraction * 100.0)),
                |b| {
                    b.iter(|| {
                        InferenceSim::new(
                            cfg.clone(),
                            SimOptions::new(OffloadPolicy::OnDemand)
                                .with_routing(hot)
                                .with_cache(CacheConfig::new(fraction, replacement)),
                        )
                        .run(smoke_request(), 1)
                        .expect("run")
                        .tokens_per_sec
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_ssd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_ssd_offload");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for cfg in [ModelConfig::switch_large_128(), ModelConfig::switch_xxl()] {
        for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand, OffloadPolicy::PrefetchAll]
        {
            group.bench_function(BenchmarkId::new(policy.paper_name(), &cfg.name), |b| {
                b.iter(|| {
                    InferenceSim::new(cfg.clone(), SimOptions::new(policy).with_ssd_offload())
                        .run(smoke_request(), 1)
                        .expect("run")
                        .tokens_per_sec
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_active_experts, bench_caching, bench_ssd);
criterion_main!(benches);
