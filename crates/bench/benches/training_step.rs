//! Table II / Fig 13 bench: one fine-tuning step per gate topology — the
//! unit of work behind the accuracy experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pregated_moe::model::net::{SwitchNet, SwitchNetConfig};
use pregated_moe::model::GatingMode;
use pregated_moe::prelude::*;
use pregated_moe::tensor::nn::optim::Adam;
use pregated_moe::tensor::nn::Layer;
use pregated_moe::tensor::{ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_fig13_training_step");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let task = TaskSpec::new(TaskKind::SquadLike, 4, 1);
    for mode in [
        GatingMode::Conventional,
        GatingMode::Pregated { level: 1 },
        GatingMode::Pregated { level: 3 },
    ] {
        group.bench_function(BenchmarkId::new("step", format!("{mode:?}")), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            let cfg = SwitchNetConfig::small(task.vocab_size(), task.seq_len(), 8, mode);
            let mut net = SwitchNet::new(cfg, &mut rng);
            let mut opt = Adam::new(1e-3);
            let positions: Vec<usize> =
                (task.seq_len() - task.answer_len()..task.seq_len()).collect();
            let mut idx = 0u64;
            b.iter(|| {
                net.zero_grad();
                for _ in 0..4 {
                    let ex = task.sample_indexed(idx);
                    idx += 1;
                    let logits = net.forward(&ex.input);
                    let ans = logits.gather_rows(&positions);
                    let (_, dans) = ops::cross_entropy_from_logits(&ans, &ex.target);
                    let mut dlogits = Tensor::zeros([task.seq_len(), task.vocab_size()]);
                    dlogits.scatter_add_rows(&positions, &dans);
                    net.backward(&dlogits);
                }
                opt.begin_step();
                net.visit_params(&mut |p| opt.step(p));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
