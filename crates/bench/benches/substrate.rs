//! Substrate micro-benchmarks: tensor algebra, the GEMM kernel layer, DES
//! engine, expert cache, routing-trace generation — the building blocks
//! every figure rests on.
//!
//! The `gemm_512` group doubles as the repo's **perf regression gate**: it
//! times the seed ikj loop against the blocked serial, blocked-parallel,
//! and fused int8-dequant kernels on a 512×512×512 case, writes the numbers
//! to `BENCH_substrate.json` (the committed baseline PR 3+ measures
//! against), and hard-asserts the speedup floors: blocked ≥ 1.5x on one
//! thread everywhere; on machines with ≥ 2 hardware threads, ≥ 2x
//! regardless of the configured thread count (regression floor), and ≥ 4x
//! when ≥ 2 threads are configured (acceptance bar); the fused dequant GEMM
//! ≥ 1.2x the seed loop despite its panel-dequant tax. The Q4 sub-byte gate
//! rides along at a decode shape (8×512×512): the scalar fused path must be
//! ≥ 1.2x over materialize-then-multiply, and when the AVX2 tier is live
//! the dispatched path must be ≥ 1.2x over the scalar one. CI runs this
//! bench with `PGMOE_THREADS=2`, so a kernel regression fails loud.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmoe_bench::gate as pgmoe_bench_gate;
use pregated_moe::device::{SimDuration, SimEngine};
use pregated_moe::prelude::*;
use pregated_moe::runtime::{ExpertCache, ExpertKey};
use pregated_moe::tensor::{kernel, quant, QuantMode, QuantizedTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(1);
    for n in [32usize, 64, 128] {
        let a = pregated_moe::tensor::init::normal([n, n], 0.0, 1.0, &mut rng);
        let b = pregated_moe::tensor::init::normal([n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul(b)))
        });
    }
    let x = pregated_moe::tensor::init::normal([64, 256], 0.0, 1.0, &mut rng);
    group.bench_function("softmax_rows_64x256", |b| b.iter(|| black_box(x.softmax_rows())));
    group.finish();
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(400));
    let mut rng = StdRng::seed_from_u64(3);
    for n in [128usize, 256] {
        let a = pregated_moe::tensor::init::normal([n, n], 0.0, 1.0, &mut rng).into_vec();
        let b = pregated_moe::tensor::init::normal([n, n], 0.0, 1.0, &mut rng).into_vec();
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("seed_ikj", n), &n, |bench, &n| {
            bench.iter(|| kernel::matmul_skip_zeros_into(black_box(&mut out), &a, &b, n, n, n))
        });
        group.bench_with_input(BenchmarkId::new("blocked_serial", n), &n, |bench, &n| {
            bench.iter(|| kernel::matmul_serial_into(black_box(&mut out), &a, &b, n, n, n))
        });
        group.bench_with_input(BenchmarkId::new("blocked_parallel", n), &n, |bench, &n| {
            bench.iter(|| kernel::matmul_into(black_box(&mut out), &a, &b, n, n, n))
        });
        group.bench_with_input(BenchmarkId::new("matmul_nt", n), &n, |bench, &n| {
            bench.iter(|| kernel::matmul_nt_into(black_box(&mut out), &a, &b, n, n, n))
        });
        group.bench_with_input(BenchmarkId::new("matmul_tn", n), &n, |bench, &n| {
            bench.iter(|| kernel::matmul_tn_into(black_box(&mut out), &a, &b, n, n, n))
        });
        let bq = QuantizedTensor::quantize(
            &pregated_moe::tensor::Tensor::from_vec([n, n], b.clone()).unwrap(),
            QuantMode::int8(),
        );
        group.bench_with_input(BenchmarkId::new("matmul_dequant_int8", n), &n, |bench, &n| {
            bench.iter(|| quant::matmul_dequant_into(black_box(&mut out), &a, &bq, n, n, n))
        });
        let bq4 = QuantizedTensor::quantize(
            &pregated_moe::tensor::Tensor::from_vec([n, n], b.clone()).unwrap(),
            QuantMode::Q4,
        );
        group.bench_with_input(BenchmarkId::new("matmul_dequant_q4", n), &n, |bench, &n| {
            bench.iter(|| quant::matmul_dequant_into(black_box(&mut out), &a, &bq4, n, n, n))
        });
        group.bench_with_input(BenchmarkId::new("matmul_dequant_q4_scalar", n), &n, |bench, &n| {
            bench.iter(|| quant::matmul_dequant_scalar_into(black_box(&mut out), &a, &bq4, n, n, n))
        });
    }
    group.finish();
}

/// The 512³ baseline + perf self-assertion (see the module docs). Not a
/// statistical benchmark: best-of-9 wall times (measured by the shared
/// `pgmoe_bench::gate` module the CI `bench-gate` job also runs), a JSON
/// artifact, and a hard floor on the speedup over the seed loop.
fn bench_gemm_512_baseline(_c: &mut Criterion) {
    let m = pgmoe_bench_gate::measure_gemm_512();
    let threads = m.threads;
    println!(
        "bench gemm_512/seed_ikj                                  {:>10.2} ms  (baseline)",
        m.seed_ikj_ms
    );
    println!(
        "bench gemm_512/blocked_serial                            {:>10.2} ms  ({:.2}x)",
        m.blocked_serial_ms, m.speedup_blocked_serial
    );
    println!(
        "bench gemm_512/blocked_parallel[{threads} thr]                    {:>10.2} ms  ({:.2}x)",
        m.blocked_parallel_ms, m.speedup_blocked_parallel
    );
    println!(
        "bench gemm_512/dequant_int8_fused[{threads} thr]                  {:>10.2} ms  ({:.2}x)",
        m.dequant_int8_fused_ms, m.speedup_dequant_int8_fused
    );

    let q4 = pgmoe_bench_gate::measure_q4_fused();
    println!(
        "bench gemm_512/q4_fused_scalar[8x512x512]                {:>10.3} ms  ({:.2}x vs unfused)",
        q4.q4_fused_scalar_ms, q4.speedup_q4_scalar
    );
    println!(
        "bench gemm_512/q4_fused_simd[8x512x512, simd={}]          {:>9.3} ms  ({:.2}x vs scalar)",
        u8::from(q4.simd),
        q4.q4_fused_simd_ms,
        q4.speedup_q4_simd
    );

    let plan = pgmoe_bench_gate::measure_plan_host();
    println!(
        "bench gemm_512/plan_replay_us_per_token                  {:>10.2} us  ({:.2}x vs {:.2} \
         interpreted)",
        plan.plan_on_us_per_token, plan.speedup_plan_cache, plan.plan_off_us_per_token
    );

    // Default to the workspace root (cargo runs benches from the package
    // dir) so the committed baseline lives at `/BENCH_substrate.json`.
    let path = std::env::var("PGMOE_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_substrate.json").into()
    });
    let json = pgmoe_bench_gate::merge_q4_json(
        &pgmoe_bench_gate::merge_plan_json(&m.to_json(), &plan),
        &q4,
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("bench gemm_512: baseline written to {path}"),
        Err(err) => println!("bench gemm_512: could not write {path}: {err}"),
    }

    // Perf self-assertions: regressions in the kernel layer fail loud.
    // The single-thread floor holds everywhere; the parallel floors only
    // apply when the configured threads are backed by real cores
    // (oversubscribing one core makes any parallel kernel slower, which is
    // not a kernel regression). The CI `bench-gate` job additionally
    // compares these numbers against the committed baseline.
    pgmoe_bench_gate::assert_speedup_floors(&m);
    pgmoe_bench_gate::assert_q4_floors(&q4);
    pgmoe_bench_gate::assert_plan_floor(&plan);
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("submit_10k_ops_two_streams", |b| {
        b.iter(|| {
            let mut eng = SimEngine::new();
            eng.set_trace_enabled(false);
            let gpu = eng.add_resource("gpu");
            let dma = eng.add_resource("dma");
            let compute = eng.add_stream("compute", gpu);
            let copy = eng.add_stream("copy", dma);
            let mut last = None;
            for i in 0..5_000 {
                let f = eng.submit(copy, "f", SimDuration::from_nanos(600), &[]);
                let waits = match last {
                    Some(prev) => vec![f, prev],
                    None => vec![f],
                };
                last =
                    Some(eng.submit(compute, "e", SimDuration::from_nanos(400 + (i % 7)), &waits));
            }
            black_box(eng.horizon())
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("expert_cache");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    let trace = RoutingTrace::generate(256, 24, 128, 1, RoutingKind::Zipf { s: 1.2 }, 9);
    for replacement in Replacement::ALL {
        group.bench_function(BenchmarkId::new("access_trace", replacement.to_string()), |b| {
            b.iter(|| {
                let mut cache = ExpertCache::new(64, replacement);
                for tok in 0..trace.num_tokens() {
                    for block in 0..trace.num_blocks() {
                        for &e in trace.experts(tok, block) {
                            cache.access(ExpertKey { block, expert: e });
                        }
                    }
                }
                black_box(cache.stats())
            })
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_trace");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for kind in [RoutingKind::Uniform, RoutingKind::Zipf { s: 1.2 }] {
        group.bench_function(
            BenchmarkId::new("generate_64tok_24blk_128e", format!("{kind:?}")),
            |b| b.iter(|| black_box(RoutingTrace::generate(64, 24, 128, 1, kind, 7))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor,
    bench_gemm_kernels,
    bench_gemm_512_baseline,
    bench_engine,
    bench_cache,
    bench_routing
);
criterion_main!(benches);
