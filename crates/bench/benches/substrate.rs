//! Substrate micro-benchmarks: tensor algebra, DES engine, expert cache,
//! routing-trace generation — the building blocks every figure rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pregated_moe::device::{SimDuration, SimEngine};
use pregated_moe::prelude::*;
use pregated_moe::runtime::{ExpertCache, ExpertKey};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(1);
    for n in [32usize, 64, 128] {
        let a = pregated_moe::tensor::init::normal([n, n], 0.0, 1.0, &mut rng);
        let b = pregated_moe::tensor::init::normal([n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul(b)))
        });
    }
    let x = pregated_moe::tensor::init::normal([64, 256], 0.0, 1.0, &mut rng);
    group.bench_function("softmax_rows_64x256", |b| b.iter(|| black_box(x.softmax_rows())));
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("submit_10k_ops_two_streams", |b| {
        b.iter(|| {
            let mut eng = SimEngine::new();
            eng.set_trace_enabled(false);
            let gpu = eng.add_resource("gpu");
            let dma = eng.add_resource("dma");
            let compute = eng.add_stream("compute", gpu);
            let copy = eng.add_stream("copy", dma);
            let mut last = None;
            for i in 0..5_000 {
                let f = eng.submit(copy, "f", SimDuration::from_nanos(600), &[]);
                let waits = match last {
                    Some(prev) => vec![f, prev],
                    None => vec![f],
                };
                last =
                    Some(eng.submit(compute, "e", SimDuration::from_nanos(400 + (i % 7)), &waits));
            }
            black_box(eng.horizon())
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("expert_cache");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    let trace = RoutingTrace::generate(256, 24, 128, 1, RoutingKind::Zipf { s: 1.2 }, 9);
    for replacement in Replacement::ALL {
        group.bench_function(BenchmarkId::new("access_trace", replacement.to_string()), |b| {
            b.iter(|| {
                let mut cache = ExpertCache::new(64, replacement);
                for tok in 0..trace.num_tokens() {
                    for block in 0..trace.num_blocks() {
                        for &e in trace.experts(tok, block) {
                            cache.access(ExpertKey { block, expert: e });
                        }
                    }
                }
                black_box(cache.stats())
            })
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_trace");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for kind in [RoutingKind::Uniform, RoutingKind::Zipf { s: 1.2 }] {
        group.bench_function(
            BenchmarkId::new("generate_64tok_24blk_128e", format!("{kind:?}")),
            |b| b.iter(|| black_box(RoutingTrace::generate(64, 24, 128, 1, kind, 7))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tensor, bench_engine, bench_cache, bench_routing);
criterion_main!(benches);
