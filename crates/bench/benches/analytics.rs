//! Table I + Fig 2 + Fig 3 bench: the analytic accounting paths.

use criterion::{criterion_group, criterion_main, Criterion};
use pregated_moe::model::analytics::{flops_per_sequence, CapacityBreakdown, Table1Row};
use pregated_moe::prelude::*;
use std::hint::black_box;

fn bench_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_fig2_fig3_analytics");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("table1_rows", |b| {
        b.iter(|| {
            let rows: Vec<Table1Row> = [
                ModelConfig::switch_base(8),
                ModelConfig::switch_base(64),
                ModelConfig::switch_base(128),
                ModelConfig::switch_large_128(),
            ]
            .iter()
            .map(Table1Row::of)
            .collect();
            black_box(rows)
        })
    });
    group.bench_function("fig2_flops_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for experts in [1usize, 8, 16, 32, 64, 128, 256] {
                let mut cfg = ModelConfig::switch_base(experts.max(2));
                cfg.num_experts = experts;
                total += flops_per_sequence(&cfg, black_box(256));
            }
            black_box(total)
        })
    });
    group.bench_function("fig3_capacity_breakdown", |b| {
        b.iter(|| {
            let breakdowns: Vec<CapacityBreakdown> = [8usize, 64, 128, 256]
                .iter()
                .map(|&e| CapacityBreakdown::of(&ModelConfig::switch_base(e)))
                .collect();
            black_box(breakdowns)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
