//! # pregated-moe
//!
//! A from-scratch Rust reproduction of **"Pre-gated MoE: An Algorithm-System
//! Co-Design for Fast and Scalable Mixture-of-Expert Inference"**
//! (Hwang et al., ISCA 2024, arXiv:2308.12066).
//!
//! Large MoE models don't fit in one GPU: SwitchTransformer-Large-128 needs
//! 105.6 GB against an A100's 80 GB. Offloading experts to CPU memory fixes
//! capacity but exposes the CPU→GPU migration latency, because a
//! conventional MoE block must run its gate (expert *selection*) before its
//! experts (expert *execution*). The paper's co-design breaks that
//! dependency: a **pre-gate** at block *N* selects the experts for block
//! *N+1*, so the runtime prefetches only the activated experts while block
//! *N* computes — reaching ~81 % of an (infeasible) GPU-resident oracle's
//! throughput at ~23 % of its memory.
//!
//! This crate is the facade over the reproduction's subsystems:
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`model`] | `pgmoe-model` | Table I model zoo, Fig 6 gate topology, trainable scaled-down Switch nets |
//! | [`runtime`] | `pgmoe-runtime` | The four policies, expert cache, inference simulator (Figs 10–12, 14–16) |
//! | [`device`] | `pgmoe-device` | Discrete-event GPU/CPU/SSD machine with CUDA-like streams |
//! | [`train`] | `pgmoe-train` | Pretrain→rewire→fine-tune recipe (Table II, Fig 13) |
//! | [`workload`] | `pgmoe-workload` | Synthetic tasks, routing traces, request streams |
//! | [`tensor`] | `pgmoe-tensor` | Dense f32 tensors with manual backprop |
//! | [`serve`] | `pgmoe-serve` | Streaming HTTP/1.1 front door with SLO-aware admission |
//!
//! # Quickstart
//!
//! Serve Switch-Large-128 — which OOMs under GPU-only — on one simulated
//! A100 with the Pre-gated policy:
//!
//! ```
//! use pregated_moe::prelude::*;
//!
//! let model = ModelConfig::switch_large_128();
//! let sim = InferenceSim::new(model, SimOptions::new(OffloadPolicy::Pregated));
//! let report = sim.run(DecodeRequest { input_tokens: 32, output_tokens: 8, batch_size: 1 }, 1)?;
//! println!("{:.0} tokens/s at {:.1} GB peak HBM",
//!          report.tokens_per_sec, report.peak_hbm_bytes as f64 / 1e9);
//! # Ok::<(), pregated_moe::runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pgmoe_device as device;
pub use pgmoe_model as model;
pub use pgmoe_runtime as runtime;
pub use pgmoe_serve as serve;
pub use pgmoe_tensor as tensor;
pub use pgmoe_train as train;
pub use pgmoe_workload as workload;

/// The most common imports for using the reproduction.
pub mod prelude {
    pub use pgmoe_device::{Machine, MachineConfig, SimDuration, SimTime, Tier};
    pub use pgmoe_model::{ExpertPrecision, GateTopology, GatingMode, ModelConfig, Precision};
    pub use pgmoe_runtime::{
        serve_batched, serve_cluster, serve_stream, Admission, BatchConfig, BatchScheduler,
        BatchSession, CacheAffinity, CacheCapacity, CacheConfig, ClusterConfig, ControlAction,
        ControlOptions, ControlStats, ControlWindow, ControlledFleet, DispatchPolicy,
        DriftSwitcher, ExpertScheduler, FetchSet, FleetConfig, FleetController, FleetSim,
        FleetStats, InferenceSim, JoinShortestQueue, KvBlockPool, KvServeStats, LiveRouting,
        NoControl, OffloadPolicy, PagedKvConfig, PlanTrace, PolicyCtx, PolicySpec, Prefetch,
        QueueAutoScaler, Replacement, ReplicaObs, ReplicaView, RequestProfile, Residency,
        RoundRobin, RunReport, SchedulerFactory, ServeStats, SimOptions, TokenEvent,
    };
    pub use pgmoe_serve::{EngineConfig, ServeConfig, Server, ServerHandle, SloConfig};
    pub use pgmoe_train::{Trainer, TrainerConfig};
    pub use pgmoe_workload::{
        mixed_context_trace, ArrivalProcess, ArrivalStream, ArrivedRequest, DecodeRequest,
        FaultEvent, FaultKind, FaultPlan, RequestStream, RoutingKind, RoutingTrace, SharedPrefix,
        TaskKind, TaskSpec,
    };
}
