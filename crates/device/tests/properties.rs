//! Property-based tests for discrete-event-engine and allocator invariants.

use pgmoe_device::{MemoryPool, SimDuration, SimEngine, SimTime, Tier};
use proptest::prelude::*;

/// A random op: (stream index 0/1, duration ns, wait on event k submissions ago).
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u64, Option<u8>)>> {
    proptest::collection::vec((0u8..2, 0u64..1_000, proptest::option::of(1u8..5)), 1..40)
}

proptest! {
    #[test]
    fn stream_tails_are_monotone_and_events_ordered(ops in ops_strategy()) {
        let mut eng = SimEngine::new();
        let r0 = eng.add_resource("gpu");
        let r1 = eng.add_resource("dma");
        let s = [eng.add_stream("compute", r0), eng.add_stream("copy", r1)];
        let mut events = Vec::new();
        let mut last_tail = [SimTime::ZERO; 2];
        for (stream, dur, wait_back) in ops {
            let waits: Vec<_> = wait_back
                .and_then(|k| events.len().checked_sub(k as usize))
                .map(|i| vec![events[i]])
                .unwrap_or_default();
            let ev = eng.submit(s[stream as usize], "op", SimDuration::from_nanos(dur), &waits);
            let t = eng.event_time(ev);
            // Stream order: completion times on one stream never decrease.
            prop_assert!(t >= last_tail[stream as usize]);
            last_tail[stream as usize] = t;
            // Waited events complete no later than this op.
            for w in &waits {
                prop_assert!(eng.event_time(*w) <= t);
            }
            // Completion >= duration (no op finishes before it could start).
            prop_assert!(t.as_nanos() >= dur);
            events.push(ev);
        }
        // Horizon equals max stream tail.
        prop_assert_eq!(eng.horizon(), last_tail[0].max(last_tail[1]));
    }

    #[test]
    fn horizon_never_exceeds_serial_sum(ops in ops_strategy()) {
        // Parallel execution can only help: the horizon is at most the sum of
        // all durations (what a single serialized stream would take).
        let mut eng = SimEngine::new();
        let r0 = eng.add_resource("gpu");
        let r1 = eng.add_resource("dma");
        let s = [eng.add_stream("compute", r0), eng.add_stream("copy", r1)];
        let mut events = Vec::new();
        let mut total = 0u64;
        for (stream, dur, wait_back) in ops {
            let waits: Vec<_> = wait_back
                .and_then(|k| events.len().checked_sub(k as usize))
                .map(|i| vec![events[i]])
                .unwrap_or_default();
            let ev = eng.submit(s[stream as usize], "op", SimDuration::from_nanos(dur), &waits);
            events.push(ev);
            total += dur;
        }
        prop_assert!(eng.horizon().as_nanos() <= total);
    }

    #[test]
    fn resource_busy_equals_sum_of_durations(durs in proptest::collection::vec(0u64..1_000, 1..30)) {
        let mut eng = SimEngine::new();
        let r = eng.add_resource("gpu");
        let s = eng.add_stream("compute", r);
        for d in &durs {
            eng.submit(s, "op", SimDuration::from_nanos(*d), &[]);
        }
        prop_assert_eq!(eng.resource_busy(r).as_nanos(), durs.iter().sum::<u64>());
        // A single stream on one resource runs fully serialized.
        prop_assert_eq!(eng.horizon().as_nanos(), durs.iter().sum::<u64>());
    }

    #[test]
    fn allocator_peak_and_used_invariants(
        actions in proptest::collection::vec((any::<bool>(), 0u64..1_000), 1..60)
    ) {
        let mut pool = MemoryPool::new(Tier::Hbm, 16_384);
        let mut live = Vec::new();
        let mut model_used = 0u64;
        let mut model_peak = 0u64;
        for (is_alloc, bytes) in actions {
            if is_alloc {
                match pool.alloc(bytes) {
                    Ok(id) => {
                        live.push((id, bytes));
                        model_used += bytes;
                        model_peak = model_peak.max(model_used);
                    }
                    Err(_) => {
                        // OOM must only happen when the request truly doesn't fit.
                        prop_assert!(model_used + bytes > pool.capacity());
                    }
                }
            } else if let Some((id, bytes)) = live.pop() {
                pool.free(id).unwrap();
                model_used -= bytes;
            }
            prop_assert_eq!(pool.used_bytes(), model_used);
            prop_assert_eq!(pool.peak_bytes(), model_peak);
            prop_assert!(pool.peak_bytes() >= pool.used_bytes());
            prop_assert!(pool.used_bytes() <= pool.capacity());
        }
        // Freeing everything restores an empty pool; peak survives.
        for (id, _) in live {
            pool.free(id).unwrap();
        }
        prop_assert_eq!(pool.used_bytes(), 0);
        prop_assert_eq!(pool.peak_bytes(), model_peak);
    }
}
