//! Simulated time: nanosecond instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A nanosecond-resolution instant on the simulated clock.
///
/// `SimTime` is a monotone counter starting at [`SimTime::ZERO`]; engines only
/// ever move it forward.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after time zero.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since time zero as a float (for throughput math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self` — simulated clocks never run
    /// backwards, so this indicates an engine bug.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier.0 <= self.0, "time went backwards: {earlier} > {self}");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference of two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(5));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_duration_panics() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        let _ = early.duration_since(late);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2500).to_string(), "2.500s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-6).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration =
            [SimDuration::from_nanos(1), SimDuration::from_nanos(2)].into_iter().sum();
        assert_eq!(total.as_nanos(), 3);
    }
}
