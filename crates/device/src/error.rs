//! Error types for the device simulator.

use crate::Tier;
use std::fmt;

/// Convenience alias for results returned by the device simulator.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// Error produced by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation exceeded a memory pool's capacity.
    ///
    /// This is the simulator's equivalent of CUDA's OOM and is what the
    /// GPU-only baseline hits on Switch-Large-128 (Figs 10–12).
    OutOfMemory {
        /// The tier whose pool overflowed.
        tier: Tier,
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes still available in the pool.
        available: u64,
        /// Pool capacity in bytes.
        capacity: u64,
    },
    /// An allocation id was freed twice or never existed.
    UnknownAllocation {
        /// The offending id's raw value.
        id: u64,
    },
    /// A stream/event/resource id belonged to a different engine or epoch.
    UnknownHandle {
        /// What kind of handle was invalid.
        kind: &'static str,
        /// The offending id's raw value.
        id: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { tier, requested, available, capacity } => write!(
                f,
                "out of memory on {tier:?}: requested {requested} B, available {available} B of {capacity} B"
            ),
            DeviceError::UnknownAllocation { id } => write!(f, "unknown allocation id {id}"),
            DeviceError::UnknownHandle { kind, id } => write!(f, "unknown {kind} handle {id}"),
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_tier_and_bytes() {
        let e = DeviceError::OutOfMemory {
            tier: Tier::Hbm,
            requested: 100,
            available: 10,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains("Hbm"));
        assert!(s.contains("100"));
    }
}
