//! A ready-wired simulated machine: GPU + host + SSD + links + streams.

use crate::{
    CostModel, EventId, Link, MemoryPool, ResourceId, SimDuration, SimEngine, SimTime, StreamId,
    Tier, TraceSpan,
};

/// Configuration for a [`Machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// GPU HBM capacity in bytes.
    pub hbm_capacity: u64,
    /// Host DDR capacity in bytes.
    pub ddr_capacity: u64,
    /// SSD capacity in bytes.
    pub ssd_capacity: u64,
    /// Kernel cost model.
    pub cost: CostModel,
    /// CPU DRAM ↔ GPU link.
    pub pcie: Link,
    /// SSD → GPU path (paper's Fig 16 configuration routes expert reads
    /// through the SSD's much lower bandwidth).
    pub ssd_link: Link,
}

impl MachineConfig {
    /// The paper's testbed (Section V): A100-80GB, 1.8 TB DDR4, PCIe gen4.
    pub fn a100_like() -> Self {
        MachineConfig {
            hbm_capacity: 80 * (1 << 30),
            ddr_capacity: 1800 * (1 << 30),
            ssd_capacity: 8 * (1u64 << 40),
            cost: CostModel::a100_pcie4(),
            pcie: Link::pcie_gen4(),
            ssd_link: Link::nvme_ssd(),
        }
    }

    /// Same machine with a custom PCIe bandwidth (for the sensitivity
    /// ablation on where Pre-gated MoE stops hiding the fetch).
    pub fn with_pcie_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.pcie.bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }
}

/// A simulated A100-class machine with one compute stream and one copy
/// stream, the exact two-stream structure the Pre-gated MoE system relies on
/// for overlapping expert migration with expert execution (Figs 7–9).
///
/// # Example
///
/// ```
/// use pgmoe_device::{Machine, MachineConfig, Tier};
///
/// let mut m = Machine::new(MachineConfig::a100_like());
/// let fetch = m.copy_to_gpu("expert", 18_874_368, Tier::Ddr, &[]);
/// let exec = m.launch_kernel("ffn", 0.0, 18_874_368, &[fetch]);
/// let done = m.event_time(exec);
/// assert!(done.as_nanos() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    engine: SimEngine,
    cost: CostModel,
    pcie: Link,
    ssd_link: Link,
    hbm: MemoryPool,
    ddr: MemoryPool,
    ssd: MemoryPool,
    compute: StreamId,
    copy: StreamId,
    gpu_resource: ResourceId,
    pcie_resource: ResourceId,
    /// Total bytes moved onto the GPU from off-device tiers (DDR/SSD) —
    /// the traffic a smaller expert representation shrinks.
    offload_traffic: u64,
}

impl Machine {
    /// Builds the machine and its two streams.
    pub fn new(config: MachineConfig) -> Self {
        let mut engine = SimEngine::new();
        let gpu_resource = engine.add_resource("gpu");
        let pcie_resource = engine.add_resource("pcie-dma");
        let compute = engine.add_stream("compute", gpu_resource);
        let copy = engine.add_stream("copy", pcie_resource);
        Machine {
            engine,
            cost: config.cost,
            pcie: config.pcie,
            ssd_link: config.ssd_link,
            hbm: MemoryPool::new(Tier::Hbm, config.hbm_capacity),
            ddr: MemoryPool::new(Tier::Ddr, config.ddr_capacity),
            ssd: MemoryPool::new(Tier::Ssd, config.ssd_capacity),
            compute,
            copy,
            gpu_resource,
            pcie_resource,
            offload_traffic: 0,
        }
    }

    /// The kernel cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The compute stream (GPU kernels).
    pub fn compute_stream(&self) -> StreamId {
        self.compute
    }

    /// The copy stream (host→device DMA).
    pub fn copy_stream(&self) -> StreamId {
        self.copy
    }

    /// Memory pool for `tier`.
    pub fn pool(&self, tier: Tier) -> &MemoryPool {
        match tier {
            Tier::Hbm => &self.hbm,
            Tier::Ddr => &self.ddr,
            Tier::Ssd => &self.ssd,
        }
    }

    /// Mutable memory pool for `tier`.
    pub fn pool_mut(&mut self, tier: Tier) -> &mut MemoryPool {
        match tier {
            Tier::Hbm => &mut self.hbm,
            Tier::Ddr => &mut self.ddr,
            Tier::Ssd => &mut self.ssd,
        }
    }

    /// Launches a kernel priced by the cost model on the compute stream.
    pub fn launch_kernel(
        &mut self,
        label: &str,
        flops: f64,
        hbm_bytes: u64,
        waits: &[EventId],
    ) -> EventId {
        let dur = self.cost.kernel_time(flops, hbm_bytes);
        self.engine.submit(self.compute, label, dur, waits)
    }

    /// Submits a fixed-duration op on the compute stream (gate evaluation,
    /// sync points).
    pub fn compute_op(&mut self, label: &str, duration: SimDuration, waits: &[EventId]) -> EventId {
        self.engine.submit(self.compute, label, duration, waits)
    }

    /// Enqueues a host→device transfer of `bytes` from `source` on the copy
    /// stream, returning its completion event.
    ///
    /// Transfers from [`Tier::Ddr`] ride the PCIe link; transfers from
    /// [`Tier::Ssd`] ride the SSD path. A transfer "from" HBM is a
    /// device-local no-op costing only the sync overhead (used when an
    /// expert is cache-resident).
    pub fn copy_to_gpu(
        &mut self,
        label: &str,
        bytes: u64,
        source: Tier,
        waits: &[EventId],
    ) -> EventId {
        let dur = match source {
            Tier::Ddr => self.pcie.transfer_time(bytes),
            Tier::Ssd => self.ssd_link.transfer_time(bytes),
            Tier::Hbm => self.cost.sync_overhead,
        };
        if source != Tier::Hbm {
            self.offload_traffic += bytes;
        }
        self.engine.submit(self.copy, label, dur, waits)
    }

    /// Total bytes copied to the GPU from off-device tiers so far (cache
    /// hits — device-local "copies" from HBM — cost nothing here).
    pub fn offload_traffic_bytes(&self) -> u64 {
        self.offload_traffic
    }

    /// Duration a [`Machine::copy_to_gpu`] of `bytes` from `source` would
    /// take — the same law the copy path applies, exposed so replayers can
    /// compute a schedule's times without submitting its ops.
    pub fn transfer_time(&self, bytes: u64, source: Tier) -> SimDuration {
        match source {
            Tier::Ddr => self.pcie.transfer_time(bytes),
            Tier::Ssd => self.ssd_link.transfer_time(bytes),
            Tier::Hbm => self.cost.sync_overhead,
        }
    }

    /// Applies the net machine-state effect of a schedule fragment whose op
    /// times were computed externally (compiled decode-plan replay): both
    /// stream tails fast-forward, resource busy accrues, and `offload`
    /// bytes count toward offload traffic. The fragment's events are never
    /// materialized, so callers must not wait on its ops afterwards.
    pub fn apply_replay(
        &mut self,
        compute_tail: SimTime,
        copy_tail: SimTime,
        gpu_busy: SimDuration,
        pcie_busy: SimDuration,
        offload: u64,
    ) {
        self.engine.fast_forward(self.compute, compute_tail, gpu_busy);
        self.engine.fast_forward(self.copy, copy_tail, pcie_busy);
        self.offload_traffic += offload;
    }

    /// Completion time of an event.
    pub fn event_time(&self, event: EventId) -> SimTime {
        self.engine.event_time(event)
    }

    /// Latest instant across both streams.
    pub fn horizon(&self) -> SimTime {
        self.engine.horizon()
    }

    /// Busy time on the GPU (compute utilisation numerator).
    pub fn gpu_busy(&self) -> SimDuration {
        self.engine.resource_busy(self.gpu_resource)
    }

    /// Busy time on the PCIe DMA engine.
    pub fn pcie_busy(&self) -> SimDuration {
        self.engine.resource_busy(self.pcie_resource)
    }

    /// Recorded trace spans.
    pub fn trace(&self) -> &[TraceSpan] {
        self.engine.trace()
    }

    /// Enables/disables trace retention.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.engine.set_trace_enabled(enabled);
    }

    /// Whether trace spans are currently retained (hot paths use this to
    /// skip building per-op label strings nobody will read).
    pub fn trace_enabled(&self) -> bool {
        self.engine.trace_enabled()
    }

    /// Clears recorded trace spans.
    pub fn clear_trace(&mut self) {
        self.engine.clear_trace();
    }

    /// Direct access to the underlying engine for advanced schedules.
    pub fn engine_mut(&mut self) -> &mut SimEngine {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_then_dependent_exec_serializes() {
        let mut m = Machine::new(MachineConfig::a100_like());
        let bytes = 2 * 768 * 3072 * 4; // one Switch-Base expert, fp32
        let fetch = m.copy_to_gpu("expert", bytes, Tier::Ddr, &[]);
        let exec = m.launch_kernel("ffn", 0.0, bytes, &[fetch]);
        let fetch_t = m.event_time(fetch);
        let exec_t = m.event_time(exec);
        assert!(exec_t > fetch_t);
        // Exec duration ≈ membound time.
        let dur = exec_t - fetch_t;
        assert_eq!(dur, m.cost().membound_time(bytes));
    }

    #[test]
    fn independent_fetch_overlaps_compute() {
        let mut m = Machine::new(MachineConfig::a100_like());
        let bytes = 2 * 768 * 3072 * 4;
        let _fetch_next = m.copy_to_gpu("next-expert", bytes, Tier::Ddr, &[]);
        let exec = m.launch_kernel("ffn", 0.0, bytes, &[]);
        // Compute finished without waiting for the fetch.
        assert_eq!(m.event_time(exec), SimTime::ZERO + m.cost().membound_time(bytes));
    }

    #[test]
    fn ssd_fetch_is_much_slower_than_ddr() {
        let mut m = Machine::new(MachineConfig::a100_like());
        let bytes = 18_874_368;
        let ddr = m.copy_to_gpu("a", bytes, Tier::Ddr, &[]);
        let ddr_t = m.event_time(ddr);
        let mut m2 = Machine::new(MachineConfig::a100_like());
        let ssd = m2.copy_to_gpu("a", bytes, Tier::Ssd, &[]);
        let ssd_t = m2.event_time(ssd);
        assert!(ssd_t.as_nanos() > 8 * ddr_t.as_nanos());
    }

    #[test]
    fn hbm_pool_is_80_gb() {
        let m = Machine::new(MachineConfig::a100_like());
        assert_eq!(m.pool(Tier::Hbm).capacity(), 80 * (1 << 30));
    }

    #[test]
    fn cache_resident_copy_costs_only_sync() {
        let mut m = Machine::new(MachineConfig::a100_like());
        let e = m.copy_to_gpu("hit", 1 << 30, Tier::Hbm, &[]);
        assert_eq!(m.event_time(e) - SimTime::ZERO, m.cost().sync_overhead);
    }

    #[test]
    fn apply_replay_matches_submitted_schedule() {
        // Computing a fetch+exec schedule externally and applying its net
        // effect must leave the machine in the same observable state as
        // submitting the ops.
        let bytes = 18_874_368u64;
        let mut live = Machine::new(MachineConfig::a100_like());
        let fetch = live.copy_to_gpu("expert", bytes, Tier::Ddr, &[]);
        live.launch_kernel("ffn", 0.0, bytes, &[fetch]);

        let mut replayed = Machine::new(MachineConfig::a100_like());
        let copy_end = SimTime::ZERO + replayed.transfer_time(bytes, Tier::Ddr);
        let exec_dur = replayed.cost().kernel_time(0.0, bytes);
        let exec_end = copy_end + exec_dur;
        replayed.apply_replay(
            exec_end,
            copy_end,
            exec_dur,
            replayed.transfer_time(bytes, Tier::Ddr),
            bytes,
        );
        assert_eq!(replayed.horizon(), live.horizon());
        assert_eq!(replayed.gpu_busy(), live.gpu_busy());
        assert_eq!(replayed.pcie_busy(), live.pcie_busy());
        assert_eq!(replayed.offload_traffic_bytes(), live.offload_traffic_bytes());
    }

    #[test]
    fn offload_traffic_counts_ddr_and_ssd_but_not_hbm() {
        let mut m = Machine::new(MachineConfig::a100_like());
        assert_eq!(m.offload_traffic_bytes(), 0);
        m.copy_to_gpu("a", 100, Tier::Ddr, &[]);
        m.copy_to_gpu("b", 30, Tier::Ssd, &[]);
        m.copy_to_gpu("hit", 1 << 20, Tier::Hbm, &[]);
        assert_eq!(m.offload_traffic_bytes(), 130);
    }
}
