//! Capacity-tracked memory pools for the GPU/CPU/SSD tiers.

use crate::{DeviceError, Result};
use std::collections::HashMap;

/// A storage tier in the paper's memory hierarchy (Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Tier {
    /// GPU high-bandwidth memory (80 GB on the paper's A100).
    Hbm,
    /// Host CPU DRAM (1.8 TB on the paper's EPYC host).
    Ddr,
    /// NVMe SSD (effectively unbounded capacity, low bandwidth).
    Ssd,
}

impl Tier {
    /// All tiers, fastest first.
    pub const ALL: [Tier; 3] = [Tier::Hbm, Tier::Ddr, Tier::Ssd];
}

/// Handle to a live allocation in a [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// A single memory tier with capacity, live-byte and peak-byte accounting.
///
/// Peak tracking is the measurement behind Fig 12 (peak GPU memory usage) and
/// the OOM behaviour behind the Switch-Large results of Figs 10–11.
///
/// # Example
///
/// ```
/// use pgmoe_device::{MemoryPool, Tier};
///
/// let mut hbm = MemoryPool::new(Tier::Hbm, 1024);
/// let a = hbm.alloc(512)?;
/// let b = hbm.alloc(512)?;
/// assert!(hbm.alloc(1).is_err()); // full
/// hbm.free(a)?;
/// hbm.free(b)?;
/// assert_eq!(hbm.peak_bytes(), 1024);
/// # Ok::<(), pgmoe_device::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryPool {
    tier: Tier,
    capacity: u64,
    used: u64,
    peak: u64,
    next_id: u64,
    live: HashMap<u64, u64>,
}

impl MemoryPool {
    /// Creates a pool of `capacity` bytes on `tier`.
    pub fn new(tier: Tier, capacity: u64) -> Self {
        MemoryPool { tier, capacity, used: 0, peak: 0, next_id: 0, live: HashMap::new() }
    }

    /// The pool's tier.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of allocated bytes since construction (or the last
    /// [`MemoryPool::reset_peak`]).
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Resets the peak statistic to the current usage.
    pub fn reset_peak(&mut self) {
        self.peak = self.used;
    }

    /// Allocates `bytes`, returning a handle.
    ///
    /// Zero-byte allocations are valid and return a distinct handle.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] if the pool cannot fit the
    /// request.
    pub fn alloc(&mut self, bytes: u64) -> Result<AllocId> {
        if self.used + bytes > self.capacity {
            return Err(DeviceError::OutOfMemory {
                tier: self.tier,
                requested: bytes,
                available: self.available_bytes(),
                capacity: self.capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, bytes);
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(AllocId(id))
    }

    /// Frees a previous allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownAllocation`] on double-free or foreign
    /// handles.
    pub fn free(&mut self, id: AllocId) -> Result<()> {
        match self.live.remove(&id.0) {
            Some(bytes) => {
                self.used -= bytes;
                Ok(())
            }
            None => Err(DeviceError::UnknownAllocation { id: id.0 }),
        }
    }

    /// Size in bytes of a live allocation, if it exists.
    pub fn size_of(&self, id: AllocId) -> Option<u64> {
        self.live.get(&id.0).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle_restores_capacity() {
        let mut pool = MemoryPool::new(Tier::Ddr, 100);
        let a = pool.alloc(60).unwrap();
        assert_eq!(pool.used_bytes(), 60);
        pool.free(a).unwrap();
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(pool.peak_bytes(), 60);
        let _ = pool.alloc(100).unwrap();
    }

    #[test]
    fn oom_reports_exact_numbers() {
        let mut pool = MemoryPool::new(Tier::Hbm, 100);
        let _keep = pool.alloc(70).unwrap();
        let err = pool.alloc(40).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                tier: Tier::Hbm,
                requested: 40,
                available: 30,
                capacity: 100
            }
        );
    }

    #[test]
    fn double_free_is_an_error() {
        let mut pool = MemoryPool::new(Tier::Ssd, 10);
        let a = pool.alloc(5).unwrap();
        pool.free(a).unwrap();
        assert!(matches!(pool.free(a), Err(DeviceError::UnknownAllocation { .. })));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut pool = MemoryPool::new(Tier::Hbm, 100);
        let a = pool.alloc(50).unwrap();
        let b = pool.alloc(30).unwrap();
        pool.free(a).unwrap();
        let _c = pool.alloc(10).unwrap();
        assert_eq!(pool.peak_bytes(), 80);
        pool.free(b).unwrap();
        pool.reset_peak();
        assert_eq!(pool.peak_bytes(), pool.used_bytes());
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let mut pool = MemoryPool::new(Tier::Hbm, 0);
        let a = pool.alloc(0).unwrap();
        pool.free(a).unwrap();
    }
}
