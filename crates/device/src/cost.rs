//! Analytic kernel cost model, calibrated to the paper's operating point.

use crate::SimDuration;

/// Prices GPU kernels for the simulator.
///
/// A kernel's duration is `launch_overhead + max(flops / flops_per_sec,
/// hbm_bytes / effective_hbm_bw)` — the classic roofline with a fixed launch
/// cost. Batch-1 LLM decoding (the paper's serving point, Section VI-A) is
/// firmly on the memory-bound side of the roofline, so the effective HBM
/// bandwidth constant dominates.
///
/// # Calibration
///
/// [`CostModel::a100_pcie4`] pins the model's free constants to the paper's
/// own measurements (Section V, Figs 10–11):
///
/// * Parameters are fp32 (Table I: 7.5 B params = 30 GB ⇒ 4 B/param), so one
///   Switch-Base expert is 18.9 MB and its PCIe-gen4 migration costs ≈590 µs —
///   pure physics, not a tuned constant.
/// * `effective_hbm_bw = 48 GB/s` (≈2.4 % of A100 peak) reproduces the
///   paper's GPU-only Switch-Base throughput of ≈137 tokens/s; batch-1
///   GEMV kernels plus FasterTransformer launch gaps run far below peak
///   HBM bandwidth. This single tuned constant makes the headline ratios
///   *emerge*: MoE-OnDemand ≈2× GPU-only block latency, MoE-Prefetch
///   7×/54×/107×/125× for Base-8/64/128/Large-128, Pre-gated ≈1.1×.
/// * `launch_overhead = 12 µs`, `sync_overhead = 10 µs` are typical CUDA
///   kernel-launch / stream-sync costs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Peak dense-compute throughput in FLOP/s (fp32 tensor-core path).
    pub flops_per_sec: f64,
    /// Effective HBM bandwidth seen by batch-1 kernels, bytes/s.
    pub effective_hbm_bw: f64,
    /// Fixed per-kernel launch overhead.
    pub launch_overhead: SimDuration,
    /// Cost of a cross-stream synchronisation (event wait observed by host).
    pub sync_overhead: SimDuration,
    /// Cost of evaluating a gate / pre-gate function (a small MLP — the paper
    /// notes it is "a compact MLP layer having low computation requirement",
    /// Fig 7).
    pub gate_overhead: SimDuration,
}

impl CostModel {
    /// The calibrated A100 + PCIe gen4 model used by every experiment.
    pub fn a100_pcie4() -> Self {
        CostModel {
            flops_per_sec: 19.5e12,
            effective_hbm_bw: 48.0e9,
            launch_overhead: SimDuration::from_micros(12),
            sync_overhead: SimDuration::from_micros(10),
            gate_overhead: SimDuration::from_micros(15),
        }
    }

    /// Duration of one kernel given its FLOP count and HBM traffic.
    pub fn kernel_time(&self, flops: f64, hbm_bytes: u64) -> SimDuration {
        let compute = flops / self.flops_per_sec;
        let memory = hbm_bytes as f64 / self.effective_hbm_bw;
        self.launch_overhead + SimDuration::from_secs_f64(compute.max(memory))
    }

    /// Duration of a memory-bound kernel that streams `hbm_bytes`.
    pub fn membound_time(&self, hbm_bytes: u64) -> SimDuration {
        self.kernel_time(0.0, hbm_bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::a100_pcie4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch1_kernels_are_memory_bound() {
        let cm = CostModel::a100_pcie4();
        // One expert GEMV: 2*d*ff MACs on 2*d*ff fp32 weights.
        let flops = 2.0 * 2.0 * 768.0 * 3072.0;
        let bytes = 2 * 768 * 3072 * 4;
        let t = cm.kernel_time(flops, bytes);
        let membound = cm.membound_time(bytes);
        assert_eq!(t, membound, "batch-1 expert must be memory-bound");
    }

    #[test]
    fn switch_base_expert_exec_is_about_400us() {
        let cm = CostModel::a100_pcie4();
        let bytes = 2 * 768 * 3072 * 4;
        let us = cm.membound_time(bytes).as_micros_f64();
        assert!((350.0..450.0).contains(&us), "got {us}µs");
    }

    #[test]
    fn huge_flops_become_compute_bound() {
        let cm = CostModel::a100_pcie4();
        let t = cm.kernel_time(19.5e12, 1);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01);
    }

    #[test]
    fn zero_work_costs_launch_overhead() {
        let cm = CostModel::a100_pcie4();
        assert_eq!(cm.kernel_time(0.0, 0), cm.launch_overhead);
    }
}
