//! Interconnect bandwidth/latency models.

use crate::SimDuration;

/// A point-to-point interconnect with fixed bandwidth and per-transfer
/// latency.
///
/// The paper's system uses PCIe gen4 at 32 GB/s between CPU DRAM and GPU HBM
/// (Section V) and a much slower SSD path for the Fig 16 study. Transfer time
/// is `latency + bytes / bandwidth` — the first-order model the paper's own
/// analysis (Fig 9) relies on.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Link {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-transfer setup latency.
    pub latency: SimDuration,
}

impl Link {
    /// Creates a link with the given bandwidth (bytes/s) and setup latency.
    pub fn new(bandwidth_bytes_per_sec: f64, latency: SimDuration) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "link bandwidth must be positive");
        Link { bandwidth_bytes_per_sec, latency }
    }

    /// PCIe gen4 x16: 32 GB/s with ~10 µs DMA setup, the paper's CPU↔GPU
    /// channel (Section V).
    pub fn pcie_gen4() -> Self {
        Link::new(32.0e9, SimDuration::from_micros(10))
    }

    /// NVMe SSD read path: ~3 GB/s with ~70 µs access latency, matching the
    /// "much lower data transfer bandwidth between SSD vs. CPU DRAM"
    /// qualifier of Section VI-D / Fig 16.
    pub fn nvme_ssd() -> Self {
        Link::new(3.0e9, SimDuration::from_micros(70))
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_moves_one_switch_base_expert_in_about_600us() {
        // One Switch-Base expert: 2 * 768 * 3072 fp32 params = 18.87 MB.
        let bytes = 2 * 768 * 3072 * 4;
        let t = Link::pcie_gen4().transfer_time(bytes);
        let us = t.as_micros_f64();
        assert!((550.0..650.0).contains(&us), "expected ~600µs, got {us}µs");
    }

    #[test]
    fn ssd_is_an_order_of_magnitude_slower_than_pcie() {
        let bytes = 18_874_368;
        let pcie = Link::pcie_gen4().transfer_time(bytes).as_nanos() as f64;
        let ssd = Link::nvme_ssd().transfer_time(bytes).as_nanos() as f64;
        assert!(ssd / pcie > 8.0);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let link = Link::pcie_gen4();
        assert_eq!(link.transfer_time(0), link.latency);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(0.0, SimDuration::ZERO);
    }
}
