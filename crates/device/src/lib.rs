//! # pgmoe-device
//!
//! A discrete-event simulator of the heterogeneous memory/compute system the
//! Pre-gated MoE paper (ISCA 2024) evaluates on: a GPU with HBM, a host CPU
//! with large DDR, an SSD, and the PCIe links between them.
//!
//! The paper's system contribution is an *overlap structure* — whether the
//! CPU→GPU migration of activated experts serializes with, or overlaps, the
//! MoE block's execution. This crate reproduces exactly that structure:
//!
//! * [`SimEngine`] — a dataflow discrete-event engine with CUDA-like
//!   [`StreamId`]s (in-order queues) and [`EventId`]s (cross-stream
//!   dependencies). Op durations come from an analytic [`CostModel`]; start
//!   times are resolved from stream order, event waits and resource
//!   occupancy, giving a deterministic, nanosecond-resolution timeline.
//! * [`MemoryPool`] — capacity-tracked memory tiers with peak accounting and
//!   out-of-memory errors (this is what reproduces Fig 12 and the
//!   Switch-Large OOM of Figs 10–11).
//! * [`Link`] — bandwidth/latency models for PCIe gen4 and SSD.
//! * [`CostModel`] — kernel/transfer timing calibrated against the paper's
//!   operating point (see [`CostModel::a100_pcie4`]).
//! * [`Machine`] — a ready-wired A100-class machine with one compute stream
//!   and one copy stream, the configuration used by every experiment.
//!
//! # Example
//!
//! ```
//! use pgmoe_device::{Machine, MachineConfig, Tier};
//!
//! let mut m = Machine::new(MachineConfig::a100_like());
//! let fetch = m.copy_to_gpu("expert0", 18_874_368, Tier::Ddr, &[]);
//! let exec = m.launch_kernel("ffn", 1.0e9, 18_874_368, &[fetch]);
//! assert!(m.event_time(exec) > m.event_time(fetch));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod engine;
mod error;
mod link;
mod machine;
mod memory;
mod time;
mod trace;

pub use cost::CostModel;
pub use engine::{EventId, ResourceId, SimEngine, StreamId};
pub use error::{DeviceError, Result};
pub use link::Link;
pub use machine::{Machine, MachineConfig};
pub use memory::{AllocId, MemoryPool, Tier};
pub use time::{SimDuration, SimTime};
pub use trace::{render_timeline, TraceSpan};
