//! The dataflow discrete-event engine: streams, events and resources.
//!
//! Semantics mirror CUDA's execution model, which is what the paper's system
//! design is written against:
//!
//! * A **stream** executes its ops in submission order.
//! * A **resource** (GPU SMs, a PCIe DMA engine) is occupied exclusively by
//!   one op at a time; streams bound to the same resource serialize on it in
//!   submission order.
//! * An **event** marks the completion of an op; ops may wait on events from
//!   any stream, which is how expert prefetch (copy stream) synchronises with
//!   expert execution (compute stream).
//!
//! Op durations are known at submission (they come from the analytic
//! [`crate::CostModel`]), so the engine resolves each op's start time as
//! `max(stream tail, resource free time, waited events)` — an exact
//! discrete-event schedule computed online, with a full trace retained for
//! timeline rendering (Fig 9).

use crate::{SimDuration, SimTime, TraceSpan};

/// Handle to an in-order execution queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(usize);

/// Handle to an exclusive hardware resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Handle to a completion event produced by [`SimEngine::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

#[derive(Debug, Clone)]
struct StreamState {
    name: String,
    resource: ResourceId,
    tail: SimTime,
}

#[derive(Debug, Clone)]
struct ResourceState {
    #[allow(dead_code)]
    name: String,
    free_at: SimTime,
    busy: SimDuration,
}

/// The simulation engine: streams serialize their ops, resources serialize
/// across streams, events order across streams (CUDA semantics; details in
/// the source module's header comment).
///
/// # Example
///
/// ```
/// use pgmoe_device::{SimEngine, SimDuration};
///
/// let mut eng = SimEngine::new();
/// let gpu = eng.add_resource("gpu");
/// let pcie = eng.add_resource("pcie");
/// let compute = eng.add_stream("compute", gpu);
/// let copy = eng.add_stream("copy", pcie);
///
/// // Fetch overlaps with unrelated compute, then dependent compute waits.
/// let fetch = eng.submit(copy, "h2d", SimDuration::from_micros(600), &[]);
/// let attn = eng.submit(compute, "attn", SimDuration::from_micros(200), &[]);
/// let ffn = eng.submit(compute, "ffn", SimDuration::from_micros(300), &[fetch]);
/// assert!(eng.event_time(ffn) >= eng.event_time(fetch));
/// assert_eq!(eng.event_time(attn).as_nanos(), 200_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimEngine {
    streams: Vec<StreamState>,
    resources: Vec<ResourceState>,
    events: Vec<SimTime>,
    trace: Vec<TraceSpan>,
    trace_enabled: bool,
}

impl SimEngine {
    /// Creates an empty engine with tracing enabled.
    pub fn new() -> Self {
        SimEngine { trace_enabled: true, ..Default::default() }
    }

    /// Enables or disables trace-span retention (disable for long sweeps).
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
    }

    /// Whether trace spans are currently retained.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Registers an exclusive resource (e.g. `"gpu"`, `"pcie-dma"`).
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        self.resources.push(ResourceState {
            name: name.to_string(),
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Registers an in-order stream bound to `resource`.
    pub fn add_stream(&mut self, name: &str, resource: ResourceId) -> StreamId {
        assert!(resource.0 < self.resources.len(), "unknown resource");
        self.streams.push(StreamState { name: name.to_string(), resource, tail: SimTime::ZERO });
        StreamId(self.streams.len() - 1)
    }

    /// Submits an op of length `duration` to `stream`, starting no earlier
    /// than every event in `waits`. Returns the op's completion event.
    ///
    /// # Panics
    ///
    /// Panics on unknown stream or event handles (these are engine-scoped).
    pub fn submit(
        &mut self,
        stream: StreamId,
        label: &str,
        duration: SimDuration,
        waits: &[EventId],
    ) -> EventId {
        let mut start = self.streams[stream.0].tail;
        let resource = self.streams[stream.0].resource;
        start = start.max(self.resources[resource.0].free_at);
        for w in waits {
            start = start.max(self.events[w.0]);
        }
        let end = start + duration;
        self.streams[stream.0].tail = end;
        self.resources[resource.0].free_at = end;
        self.resources[resource.0].busy += duration;
        self.events.push(end);
        if self.trace_enabled {
            self.trace.push(TraceSpan {
                stream: self.streams[stream.0].name.clone(),
                label: label.to_string(),
                start,
                end,
            });
        }
        EventId(self.events.len() - 1)
    }

    /// Submits a zero-length barrier on `stream` that waits for `waits`.
    ///
    /// This models `cudaStreamWaitEvent`: subsequent ops on `stream` cannot
    /// start before every waited event has completed.
    pub fn barrier(&mut self, stream: StreamId, waits: &[EventId]) -> EventId {
        self.submit(stream, "barrier", SimDuration::ZERO, waits)
    }

    /// Completion time of an event.
    ///
    /// # Panics
    ///
    /// Panics on foreign handles.
    pub fn event_time(&self, event: EventId) -> SimTime {
        self.events[event.0]
    }

    /// Tail (time of last submitted op) of a stream.
    pub fn stream_tail(&self, stream: StreamId) -> SimTime {
        self.streams[stream.0].tail
    }

    /// Fast-forwards `stream` — and the resource it is bound to — to `tail`,
    /// accruing `busy` occupancy on the resource, without materializing any
    /// events. This is the end state a replayed schedule fragment whose op
    /// times were computed externally would have left behind (compiled
    /// decode plans replay whole iterations this way); because the
    /// fragment's ops are elided, nothing may wait on them later.
    ///
    /// # Panics
    ///
    /// Panics if `tail` would move the stream backwards.
    pub fn fast_forward(&mut self, stream: StreamId, tail: SimTime, busy: SimDuration) {
        let s = &mut self.streams[stream.0];
        assert!(tail >= s.tail, "fast_forward cannot rewind a stream");
        s.tail = tail;
        let r = &mut self.resources[s.resource.0];
        r.free_at = r.free_at.max(tail);
        r.busy += busy;
    }

    /// The latest instant across all streams — "wall clock" after everything
    /// submitted so far has drained.
    pub fn horizon(&self) -> SimTime {
        self.streams.iter().map(|s| s.tail).fold(SimTime::ZERO, SimTime::max)
    }

    /// Total busy time accumulated on a resource (for utilisation metrics).
    pub fn resource_busy(&self, resource: ResourceId) -> SimDuration {
        self.resources[resource.0].busy
    }

    /// The retained trace spans (empty if tracing is disabled).
    pub fn trace(&self) -> &[TraceSpan] {
        &self.trace
    }

    /// Drops retained trace spans (the schedule itself is unaffected).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_two_streams() -> (SimEngine, StreamId, StreamId) {
        let mut eng = SimEngine::new();
        let gpu = eng.add_resource("gpu");
        let dma = eng.add_resource("dma");
        let compute = eng.add_stream("compute", gpu);
        let copy = eng.add_stream("copy", dma);
        (eng, compute, copy)
    }

    #[test]
    fn stream_ops_serialize_in_order() {
        let (mut eng, compute, _) = engine_with_two_streams();
        let a = eng.submit(compute, "a", SimDuration::from_nanos(100), &[]);
        let b = eng.submit(compute, "b", SimDuration::from_nanos(50), &[]);
        assert_eq!(eng.event_time(a).as_nanos(), 100);
        assert_eq!(eng.event_time(b).as_nanos(), 150);
    }

    #[test]
    fn independent_streams_overlap() {
        let (mut eng, compute, copy) = engine_with_two_streams();
        let a = eng.submit(compute, "exec", SimDuration::from_nanos(100), &[]);
        let b = eng.submit(copy, "fetch", SimDuration::from_nanos(100), &[]);
        // Both finish at t=100: true overlap.
        assert_eq!(eng.event_time(a).as_nanos(), 100);
        assert_eq!(eng.event_time(b).as_nanos(), 100);
        assert_eq!(eng.horizon().as_nanos(), 100);
    }

    #[test]
    fn event_wait_creates_cross_stream_dependency() {
        let (mut eng, compute, copy) = engine_with_two_streams();
        let fetch = eng.submit(copy, "fetch", SimDuration::from_nanos(500), &[]);
        let exec = eng.submit(compute, "exec", SimDuration::from_nanos(100), &[fetch]);
        assert_eq!(eng.event_time(exec).as_nanos(), 600);
    }

    #[test]
    fn shared_resource_serializes_across_streams() {
        let mut eng = SimEngine::new();
        let pcie = eng.add_resource("pcie");
        let s1 = eng.add_stream("h2d-1", pcie);
        let s2 = eng.add_stream("h2d-2", pcie);
        let a = eng.submit(s1, "a", SimDuration::from_nanos(100), &[]);
        let b = eng.submit(s2, "b", SimDuration::from_nanos(100), &[]);
        assert_eq!(eng.event_time(a).as_nanos(), 100);
        assert_eq!(eng.event_time(b).as_nanos(), 200, "same resource must serialize");
    }

    #[test]
    fn barrier_is_zero_length_but_ordering() {
        let (mut eng, compute, copy) = engine_with_two_streams();
        let fetch = eng.submit(copy, "fetch", SimDuration::from_nanos(300), &[]);
        let bar = eng.barrier(compute, &[fetch]);
        let exec = eng.submit(compute, "exec", SimDuration::from_nanos(10), &[]);
        assert_eq!(eng.event_time(bar).as_nanos(), 300);
        assert_eq!(eng.event_time(exec).as_nanos(), 310);
    }

    #[test]
    fn resource_busy_accumulates() {
        let (mut eng, compute, _) = engine_with_two_streams();
        eng.submit(compute, "a", SimDuration::from_nanos(100), &[]);
        eng.submit(compute, "b", SimDuration::from_nanos(200), &[]);
        let gpu = ResourceId(0);
        assert_eq!(eng.resource_busy(gpu).as_nanos(), 300);
    }

    #[test]
    fn trace_records_spans_in_submission_order() {
        let (mut eng, compute, copy) = engine_with_two_streams();
        eng.submit(copy, "fetch", SimDuration::from_nanos(500), &[]);
        eng.submit(compute, "exec", SimDuration::from_nanos(100), &[]);
        assert_eq!(eng.trace().len(), 2);
        assert_eq!(eng.trace()[0].label, "fetch");
        assert_eq!(eng.trace()[1].stream, "compute");
    }

    #[test]
    fn fast_forward_matches_equivalent_submissions() {
        // Submitting ops and fast-forwarding to their computed end state
        // must be indistinguishable to every engine observable.
        let (mut a, compute_a, copy_a) = engine_with_two_streams();
        a.submit(compute_a, "x", SimDuration::from_nanos(70), &[]);
        a.submit(copy_a, "y", SimDuration::from_nanos(40), &[]);
        let (mut b, compute_b, copy_b) = engine_with_two_streams();
        b.fast_forward(compute_b, SimTime::from_nanos(70), SimDuration::from_nanos(70));
        b.fast_forward(copy_b, SimTime::from_nanos(40), SimDuration::from_nanos(40));
        assert_eq!(a.horizon(), b.horizon());
        assert_eq!(a.stream_tail(compute_a), b.stream_tail(compute_b));
        assert_eq!(a.resource_busy(ResourceId(0)), b.resource_busy(ResourceId(0)));
        // Later submissions schedule identically on both engines.
        let ea = a.submit(compute_a, "z", SimDuration::from_nanos(5), &[]);
        let eb = b.submit(compute_b, "z", SimDuration::from_nanos(5), &[]);
        assert_eq!(a.event_time(ea), b.event_time(eb));
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn fast_forward_rejects_rewinds() {
        let (mut eng, compute, _) = engine_with_two_streams();
        eng.submit(compute, "a", SimDuration::from_nanos(100), &[]);
        eng.fast_forward(compute, SimTime::from_nanos(50), SimDuration::ZERO);
    }

    #[test]
    fn trace_can_be_disabled() {
        let (mut eng, compute, _) = engine_with_two_streams();
        eng.set_trace_enabled(false);
        eng.submit(compute, "a", SimDuration::from_nanos(1), &[]);
        assert!(eng.trace().is_empty());
    }
}
