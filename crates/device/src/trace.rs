//! Execution-trace spans and an ASCII timeline renderer (Fig 9).

use crate::{SimDuration, SimTime};

/// One op's occupancy of a stream, as recorded by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Name of the stream the op ran on.
    pub stream: String,
    /// Op label supplied at submission.
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl TraceSpan {
    /// The span's length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Renders spans as an ASCII Gantt chart, one row per stream — the textual
/// analogue of the paper's Fig 9 execution-timeline comparison.
///
/// `width` is the number of character cells used for the full time range.
///
/// # Example
///
/// ```
/// use pgmoe_device::{render_timeline, TraceSpan, SimTime};
///
/// let spans = vec![TraceSpan {
///     stream: "compute".into(),
///     label: "ffn".into(),
///     start: SimTime::ZERO,
///     end: SimTime::from_nanos(100),
/// }];
/// let chart = render_timeline(&spans, 40);
/// assert!(chart.contains("compute"));
/// ```
pub fn render_timeline(spans: &[TraceSpan], width: usize) -> String {
    if spans.is_empty() {
        return String::from("(empty timeline)\n");
    }
    let t0 = spans.iter().map(|s| s.start).min().unwrap_or(SimTime::ZERO);
    let t1 = spans.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO);
    let total = (t1 - t0).as_nanos().max(1);

    // Stable stream order: first appearance.
    let mut streams: Vec<&str> = Vec::new();
    for s in spans {
        if !streams.contains(&s.stream.as_str()) {
            streams.push(&s.stream);
        }
    }
    let name_width = streams.iter().map(|s| s.len()).max().unwrap_or(0).max(7);

    let mut out = String::new();
    for stream in &streams {
        let mut row = vec![b'.'; width];
        for span in spans.iter().filter(|s| s.stream == *stream) {
            if span.end == span.start {
                continue;
            }
            let a = ((span.start - t0).as_nanos() as u128 * width as u128 / total as u128) as usize;
            let b = ((span.end - t0).as_nanos() as u128 * width as u128 / total as u128) as usize;
            let b = b.clamp(a + 1, width);
            let glyph = glyph_for(&span.label);
            for cell in &mut row[a..b] {
                *cell = glyph;
            }
        }
        out.push_str(&format!(
            "{stream:>name_width$} |{}|\n",
            String::from_utf8(row).expect("ascii row")
        ));
    }
    out.push_str(&format!(
        "{:>name_width$}  0 {:>w$}\n",
        "time",
        format!("{}", t1 - t0),
        w = width.saturating_sub(2)
    ));
    out
}

fn glyph_for(label: &str) -> u8 {
    label
        .bytes()
        .next()
        .map(|b| b.to_ascii_uppercase())
        .filter(u8::is_ascii_graphic)
        .unwrap_or(b'#')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stream: &str, label: &str, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            stream: stream.into(),
            label: label.into(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(span("s", "x", 10, 35).duration().as_nanos(), 25);
    }

    #[test]
    fn renderer_emits_one_row_per_stream() {
        let spans = vec![
            span("compute", "exec", 0, 50),
            span("copy", "fetch", 0, 100),
            span("compute", "exec", 50, 80),
        ];
        let chart = render_timeline(&spans, 20);
        assert_eq!(chart.lines().count(), 3); // two streams + time axis
        assert!(chart.contains("compute"));
        assert!(chart.contains("copy"));
    }

    #[test]
    fn overlap_is_visible() {
        let spans = vec![span("compute", "exec", 0, 100), span("copy", "fetch", 0, 100)];
        let chart = render_timeline(&spans, 10);
        // Both rows fully filled with their glyph.
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("EEEEEEEEEE"));
        assert!(lines[1].contains("FFFFFFFFFF"));
    }

    #[test]
    fn empty_trace_is_handled() {
        assert!(render_timeline(&[], 10).contains("empty"));
    }
}
