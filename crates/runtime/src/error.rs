//! Error types for the inference runtime.

use std::fmt;

/// Convenience alias for runtime results.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Error produced by the inference runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The simulated GPU ran out of memory — the paper's GPU-only baseline
    /// hits this on Switch-Large-128 (Figs 10–12 mark it "OOM").
    OutOfMemory(pgmoe_device::DeviceError),
    /// The run was configured inconsistently (e.g. a cache fraction outside
    /// `(0, 1]`, or a routing trace shorter than the request).
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfMemory(e) => write!(f, "simulated GPU OOM: {e}"),
            RuntimeError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::OutOfMemory(e) => Some(e),
            RuntimeError::InvalidConfig { .. } => None,
        }
    }
}

impl From<pgmoe_device::DeviceError> for RuntimeError {
    fn from(e: pgmoe_device::DeviceError) -> Self {
        RuntimeError::OutOfMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_wraps_device_error() {
        let inner = pgmoe_device::DeviceError::OutOfMemory {
            tier: pgmoe_device::Tier::Hbm,
            requested: 10,
            available: 5,
            capacity: 5,
        };
        let e = RuntimeError::from(inner);
        assert!(e.to_string().contains("OOM"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
