//! The shared policy-driven decode core.
//!
//! Exactly one piece of code walks a transformer stack and migrates
//! experts: this module. The batch-1 engine ([`crate::InferenceSim`]), the
//! continuous-batching scheduler ([`crate::BatchScheduler`]), and every
//! [`ExpertScheduler`] — built-in or user-defined — execute through the
//! same block loop, fetch path, cache, and cost model, so the serving paths
//! cannot drift and a policy written once runs everywhere.
//!
//! The core owns the *mechanism* (event wiring, transient buffers, cache
//! accesses, demand-stall accounting); schedulers own the *policy* (what to
//! fetch, when, for which block) through the hooks defined in
//! [`crate::scheduler`].

use crate::plan::{CacheProbe, PlanBytes, PlanCopy, PlanOp, PlanRecorder};
use crate::scheduler::{
    ExpertScheduler, FetchSet, Phase, PolicyCtx, Prefetch, Residency, RoutedSource, RoutedView,
};
use crate::{ExpertCache, ExpertKey, PlacementPlan, Result};
use pgmoe_device::{AllocId, EventId, Machine, SimDuration, Tier};
use pgmoe_model::GateTopology;
use rand::rngs::StdRng;
use rand::Rng;

/// Mutable run state the core drives on behalf of a serving path.
pub(crate) struct CoreEnv<'a> {
    pub machine: &'a mut Machine,
    pub plan: &'a PlacementPlan,
    pub cache: &'a mut Option<ExpertCache>,
    pub offload_tier: Tier,
    pub num_experts: usize,
    /// Bytes copied by fetches on a block's critical path (serialized
    /// residency fetches, prefetch-miss fills) — the on-demand stall metric.
    pub demand_bytes: &'a mut u64,
}

/// Per-block in-flight prefetch state.
#[derive(Debug, Default)]
struct Pending {
    done: Option<EventId>,
    /// Expert set the in-flight prefetch covers (`covered_all` short-cuts
    /// full-set prefetches).
    covered: Vec<usize>,
    covered_all: bool,
    buffers: Vec<AllocId>,
}

impl Pending {
    fn clear(&mut self) {
        self.done = None;
        self.covered.clear();
        self.covered_all = false;
        debug_assert!(self.buffers.is_empty(), "iteration left transient buffers alive");
        self.buffers.clear();
    }
}

/// Reusable decode-iteration state: hoisted out of the token loop so the
/// steady state performs no heap allocation (capacities are retained).
pub(crate) struct CoreScratch {
    pending: Vec<Pending>,
    prefetches: Vec<Prefetch>,
    waits: Vec<EventId>,
    all_experts: Vec<usize>,
    missing: Vec<usize>,
}

impl CoreScratch {
    pub(crate) fn new(dec_blocks: usize, num_experts: usize) -> Self {
        CoreScratch {
            pending: (0..dec_blocks).map(|_| Pending::default()).collect(),
            prefetches: Vec::with_capacity(4),
            waits: Vec::with_capacity(4),
            all_experts: (0..num_experts).collect(),
            missing: Vec::new(),
        }
    }

    fn reset(&mut self) {
        for p in &mut self.pending {
            p.clear();
        }
        self.waits.clear();
        self.missing.clear();
    }

    /// Decoder MoE blocks this scratch was sized for.
    pub(crate) fn dec_blocks(&self) -> usize {
        self.pending.len()
    }
}

/// Fixed per-iteration decode costs (attention/FFN bytes differ between the
/// batch-1 engine and the batched scheduler; the structure does not).
pub(crate) struct DecodeCosts {
    pub attn_bytes: u64,
    pub ffn_bytes: u64,
    pub decoder_layers: usize,
    pub moe_every: usize,
}

/// Fixed prefill (encoder) costs and labels.
pub(crate) struct PrefillCosts {
    pub attn_flops: f64,
    pub attn_bytes: u64,
    pub ffn_flops: f64,
    pub ffn_bytes: u64,
    pub exec_flops: f64,
    pub encoder_layers: usize,
    pub moe_every: usize,
    /// Expected distinct experts activated per encoder MoE block.
    pub distinct: usize,
    /// Kernel labels: attention, dense FFN, expert execution.
    pub labels: [&'static str; 3],
}

/// The batched serving paths' encoder-pass cost model: prefilling
/// `total_inputs` prompt tokens against a batch whose live contexts read
/// `attn_bytes` per attention layer. The all-at-once prefill and the paged
/// path's chunked prefill both build their [`PrefillCosts`] here so the two
/// cannot drift — with an unbounded chunk they submit byte- and
/// flop-identical passes.
pub(crate) fn batched_prefill_costs(
    cfg: &pgmoe_model::ModelConfig,
    plan: &PlacementPlan,
    total_inputs: usize,
    attn_bytes: u64,
) -> PrefillCosts {
    let tokens = total_inputs as f64;
    let d = cfg.d_model as f64;
    let ffn_flops = tokens * 4.0 * d * cfg.d_ff as f64;
    PrefillCosts {
        attn_flops: tokens * 2.0 * (4.0 * d * d + 2.0 * d * tokens),
        attn_bytes,
        ffn_flops,
        ffn_bytes: crate::engine::dense_ffn_bytes_for(cfg),
        exec_flops: ffn_flops * plan.active_per_block() as f64,
        encoder_layers: cfg.encoder_layers,
        moe_every: cfg.moe_every,
        distinct: expected_distinct_experts(
            total_inputs * plan.active_per_block(),
            cfg.num_experts,
        ),
        labels: ["prefill-attn", "prefill-ffn", "prefill-expert"],
    }
}

/// Enqueues migration of `experts` for cache key-space `block`. Experts the
/// scheduler pins resident cost nothing; cache hits cost nothing; every
/// other expert gets (when `alloc_buffers`) a transient HBM buffer pushed
/// onto `buffers` and a copy from the offload tier. Returns the event after
/// which every requested expert is GPU-resident, plus the bytes actually
/// copied. On OOM the block's buffers are freed before the error
/// propagates. When a [`PlanRecorder`] is attached the whole fetch —
/// probes, allocations, copies, and `demand` accounting — is captured as
/// one [`PlanOp::Fetch`].
#[allow(clippy::too_many_arguments)]
fn issue_copy(
    machine: &mut Machine,
    plan: &PlacementPlan,
    cache: &mut Option<ExpertCache>,
    offload_tier: Tier,
    sched: &dyn ExpertScheduler,
    block: usize,
    experts: &[usize],
    waits: &[EventId],
    alloc_buffers: bool,
    buffers: &mut Vec<AllocId>,
    demand: bool,
    mut rec: Option<&mut PlanRecorder>,
) -> Result<(EventId, u64)> {
    let trace = machine.trace_enabled();
    let mut last = None;
    let mut copied = 0u64;
    let mut probes: Vec<CacheProbe> = Vec::new();
    let mut copies: Vec<PlanCopy> = Vec::new();
    let evictions_before = match (&rec, cache.as_ref()) {
        (Some(_), Some(c)) => c.stats().evictions,
        _ => 0,
    };
    for &e in experts {
        let key = ExpertKey { block, expert: e };
        if sched.is_resident(key) {
            continue;
        }
        let hit = match cache.as_mut() {
            Some(c) => {
                let admit = sched.cache_admission(key);
                let hint = sched.eviction_hint(key);
                let hit = c.access_with(key, admit, hint);
                if rec.is_some() {
                    probes.push(CacheProbe { key, admit, hint, hit });
                }
                hit
            }
            None => false,
        };
        if hit {
            continue;
        }
        // Transient staging buffer; OOM here is a real capacity failure.
        let mut buf_slot = None;
        if alloc_buffers {
            match machine.pool_mut(Tier::Hbm).alloc(plan.expert_bytes()) {
                Ok(id) => {
                    buffers.push(id);
                    if let Some(r) = rec.as_deref_mut() {
                        buf_slot = Some(r.buffer(id));
                    }
                }
                Err(err) => {
                    free_buffers(machine, buffers);
                    return Err(err.into());
                }
            }
        }
        // Per-expert labels only exist to render Fig 9 timelines; skip the
        // string build on untraced (steady-state) runs.
        let ev = if trace {
            machine.copy_to_gpu(
                &format!("fetch-b{block}e{e}"),
                plan.expert_bytes(),
                offload_tier,
                waits,
            )
        } else {
            machine.copy_to_gpu("fetch", plan.expert_bytes(), offload_tier, waits)
        };
        copied += plan.expert_bytes();
        last = Some(ev);
        if rec.is_some() {
            copies.push(PlanCopy { expert: e, buf: buf_slot });
        }
    }
    // All experts resident: the copy stream is in-order, so the last
    // submitted copy dominates. All-hit fetches complete immediately
    // relative to `waits` via a zero-length barrier.
    let done = match last {
        Some(ev) => ev,
        None => {
            let copy = machine.copy_stream();
            machine.engine_mut().barrier(copy, waits)
        }
    };
    if let Some(r) = rec {
        let wait_slots = r.slots_of(waits);
        let out = r.event(done);
        r.op(PlanOp::Fetch {
            block,
            bytes_each: plan.expert_bytes(),
            tier: offload_tier,
            probes,
            copies,
            waits: wait_slots,
            demand,
            out,
        });
        if let Some(c) = cache.as_ref() {
            let after = c.stats().evictions;
            if after > evictions_before {
                r.op(PlanOp::Evict { block, count: after - evictions_before });
            }
        }
    }
    Ok((done, copied))
}

/// One policy-driven decode iteration: every layer of the decoder stack,
/// hooks consulted per MoE block, fetches and transients managed by the
/// core. `routed` supplies the iteration's expert sets (the engine's
/// per-token trace slice or the batch scheduler's unions); `enc_blocks`
/// offsets decoder cache keys past the encoder's; `block_latencies`, when
/// supplied, receives each MoE block's latency in submission order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_iteration(
    env: &mut CoreEnv<'_>,
    sched: &mut dyn ExpertScheduler,
    topo: &GateTopology,
    routed: &dyn RoutedSource,
    token: usize,
    enc_blocks: usize,
    costs: &DecodeCosts,
    scratch: &mut CoreScratch,
    mut block_latencies: Option<&mut Vec<SimDuration>>,
    mut rec: Option<&mut PlanRecorder>,
) -> Result<()> {
    let dec_blocks = scratch.pending.len();
    scratch.reset();

    // Iteration-start directives (MoE-Prefetch's block-0 firehose,
    // SpeculativeTopM's block-0 speculation).
    let mut prefetches = std::mem::take(&mut scratch.prefetches);
    prefetches.clear();
    {
        let ctx = decode_ctx(env, topo, routed, token, dec_blocks);
        sched.on_iteration_start(&ctx, &mut prefetches);
    }
    for p in prefetches.drain(..) {
        issue_decode_prefetch(
            env,
            sched,
            &p,
            routed,
            None,
            enc_blocks,
            scratch,
            rec.as_deref_mut(),
        )?;
    }

    let mut moe_idx = 0usize;
    for layer in 0..costs.decoder_layers {
        let is_moe = layer % costs.moe_every == costs.moe_every - 1;
        let compute = env.machine.compute_stream();
        let block_start = env.machine.engine_mut().stream_tail(compute);
        if let Some(r) = rec.as_deref_mut() {
            r.op(PlanOp::BlockStart);
        }
        env.machine.launch_kernel("attn", 0.0, costs.attn_bytes, &[]);
        if let Some(r) = rec.as_deref_mut() {
            r.op(PlanOp::Gemm {
                label: "attn",
                bytes: PlanBytes::Attn,
                waits: Vec::new(),
                out: None,
            });
        }
        if !is_moe {
            env.machine.launch_kernel("ffn", 0.0, costs.ffn_bytes, &[]);
            if let Some(r) = rec.as_deref_mut() {
                r.op(PlanOp::Gemm {
                    label: "ffn",
                    bytes: PlanBytes::Ffn,
                    waits: Vec::new(),
                    out: None,
                });
            }
            continue;
        }
        let b = moe_idx;
        let experts = routed.experts(b);
        let gate = env.machine.compute_op("gate", env.machine.cost().gate_overhead, &[]);
        if let Some(r) = rec.as_deref_mut() {
            let out = r.event(gate);
            r.op(PlanOp::Gate { out });
        }

        // Resolve this block's expert availability FIRST: a serialized
        // residency fetch is on the block's critical path and must not
        // queue behind the next block's prefetch on the in-order copy
        // stream.
        scratch.waits.clear();
        let residency = {
            let ctx = decode_ctx(env, topo, routed, token, dec_blocks);
            sched.on_block_start(&ctx, b)
        };
        match residency {
            Residency::Resident => scratch.waits.push(gate),
            Residency::Fetch { set, after_gate } => {
                let slice: &[usize] = match &set {
                    FetchSet::Routed => experts,
                    FetchSet::All => &scratch.all_experts,
                    FetchSet::Listed(v) => v,
                };
                let waits: &[EventId] = if after_gate { &[gate] } else { &[] };
                let pending = &mut scratch.pending[b];
                let (ev, copied) = issue_copy(
                    env.machine,
                    env.plan,
                    env.cache,
                    env.offload_tier,
                    sched,
                    enc_blocks + b,
                    slice,
                    waits,
                    true,
                    &mut pending.buffers,
                    true,
                    rec.as_deref_mut(),
                )?;
                *env.demand_bytes += copied;
                scratch.waits.push(ev);
                scratch.waits.push(gate);
            }
            Residency::AwaitPending => match scratch.pending[b].done.take() {
                Some(ev) => {
                    scratch.waits.push(ev);
                    // Fill whatever the prefetch missed, on demand.
                    scratch.missing.clear();
                    if !scratch.pending[b].covered_all {
                        let covered = &scratch.pending[b].covered;
                        scratch.missing.extend(experts.iter().copied().filter(|&e| {
                            !covered.contains(&e)
                                && !sched
                                    .is_resident(ExpertKey { block: enc_blocks + b, expert: e })
                        }));
                    }
                    if !scratch.missing.is_empty() {
                        let missing = &scratch.missing;
                        let pending = &mut scratch.pending[b];
                        let (dev, copied) = issue_copy(
                            env.machine,
                            env.plan,
                            env.cache,
                            env.offload_tier,
                            sched,
                            enc_blocks + b,
                            missing,
                            &[gate],
                            true,
                            &mut pending.buffers,
                            true,
                            rec.as_deref_mut(),
                        )?;
                        *env.demand_bytes += copied;
                        scratch.waits.push(dev);
                    }
                    scratch.waits.push(gate);
                }
                None => {
                    // No prefetch in flight (first block(s) of the
                    // iteration): serialized routed fetch, like OnDemand —
                    // footnote 1 of the paper.
                    let pending = &mut scratch.pending[b];
                    let (ev, copied) = issue_copy(
                        env.machine,
                        env.plan,
                        env.cache,
                        env.offload_tier,
                        sched,
                        enc_blocks + b,
                        experts,
                        &[gate],
                        true,
                        &mut pending.buffers,
                        true,
                        rec.as_deref_mut(),
                    )?;
                    *env.demand_bytes += copied;
                    scratch.waits.push(ev);
                    scratch.waits.push(gate);
                }
            },
        }

        // Then the fetches this block's gate is responsible for (pre-gated
        // targets, the next block's full-set prefetch, ...).
        {
            let ctx = decode_ctx(env, topo, routed, token, dec_blocks);
            sched.on_gate(&ctx, b, &mut prefetches);
        }
        for p in prefetches.drain(..) {
            issue_decode_prefetch(
                env,
                sched,
                &p,
                routed,
                Some(gate),
                enc_blocks,
                scratch,
                rec.as_deref_mut(),
            )?;
        }

        // How the resident experts execute: single-GPU streaming by default,
        // or a sharded kernel bracketed by all-to-all hops under a
        // distributed scheduler (the hops serialize on the compute stream —
        // the cluster runs in lockstep).
        let eplan = {
            let ctx = decode_ctx(env, topo, routed, token, dec_blocks);
            sched.exec_plan(&ctx, b, experts)
        };
        let dispatch_wait;
        let exec_waits: &[EventId] = if eplan.dispatch > SimDuration::ZERO {
            let dispatch = env.machine.compute_op("a2a-dispatch", eplan.dispatch, &scratch.waits);
            if let Some(r) = rec.as_deref_mut() {
                let waits = r.slots_of(&scratch.waits);
                let out = r.event(dispatch);
                r.op(PlanOp::AllToAll { label: "a2a-dispatch", dur: eplan.dispatch, waits, out });
            }
            dispatch_wait = [dispatch];
            &dispatch_wait
        } else {
            &scratch.waits
        };
        let exec = env.machine.launch_kernel("expert", 0.0, eplan.exec_bytes, exec_waits);
        if let Some(r) = rec.as_deref_mut() {
            if r.dequant() {
                r.op(PlanOp::Dequant { block: b });
            }
            let waits = r.slots_of(exec_waits);
            let out = r.event(exec);
            r.op(PlanOp::Gemm {
                label: "expert",
                bytes: PlanBytes::Lit(eplan.exec_bytes),
                waits,
                out: Some(out),
            });
        }
        let done = if eplan.combine > SimDuration::ZERO {
            let combine = env.machine.compute_op("a2a-combine", eplan.combine, &[exec]);
            if let Some(r) = rec.as_deref_mut() {
                let waits = r.slots_of(&[exec]);
                let out = r.event(combine);
                r.op(PlanOp::AllToAll { label: "a2a-combine", dur: eplan.combine, waits, out });
            }
            combine
        } else {
            exec
        };
        if let Some(r) = rec.as_deref_mut() {
            if !scratch.pending[b].buffers.is_empty() {
                let bufs = r.buf_slots_of(&scratch.pending[b].buffers);
                r.op(PlanOp::FreeBufs { bufs });
            }
        }
        free_buffers(env.machine, &mut scratch.pending[b].buffers);
        if let Some(lat) = block_latencies.as_deref_mut() {
            lat.push(env.machine.event_time(done) - block_start);
            if let Some(r) = rec.as_deref_mut() {
                let done_slots = r.slots_of(&[done]);
                if let Some(&slot) = done_slots.first() {
                    r.op(PlanOp::Latency { done: slot });
                }
            }
        }
        moe_idx += 1;
    }
    // Safety net for schedulers that prefetched blocks which never
    // consumed their buffers.
    for p in &mut scratch.pending {
        if let Some(r) = rec.as_deref_mut() {
            if !p.buffers.is_empty() {
                let bufs = r.buf_slots_of(&p.buffers);
                r.op(PlanOp::FreeBufs { bufs });
            }
        }
        free_buffers(env.machine, &mut p.buffers);
    }
    scratch.prefetches = prefetches;
    Ok(())
}

/// Issues one decode-phase prefetch directive into its pending slot.
#[allow(clippy::too_many_arguments)]
fn issue_decode_prefetch(
    env: &mut CoreEnv<'_>,
    sched: &dyn ExpertScheduler,
    p: &Prefetch,
    routed: &dyn RoutedSource,
    gate: Option<EventId>,
    enc_blocks: usize,
    scratch: &mut CoreScratch,
    rec: Option<&mut PlanRecorder>,
) -> Result<()> {
    if p.block >= scratch.pending.len() {
        return Ok(()); // directive past the stack: ignore
    }
    let slice: &[usize] = match &p.set {
        FetchSet::Routed => routed.experts(p.block),
        FetchSet::All => &scratch.all_experts,
        FetchSet::Listed(v) => v,
    };
    let pending = &mut scratch.pending[p.block];
    // A second directive for the same block *merges* with the one already
    // in flight: experts the earlier prefetch covers are not copied again,
    // and coverage accumulates. The copy stream is in-order, so waiting on
    // the newest event also covers every earlier copy.
    let merging = pending.done.is_some();
    let dedup: Vec<usize>;
    let fetch_slice: &[usize] = if merging && pending.covered_all {
        &[]
    } else if merging {
        dedup = slice.iter().copied().filter(|e| !pending.covered.contains(e)).collect();
        &dedup
    } else {
        pending.covered.clear();
        pending.covered_all = false;
        slice
    };
    if matches!(p.set, FetchSet::All) {
        pending.covered_all = true;
    } else if !pending.covered_all {
        pending.covered.extend_from_slice(fetch_slice);
    }
    let waits_buf;
    let waits: &[EventId] = match (p.after_gate, gate) {
        (true, Some(g)) => {
            waits_buf = [g];
            &waits_buf
        }
        _ => &[],
    };
    let (ev, _copied) = issue_copy(
        env.machine,
        env.plan,
        env.cache,
        env.offload_tier,
        sched,
        enc_blocks + p.block,
        fetch_slice,
        waits,
        true,
        &mut pending.buffers,
        false,
        rec,
    )?;
    pending.done = Some(ev);
    Ok(())
}

fn decode_ctx<'a>(
    env: &'a CoreEnv<'_>,
    topo: &'a GateTopology,
    routed: &'a dyn RoutedSource,
    token: usize,
    dec_blocks: usize,
) -> PolicyCtx<'a> {
    PolicyCtx {
        phase: Phase::Decode,
        token,
        blocks: dec_blocks,
        num_experts: env.num_experts,
        active_per_block: env.plan.active_per_block(),
        expert_bytes: env.plan.expert_bytes(),
        topology: topo,
        routed: RoutedView::Sets(routed),
        cache: env.cache.as_ref(),
    }
}

fn prefill_ctx<'a>(
    env: &'a CoreEnv<'_>,
    topo: &'a GateTopology,
    enc_blocks: usize,
) -> PolicyCtx<'a> {
    PolicyCtx {
        phase: Phase::Prefill,
        token: 0,
        blocks: enc_blocks,
        num_experts: env.num_experts,
        active_per_block: env.plan.active_per_block(),
        expert_bytes: env.plan.expert_bytes(),
        topology: topo,
        routed: RoutedView::Hidden,
        cache: env.cache.as_ref(),
    }
}

/// One policy-driven prefill (encoder) pass. Expert activations are
/// *sampled* per block as the pass runs (the routing trace only covers
/// decode), so [`FetchSet::Routed`] directives for future blocks sample a
/// fresh set when the copy is issued — matching how a pre-gate's selection
/// materialises just-in-time. When `alloc_buffers` is false the caller
/// provides a staging region and fetches stream through it (the batch-1
/// engine); when true each fetch gets transient buffers (the batched
/// scheduler's prefill).
#[allow(clippy::too_many_arguments)]
pub(crate) fn prefill_pass(
    env: &mut CoreEnv<'_>,
    sched: &mut dyn ExpertScheduler,
    topo: &GateTopology,
    enc_blocks: usize,
    costs: &PrefillCosts,
    rng: &mut StdRng,
    alloc_buffers: bool,
) -> Result<()> {
    let mut pending: Vec<Pending> = (0..enc_blocks).map(|_| Pending::default()).collect();
    let mut prefetches: Vec<Prefetch> = Vec::new();
    let all_experts: Vec<usize> = (0..env.num_experts).collect();
    {
        let ctx = prefill_ctx(env, topo, enc_blocks);
        sched.on_iteration_start(&ctx, &mut prefetches);
    }
    for p in std::mem::take(&mut prefetches) {
        issue_prefill_prefetch(
            env,
            sched,
            &p,
            None,
            costs,
            rng,
            alloc_buffers,
            &all_experts,
            &mut pending,
        )?;
    }

    let mut moe_idx = 0usize;
    for layer in 0..costs.encoder_layers {
        let is_moe = layer % costs.moe_every == costs.moe_every - 1;
        env.machine.launch_kernel(costs.labels[0], costs.attn_flops, costs.attn_bytes, &[]);
        if !is_moe {
            env.machine.launch_kernel(costs.labels[1], costs.ffn_flops, costs.ffn_bytes, &[]);
            continue;
        }
        let b = moe_idx;
        // Sample this block's distinct activated experts.
        let own = sample_distinct_experts(costs.distinct, env.num_experts, rng);
        let gate = env.machine.compute_op("gate", env.machine.cost().gate_overhead, &[]);

        let mut waits: Vec<EventId> = Vec::with_capacity(3);
        let residency = {
            let ctx = prefill_ctx(env, topo, enc_blocks);
            sched.on_block_start(&ctx, b)
        };
        match residency {
            Residency::Resident => waits.push(gate),
            Residency::Fetch { set, after_gate } => {
                let slice: &[usize] = match &set {
                    FetchSet::Routed => &own,
                    FetchSet::All => &all_experts,
                    FetchSet::Listed(v) => v,
                };
                let copy_waits: &[EventId] = if after_gate { &[gate] } else { &[] };
                let (ev, copied) = issue_copy(
                    env.machine,
                    env.plan,
                    env.cache,
                    env.offload_tier,
                    sched,
                    b,
                    slice,
                    copy_waits,
                    alloc_buffers,
                    &mut pending[b].buffers,
                    true,
                    None,
                )?;
                *env.demand_bytes += copied;
                waits.push(ev);
                waits.push(gate);
            }
            // Prefill pipelines are approximate by design (prefetched
            // samples stand in for the block's own sample), so pending
            // fetches are taken at face value — no coverage fill.
            Residency::AwaitPending => match pending[b].done.take() {
                Some(ev) => {
                    waits.push(ev);
                    waits.push(gate);
                }
                None => {
                    let (ev, copied) = issue_copy(
                        env.machine,
                        env.plan,
                        env.cache,
                        env.offload_tier,
                        sched,
                        b,
                        &own,
                        &[gate],
                        alloc_buffers,
                        &mut pending[b].buffers,
                        true,
                        None,
                    )?;
                    *env.demand_bytes += copied;
                    waits.push(ev);
                    waits.push(gate);
                }
            },
        }
        let eplan = {
            let ctx = prefill_ctx(env, topo, enc_blocks);
            sched.exec_plan(&ctx, b, &own)
        };
        if eplan.dispatch > SimDuration::ZERO {
            let d = env.machine.compute_op("a2a-dispatch", eplan.dispatch, &waits);
            waits.clear();
            waits.push(d);
        }
        let exec =
            env.machine.launch_kernel(costs.labels[2], costs.exec_flops, eplan.exec_bytes, &waits);
        if eplan.combine > SimDuration::ZERO {
            env.machine.compute_op("a2a-combine", eplan.combine, &[exec]);
        }
        free_buffers(env.machine, &mut pending[b].buffers);

        // Issue follow-on fetches after this block's execution is queued —
        // the prefill pipeline holds at most one set of transients alive.
        {
            let ctx = prefill_ctx(env, topo, enc_blocks);
            sched.on_gate(&ctx, b, &mut prefetches);
        }
        for p in std::mem::take(&mut prefetches) {
            issue_prefill_prefetch(
                env,
                sched,
                &p,
                Some(gate),
                costs,
                rng,
                alloc_buffers,
                &all_experts,
                &mut pending,
            )?;
        }
        moe_idx += 1;
    }
    for p in &mut pending {
        free_buffers(env.machine, &mut p.buffers);
    }
    Ok(())
}

/// Issues one prefill-phase prefetch directive ([`FetchSet::Routed`]
/// samples a fresh activation set at issue time).
#[allow(clippy::too_many_arguments)]
fn issue_prefill_prefetch(
    env: &mut CoreEnv<'_>,
    sched: &dyn ExpertScheduler,
    p: &Prefetch,
    gate: Option<EventId>,
    costs: &PrefillCosts,
    rng: &mut StdRng,
    alloc_buffers: bool,
    all_experts: &[usize],
    pending: &mut [Pending],
) -> Result<()> {
    if p.block >= pending.len() {
        return Ok(());
    }
    let sampled;
    let slice: &[usize] = match &p.set {
        FetchSet::Routed => {
            sampled = sample_distinct_experts(costs.distinct, env.num_experts, rng);
            &sampled
        }
        FetchSet::All => all_experts,
        FetchSet::Listed(v) => v,
    };
    let waits_buf;
    let waits: &[EventId] = match (p.after_gate, gate) {
        (true, Some(g)) => {
            waits_buf = [g];
            &waits_buf
        }
        _ => &[],
    };
    let (ev, _copied) = issue_copy(
        env.machine,
        env.plan,
        env.cache,
        env.offload_tier,
        sched,
        p.block,
        slice,
        waits,
        alloc_buffers,
        &mut pending[p.block].buffers,
        false,
        None,
    )?;
    pending[p.block].done = Some(ev);
    Ok(())
}

/// Frees and drains transient expert buffers, keeping the vector's capacity
/// for the next iteration.
pub(crate) fn free_buffers(machine: &mut Machine, buffers: &mut Vec<AllocId>) {
    for id in buffers.drain(..) {
        machine.pool_mut(Tier::Hbm).free(id).expect("expert buffer double free");
    }
}

/// Expected number of distinct experts activated by `draws` independent
/// uniform draws over `experts` (balls-in-bins).
pub(crate) fn expected_distinct_experts(draws: usize, experts: usize) -> usize {
    let e = experts as f64;
    let expected = e * (1.0 - (1.0 - 1.0 / e).powi(draws as i32));
    (expected.round() as usize).clamp(1, experts)
}

/// Draws `count` distinct experts uniformly (partial Fisher–Yates), sorted.
pub(crate) fn sample_distinct_experts(
    count: usize,
    experts: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..experts).collect();
    for i in 0..count.min(experts) {
        let j = rng.gen_range(i..experts);
        pool.swap(i, j);
    }
    let mut chosen: Vec<usize> = pool[..count.min(experts)].to_vec();
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_expert_expectation_is_sane() {
        assert_eq!(expected_distinct_experts(1, 64), 1);
        assert!(expected_distinct_experts(64, 64) > 30);
        assert_eq!(expected_distinct_experts(10_000, 8), 8);
    }
}
