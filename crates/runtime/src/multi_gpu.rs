//! Multi-GPU expert parallelism — the paper's *motivation* baseline.
//!
//! Section III-A argues that the conventional fix for MoE's memory footprint
//! — sharding experts across many GPUs ("expert parallelism", GShard/
//! DeepSpeed-MoE style) — wastes the machines: with top-1 routing at batch 1
//! "the number of experts actually executed by each GPU becomes very low",
//! leaving most GPUs idle each block, and the all-to-all exchanges add
//! latency. This module quantifies that claim with the same discrete-event
//! substrate as the single-GPU policies, so the TCO argument of the paper
//! (one GPU + CPU memory vs a GPU farm) can be reproduced rather than taken
//! on faith.

use crate::Result;
use pgmoe_device::{CostModel, Link, MemoryPool, SimDuration, Tier};
use pgmoe_model::ModelConfig;
use pgmoe_workload::{RoutingKind, RoutingTrace};

/// Configuration of an expert-parallel cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of GPUs holding expert shards.
    pub num_gpus: usize,
    /// Per-GPU HBM capacity in bytes (A100-80GB by default).
    pub hbm_per_gpu: u64,
    /// Inter-GPU interconnect for the all-to-all token exchange.
    pub interconnect: Link,
    /// Kernel cost model (shared with the single-GPU experiments).
    pub cost: CostModel,
}

impl ClusterConfig {
    /// `num_gpus` A100s over 600 GB/s NVLink-class links.
    pub fn a100_nvlink(num_gpus: usize) -> Self {
        ClusterConfig {
            num_gpus,
            hbm_per_gpu: 80 * (1 << 30),
            interconnect: Link::new(600.0e9, SimDuration::from_micros(5)),
            cost: CostModel::a100_pcie4(),
        }
    }
}

/// Measurements from an expert-parallel decode simulation.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// GPUs in the cluster.
    pub num_gpus: usize,
    /// Mean MoE-block latency (compute + two all-to-alls).
    pub mean_block_latency: SimDuration,
    /// Fraction of GPU-time doing useful expert work during MoE blocks,
    /// averaged over GPUs — the paper's "low GPU compute utilization".
    pub expert_utilization: f64,
    /// Fraction of MoE blocks in which a given GPU had *no* expert activated
    /// ("none of the experts in a GPU are activated, leaving GPU idle").
    pub idle_block_fraction: f64,
}

/// Simulates batch-1 decoding over an expert-parallel cluster.
///
/// Experts of every MoE block are partitioned round-robin across GPUs; each
/// decode step routes the token through one expert per block, requiring an
/// all-to-all dispatch and combine over the interconnect when the activated
/// expert lives on a remote GPU.
///
/// # Errors
///
/// Returns an error if the shards do not fit per-GPU HBM.
pub fn simulate_expert_parallel(
    cfg: &ModelConfig,
    cluster: &ClusterConfig,
    decode_tokens: usize,
    seed: u64,
) -> Result<ClusterReport> {
    let g = cluster.num_gpus.max(1);
    // Capacity check: each GPU holds non-MoE replica + its expert shard.
    let shard_experts = cfg.num_experts.div_ceil(g);
    let shard_bytes =
        cfg.non_moe_bytes() + shard_experts as u64 * cfg.expert_bytes() * cfg.moe_layers() as u64;
    let mut pool = MemoryPool::new(Tier::Hbm, cluster.hbm_per_gpu);
    pool.alloc(shard_bytes).map_err(crate::RuntimeError::OutOfMemory)?;

    let dec_blocks = cfg.decoder_moe_layers();
    let trace = RoutingTrace::generate(
        decode_tokens,
        dec_blocks,
        cfg.num_experts,
        cfg.top_k,
        RoutingKind::Uniform,
        seed,
    );

    // Token activation vector is tiny (d_model floats); the all-to-all cost
    // is latency-dominated at batch 1.
    let bpp = cfg.precision.bytes_per_param();
    let token_bytes = (cfg.d_model as f64 * bpp) as u64;
    let expert_exec = cluster.cost.membound_time(cfg.expert_bytes());
    let attn = cluster.cost.membound_time((4 * cfg.d_model * cfg.d_model) as f64 as u64);
    let a2a = cluster.interconnect.transfer_time(token_bytes);

    let mut total = SimDuration::ZERO;
    let mut busy_expert = SimDuration::ZERO;
    let mut idle_blocks = 0u64;
    let mut blocks = 0u64;
    for tok in 0..decode_tokens {
        for b in 0..dec_blocks {
            let experts = trace.experts(tok, b);
            // Which GPUs execute this block? owner = expert % g.
            let owners: std::collections::HashSet<usize> = experts.iter().map(|e| e % g).collect();
            // Block latency: attention (replicated) + dispatch + the slowest
            // owner's expert work + combine.
            let per_owner = experts.len().div_ceil(owners.len());
            let exec = SimDuration::from_nanos(expert_exec.as_nanos() * per_owner as u64);
            let block = attn + a2a + exec + a2a + cluster.cost.gate_overhead;
            total += block;
            busy_expert += exec; // only owners work; others idle
            blocks += 1;
            idle_blocks += (g - owners.len()) as u64;
        }
    }
    let mean_block = SimDuration::from_nanos(total.as_nanos() / blocks.max(1));
    // Utilization: expert-busy GPU-time over total GPU-time across g GPUs.
    let utilization = busy_expert.as_nanos() as f64 / (total.as_nanos() as f64 * g as f64);
    Ok(ClusterReport {
        num_gpus: g,
        mean_block_latency: mean_block,
        expert_utilization: utilization,
        idle_block_fraction: idle_blocks as f64 / (blocks * g as u64) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_base_128_needs_multiple_gpus() {
        // 30 GB model: 1 GPU fits; but Switch-Large needs sharding.
        let large = ModelConfig::switch_large_128();
        let one = simulate_expert_parallel(&large, &ClusterConfig::a100_nvlink(1), 4, 1);
        assert!(one.is_err(), "105.6 GB cannot fit one 80 GB GPU");
        let four = simulate_expert_parallel(&large, &ClusterConfig::a100_nvlink(4), 4, 1);
        assert!(four.is_ok(), "4-way sharding must fit");
    }

    #[test]
    fn utilization_collapses_with_gpu_count() {
        // Section III-A: top-1 at batch 1 leaves most GPUs idle.
        let cfg = ModelConfig::switch_base(64);
        let u2 = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(2), 16, 2)
            .unwrap()
            .expert_utilization;
        let u8 = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(8), 16, 2)
            .unwrap()
            .expert_utilization;
        assert!(u8 < u2, "more GPUs must mean lower utilization ({u2} vs {u8})");
        assert!(u8 < 0.15, "8-way expert parallelism is mostly idle ({u8})");
    }

    #[test]
    fn idle_fraction_matches_top1_math() {
        // With top-1 routing, exactly one GPU owns the activated expert per
        // block: g-1 of g GPUs idle → idle fraction = (g-1)/g.
        let cfg = ModelConfig::switch_base(64);
        let r = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(4), 8, 3).unwrap();
        assert!((r.idle_block_fraction - 0.75).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ModelConfig::switch_base(8);
        let a = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(2), 8, 5).unwrap();
        let b = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(2), 8, 5).unwrap();
        assert_eq!(a.mean_block_latency, b.mean_block_latency);
    }
}
