//! Multi-GPU expert parallelism — the paper's *motivation* baseline, as a
//! pluggable scheduler.
//!
//! Section III-A argues that the conventional fix for MoE's memory footprint
//! — sharding experts across many GPUs ("expert parallelism", GShard/
//! DeepSpeed-MoE style) — wastes the machines: with top-1 routing at batch 1
//! "the number of experts actually executed by each GPU becomes very low",
//! leaving most GPUs idle each block, and the all-to-all exchanges add
//! latency.
//!
//! This module models that cluster as an [`ExpertScheduler`]: every expert
//! is resident on *some* GPU (no host offload, nothing to fetch), and the
//! [`ExpertScheduler::exec_plan`] hook charges only the critical-path
//! shard's bytes while serializing an all-to-all dispatch/combine hop around
//! every MoE kernel. Because it is an ordinary scheduler, the motivation
//! baseline executes through the exact same decode core as the paper's
//! single-GPU policies — and doubles as a drop-in *serving backend*:
//! `SimOptions::new(PolicySpec::expert_parallel(&cluster))` runs under
//! [`InferenceSim`], [`BatchScheduler`], and the fleet simulator alike
//! (`crate::fleet` stages the iso-GPU shootout).
//!
//! [`simulate_expert_parallel`] reproduces the Section III-A numbers
//! (utilization collapse, idle fractions) by driving the core directly.
//!
//! [`ExpertScheduler`]: crate::scheduler::ExpertScheduler
//! [`ExpertScheduler::exec_plan`]: crate::scheduler::ExpertScheduler::exec_plan
//! [`InferenceSim`]: crate::InferenceSim
//! [`BatchScheduler`]: crate::BatchScheduler

use crate::core::{self, CoreEnv, CoreScratch, DecodeCosts};
use crate::scheduler::{
    ExecPlan, ExpertScheduler, HbmPlan, MemoryProfile, PolicyCtx, PolicySpec, Residency,
    RoutedSource, SchedulerFactory, SchedulerSetup,
};
use crate::{ExpertKey, Result, RuntimeError, SimOptions};
use pgmoe_device::{CostModel, Link, Machine, MachineConfig, MemoryPool, SimDuration, Tier};
use pgmoe_model::ModelConfig;
use pgmoe_workload::{RoutingKind, RoutingTrace};
use std::sync::Arc;

/// Configuration of an expert-parallel cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of GPUs holding expert shards.
    pub num_gpus: usize,
    /// Per-GPU HBM capacity in bytes (A100-80GB by default).
    pub hbm_per_gpu: u64,
    /// Inter-GPU interconnect for the all-to-all token exchange.
    pub interconnect: Link,
    /// Kernel cost model (shared with the single-GPU experiments).
    pub cost: CostModel,
}

impl ClusterConfig {
    /// `num_gpus` A100s over 600 GB/s NVLink-class links (5 µs hop latency,
    /// the paper's kernel cost model). Override the defaults with
    /// [`ClusterConfig::with_cost`] / [`ClusterConfig::with_interconnect`].
    pub fn a100_nvlink(num_gpus: usize) -> Self {
        ClusterConfig {
            num_gpus,
            hbm_per_gpu: 80 * (1 << 30),
            interconnect: Link::new(600.0e9, SimDuration::from_micros(5)),
            cost: CostModel::a100_pcie4(),
        }
    }

    /// Builder: use a custom kernel cost model (different GPU generation,
    /// recalibrated bandwidth).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder: use a custom all-to-all interconnect (PCIe-only clusters,
    /// multi-node Ethernet, faster NVLink).
    pub fn with_interconnect(mut self, interconnect: Link) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Builder: per-GPU HBM capacity in bytes.
    pub fn with_hbm_per_gpu(mut self, bytes: u64) -> Self {
        self.hbm_per_gpu = bytes;
        self
    }

    /// Validates the cluster shape.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] if the cluster has no GPUs.
    pub fn validate(&self) -> Result<()> {
        validate_gpus(self.num_gpus)
    }
}

/// The one copy of the cluster-shape rule, shared by [`ClusterConfig`] and
/// the scheduler's topology hook (which the serving paths call before any
/// work starts).
fn validate_gpus(num_gpus: usize) -> Result<()> {
    if num_gpus == 0 {
        return Err(RuntimeError::InvalidConfig {
            message: "an expert-parallel cluster needs at least 1 GPU".into(),
        });
    }
    Ok(())
}

/// Measurements from an expert-parallel decode simulation.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// GPUs in the cluster.
    pub num_gpus: usize,
    /// Mean MoE-block latency (compute + two all-to-alls).
    pub mean_block_latency: SimDuration,
    /// Fraction of GPU-time doing useful expert work during MoE blocks,
    /// averaged over GPUs — the paper's "low GPU compute utilization".
    pub expert_utilization: f64,
    /// Fraction of MoE blocks in which a given GPU had *no* expert activated
    /// ("none of the experts in a GPU are activated, leaving GPU idle").
    pub idle_block_fraction: f64,
}

impl PolicySpec {
    /// Expert-parallel execution over `cluster` as a pluggable scheduler —
    /// the motivation baseline as a drop-in serving backend.
    ///
    /// Experts of every MoE block are partitioned round-robin across the
    /// cluster's GPUs (`owner = expert % num_gpus`); nothing migrates from
    /// the host, and every MoE kernel is bracketed by an all-to-all
    /// dispatch and combine hop over [`ClusterConfig::interconnect`]. The
    /// simulated [`Machine`] stands for the cluster's critical-path GPU
    /// (the shards run in lockstep), so pair this spec with a machine whose
    /// cost model and HBM capacity match the cluster:
    ///
    /// ```
    /// use pgmoe_model::ModelConfig;
    /// use pgmoe_runtime::{ClusterConfig, InferenceSim, PolicySpec, SimOptions};
    /// use pgmoe_workload::DecodeRequest;
    ///
    /// let cluster = ClusterConfig::a100_nvlink(4);
    /// let mut opts = SimOptions::new(PolicySpec::expert_parallel(&cluster));
    /// opts.machine.hbm_capacity = cluster.hbm_per_gpu;
    /// opts.machine.cost = cluster.cost;
    /// let report = InferenceSim::new(ModelConfig::switch_base(8), opts)
    ///     .run(DecodeRequest { input_tokens: 16, output_tokens: 2, batch_size: 1 }, 1)?;
    /// assert_eq!(report.expert_fetch_bytes, 0, "nothing migrates from the host");
    /// # Ok::<(), pgmoe_runtime::RuntimeError>(())
    /// ```
    pub fn expert_parallel(cluster: &ClusterConfig) -> Self {
        PolicySpec::custom(Arc::new(ExpertParallelFactory {
            num_gpus: cluster.num_gpus,
            interconnect: cluster.interconnect,
        }))
    }
}

#[derive(Debug)]
struct ExpertParallelFactory {
    num_gpus: usize,
    interconnect: Link,
}

impl SchedulerFactory for ExpertParallelFactory {
    fn scheduler_name(&self) -> String {
        format!("Expert-Parallel-{}GPU", self.num_gpus)
    }

    fn build(&self, setup: &SchedulerSetup) -> Box<dyn ExpertScheduler> {
        Box::new(ClusterScheduler {
            num_gpus: self.num_gpus,
            a2a: self.interconnect.transfer_time(setup.token_bytes),
        })
    }
}

/// The expert-parallel cluster as an [`ExpertScheduler`]: all experts
/// resident across cluster HBM, sharded execution with all-to-all hops.
#[derive(Debug)]
struct ClusterScheduler {
    num_gpus: usize,
    /// One all-to-all hop: the interconnect moves one token's activation
    /// vector (latency-dominated at batch 1).
    a2a: SimDuration,
}

impl ClusterScheduler {
    /// Distinct GPUs owning at least one of `experts` (owner = `e % g`).
    fn owners(&self, experts: &[usize]) -> usize {
        let g = self.num_gpus.max(1);
        let mut seen = vec![false; g];
        let mut count = 0usize;
        for &e in experts {
            let owner = e % g;
            if !seen[owner] {
                seen[owner] = true;
                count += 1;
            }
        }
        count
    }
}

impl ExpertScheduler for ClusterScheduler {
    fn name(&self) -> String {
        format!("Expert-Parallel-{}GPU", self.num_gpus)
    }

    // Experts live off this GPU (on its peers), so the full MoE parameter
    // set is booked against the "offload" tier — which here stands for the
    // rest of the cluster's HBM, not host DRAM — while `is_resident` keeps
    // the core from ever copying anything across PCIe.
    fn offloads_experts(&self) -> bool {
        true
    }

    fn decoder_topology(&self, dec_blocks: usize) -> Result<pgmoe_model::GateTopology> {
        validate_gpus(self.num_gpus)?;
        Ok(pgmoe_model::GateTopology::conventional(dec_blocks))
    }

    fn hbm_plan(&self, profile: &MemoryProfile) -> HbmPlan {
        let g = self.num_gpus.max(1);
        let shard = profile.num_experts.div_ceil(g);
        HbmPlan {
            // The local shard is this GPU's permanent share of the experts.
            resident_bytes: (profile.moe_layers * shard) as u64 * profile.expert_bytes,
            transient_bytes: 0,
            encoder_staging_experts: 0,
        }
    }

    fn on_block_start(&mut self, _ctx: &PolicyCtx<'_>, _block: usize) -> Residency {
        // Somewhere in the cluster the expert is already in HBM.
        Residency::Resident
    }

    fn exec_plan(&self, ctx: &PolicyCtx<'_>, _block: usize, experts: &[usize]) -> ExecPlan {
        if experts.is_empty() {
            return ExecPlan::local(0, ctx.expert_bytes);
        }
        // The slowest owner executes ceil(|experts| / owners) experts; the
        // token exchange adds an all-to-all hop on both sides.
        let per_owner = experts.len().div_ceil(self.owners(experts));
        ExecPlan {
            exec_bytes: per_owner as u64 * ctx.expert_bytes,
            dispatch: self.a2a,
            combine: self.a2a,
        }
    }

    fn is_resident(&self, _key: ExpertKey) -> bool {
        true
    }
}

/// One decode iteration's routing as a slice of a trace.
struct TraceRouted<'a> {
    trace: &'a RoutingTrace,
    token: usize,
}

impl RoutedSource for TraceRouted<'_> {
    fn experts(&self, block: usize) -> &[usize] {
        self.trace.experts(self.token, block)
    }
}

/// Simulates batch-1 decoding over an expert-parallel cluster by driving
/// the shared decode core with a [`PolicySpec::expert_parallel`] scheduler.
///
/// Experts of every MoE block are partitioned round-robin across GPUs; each
/// decode step routes the token through `top_k` experts per block,
/// requiring an all-to-all dispatch and combine over the interconnect. The
/// occupancy statistics (utilization, idle fraction) are computed over the
/// same routing trace the core executes.
///
/// # Errors
///
/// Returns an error if the shards do not fit per-GPU HBM, or the cluster
/// configuration is invalid.
pub fn simulate_expert_parallel(
    cfg: &ModelConfig,
    cluster: &ClusterConfig,
    decode_tokens: usize,
    seed: u64,
) -> Result<ClusterReport> {
    cluster.validate()?;
    let g = cluster.num_gpus;
    // Capacity check: each GPU holds the non-MoE replica + its expert shard.
    let shard_experts = cfg.num_experts.div_ceil(g);
    let shard_bytes =
        cfg.non_moe_bytes() + shard_experts as u64 * cfg.expert_bytes() * cfg.moe_layers() as u64;
    let mut pool = MemoryPool::new(Tier::Hbm, cluster.hbm_per_gpu);
    pool.alloc(shard_bytes).map_err(RuntimeError::OutOfMemory)?;

    let dec_blocks = cfg.decoder_moe_layers();
    let trace = RoutingTrace::generate(
        decode_tokens,
        dec_blocks,
        cfg.num_experts,
        cfg.top_k,
        RoutingKind::Uniform,
        seed,
    );

    // The machine stands for the cluster's critical-path GPU; the shards
    // run in lockstep, so one timeline prices every block.
    let spec = PolicySpec::expert_parallel(cluster);
    let mut opts = SimOptions::new(spec.clone());
    opts.machine = MachineConfig {
        hbm_capacity: cluster.hbm_per_gpu,
        cost: cluster.cost,
        ..MachineConfig::a100_like()
    };
    let plan = crate::PlacementPlan::new(cfg, &opts, 0, 1);
    let mut machine = Machine::new(opts.machine.clone());
    let mut sched = spec.build(&opts.setup_for(cfg));
    let topo = sched.decoder_topology(dec_blocks)?;

    // Only the MoE stack matters for the Section III-A statistics: drive
    // the core with one attention kernel per block (the paper's replicated
    // attention) and no dense-FFN interleave.
    let costs = DecodeCosts {
        attn_bytes: (4 * cfg.d_model * cfg.d_model) as u64,
        ffn_bytes: 0,
        decoder_layers: dec_blocks,
        moe_every: 1,
    };
    let mut cache = None;
    let mut demand_bytes = 0u64;
    let mut scratch = CoreScratch::new(dec_blocks, cfg.num_experts);
    let mut block_latencies: Vec<SimDuration> = Vec::with_capacity(decode_tokens * dec_blocks);
    for tok in 0..decode_tokens {
        let mut env = CoreEnv {
            machine: &mut machine,
            plan: &plan,
            cache: &mut cache,
            offload_tier: Tier::Ddr,
            num_experts: cfg.num_experts,
            demand_bytes: &mut demand_bytes,
        };
        core::decode_iteration(
            &mut env,
            sched.as_mut(),
            &topo,
            &TraceRouted { trace: &trace, token: tok },
            tok,
            0,
            &costs,
            &mut scratch,
            Some(&mut block_latencies),
            None,
        )?;
    }
    debug_assert_eq!(demand_bytes, 0, "cluster experts never migrate");

    // Occupancy statistics over the executed trace: which GPUs owned work,
    // and how long the slowest owner's kernel ran (the same pricing the
    // core used).
    let mut busy_expert = SimDuration::ZERO;
    let mut idle_blocks = 0u64;
    let mut blocks = 0u64;
    for tok in 0..decode_tokens {
        for b in 0..dec_blocks {
            let experts = trace.experts(tok, b);
            let owners: std::collections::HashSet<usize> = experts.iter().map(|e| e % g).collect();
            let per_owner = experts.len().div_ceil(owners.len());
            busy_expert += cluster.cost.membound_time(per_owner as u64 * cfg.expert_bytes());
            blocks += 1;
            idle_blocks += (g - owners.len()) as u64;
        }
    }
    let total: SimDuration = block_latencies.iter().fold(SimDuration::ZERO, |acc, &d| acc + d);
    let mean_block = SimDuration::from_nanos(total.as_nanos() / blocks.max(1));
    // Utilization: expert-busy GPU-time over total GPU-time across g GPUs.
    let utilization = busy_expert.as_nanos() as f64 / (total.as_nanos() as f64 * g as f64).max(1.0);
    Ok(ClusterReport {
        num_gpus: g,
        mean_block_latency: mean_block,
        expert_utilization: utilization,
        idle_block_fraction: idle_blocks as f64 / (blocks * g as u64).max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InferenceSim;
    use pgmoe_workload::DecodeRequest;

    #[test]
    fn switch_base_128_needs_multiple_gpus() {
        // 30 GB model: 1 GPU fits; but Switch-Large needs sharding.
        let large = ModelConfig::switch_large_128();
        let one = simulate_expert_parallel(&large, &ClusterConfig::a100_nvlink(1), 4, 1);
        assert!(one.is_err(), "105.6 GB cannot fit one 80 GB GPU");
        let four = simulate_expert_parallel(&large, &ClusterConfig::a100_nvlink(4), 4, 1);
        assert!(four.is_ok(), "4-way sharding must fit");
    }

    #[test]
    fn utilization_collapses_with_gpu_count() {
        // Section III-A: top-1 at batch 1 leaves most GPUs idle.
        let cfg = ModelConfig::switch_base(64);
        let u2 = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(2), 16, 2)
            .unwrap()
            .expert_utilization;
        let u8 = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(8), 16, 2)
            .unwrap()
            .expert_utilization;
        assert!(u8 < u2, "more GPUs must mean lower utilization ({u2} vs {u8})");
        assert!(u8 < 0.15, "8-way expert parallelism is mostly idle ({u8})");
    }

    #[test]
    fn idle_fraction_matches_top1_math() {
        // With top-1 routing, exactly one GPU owns the activated expert per
        // block: g-1 of g GPUs idle → idle fraction = (g-1)/g.
        let cfg = ModelConfig::switch_base(64);
        let r = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(4), 8, 3).unwrap();
        assert!((r.idle_block_fraction - 0.75).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ModelConfig::switch_base(8);
        let a = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(2), 8, 5).unwrap();
        let b = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(2), 8, 5).unwrap();
        assert_eq!(a.mean_block_latency, b.mean_block_latency);
    }

    /// Golden rows: the `ClusterScheduler` rewrite (through the shared
    /// decode core) must reproduce the legacy hand-rolled
    /// `simulate_expert_parallel` loop bit-exactly. Captured from the
    /// pre-rewrite implementation (commit `09c6314`).
    #[test]
    fn cluster_scheduler_reproduces_legacy_simulation_numbers() {
        let check = |experts: usize, g: usize, toks: usize, seed: u64, ns: u64, util: f64| {
            let cfg = ModelConfig::switch_base(experts);
            let r =
                simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(g), toks, seed).unwrap();
            let tag = format!("experts={experts} g={g} toks={toks} seed={seed}");
            assert_eq!(r.mean_block_latency.as_nanos(), ns, "{tag}: mean block latency");
            assert!((r.expert_utilization - util).abs() < 1e-12, "{tag}: utilization");
        };
        check(64, 4, 8, 3, 491_378, 0.20616307608399237);
        check(64, 2, 16, 2, 491_378, 0.41232615216798474);
        check(64, 8, 16, 2, 491_378, 0.10308153804199618);
        check(8, 2, 8, 5, 491_378, 0.41232615216798474);
        let large = ModelConfig::switch_large_128();
        let r = simulate_expert_parallel(&large, &ClusterConfig::a100_nvlink(4), 4, 1).unwrap();
        assert_eq!(r.mean_block_latency.as_nanos(), 835_446, "large golden");
        assert!((r.expert_utilization - 0.21277587061282238).abs() < 1e-12);
        assert!((r.idle_block_fraction - 0.75).abs() < 1e-12);
    }

    /// Hand-computable tiny topology: top-1 routing always activates one
    /// owner, so every MoE block costs attention + gate + two all-to-all
    /// hops + one expert kernel, and the per-GPU occupancy follows from
    /// closed-form arithmetic over the cost model.
    #[test]
    fn block_latency_and_occupancy_match_closed_form() {
        let cfg = ModelConfig::switch_base(8);
        let cluster = ClusterConfig::a100_nvlink(2);
        let r = simulate_expert_parallel(&cfg, &cluster, 8, 5).unwrap();
        let attn = cluster.cost.membound_time((4 * cfg.d_model * cfg.d_model) as u64);
        let exec = cluster.cost.membound_time(cfg.expert_bytes());
        let token_bytes = (cfg.d_model as f64 * cfg.precision.bytes_per_param()) as u64;
        let a2a = cluster.interconnect.transfer_time(token_bytes);
        let block = attn + cluster.cost.gate_overhead + a2a + exec + a2a;
        assert_eq!(r.mean_block_latency, block, "block = attn + gate + a2a + exec + a2a");
        let util = exec.as_nanos() as f64 / (block.as_nanos() as f64 * 2.0);
        assert!((r.expert_utilization - util).abs() < 1e-12, "util = exec / (block · g)");
        assert!((r.idle_block_fraction - 0.5).abs() < 1e-12, "(g-1)/g with g=2");
    }

    #[test]
    fn builders_override_cost_and_interconnect() {
        let slow_link = Link::new(64.0e9, SimDuration::from_micros(20));
        let slow = ClusterConfig::a100_nvlink(2).with_interconnect(slow_link);
        assert_eq!(slow.interconnect, slow_link);
        let cfg = ModelConfig::switch_base(8);
        let fast = simulate_expert_parallel(&cfg, &ClusterConfig::a100_nvlink(2), 4, 1).unwrap();
        let slowed = simulate_expert_parallel(&cfg, &slow, 4, 1).unwrap();
        assert!(
            slowed.mean_block_latency > fast.mean_block_latency,
            "a slower interconnect must lengthen every block ({} !> {})",
            slowed.mean_block_latency,
            fast.mean_block_latency
        );
        // A custom cost model flows into kernels and occupancy alike.
        let mut cheap_cost = CostModel::a100_pcie4();
        cheap_cost.effective_hbm_bw *= 2.0;
        let cheap = ClusterConfig::a100_nvlink(2).with_cost(cheap_cost);
        let faster = simulate_expert_parallel(&cfg, &cheap, 4, 1).unwrap();
        assert!(faster.mean_block_latency < fast.mean_block_latency);
        let tiny = ClusterConfig::a100_nvlink(4).with_hbm_per_gpu(1 << 30);
        assert!(simulate_expert_parallel(&cfg, &tiny, 4, 1).is_err(), "1 GB shards OOM");
    }

    #[test]
    fn zero_gpu_cluster_is_rejected_everywhere() {
        let cfg = ModelConfig::switch_base(8);
        let zero = ClusterConfig::a100_nvlink(0);
        assert!(matches!(zero.validate(), Err(RuntimeError::InvalidConfig { .. })));
        assert!(matches!(
            simulate_expert_parallel(&cfg, &zero, 4, 1),
            Err(RuntimeError::InvalidConfig { .. })
        ));
        // The serving paths reject it through the scheduler's topology hook.
        let err = InferenceSim::new(cfg, SimOptions::new(PolicySpec::expert_parallel(&zero)))
            .run(DecodeRequest { input_tokens: 8, output_tokens: 2, batch_size: 1 }, 1);
        assert!(matches!(err, Err(RuntimeError::InvalidConfig { .. })));
    }

    #[test]
    fn cluster_spec_serves_through_the_shared_core() {
        // The motivation baseline as a drop-in backend: no host migration,
        // a2a-stretched blocks, name threading through RunReport.
        let cfg = ModelConfig::switch_base(8);
        let cluster = ClusterConfig::a100_nvlink(4);
        let mut opts = SimOptions::new(PolicySpec::expert_parallel(&cluster));
        opts.machine.cost = cluster.cost;
        let r = InferenceSim::new(cfg.clone(), opts)
            .run(DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 }, 1)
            .unwrap();
        assert_eq!(r.policy, "Expert-Parallel-4GPU");
        assert_eq!(r.expert_fetch_bytes, 0, "nothing migrates from the host");
        assert_eq!(r.demand_fetch_bytes, 0);
        assert!(r.tokens_per_sec > 0.0);
        let gpu = InferenceSim::new(cfg, SimOptions::new(crate::OffloadPolicy::GpuOnly))
            .run(DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 }, 1)
            .unwrap();
        assert!(
            r.mean_block_latency() > gpu.mean_block_latency(),
            "all-to-all hops must stretch every MoE block past GPU-only"
        );
    }
}
