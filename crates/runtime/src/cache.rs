//! Expert cache with LIFO / LFU / LRU replacement (Fig 15).
//!
//! Huang et al. observed a few hot experts dominate MoE inference and
//! proposed buffering them in GPU memory with a LIFO policy; SE-MoE uses
//! LFU. The paper evaluates caching on top of both Pre-gated MoE and
//! MoE-OnDemand with all three replacement policies — this type implements
//! the cache those experiments share.

use crate::Replacement;
use std::collections::HashMap;

/// Identity of an expert: (MoE block index, expert index within the block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExpertKey {
    /// MoE block the expert belongs to.
    pub block: usize,
    /// Expert index within the block.
    pub expert: usize,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that found the expert resident.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of evictions performed.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 for an unused cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    inserted_at: u64,
    last_used: u64,
    uses: u64,
}

/// A fixed-capacity set of GPU-resident experts.
///
/// `access` performs lookup + admission in one step, mirroring how the
/// serving loop touches the cache: every fetched expert is admitted, evicting
/// per the configured policy when full.
///
/// # Example
///
/// ```
/// use pgmoe_runtime::{ExpertCache, ExpertKey, Replacement};
///
/// let mut cache = ExpertCache::new(1, Replacement::Lru);
/// let a = ExpertKey { block: 0, expert: 3 };
/// let b = ExpertKey { block: 0, expert: 5 };
/// assert!(!cache.access(a)); // miss, admitted
/// assert!(cache.access(a));  // hit
/// assert!(!cache.access(b)); // miss, evicts a (LRU)
/// assert!(!cache.access(a));
/// ```
#[derive(Debug, Clone)]
pub struct ExpertCache {
    capacity: usize,
    replacement: Replacement,
    entries: HashMap<ExpertKey, Entry>,
    clock: u64,
    stats: CacheStats,
}

impl ExpertCache {
    /// Creates a cache holding up to `capacity` experts.
    pub fn new(capacity: usize, replacement: Replacement) -> Self {
        ExpertCache {
            capacity,
            replacement,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache capacity in experts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of experts currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no experts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is resident, without touching recency/frequency state.
    pub fn contains(&self, key: ExpertKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`; on a miss the expert is admitted (evicting if full).
    /// Returns whether the lookup was a hit.
    pub fn access(&mut self, key: ExpertKey) -> bool {
        self.access_with(key, true, None)
    }

    /// Policy-steered lookup: like [`ExpertCache::access`], but a scheduler
    /// may veto admission on a miss (`admit = false`) or suggest a preferred
    /// eviction victim (`evict_hint`; ignored unless resident). The
    /// hit/miss counters are identical to `access` either way — only what
    /// ends up resident changes.
    pub fn access_with(
        &mut self,
        key: ExpertKey,
        admit: bool,
        evict_hint: Option<ExpertKey>,
    ) -> bool {
        self.clock += 1;
        if self.capacity == 0 {
            self.stats.misses += 1;
            return false;
        }
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = self.clock;
            e.uses += 1;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if !admit {
            return false;
        }
        if self.entries.len() >= self.capacity {
            let victim = evict_hint
                .filter(|hint| *hint != key && self.entries.contains_key(hint))
                .or_else(|| self.pick_victim());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key, Entry { inserted_at: self.clock, last_used: self.clock, uses: 1 });
        false
    }

    /// Resizes the cache to hold `capacity` experts, evicting down through
    /// the configured replacement policy when the new capacity is below the
    /// current residency. This is the KV-arbitration seam: the paged-KV
    /// session shrinks the cache when KV blocks need its HBM and regrows it
    /// when headroom returns.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            match self.pick_victim() {
                Some(victim) => {
                    self.entries.remove(&victim);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Shift-invariant fingerprint of the cache's decision-relevant state,
    /// used as the residency component of a compiled-plan cache key.
    ///
    /// Two states share a fingerprint only when every future
    /// lookup/eviction decision would be identical: the hash covers
    /// capacity, replacement policy, the resident key set, each entry's
    /// recency expressed as `clock - last_used` (invariant under the
    /// uniform clock advance of a steady-state iteration), and the
    /// *ranks* (with ties preserved) of `uses` and `inserted_at` — the
    /// orderings [`ExpertCache::set_capacity`] and eviction consult —
    /// rather than their raw counters, so two iterations that touch the
    /// same residents in the same relative order fingerprint equal even
    /// though the absolute clock has moved on.
    pub fn state_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            let mut h = h;
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        }
        // Tie-preserving rank: entries sharing a raw value share a rank.
        fn ranks(values: &[u64]) -> Vec<u64> {
            let mut sorted: Vec<u64> = values.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            values
                .iter()
                .map(|v| sorted.binary_search(v).expect("rank of present value") as u64)
                .collect()
        }
        let mut keys: Vec<ExpertKey> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let uses: Vec<u64> = keys.iter().map(|k| self.entries[k].uses).collect();
        let inserted: Vec<u64> = keys.iter().map(|k| self.entries[k].inserted_at).collect();
        let use_ranks = ranks(&uses);
        let ins_ranks = ranks(&inserted);
        let mut h = FNV_OFFSET;
        h = mix(h, self.capacity as u64);
        h = mix(
            h,
            match self.replacement {
                Replacement::Lifo => 1,
                Replacement::Lfu => 2,
                Replacement::Lru => 3,
            },
        );
        h = mix(h, keys.len() as u64);
        for (i, k) in keys.iter().enumerate() {
            h = mix(h, k.block as u64);
            h = mix(h, k.expert as u64);
            h = mix(h, self.clock - self.entries[k].last_used);
            h = mix(h, use_ranks[i]);
            h = mix(h, ins_ranks[i]);
        }
        h
    }

    /// The eviction candidate under the configured policy (ties broken by
    /// key order for determinism).
    fn pick_victim(&self) -> Option<ExpertKey> {
        let best = |f: fn(&Entry) -> u64, prefer_large: bool| {
            self.entries
                .iter()
                .min_by_key(|(k, e)| {
                    let v = f(e);
                    (if prefer_large { u64::MAX - v } else { v }, **k)
                })
                .map(|(k, _)| *k)
        };
        match self.replacement {
            // LIFO keeps early residents and evicts the newest arrival —
            // that is what protects hot experts admitted early.
            Replacement::Lifo => best(|e| e.inserted_at, true),
            Replacement::Lfu => best(|e| e.uses, false),
            Replacement::Lru => best(|e| e.last_used, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(block: usize, expert: usize) -> ExpertKey {
        ExpertKey { block, expert }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ExpertCache::new(2, Replacement::Lru);
        c.access(key(0, 0));
        c.access(key(0, 1));
        c.access(key(0, 0)); // refresh 0
        c.access(key(0, 2)); // evicts 1
        assert!(c.contains(key(0, 0)));
        assert!(!c.contains(key(0, 1)));
        assert!(c.contains(key(0, 2)));
    }

    #[test]
    fn lfu_evicts_least_frequently_used() {
        let mut c = ExpertCache::new(2, Replacement::Lfu);
        c.access(key(0, 0));
        c.access(key(0, 0));
        c.access(key(0, 0));
        c.access(key(0, 1));
        c.access(key(0, 2)); // evicts 1 (1 use vs 3)
        assert!(c.contains(key(0, 0)));
        assert!(!c.contains(key(0, 1)));
    }

    #[test]
    fn lifo_protects_early_residents() {
        let mut c = ExpertCache::new(2, Replacement::Lifo);
        c.access(key(0, 0)); // early resident
        c.access(key(0, 1));
        c.access(key(0, 2)); // evicts 1 (newest), keeps 0
        assert!(c.contains(key(0, 0)));
        assert!(!c.contains(key(0, 1)));
        assert!(c.contains(key(0, 2)));
    }

    #[test]
    fn stats_count_hits_misses_evictions() {
        let mut c = ExpertCache::new(1, Replacement::Lru);
        c.access(key(0, 0)); // miss
        c.access(key(0, 0)); // hit
        c.access(key(0, 1)); // miss + eviction
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = ExpertCache::new(0, Replacement::Lfu);
        assert!(!c.access(key(0, 0)));
        assert!(!c.access(key(0, 0)));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hot_expert_survives_under_all_policies() {
        // A Zipf-hot expert accessed every other step should stay resident
        // under LFU and LRU, and under LIFO if admitted first.
        for policy in Replacement::ALL {
            let mut c = ExpertCache::new(4, policy);
            c.access(key(0, 99)); // hot expert admitted first
            for i in 0..50 {
                c.access(key(0, 99));
                c.access(key(0, i % 10));
            }
            assert!(c.contains(key(0, 99)), "{policy:?} evicted the hot expert");
        }
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = ExpertCache::new(3, Replacement::Lru);
        for i in 0..100 {
            c.access(key(i % 7, i));
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn gated_access_counts_miss_without_admitting() {
        let mut c = ExpertCache::new(2, Replacement::Lru);
        assert!(!c.access_with(key(0, 0), false, None));
        assert_eq!(c.len(), 0, "vetoed admission must not insert");
        assert_eq!(c.stats().misses, 1);
        assert!(!c.access_with(key(0, 0), true, None));
        assert!(c.contains(key(0, 0)));
    }

    #[test]
    fn eviction_hint_overrides_replacement_policy() {
        let mut c = ExpertCache::new(2, Replacement::Lru);
        c.access(key(0, 0));
        c.access(key(0, 1));
        c.access(key(0, 0)); // 1 is now the LRU victim
                             // Hint at evicting 0 instead: the hint wins over LRU.
        assert!(!c.access_with(key(0, 2), true, Some(key(0, 0))));
        assert!(!c.contains(key(0, 0)));
        assert!(c.contains(key(0, 1)));
        assert!(c.contains(key(0, 2)));
        assert_eq!(c.stats().evictions, 1);
        // A non-resident hint falls back to the configured policy.
        assert!(!c.access_with(key(0, 3), true, Some(key(9, 9))));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn state_fingerprint_is_shift_invariant_but_order_sensitive() {
        // Steady state: two iterations that touch the same residents in the
        // same order fingerprint equal despite the advancing clock.
        let mut c = ExpertCache::new(3, Replacement::Lru);
        c.access(key(0, 0));
        c.access(key(0, 1));
        c.access(key(0, 2));
        c.access(key(0, 0));
        c.access(key(0, 1));
        c.access(key(0, 2));
        let f1 = c.state_fingerprint();
        c.access(key(0, 0));
        c.access(key(0, 1));
        c.access(key(0, 2));
        let f2 = c.state_fingerprint();
        assert_eq!(f1, f2, "uniform clock shift must not change the fingerprint");
        // Divergent relative recency (which flips the LRU victim) must.
        c.access(key(0, 2));
        c.access(key(0, 1));
        c.access(key(0, 0));
        assert_ne!(f1, c.state_fingerprint(), "recency reorder must change the fingerprint");
        // A different resident set must too.
        let mut d = ExpertCache::new(3, Replacement::Lru);
        d.access(key(0, 0));
        d.access(key(0, 1));
        assert_ne!(f1, d.state_fingerprint());
        // And a different capacity with the same residents.
        let mut e = ExpertCache::new(4, Replacement::Lru);
        e.access(key(0, 0));
        e.access(key(0, 1));
        e.access(key(0, 2));
        e.access(key(0, 0));
        e.access(key(0, 1));
        e.access(key(0, 2));
        assert_ne!(f1, e.state_fingerprint());
    }

    #[test]
    fn eviction_counters_stay_consistent_under_all_policies() {
        // Accounting identities that must hold for every replacement policy
        // on any access stream: each lookup is a hit or a miss, each miss
        // admits exactly one entry, each eviction removes exactly one — so
        // residency always equals misses − evictions.
        for policy in Replacement::ALL {
            let mut c = ExpertCache::new(5, policy);
            let mut state = 0x1234_5678u64;
            let mut accesses = 0u64;
            for _ in 0..500 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let block = (state >> 33) as usize % 3;
                let expert = (state >> 40) as usize % 12;
                c.access(key(block, expert));
                accesses += 1;
                let s = c.stats();
                assert_eq!(s.hits + s.misses, accesses, "{policy:?}: lookup accounting");
                assert_eq!(
                    c.len() as u64,
                    s.misses - s.evictions,
                    "{policy:?}: residency = misses − evictions"
                );
                assert!(c.len() <= 5, "{policy:?}: capacity respected");
            }
            let s = c.stats();
            assert!(s.evictions > 0, "{policy:?}: stream must overflow the cache");
            assert!(s.hits > 0, "{policy:?}: stream must re-touch residents");
            assert!((0.0..=1.0).contains(&s.hit_rate()));
        }
    }
}
