//! Multi-request serving with QoS statistics.
//!
//! The paper motivates offloading by *quality of service*: "CPU offloading …
//! comes with a significant increase in inference latency, deteriorating
//! quality of service (QoS) to end users" (Section I). This module serves a
//! stream of requests through [`InferenceSim`] and reports the request-level
//! latency distribution a serving operator would monitor.

use crate::{InferenceSim, Result, SimOptions};
use pgmoe_device::SimDuration;
use pgmoe_model::ModelConfig;
use pgmoe_workload::DecodeRequest;

/// Request-level latency/throughput statistics for a served stream.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Per-request end-to-end latencies, in arrival order.
    pub request_latencies: Vec<SimDuration>,
    /// Total generated tokens across the stream.
    pub total_tokens: usize,
    /// Aggregate throughput over the busy period (tokens/s).
    pub tokens_per_sec: f64,
    /// Peak HBM across the stream.
    pub peak_hbm_bytes: u64,
}

impl ServeStats {
    /// Latency at quantile `q ∈ [0, 1]` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if no requests were served or `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(!self.request_latencies.is_empty(), "no requests served");
        let mut sorted: Vec<u64> = self.request_latencies.iter().map(|d| d.as_nanos()).collect();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).floor() as usize;
        SimDuration::from_nanos(sorted[idx])
    }

    /// Mean request latency.
    pub fn mean_latency(&self) -> SimDuration {
        let total: u64 = self.request_latencies.iter().map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(total / self.request_latencies.len().max(1) as u64)
    }
}

/// Serves a finite request stream back-to-back under one policy and gathers
/// QoS statistics.
///
/// Requests are served sequentially (batch-1 serving, the paper's operating
/// point); each request's latency covers its encoder pass and all of its
/// decode iterations.
///
/// # Errors
///
/// Propagates the first simulator error (e.g. OOM under GPU-only).
///
/// # Example
///
/// ```
/// use pgmoe_model::ModelConfig;
/// use pgmoe_runtime::{serve_stream, OffloadPolicy, SimOptions};
/// use pgmoe_workload::{DecodeRequest, RequestStream};
///
/// let stream = RequestStream::new(
///     DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 }, 2, 7);
/// let stats = serve_stream(
///     ModelConfig::switch_base(8),
///     SimOptions::new(OffloadPolicy::Pregated),
///     stream.take(5),
/// )?;
/// assert_eq!(stats.request_latencies.len(), 5);
/// # Ok::<(), pgmoe_runtime::RuntimeError>(())
/// ```
pub fn serve_stream(
    cfg: ModelConfig,
    opts: SimOptions,
    requests: impl IntoIterator<Item = DecodeRequest>,
) -> Result<ServeStats> {
    let mut latencies = Vec::new();
    let mut total_tokens = 0usize;
    let mut busy = SimDuration::ZERO;
    let mut peak = 0u64;
    for (i, request) in requests.into_iter().enumerate() {
        // Each request runs on a fresh simulated timeline; back-to-back
        // serving sums the busy periods (no idle gaps at saturation).
        let mut opts_i = opts.clone();
        opts_i.seed = opts.seed.wrapping_add(i as u64);
        let report = InferenceSim::new(cfg.clone(), opts_i).run(request, 1)?;
        latencies.push(report.total_time);
        busy += report.total_time;
        total_tokens += request.output_tokens;
        peak = peak.max(report.peak_hbm_bytes);
    }
    let tokens_per_sec = if busy == SimDuration::ZERO {
        0.0
    } else {
        total_tokens as f64 / busy.as_secs_f64()
    };
    Ok(ServeStats { request_latencies: latencies, total_tokens, tokens_per_sec, peak_hbm_bytes: peak })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OffloadPolicy;
    use pgmoe_workload::RequestStream;

    fn small_stream(n: usize) -> Vec<DecodeRequest> {
        RequestStream::new(
            DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 },
            2,
            9,
        )
        .take(n)
        .collect()
    }

    #[test]
    fn serves_all_requests_and_sums_tokens() {
        let stats = serve_stream(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            small_stream(6),
        )
        .unwrap();
        assert_eq!(stats.request_latencies.len(), 6);
        assert!(stats.total_tokens >= 6 * 2);
        assert!(stats.tokens_per_sec > 0.0);
    }

    #[test]
    fn quantiles_are_ordered() {
        let stats = serve_stream(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::OnDemand),
            small_stream(10),
        )
        .unwrap();
        let p50 = stats.latency_quantile(0.5);
        let p99 = stats.latency_quantile(0.99);
        assert!(p50 <= p99);
        assert!(stats.mean_latency() >= p50.saturating_sub(stats.mean_latency()));
    }

    #[test]
    fn pregated_beats_ondemand_qos() {
        // The QoS motivation: tail latency under Pre-gated is lower.
        let pg = serve_stream(
            ModelConfig::switch_base(64),
            SimOptions::new(OffloadPolicy::Pregated),
            small_stream(8),
        )
        .unwrap();
        let od = serve_stream(
            ModelConfig::switch_base(64),
            SimOptions::new(OffloadPolicy::OnDemand),
            small_stream(8),
        )
        .unwrap();
        assert!(pg.latency_quantile(0.9) < od.latency_quantile(0.9));
        assert!(pg.tokens_per_sec > od.tokens_per_sec);
    }

    #[test]
    fn gpu_only_oom_propagates() {
        let err = serve_stream(
            ModelConfig::switch_large_128(),
            SimOptions::new(OffloadPolicy::GpuOnly),
            small_stream(1),
        );
        assert!(matches!(err, Err(crate::RuntimeError::OutOfMemory(_))));
    }

    #[test]
    #[should_panic(expected = "no requests served")]
    fn quantile_of_empty_stream_panics() {
        let stats = serve_stream(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            std::iter::empty(),
        )
        .unwrap();
        let _ = stats.latency_quantile(0.5);
    }
}
