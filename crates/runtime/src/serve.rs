//! Multi-request serving with QoS statistics.
//!
//! The paper motivates offloading by *quality of service*: "CPU offloading …
//! comes with a significant increase in inference latency, deteriorating
//! quality of service (QoS) to end users" (Section I). This module serves a
//! stream of requests through [`InferenceSim`] and reports the request-level
//! latency distribution a serving operator would monitor.

use crate::{InferenceSim, Result, SimOptions};
use pgmoe_device::SimDuration;
use pgmoe_model::ModelConfig;
use pgmoe_workload::DecodeRequest;

/// Request-level latency/throughput statistics for a served stream.
///
/// Produced by both serving paths: the closed-loop batch-1
/// [`serve_stream`] (requests queued at time zero, served back-to-back) and
/// the open-loop continuous-batching [`crate::BatchScheduler`] (requests
/// arrive over time and are interleaved).
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Display name of the scheduler that served the stream.
    pub policy: String,
    /// Per-request end-to-end latencies (arrival → last token), in arrival
    /// order.
    pub request_latencies: Vec<SimDuration>,
    /// Per-request queueing delay (arrival → admission into the running
    /// batch), in arrival order.
    pub queueing_delays: Vec<SimDuration>,
    /// Per-request time to first token (arrival → first output token), in
    /// arrival order.
    pub ttfts: Vec<SimDuration>,
    /// Total generated tokens across the stream.
    pub total_tokens: usize,
    /// Aggregate throughput over the busy period (tokens/s).
    pub tokens_per_sec: f64,
    /// Peak HBM across the stream.
    pub peak_hbm_bytes: u64,
    /// Total expert bytes migrated from the offload tier across the stream
    /// (0 under GPU-only; shrinks with the expert precision).
    pub expert_fetch_bytes: u64,
    /// Expert bytes fetched on a block's critical path across the stream —
    /// the on-demand miss-stall metric (see
    /// [`RunReport::demand_fetch_bytes`]).
    ///
    /// [`RunReport::demand_fetch_bytes`]: crate::RunReport
    pub demand_fetch_bytes: u64,
    /// GPU compute-busy time across the stream (the utilization numerator a
    /// fleet divides by its makespan).
    pub gpu_busy: SimDuration,
    /// Largest number of requests decoded together in one iteration (1 on
    /// the batch-1 path; the admitted-batch metric the paged-KV gate
    /// compares).
    pub peak_batch: usize,
    /// Decode iterations replayed from a compiled plan across the stream
    /// (see [`crate::plan`]). Uncacheable configurations count neither hits
    /// nor misses.
    pub plan_cache_hits: u64,
    /// Decode iterations that compiled a fresh plan across the stream.
    pub plan_cache_misses: u64,
    /// Paged-KV statistics when the stream ran with
    /// [`crate::BatchConfig::with_paged_kv`]; `None` on the unpaged path.
    pub kv: Option<crate::kv::KvServeStats>,
}

/// Nearest-rank quantile. An empty population reports
/// [`SimDuration::ZERO`] — dashboards and controllers read quantiles off
/// idle windows and drained replicas, where "no requests" must mean "no
/// latency", not a panic (this used to assert non-emptiness and took down
/// callers on empty fleet windows).
pub(crate) fn quantile_of(samples: &[SimDuration], q: f64) -> SimDuration {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if samples.is_empty() {
        return SimDuration::ZERO;
    }
    let mut sorted: Vec<u64> = samples.iter().map(|d| d.as_nanos()).collect();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q).floor() as usize;
    SimDuration::from_nanos(sorted[idx])
}

fn mean_of(samples: &[SimDuration]) -> SimDuration {
    let total: u64 = samples.iter().map(|d| d.as_nanos()).sum();
    SimDuration::from_nanos(total / samples.len().max(1) as u64)
}

impl ServeStats {
    /// End-to-end latency at quantile `q ∈ [0, 1]` (nearest-rank). Zero
    /// when no requests were served.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> SimDuration {
        quantile_of(&self.request_latencies, q)
    }

    /// Median end-to-end latency.
    pub fn p50(&self) -> SimDuration {
        self.latency_quantile(0.50)
    }

    /// 95th-percentile end-to-end latency — the serving SLO the paper's QoS
    /// motivation is about.
    pub fn p95(&self) -> SimDuration {
        self.latency_quantile(0.95)
    }

    /// 99th-percentile end-to-end latency.
    pub fn p99(&self) -> SimDuration {
        self.latency_quantile(0.99)
    }

    /// Time-to-first-token at quantile `q ∈ [0, 1]` (nearest-rank). Zero
    /// when no requests were served.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn ttft_quantile(&self, q: f64) -> SimDuration {
        quantile_of(&self.ttfts, q)
    }

    /// Mean request latency.
    pub fn mean_latency(&self) -> SimDuration {
        mean_of(&self.request_latencies)
    }

    /// Mean queueing delay (arrival → admission).
    pub fn mean_queueing_delay(&self) -> SimDuration {
        mean_of(&self.queueing_delays)
    }

    /// Mean time to first token.
    pub fn mean_ttft(&self) -> SimDuration {
        mean_of(&self.ttfts)
    }
}

/// Serves a finite request stream back-to-back under one policy and gathers
/// QoS statistics.
///
/// Requests are served sequentially (batch-1 serving, the paper's operating
/// point) in a *closed loop*: the whole stream is queued at time zero and
/// request `i` waits for requests `0..i` to finish. Its queueing delay is
/// therefore the sum of the earlier service times, its TTFT adds the
/// encoder pass plus one decode iteration, and its end-to-end latency adds
/// its full service time. For open-loop arrivals (Poisson/bursty) and
/// continuous batching, use [`crate::BatchScheduler`].
///
/// # Errors
///
/// Propagates the first simulator error (e.g. OOM under GPU-only).
///
/// # Example
///
/// ```
/// use pgmoe_model::ModelConfig;
/// use pgmoe_runtime::{serve_stream, OffloadPolicy, SimOptions};
/// use pgmoe_workload::{DecodeRequest, RequestStream};
///
/// let stream = RequestStream::new(
///     DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 }, 2, 7);
/// let stats = serve_stream(
///     ModelConfig::switch_base(8),
///     SimOptions::new(OffloadPolicy::Pregated),
///     stream.take(5),
/// )?;
/// assert_eq!(stats.request_latencies.len(), 5);
/// # Ok::<(), pgmoe_runtime::RuntimeError>(())
/// ```
pub fn serve_stream(
    cfg: ModelConfig,
    opts: SimOptions,
    requests: impl IntoIterator<Item = DecodeRequest>,
) -> Result<ServeStats> {
    let mut latencies = Vec::new();
    let mut queueing_delays = Vec::new();
    let mut ttfts = Vec::new();
    let mut total_tokens = 0usize;
    let mut busy = SimDuration::ZERO;
    let mut peak = 0u64;
    let mut fetched = 0u64;
    let mut demand = 0u64;
    let mut gpu_busy = SimDuration::ZERO;
    let mut plan_hits = 0u64;
    let mut plan_misses = 0u64;
    let mut policy_name: Option<String> = None;
    for (i, request) in requests.into_iter().enumerate() {
        // Each request runs on a fresh simulated timeline; back-to-back
        // serving sums the busy periods (no idle gaps at saturation).
        let mut opts_i = opts.clone();
        opts_i.seed = opts.seed.wrapping_add(i as u64);
        let report = InferenceSim::new(cfg.clone(), opts_i).run(request, 1)?;
        // Closed loop: request i's queueing delay is the busy period so far.
        queueing_delays.push(busy);
        ttfts.push(busy + report.time_to_first_token);
        latencies.push(busy + report.total_time);
        busy += report.total_time;
        total_tokens += request.output_tokens;
        peak = peak.max(report.peak_hbm_bytes);
        fetched += report.expert_fetch_bytes;
        demand += report.demand_fetch_bytes;
        gpu_busy += report.gpu_busy;
        plan_hits += report.plan_cache_hits;
        plan_misses += report.plan_cache_misses;
        policy_name.get_or_insert(report.policy);
    }
    let tokens_per_sec =
        if busy == SimDuration::ZERO { 0.0 } else { total_tokens as f64 / busy.as_secs_f64() };
    Ok(ServeStats {
        // Empty streams still report the *built* scheduler's name, so the
        // label matches what a non-empty stream (or the batch path) reports.
        policy: policy_name.unwrap_or_else(|| opts.policy.build(&opts.setup_for(&cfg)).name()),
        request_latencies: latencies,
        queueing_delays,
        ttfts,
        total_tokens,
        tokens_per_sec,
        peak_hbm_bytes: peak,
        expert_fetch_bytes: fetched,
        demand_fetch_bytes: demand,
        gpu_busy,
        peak_batch: if total_tokens > 0 { 1 } else { 0 },
        plan_cache_hits: plan_hits,
        plan_cache_misses: plan_misses,
        kv: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OffloadPolicy;
    use pgmoe_workload::RequestStream;

    fn small_stream(n: usize) -> Vec<DecodeRequest> {
        RequestStream::new(
            DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 },
            2,
            9,
        )
        .take(n)
        .collect()
    }

    #[test]
    fn serves_all_requests_and_sums_tokens() {
        let stats = serve_stream(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            small_stream(6),
        )
        .unwrap();
        assert_eq!(stats.request_latencies.len(), 6);
        assert!(stats.total_tokens >= 6 * 2);
        assert!(stats.tokens_per_sec > 0.0);
    }

    #[test]
    fn quantiles_are_ordered() {
        let stats = serve_stream(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::OnDemand),
            small_stream(10),
        )
        .unwrap();
        let p50 = stats.latency_quantile(0.5);
        let p99 = stats.latency_quantile(0.99);
        assert!(p50 <= p99);
        assert!(stats.mean_latency() >= p50.saturating_sub(stats.mean_latency()));
    }

    #[test]
    fn pregated_beats_ondemand_qos() {
        // The QoS motivation: tail latency under Pre-gated is lower.
        let pg = serve_stream(
            ModelConfig::switch_base(64),
            SimOptions::new(OffloadPolicy::Pregated),
            small_stream(8),
        )
        .unwrap();
        let od = serve_stream(
            ModelConfig::switch_base(64),
            SimOptions::new(OffloadPolicy::OnDemand),
            small_stream(8),
        )
        .unwrap();
        assert!(pg.latency_quantile(0.9) < od.latency_quantile(0.9));
        assert!(pg.tokens_per_sec > od.tokens_per_sec);
    }

    #[test]
    fn gpu_only_oom_propagates() {
        let err = serve_stream(
            ModelConfig::switch_large_128(),
            SimOptions::new(OffloadPolicy::GpuOnly),
            small_stream(1),
        );
        assert!(matches!(err, Err(crate::RuntimeError::OutOfMemory(_))));
    }

    #[test]
    fn quantiles_of_empty_stream_are_zero() {
        // Regression: these asserted "no requests served" and panicked,
        // which took down anything reading tail stats off an idle window.
        let stats = serve_stream(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            std::iter::empty(),
        )
        .unwrap();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(stats.latency_quantile(q), SimDuration::ZERO);
            assert_eq!(stats.ttft_quantile(q), SimDuration::ZERO);
        }
        assert_eq!(stats.p50(), SimDuration::ZERO);
        assert_eq!(stats.p95(), SimDuration::ZERO);
        assert_eq!(stats.p99(), SimDuration::ZERO);
        assert_eq!(stats.mean_latency(), SimDuration::ZERO);
        assert_eq!(stats.peak_batch, 0);
    }

    /// A hand-built stats value with known latencies, for quantile edge
    /// cases that should not depend on the simulator.
    fn fixed_stats(lats_us: &[u64]) -> ServeStats {
        let lats: Vec<SimDuration> = lats_us.iter().map(|&u| SimDuration::from_micros(u)).collect();
        ServeStats {
            policy: "test".into(),
            queueing_delays: vec![SimDuration::ZERO; lats.len()],
            ttfts: lats.clone(),
            request_latencies: lats,
            total_tokens: lats_us.len(),
            tokens_per_sec: 1.0,
            peak_hbm_bytes: 1,
            expert_fetch_bytes: 0,
            demand_fetch_bytes: 0,
            gpu_busy: SimDuration::ZERO,
            peak_batch: 1,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            kv: None,
        }
    }

    #[test]
    fn quantile_edges_are_min_and_max() {
        let stats = fixed_stats(&[40, 10, 30, 20]);
        assert_eq!(stats.latency_quantile(0.0), SimDuration::from_micros(10));
        assert_eq!(stats.latency_quantile(1.0), SimDuration::from_micros(40));
        assert_eq!(stats.p50(), SimDuration::from_micros(20));
        assert!(stats.p50() <= stats.p95() && stats.p95() <= stats.p99());
    }

    #[test]
    fn quantile_of_single_request_is_that_request() {
        let stats = fixed_stats(&[17]);
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(stats.latency_quantile(q), SimDuration::from_micros(17));
        }
        assert_eq!(stats.mean_latency(), SimDuration::from_micros(17));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_above_one_panics() {
        let _ = fixed_stats(&[1]).latency_quantile(1.01);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn negative_quantile_panics() {
        let _ = fixed_stats(&[1]).latency_quantile(-0.01);
    }

    #[test]
    fn closed_loop_queueing_and_ttft_accounting() {
        // Deterministic trace: three identical requests queued at time zero.
        // Queueing delays must be the cumulative service times, TTFT must
        // sit strictly between queueing delay and completion, and the
        // accounting identity latency = queue + service must hold.
        let requests = vec![DecodeRequest { input_tokens: 16, output_tokens: 3, batch_size: 1 }; 3];
        let stats = serve_stream(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            requests,
        )
        .unwrap();
        assert_eq!(stats.queueing_delays[0], SimDuration::ZERO);
        let services: Vec<SimDuration> = (0..3)
            .map(|i| stats.request_latencies[i].saturating_sub(stats.queueing_delays[i]))
            .collect();
        assert_eq!(stats.queueing_delays[1], services[0]);
        assert_eq!(stats.queueing_delays[2], services[0] + services[1]);
        for i in 0..3 {
            assert!(stats.ttfts[i] > stats.queueing_delays[i], "TTFT covers queueing at {i}");
            assert!(stats.ttfts[i] < stats.request_latencies[i], "TTFT precedes completion at {i}");
        }
        assert!(stats.mean_queueing_delay() < stats.mean_ttft());
        assert_eq!(stats.ttft_quantile(0.0), stats.ttfts[0]);
    }
}
