//! Adaptive fleet control: fault injection, replica failure recovery,
//! autoscaling and online policy switching.
//!
//! [`crate::fleet::FleetSim`] answers the steady-state question — how many
//! tokens/s-per-GPU does a replica fleet sustain — under two simplifying
//! assumptions: the fleet shape is fixed for the whole trace, and nothing
//! ever breaks. This module drops both. [`ControlledFleet`] serves the same
//! arrival traces through the same per-replica [`BatchSession`]s, but runs
//! them inside a global *event loop* that interleaves four event sources in
//! simulated time:
//!
//! 1. **Arrivals** are dispatched one at a time, at their arrival instant,
//!    via the exact same [`DispatchState`](crate::fleet) bookkeeping the
//!    static path uses — restricted to the replicas currently eligible
//!    (alive, warm, not draining). With no faults and no controller the
//!    eligible set is always the full fleet, so placement — and therefore
//!    the entire run — is **bit-exact** with [`FleetSim::serve`].
//! 2. **Faults** from a deterministic, seed-driven
//!    [`FaultPlan`]: replica kills (in-flight
//!    work is drained and *redispatched* — the placement-independent route
//!    seed replays the identical token stream on the new replica, so zero
//!    requests are lost), stalls, and link degradations.
//! 3. **Controller windows**: every `window_ns` a [`FleetController`]
//!    observes windowed deltas ([`ControlWindow`]) and may scale the fleet
//!    up (cache-cold replicas that take `warmup_ns` to come online), scale
//!    it down (replicas drain before retiring), or swap the expert
//!    scheduler on live replicas at an iteration boundary
//!    ([`BatchSession::swap_scheduler`]).
//! 4. **Replica steps**: each replica independently runs the
//!    [`BatchScheduler`](crate::BatchScheduler) iteration discipline —
//!    idle-jump, FIFO admission, one decode step — at its own clock.
//!
//! The returned [`FleetStats`] carries a [`ControlStats`] block accounting
//! for every fault injected, request redispatched, token of work dropped,
//! and scaling/switching action taken, plus `gpu_time` billed per replica
//! from spawn to retirement — so an elastic deployment is scored on
//! [`FleetStats::tokens_per_gpu_second`], the GPU-seconds it actually
//! rented, not on a fixed fleet's makespan.
//!
//! [`FleetSim::serve`]: crate::fleet::FleetSim::serve

use crate::fleet::{DispatchPolicy, DispatchState, FleetConfig, FleetStats};
use crate::scheduler::PolicySpec;
use crate::serve::ServeStats;
use crate::session::{Admission, BatchSession};
use crate::{Result, RuntimeError, SimOptions};
use pgmoe_device::{SimDuration, SimTime};
use pgmoe_model::ModelConfig;
use pgmoe_workload::{stamp_route_seeds, ArrivedRequest, FaultKind, FaultPlan};
use std::collections::VecDeque;

/// Control-loop knobs: how often the controller observes, and how long a
/// scaled-up replica takes to come online.
#[derive(Debug, Clone, Copy)]
pub struct ControlOptions {
    /// Controller observation period, ns. `0` disables controller windows
    /// entirely (faults are still injected).
    pub window_ns: u64,
    /// Provisioning delay for a scaled-up replica, ns: the new replica's
    /// clock starts this far after the scale-up decision, and it is not
    /// eligible for dispatch before then. Its expert cache starts cold
    /// either way.
    pub warmup_ns: u64,
}

impl Default for ControlOptions {
    fn default() -> Self {
        ControlOptions { window_ns: 100_000_000, warmup_ns: 250_000_000 }
    }
}

/// What the controller observes about one replica over the last window.
#[derive(Debug, Clone)]
pub struct ReplicaObs {
    /// Still serving (not killed, not retired).
    pub alive: bool,
    /// Scaled up but not yet past its warm-up instant.
    pub warming: bool,
    /// Marked for scale-down: finishing its backlog, receiving no new work.
    pub draining: bool,
    /// Requests dispatched here and not yet admitted into the batch.
    pub queued: usize,
    /// Requests currently decoding.
    pub in_flight: usize,
    /// Tokens generated during the window.
    pub tokens_delta: usize,
    /// Expert bytes fetched on block critical paths during the window — the
    /// routing-drift signal ([`DriftSwitcher`] watches this per token).
    pub demand_bytes_delta: u64,
    /// Total expert bytes migrated during the window.
    pub fetch_bytes_delta: u64,
}

/// Windowed fleet deltas handed to [`FleetController::observe`] — the
/// operator dashboard a real control loop would poll, never the replicas'
/// internal simulator state.
#[derive(Debug)]
pub struct ControlWindow<'a> {
    /// Observation instant, ns.
    pub now_ns: u64,
    /// Window length, ns.
    pub window_ns: u64,
    /// Requests that arrived during the window.
    pub arrivals_delta: usize,
    /// Requests that completed during the window.
    pub completions_delta: usize,
    /// Requests dispatched but unfinished, fleet-wide (queued + in flight).
    pub backlog: usize,
    /// Per-replica observations, replica order (dead replicas included so
    /// indices stay stable).
    pub replicas: &'a [ReplicaObs],
}

/// An action the controller asks the fleet to take at a window boundary.
#[derive(Debug, Clone)]
pub enum ControlAction {
    /// Add this many cache-cold replicas; each is dispatchable after
    /// [`ControlOptions::warmup_ns`].
    ScaleUp {
        /// How many replicas to add.
        replicas: usize,
    },
    /// Drain and retire this many replicas (the least-loaded first). The
    /// fleet never drains below one serving replica.
    ScaleDown {
        /// How many replicas to retire.
        replicas: usize,
    },
    /// Swap the expert scheduler on a live replica (or every live replica)
    /// at its next iteration boundary. The replacement must preserve the
    /// static placement footprint ([`BatchSession::swap_scheduler`]).
    SwitchPolicy {
        /// Target replica index, or `None` for the whole fleet.
        replica: Option<usize>,
        /// The scheduler to switch to.
        policy: PolicySpec,
    },
}

/// A fleet control policy: observes windowed stats deltas, decides scaling
/// and policy-switching actions. Implementations must be deterministic —
/// the whole simulation is.
pub trait FleetController {
    /// Display name threaded into [`ControlStats::controller`].
    fn name(&self) -> String;

    /// Observe one window, return the actions to apply at this boundary.
    fn observe(&mut self, window: &ControlWindow<'_>) -> Vec<ControlAction>;
}

/// The do-nothing controller: observes, never acts. A controlled run with
/// `NoControl` and an empty fault plan is bit-exact with
/// [`FleetSim::serve`](crate::fleet::FleetSim::serve).
#[derive(Debug, Default)]
pub struct NoControl;

impl FleetController for NoControl {
    fn name(&self) -> String {
        "no-control".into()
    }

    fn observe(&mut self, _window: &ControlWindow<'_>) -> Vec<ControlAction> {
        Vec::new()
    }
}

/// Backlog-proportional autoscaler: targets enough serving replicas that
/// the fleet-wide backlog stays under `up_backlog_per_replica` requests
/// each, scaling up immediately and scaling down one replica at a time
/// after `cooldown_windows` quiet windows — the asymmetry that survives
/// flash crowds without flapping through them.
#[derive(Debug, Clone)]
pub struct QueueAutoScaler {
    /// Never drain below this many serving replicas.
    pub min_replicas: usize,
    /// Never scale above this many serving replicas.
    pub max_replicas: usize,
    /// Backlog per serving replica that triggers a scale-up.
    pub up_backlog_per_replica: usize,
    /// Backlog per serving replica under which a scale-down is considered.
    pub down_backlog_per_replica: usize,
    /// Quiet windows required between scale-downs.
    pub cooldown_windows: usize,
    cooldown: usize,
}

impl QueueAutoScaler {
    /// An autoscaler holding serving capacity between `min` and `max`
    /// replicas, scaling up past `up_backlog_per_replica` queued requests
    /// per replica and down (after a 2-window cooldown) under
    /// `down_backlog_per_replica`.
    pub fn new(min: usize, max: usize, up_backlog_per_replica: usize) -> Self {
        assert!(min >= 1, "an autoscaler must keep at least one replica");
        assert!(max >= min, "max_replicas must be at least min_replicas");
        assert!(up_backlog_per_replica >= 1, "the scale-up trigger must be at least 1");
        QueueAutoScaler {
            min_replicas: min,
            max_replicas: max,
            up_backlog_per_replica,
            down_backlog_per_replica: up_backlog_per_replica / 4,
            cooldown_windows: 2,
            cooldown: 0,
        }
    }
}

impl FleetController for QueueAutoScaler {
    fn name(&self) -> String {
        format!(
            "queue-autoscaler({}..{}, up@{})",
            self.min_replicas, self.max_replicas, self.up_backlog_per_replica
        )
    }

    fn observe(&mut self, window: &ControlWindow<'_>) -> Vec<ControlAction> {
        self.cooldown = self.cooldown.saturating_sub(1);
        let serving = window.replicas.iter().filter(|r| r.alive && !r.draining).count().max(1);
        let target = window
            .backlog
            .div_ceil(self.up_backlog_per_replica)
            .clamp(self.min_replicas, self.max_replicas);
        if target > serving {
            self.cooldown = self.cooldown_windows;
            return vec![ControlAction::ScaleUp { replicas: target - serving }];
        }
        if serving > self.min_replicas
            && self.cooldown == 0
            && window.backlog <= self.down_backlog_per_replica * (serving - 1)
        {
            self.cooldown = self.cooldown_windows;
            return vec![ControlAction::ScaleDown { replicas: 1 }];
        }
        Vec::new()
    }
}

/// Routing-drift detector: watches the fleet-wide demand-fetch bytes per
/// generated token. The first window establishes a baseline; when a later
/// window exceeds `threshold ×` that baseline (the hot expert set has
/// rotated out from under the caches), it switches every replica to the
/// fallback policy — once. A run in which the detector never fires is
/// bit-exact with [`NoControl`].
#[derive(Debug, Clone)]
pub struct DriftSwitcher {
    to: PolicySpec,
    threshold: f64,
    min_tokens: usize,
    baseline: Option<f64>,
    fired: bool,
}

impl DriftSwitcher {
    /// Switch the fleet to `to` when windowed demand-bytes-per-token
    /// exceeds `threshold ×` the first observed window. Windows generating
    /// fewer than `min_tokens` tokens are skipped (too noisy to baseline
    /// or trigger on).
    pub fn new(to: PolicySpec, threshold: f64, min_tokens: usize) -> Self {
        assert!(threshold > 0.0, "the drift threshold must be positive");
        DriftSwitcher { to, threshold, min_tokens, baseline: None, fired: false }
    }

    /// Whether the detector has fired.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl FleetController for DriftSwitcher {
    fn name(&self) -> String {
        format!("drift-switcher(to={}, x{})", self.to.name(), self.threshold)
    }

    fn observe(&mut self, window: &ControlWindow<'_>) -> Vec<ControlAction> {
        if self.fired {
            return Vec::new();
        }
        let tokens: usize = window.replicas.iter().map(|r| r.tokens_delta).sum();
        if tokens < self.min_tokens.max(1) {
            return Vec::new();
        }
        let demand: u64 = window.replicas.iter().map(|r| r.demand_bytes_delta).sum();
        let rate = demand as f64 / tokens as f64;
        match self.baseline {
            None => {
                self.baseline = Some(rate);
                Vec::new()
            }
            Some(base) if rate > self.threshold * base => {
                self.fired = true;
                vec![ControlAction::SwitchPolicy { replica: None, policy: self.to.clone() }]
            }
            Some(_) => Vec::new(),
        }
    }
}

/// Control-loop accounting attached to [`FleetStats::control`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlStats {
    /// Display name of the controller that ran the loop.
    pub controller: String,
    /// Fault events actually applied (events targeting dead or retired
    /// replicas are skipped).
    pub faults_injected: usize,
    /// Requests redispatched off a killed replica (counted per request per
    /// kill — a request can be redispatched twice).
    pub redispatched: usize,
    /// Tokens that were generated and then thrown away with a killed
    /// replica — work the fleet paid for twice.
    pub dropped_tokens: usize,
    /// Replicas added by the controller.
    pub scale_ups: usize,
    /// Replicas drained and retired by the controller.
    pub scale_downs: usize,
    /// Successful live scheduler swaps.
    pub policy_switches: usize,
    /// Largest number of concurrently alive replicas.
    pub peak_replicas: usize,
}

/// One request's lifecycle through the controlled fleet.
struct ReqState {
    arr: ArrivedRequest,
    replica: usize,
    queueing: SimDuration,
    first_token_ns: Option<u64>,
    done_ns: Option<u64>,
}

/// One replica slot: a live session plus the control-plane state around it.
struct Replica {
    session: Option<BatchSession>,
    queue: VecDeque<usize>,
    alive: bool,
    draining: bool,
    warm_at_ns: u64,
    spawned_ns: u64,
    retired_ns: Option<u64>,
    degraded_until_ns: u64,
    degrade_factor: f64,
    snap_tokens: usize,
    snap_demand: u64,
    snap_fetch: u64,
    stats: Option<ServeStats>,
}

impl Replica {
    fn spawn(session: BatchSession, spawned_ns: u64, warm_at_ns: u64) -> Self {
        Replica {
            session: Some(session),
            queue: VecDeque::new(),
            alive: true,
            draining: false,
            warm_at_ns,
            spawned_ns,
            retired_ns: None,
            degraded_until_ns: 0,
            degrade_factor: 1.0,
            snap_tokens: 0,
            snap_demand: 0,
            snap_fetch: 0,
            stats: None,
        }
    }

    /// When this replica next does work: now if it is mid-batch, the moment
    /// it can admit its queue head if idle with queued work, never
    /// otherwise.
    fn ready_ns(&self, reqs: &[ReqState]) -> Option<u64> {
        let session = self.session.as_ref()?;
        if !self.alive {
            return None;
        }
        if session.in_flight() > 0 {
            return Some(session.clock().as_nanos());
        }
        self.queue.front().map(|&i| session.clock().as_nanos().max(reqs[i].arr.arrival_ns))
    }

    fn retire(&mut self, now_ns: u64) {
        if let Some(session) = self.session.take() {
            self.stats = Some(session.finish());
        }
        self.alive = false;
        self.retired_ns = Some(now_ns);
    }
}

/// A fault-tolerant, controller-driven fleet (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use pgmoe_model::ModelConfig;
/// use pgmoe_runtime::{
///     BatchConfig, ControlledFleet, FleetConfig, NoControl, OffloadPolicy, RoundRobin,
///     SimOptions,
/// };
/// use pgmoe_workload::{ArrivalProcess, ArrivalStream, DecodeRequest, FaultPlan};
///
/// let arrivals: Vec<_> = ArrivalStream::new(
///     ArrivalProcess::Poisson { rate_per_sec: 60.0 },
///     DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 },
///     1,
///     7,
/// )
/// .take(8)
/// .collect();
/// // Kill replica 1 early in the trace: its work drains and redispatches,
/// // and every request still completes.
/// let plan = FaultPlan::new().kill_at(arrivals[2].arrival_ns, 1);
/// let fleet = ControlledFleet::new(
///     ModelConfig::switch_base(8),
///     SimOptions::new(OffloadPolicy::Pregated),
///     FleetConfig::new(2, BatchConfig::new(4)),
/// );
/// let stats = fleet.serve(arrivals, &mut RoundRobin::new(), &plan, &mut NoControl)?;
/// assert_eq!(stats.request_latencies.len(), 8, "zero requests lost");
/// assert_eq!(stats.control.as_ref().unwrap().faults_injected, 1);
/// # Ok::<(), pgmoe_runtime::RuntimeError>(())
/// ```
pub struct ControlledFleet {
    cfg: ModelConfig,
    opts: SimOptions,
    fleet: FleetConfig,
    ctl: ControlOptions,
}

impl ControlledFleet {
    /// A controllable fleet of identical replicas serving `cfg` under
    /// `opts`, with default [`ControlOptions`].
    pub fn new(cfg: ModelConfig, opts: SimOptions, fleet: FleetConfig) -> Self {
        ControlledFleet { cfg, opts, fleet, ctl: ControlOptions::default() }
    }

    /// Builder: override the control-loop knobs.
    pub fn with_control(mut self, ctl: ControlOptions) -> Self {
        self.ctl = ctl;
        self
    }

    /// Serves `arrivals` under the fault plan and controller.
    ///
    /// Zero requests are lost: work on a killed replica is drained and
    /// redispatched, and the placement-independent route seed replays the
    /// identical token stream wherever a request lands. With an empty plan
    /// and [`NoControl`] the run is bit-exact with
    /// [`FleetSim::serve`](crate::fleet::FleetSim::serve).
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::InvalidConfig`] for an invalid fleet shape or
    ///   options, a dispatcher choosing an out-of-range replica, a fault
    ///   plan that kills every serving replica while work remains, or a
    ///   policy switch that would change the static placement footprint.
    /// * Any error a replica session raises (e.g. OOM on admission).
    pub fn serve(
        &self,
        arrivals: impl IntoIterator<Item = ArrivedRequest>,
        dispatch: &mut dyn DispatchPolicy,
        plan: &FaultPlan,
        controller: &mut dyn FleetController,
    ) -> Result<FleetStats> {
        self.fleet.validate()?;
        self.opts.validate(&self.cfg)?;
        let mut arrivals: Vec<ArrivedRequest> = arrivals.into_iter().collect();
        validate_arrivals(&arrivals)?;
        stamp_route_seeds(&mut arrivals, self.opts.seed);
        if arrivals.is_empty() {
            return Ok(self.empty_stats(dispatch.name(), controller.name()));
        }

        let mut state = DispatchState::new(&self.cfg, &self.opts, self.fleet.replicas)?;
        let mut replicas: Vec<Replica> = (0..self.fleet.replicas)
            .map(|_| {
                BatchSession::new(self.cfg.clone(), self.opts.clone(), self.fleet.batch)
                    .map(|s| Replica::spawn(s, 0, 0))
            })
            .collect::<Result<_>>()?;
        let mut reqs: Vec<ReqState> = arrivals
            .iter()
            .map(|&arr| ReqState {
                arr,
                replica: 0,
                queueing: SimDuration::ZERO,
                first_token_ns: None,
                done_ns: None,
            })
            .collect();

        let mut cur_policy = self.opts.policy.clone();
        let mut ctl_stats = ControlStats {
            controller: controller.name(),
            faults_injected: 0,
            redispatched: 0,
            dropped_tokens: 0,
            scale_ups: 0,
            scale_downs: 0,
            policy_switches: 0,
            peak_replicas: self.fleet.replicas,
        };
        let faults = plan.events();
        let mut next_arrival = 0usize;
        let mut next_fault = 0usize;
        let mut next_window_ns = if self.ctl.window_ns > 0 { self.ctl.window_ns } else { u64::MAX };
        let mut completions = 0usize;
        let mut snap_arrivals = 0usize;
        let mut snap_completions = 0usize;

        loop {
            let work_left = next_arrival < arrivals.len()
                || replicas.iter().any(|r| {
                    !r.queue.is_empty()
                        || r.session.as_ref().map(|s| s.in_flight() > 0).unwrap_or(false)
                });
            if !work_left {
                break;
            }

            let t_arrival = arrivals.get(next_arrival).map(|a| a.arrival_ns).unwrap_or(u64::MAX);
            let t_fault = faults.get(next_fault).map(|f| f.at_ns).unwrap_or(u64::MAX);
            let t_window = next_window_ns;
            let (t_step, step_replica) = replicas
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.ready_ns(&reqs).map(|t| (t, i)))
                .min()
                .map(|(t, i)| (t, Some(i)))
                .unwrap_or((u64::MAX, None));

            // Tie-break order at equal instants: dispatch new arrivals
            // before injecting faults, inject faults before the controller
            // observes, observe before replicas step. With no faults and no
            // windows this degenerates to the static path's semantics.
            if t_arrival <= t_fault && t_arrival <= t_window && t_arrival <= t_step {
                let idx = next_arrival;
                next_arrival += 1;
                let arr = reqs[idx].arr;
                let r = self.place(idx, &arr, t_arrival, &mut state, &replicas, dispatch)?;
                reqs[idx].replica = r;
                replicas[r].queue.push_back(idx);
            } else if t_fault <= t_window && t_fault <= t_step {
                let ev = faults[next_fault];
                next_fault += 1;
                self.inject(
                    ev.replica,
                    ev.at_ns,
                    ev.kind,
                    &mut replicas,
                    &mut reqs,
                    &mut state,
                    dispatch,
                    &mut ctl_stats,
                )?;
            } else if t_window <= t_step {
                next_window_ns = next_window_ns.saturating_add(self.ctl.window_ns);
                let obs: Vec<ReplicaObs> = replicas
                    .iter_mut()
                    .map(|r| {
                        let tokens =
                            r.session.as_ref().map(|s| s.total_tokens()).unwrap_or(r.snap_tokens);
                        let demand = r
                            .session
                            .as_ref()
                            .map(|s| s.demand_fetch_bytes())
                            .unwrap_or(r.snap_demand);
                        let fetch = r
                            .session
                            .as_ref()
                            .map(|s| s.expert_fetch_bytes())
                            .unwrap_or(r.snap_fetch);
                        let o = ReplicaObs {
                            alive: r.alive,
                            warming: r.alive && t_window < r.warm_at_ns,
                            draining: r.draining,
                            queued: r.queue.len(),
                            in_flight: r.session.as_ref().map(|s| s.in_flight()).unwrap_or(0),
                            tokens_delta: tokens - r.snap_tokens,
                            demand_bytes_delta: demand - r.snap_demand,
                            fetch_bytes_delta: fetch - r.snap_fetch,
                        };
                        r.snap_tokens = tokens;
                        r.snap_demand = demand;
                        r.snap_fetch = fetch;
                        o
                    })
                    .collect();
                let backlog: usize = obs.iter().map(|o| o.queued + o.in_flight).sum();
                let window = ControlWindow {
                    now_ns: t_window,
                    window_ns: self.ctl.window_ns,
                    arrivals_delta: next_arrival - snap_arrivals,
                    completions_delta: completions - snap_completions,
                    backlog,
                    replicas: &obs,
                };
                snap_arrivals = next_arrival;
                snap_completions = completions;
                let actions = controller.observe(&window);
                for action in actions {
                    self.apply(
                        action,
                        t_window,
                        &mut replicas,
                        &mut state,
                        &mut cur_policy,
                        &mut ctl_stats,
                    )?;
                }
            } else {
                let r = step_replica.expect("a step event requires a ready replica");
                self.step_replica(r, &mut replicas, &mut reqs, &mut completions)?;
            }
        }

        let last_completion_ns =
            reqs.iter().map(|r| r.done_ns.expect("loop exits only when all done")).max().unwrap();
        for rep in &mut replicas {
            if rep.session.is_some() {
                rep.retire(last_completion_ns);
                rep.retired_ns = None; // still rented at run end, not scaled away
            }
        }
        Ok(self.assemble(dispatch.name(), &arrivals, &reqs, replicas, ctl_stats))
    }

    /// Dispatch one arrival (or redispatched orphan) among the replicas
    /// eligible at `t`: alive, not draining, warm. Falls back to warming
    /// replicas when nothing warm survives — better a cold replica than a
    /// lost request.
    fn place(
        &self,
        idx: usize,
        arr: &ArrivedRequest,
        t: u64,
        state: &mut DispatchState,
        replicas: &[Replica],
        dispatch: &mut dyn DispatchPolicy,
    ) -> Result<usize> {
        let warm: Vec<usize> = replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive && !r.draining && r.session.is_some() && r.warm_at_ns <= t)
            .map(|(i, _)| i)
            .collect();
        let eligible = if warm.is_empty() {
            replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.alive && !r.draining && r.session.is_some())
                .map(|(i, _)| i)
                .collect()
        } else {
            warm
        };
        if eligible.is_empty() {
            return Err(RuntimeError::InvalidConfig {
                message: format!(
                    "no serving replica left to dispatch request {idx} at t={t}ns \
                     (the fault plan or controller removed them all)"
                ),
            });
        }
        state.place(idx, arr, &eligible, dispatch)
    }

    /// Apply one fault event. Events aimed at dead, retired or out-of-range
    /// replicas are skipped.
    #[allow(clippy::too_many_arguments)]
    fn inject(
        &self,
        target: usize,
        at_ns: u64,
        kind: FaultKind,
        replicas: &mut [Replica],
        reqs: &mut [ReqState],
        state: &mut DispatchState,
        dispatch: &mut dyn DispatchPolicy,
        ctl: &mut ControlStats,
    ) -> Result<()> {
        if target >= replicas.len() || !replicas[target].alive {
            return Ok(());
        }
        match kind {
            FaultKind::KillReplica => {
                let rep = &mut replicas[target];
                let mut session = rep.session.take().expect("alive replica has a session");
                let aborted = session.drain_inflight();
                ctl.dropped_tokens += aborted.iter().map(|a| a.tokens_generated).sum::<usize>();
                rep.stats = Some(session.finish());
                rep.alive = false;
                rep.retired_ns = Some(at_ns.max(rep.spawned_ns));
                let mut orphans: Vec<usize> = aborted.iter().map(|a| a.id as usize).collect();
                orphans.extend(rep.queue.drain(..));
                state.forget_replica(target);
                // Redispatch in arrival order — the convention every
                // dispatcher already assumes for its bookkeeping.
                orphans.sort_unstable_by_key(|&i| (reqs[i].arr.arrival_ns, i));
                for idx in orphans {
                    reqs[idx].first_token_ns = None;
                    reqs[idx].queueing = SimDuration::ZERO;
                    ctl.redispatched += 1;
                    let arr = reqs[idx].arr;
                    let r = self.place(idx, &arr, at_ns, state, replicas, dispatch)?;
                    reqs[idx].replica = r;
                    replicas[r].queue.push_back(idx);
                    // Failover cannot rewind time: the surviving replica
                    // sees the orphan no earlier than the kill instant.
                    let session =
                        replicas[r].session.as_mut().expect("eligible replica has a session");
                    session.advance_clock(SimTime::from_nanos(at_ns));
                }
            }
            FaultKind::StallReplica { for_ns } => {
                let session =
                    replicas[target].session.as_mut().expect("alive replica has a session");
                let from = session.clock().max(SimTime::from_nanos(at_ns));
                session.advance_clock(from + SimDuration::from_nanos(for_ns));
            }
            FaultKind::DegradeLink { factor, for_ns } => {
                let rep = &mut replicas[target];
                rep.degrade_factor = factor;
                rep.degraded_until_ns = at_ns.saturating_add(for_ns);
            }
        }
        ctl.faults_injected += 1;
        Ok(())
    }

    /// Apply one controller action at window instant `now_ns`.
    fn apply(
        &self,
        action: ControlAction,
        now_ns: u64,
        replicas: &mut Vec<Replica>,
        state: &mut DispatchState,
        cur_policy: &mut PolicySpec,
        ctl: &mut ControlStats,
    ) -> Result<()> {
        match action {
            ControlAction::ScaleUp { replicas: n } => {
                for _ in 0..n {
                    let mut opts = self.opts.clone();
                    opts.policy = cur_policy.clone();
                    let mut session = BatchSession::new(self.cfg.clone(), opts, self.fleet.batch)?;
                    let warm_at = now_ns.saturating_add(self.ctl.warmup_ns);
                    session.advance_clock(SimTime::from_nanos(warm_at));
                    replicas.push(Replica::spawn(session, now_ns, warm_at));
                    state.add_replica();
                    ctl.scale_ups += 1;
                }
                ctl.peak_replicas =
                    ctl.peak_replicas.max(replicas.iter().filter(|r| r.alive).count());
            }
            ControlAction::ScaleDown { replicas: n } => {
                for _ in 0..n {
                    let serving = replicas.iter().filter(|r| r.alive && !r.draining).count();
                    if serving <= 1 {
                        break;
                    }
                    // Drain the least-loaded serving replica; ties retire
                    // the newest so the original fleet is kept warm.
                    let victim = replicas
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.alive && !r.draining)
                        .min_by_key(|(i, r)| {
                            let load = r.queue.len()
                                + r.session.as_ref().map(|s| s.in_flight()).unwrap_or(0);
                            (load, std::cmp::Reverse(*i))
                        })
                        .map(|(i, _)| i)
                        .expect("serving > 1 guarantees a victim");
                    replicas[victim].draining = true;
                    let idle = replicas[victim].queue.is_empty()
                        && replicas[victim]
                            .session
                            .as_ref()
                            .map(|s| s.in_flight() == 0)
                            .unwrap_or(true);
                    if idle {
                        replicas[victim].retire(now_ns);
                    }
                    ctl.scale_downs += 1;
                }
            }
            ControlAction::SwitchPolicy { replica, policy } => {
                let targets: Vec<usize> = match replica {
                    Some(i) => vec![i],
                    None => (0..replicas.len()).collect(),
                };
                for i in targets {
                    let Some(rep) = replicas.get_mut(i) else { continue };
                    if !rep.alive {
                        continue;
                    }
                    if let Some(session) = rep.session.as_mut() {
                        session.swap_scheduler(policy.clone())?;
                        ctl.policy_switches += 1;
                    }
                }
                if replica.is_none() {
                    *cur_policy = policy;
                }
            }
        }
        Ok(())
    }

    /// One replica iteration: the exact `BatchScheduler::serve` discipline
    /// — idle-jump to the queue head, FIFO admission while the session
    /// accepts, one step — plus the degraded-link stretch and drain
    /// retirement.
    fn step_replica(
        &self,
        r: usize,
        replicas: &mut [Replica],
        reqs: &mut [ReqState],
        completions: &mut usize,
    ) -> Result<()> {
        let rep = &mut replicas[r];
        let session = rep.session.as_mut().expect("ready replica has a session");
        if session.in_flight() == 0 {
            if let Some(&front) = rep.queue.front() {
                session.advance_clock(SimTime::from_nanos(reqs[front].arr.arrival_ns));
            }
        }
        while let Some(&idx) = rep.queue.front() {
            let arr = reqs[idx].arr;
            if SimTime::from_nanos(arr.arrival_ns) > session.clock() {
                break;
            }
            match session.try_admit(idx as u64, arr)? {
                Admission::Admitted { queueing } => {
                    reqs[idx].queueing = queueing;
                    rep.queue.pop_front();
                }
                Admission::BatchFull | Admission::OverBudget => break,
            }
        }
        let before = session.clock();
        let events = session.step()?;
        if before.as_nanos() < rep.degraded_until_ns && rep.degrade_factor > 1.0 {
            // A degraded link stretches the iteration wall-clock: the next
            // boundary slips by (factor - 1) x the span just executed.
            let span = session.clock().duration_since(before);
            let extra = (span.as_nanos() as f64 * (rep.degrade_factor - 1.0)).round() as u64;
            session.advance_clock(session.clock() + SimDuration::from_nanos(extra));
        }
        for ev in events {
            let req = &mut reqs[ev.id as usize];
            if req.first_token_ns.is_none() {
                req.first_token_ns = Some(ev.at.as_nanos());
            }
            if ev.done {
                req.done_ns = Some(ev.at.as_nanos());
                *completions += 1;
            }
        }
        if rep.draining && rep.queue.is_empty() && session.in_flight() == 0 {
            let now = session.clock().as_nanos();
            rep.retire(now);
        }
        Ok(())
    }

    /// Merge per-request lifecycles and per-replica stats into the same
    /// [`FleetStats`] shape the static path reports.
    fn assemble(
        &self,
        dispatch: String,
        arrivals: &[ArrivedRequest],
        reqs: &[ReqState],
        replicas: Vec<Replica>,
        ctl: ControlStats,
    ) -> FleetStats {
        let gpus = ctl.peak_replicas;
        let first_arrival_ns = arrivals.first().map(|a| a.arrival_ns).unwrap_or(0);
        let mut last_completion_ns = 0u64;
        let mut latencies = Vec::with_capacity(reqs.len());
        let mut queueing = Vec::with_capacity(reqs.len());
        let mut ttfts = Vec::with_capacity(reqs.len());
        let mut assignment = Vec::with_capacity(reqs.len());
        for r in reqs {
            let done = r.done_ns.expect("all requests complete");
            let first = r.first_token_ns.expect("completed requests emitted a first token");
            last_completion_ns = last_completion_ns.max(done);
            latencies.push(SimDuration::from_nanos(done - r.arr.arrival_ns));
            ttfts.push(SimDuration::from_nanos(first - r.arr.arrival_ns));
            queueing.push(r.queueing);
            assignment.push(r.replica);
        }
        let makespan = SimDuration::from_nanos(last_completion_ns.saturating_sub(first_arrival_ns));
        // Delivered tokens only; the per-replica stats below still include
        // the dropped work, so throughput never counts a token twice.
        let total_tokens: usize = reqs.iter().map(|r| r.arr.request.output_tokens).sum();
        let tokens_per_sec = if makespan == SimDuration::ZERO {
            0.0
        } else {
            total_tokens as f64 / makespan.as_secs_f64()
        };
        // Each replica is billed from joining the fleet (or the first
        // arrival) to retiring (or the last completion).
        let gpu_time_ns: u64 = replicas
            .iter()
            .map(|r| {
                let start = r.spawned_ns.max(first_arrival_ns);
                let end = r.retired_ns.unwrap_or(last_completion_ns).max(start);
                end - start
            })
            .sum();
        let replica_stats: Vec<ServeStats> =
            replicas.into_iter().map(|r| r.stats.expect("every replica was finished")).collect();
        let utilization = replica_stats
            .iter()
            .map(|s| {
                if makespan == SimDuration::ZERO {
                    0.0
                } else {
                    s.gpu_busy.as_nanos() as f64 / makespan.as_nanos() as f64
                }
            })
            .collect();
        FleetStats {
            dispatch,
            policy: replica_stats.first().map(|s| s.policy.clone()).unwrap_or_default(),
            gpus,
            expert_fetch_bytes: replica_stats.iter().map(|s| s.expert_fetch_bytes).sum(),
            demand_fetch_bytes: replica_stats.iter().map(|s| s.demand_fetch_bytes).sum(),
            peak_hbm_bytes: replica_stats.iter().map(|s| s.peak_hbm_bytes).max().unwrap_or(0),
            replicas: replica_stats,
            assignment,
            request_latencies: latencies,
            queueing_delays: queueing,
            ttfts,
            total_tokens,
            makespan,
            tokens_per_sec,
            utilization,
            gpu_time: SimDuration::from_nanos(gpu_time_ns),
            control: Some(ctl),
        }
    }

    /// The zeroed stats an empty trace reports (mirrors the static path:
    /// the machine is never touched).
    fn empty_stats(&self, dispatch: String, controller: String) -> FleetStats {
        let sched = self.opts.policy.build(&self.opts.setup_for(&self.cfg));
        let replica = ServeStats {
            policy: sched.name(),
            request_latencies: Vec::new(),
            queueing_delays: Vec::new(),
            ttfts: Vec::new(),
            total_tokens: 0,
            tokens_per_sec: 0.0,
            peak_hbm_bytes: 0,
            expert_fetch_bytes: 0,
            demand_fetch_bytes: 0,
            gpu_busy: SimDuration::ZERO,
            peak_batch: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            kv: None,
        };
        FleetStats {
            dispatch,
            policy: replica.policy.clone(),
            gpus: self.fleet.replicas,
            replicas: vec![replica; self.fleet.replicas],
            assignment: Vec::new(),
            request_latencies: Vec::new(),
            queueing_delays: Vec::new(),
            ttfts: Vec::new(),
            total_tokens: 0,
            makespan: SimDuration::ZERO,
            tokens_per_sec: 0.0,
            expert_fetch_bytes: 0,
            demand_fetch_bytes: 0,
            peak_hbm_bytes: 0,
            utilization: vec![0.0; self.fleet.replicas],
            gpu_time: SimDuration::ZERO,
            control: Some(ControlStats {
                controller,
                faults_injected: 0,
                redispatched: 0,
                dropped_tokens: 0,
                scale_ups: 0,
                scale_downs: 0,
                policy_switches: 0,
                peak_replicas: self.fleet.replicas,
            }),
        }
    }
}

fn validate_arrivals(arrivals: &[ArrivedRequest]) -> Result<()> {
    for (i, a) in arrivals.iter().enumerate() {
        if a.request.output_tokens == 0 || a.request.batch_size != 1 {
            return Err(RuntimeError::InvalidConfig {
                message: format!(
                    "request {i}: continuous batching serves single-sequence requests \
                     with at least one output token"
                ),
            });
        }
        if i > 0 && arrivals[i - 1].arrival_ns > a.arrival_ns {
            return Err(RuntimeError::InvalidConfig {
                message: format!("arrivals must be sorted by time (violated at index {i})"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetSim, JoinShortestQueue, RoundRobin};
    use crate::{BatchConfig, OffloadPolicy};
    use pgmoe_workload::{ArrivalProcess, ArrivalStream, DecodeRequest};

    fn req(output: usize) -> DecodeRequest {
        DecodeRequest { input_tokens: 16, output_tokens: output, batch_size: 1 }
    }

    fn poisson(n: usize, rate: f64, seed: u64) -> Vec<ArrivedRequest> {
        ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: rate }, req(6), 1, seed)
            .take(n)
            .collect()
    }

    fn controlled(replicas: usize) -> ControlledFleet {
        ControlledFleet::new(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            FleetConfig::new(replicas, BatchConfig::new(4)),
        )
    }

    fn fleet(replicas: usize) -> FleetSim {
        FleetSim::new(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            FleetConfig::new(replicas, BatchConfig::new(4)),
        )
    }

    #[test]
    fn no_fault_no_control_is_bit_exact_with_the_static_fleet() {
        let arrivals = poisson(18, 120.0, 21);
        let fixed = fleet(3).serve(arrivals.clone(), &mut JoinShortestQueue::new()).unwrap();
        let live = controlled(3)
            .serve(arrivals, &mut JoinShortestQueue::new(), &FaultPlan::new(), &mut NoControl)
            .unwrap();
        assert_eq!(live.assignment, fixed.assignment, "placement must be identical");
        assert_eq!(live.request_latencies, fixed.request_latencies);
        assert_eq!(live.queueing_delays, fixed.queueing_delays);
        assert_eq!(live.ttfts, fixed.ttfts);
        assert_eq!(live.total_tokens, fixed.total_tokens);
        assert_eq!(live.makespan, fixed.makespan);
        assert_eq!(live.expert_fetch_bytes, fixed.expert_fetch_bytes);
        assert_eq!(live.demand_fetch_bytes, fixed.demand_fetch_bytes);
        assert_eq!(live.peak_hbm_bytes, fixed.peak_hbm_bytes);
        assert_eq!(live.gpu_time, fixed.gpu_time);
        assert_eq!(live.utilization, fixed.utilization);
        let ctl = live.control.expect("controlled runs report control stats");
        assert_eq!(ctl.faults_injected, 0);
        assert_eq!(ctl.redispatched, 0);
        assert_eq!(fixed.control, None, "static runs carry no control block");
    }

    #[test]
    fn killing_a_replica_loses_no_requests() {
        let arrivals = poisson(16, 150.0, 5);
        let kill_at = arrivals[5].arrival_ns + 1;
        let plan = FaultPlan::new().kill_at(kill_at, 1);
        let stats = controlled(2)
            .serve(arrivals.clone(), &mut RoundRobin::new(), &plan, &mut NoControl)
            .unwrap();
        assert_eq!(stats.request_latencies.len(), 16, "zero requests lost");
        assert_eq!(
            stats.total_tokens,
            arrivals.iter().map(|a| a.request.output_tokens).sum::<usize>(),
            "every stream completes with its full token count"
        );
        let ctl = stats.control.unwrap();
        assert_eq!(ctl.faults_injected, 1);
        assert!(ctl.redispatched > 0, "the dead replica's work must move");
        // Requests placed after the kill never land on the dead replica.
        for (i, a) in arrivals.iter().enumerate() {
            if a.arrival_ns > kill_at {
                assert_ne!(stats.assignment[i], 1, "request {i} dispatched to a dead replica");
            }
        }
    }

    #[test]
    fn stall_and_degrade_inflate_latency_without_losing_work() {
        let arrivals = poisson(12, 200.0, 9);
        let t0 = arrivals[0].arrival_ns;
        let clean = controlled(2)
            .serve(arrivals.clone(), &mut RoundRobin::new(), &FaultPlan::new(), &mut NoControl)
            .unwrap();
        let plan = FaultPlan::new().stall_at(t0 + 1, 0, 50_000_000).degrade_link_at(
            t0 + 1,
            1,
            4.0,
            1_000_000_000,
        );
        let faulty =
            controlled(2).serve(arrivals, &mut RoundRobin::new(), &plan, &mut NoControl).unwrap();
        assert_eq!(faulty.request_latencies.len(), 12);
        assert_eq!(faulty.total_tokens, clean.total_tokens);
        assert_eq!(faulty.control.as_ref().unwrap().faults_injected, 2);
        assert!(
            faulty.makespan > clean.makespan,
            "a stalled replica and a degraded link must slow the run \
             ({} vs {})",
            faulty.makespan,
            clean.makespan
        );
    }

    #[test]
    fn killing_every_replica_with_work_left_errors() {
        let arrivals = poisson(8, 100.0, 3);
        let plan = FaultPlan::new()
            .kill_at(arrivals[1].arrival_ns + 1, 0)
            .kill_at(arrivals[1].arrival_ns + 2, 1);
        let err = controlled(2).serve(arrivals, &mut RoundRobin::new(), &plan, &mut NoControl);
        assert!(matches!(err, Err(RuntimeError::InvalidConfig { .. })));
    }

    #[test]
    fn autoscaler_rides_a_flash_crowd() {
        let arrivals: Vec<ArrivedRequest> = ArrivalStream::new(
            ArrivalProcess::FlashCrowd {
                base_per_sec: 20.0,
                flash_per_sec: 400.0,
                flash_start_s: 0.3,
                flash_len_s: 0.4,
            },
            req(6),
            1,
            17,
        )
        .take(60)
        .collect();
        let ctl = ControlOptions { window_ns: 50_000_000, warmup_ns: 50_000_000 };
        let mut scaler = QueueAutoScaler::new(1, 6, 4);
        let stats = controlled(1)
            .with_control(ctl)
            .serve(arrivals, &mut JoinShortestQueue::new(), &FaultPlan::new(), &mut scaler)
            .unwrap();
        assert_eq!(stats.request_latencies.len(), 60);
        let c = stats.control.unwrap();
        assert!(c.scale_ups > 0, "the flash crowd must trigger a scale-up");
        assert!(c.peak_replicas > 1);
        assert!(
            stats.gpu_time.as_nanos() < stats.makespan.as_nanos() * c.peak_replicas as u64,
            "elastic billing must undercut peak-sized static billing"
        );
    }

    #[test]
    fn autoscaler_scales_back_down_in_the_valley() {
        // Flash crowd early, then a long sparse tail: the scaler must both
        // grow and shrink.
        let mut arrivals: Vec<ArrivedRequest> =
            ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: 500.0 }, req(6), 1, 23)
                .take(30)
                .collect();
        let burst_end = arrivals.last().unwrap().arrival_ns;
        for i in 0u64..10 {
            arrivals.push(ArrivedRequest::at_nanos(burst_end + (i + 1) * 400_000_000, req(4)));
        }
        let ctl = ControlOptions { window_ns: 50_000_000, warmup_ns: 20_000_000 };
        let mut scaler = QueueAutoScaler::new(1, 4, 4);
        let stats = controlled(1)
            .with_control(ctl)
            .serve(arrivals, &mut JoinShortestQueue::new(), &FaultPlan::new(), &mut scaler)
            .unwrap();
        let c = stats.control.unwrap();
        assert!(c.scale_ups > 0);
        assert!(c.scale_downs > 0, "the sparse tail must trigger a scale-down");
        assert_eq!(stats.request_latencies.len(), 40);
    }

    #[test]
    fn drift_switcher_swaps_every_replica_once() {
        let arrivals = poisson(20, 150.0, 7);
        let ctl = ControlOptions { window_ns: 20_000_000, warmup_ns: 0 };
        // Threshold 0 < any rate: fires at the first post-baseline window.
        let mut switcher = DriftSwitcher::new(PolicySpec::from(OffloadPolicy::OnDemand), 1e-9, 1);
        let stats = controlled(2)
            .with_control(ctl)
            .serve(arrivals, &mut RoundRobin::new(), &FaultPlan::new(), &mut switcher)
            .unwrap();
        assert!(switcher.fired());
        let c = stats.control.unwrap();
        assert_eq!(c.policy_switches, 2, "both replicas switch");
        assert_eq!(stats.policy, "MoE-OnDemand", "the fleet finishes on the new policy");
        assert_eq!(stats.request_latencies.len(), 20);
    }

    #[test]
    fn a_silent_detector_is_bit_exact_with_no_control() {
        let arrivals = poisson(14, 120.0, 31);
        let ctl = ControlOptions { window_ns: 25_000_000, warmup_ns: 0 };
        let plain = controlled(2)
            .with_control(ctl)
            .serve(arrivals.clone(), &mut RoundRobin::new(), &FaultPlan::new(), &mut NoControl)
            .unwrap();
        // A threshold no real trace exceeds: the detector observes every
        // window and never fires.
        let mut switcher = DriftSwitcher::new(PolicySpec::from(OffloadPolicy::OnDemand), 1e12, 1);
        let silent = controlled(2)
            .with_control(ctl)
            .serve(arrivals, &mut RoundRobin::new(), &FaultPlan::new(), &mut switcher)
            .unwrap();
        assert!(!switcher.fired());
        assert_eq!(silent.assignment, plain.assignment);
        assert_eq!(silent.request_latencies, plain.request_latencies);
        assert_eq!(silent.ttfts, plain.ttfts);
        assert_eq!(silent.expert_fetch_bytes, plain.expert_fetch_bytes);
        assert_eq!(silent.demand_fetch_bytes, plain.demand_fetch_bytes);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert!(matches!(
            FleetConfig::new(0, BatchConfig::new(4)).validate(),
            Err(RuntimeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            FleetConfig::new(2, BatchConfig::new(0)).validate(),
            Err(RuntimeError::InvalidConfig { .. })
        ));
        let err = controlled(0).serve(
            poisson(2, 10.0, 1),
            &mut RoundRobin::new(),
            &FaultPlan::new(),
            &mut NoControl,
        );
        assert!(matches!(err, Err(RuntimeError::InvalidConfig { .. })));
    }

    #[test]
    fn empty_stream_reports_zeroed_stats_with_control_block() {
        let stats = controlled(2)
            .serve(Vec::new(), &mut RoundRobin::new(), &FaultPlan::new(), &mut NoControl)
            .unwrap();
        assert_eq!(stats.total_tokens, 0);
        assert!(stats.request_latencies.is_empty());
        assert_eq!(stats.gpus, 2);
        assert_eq!(stats.control.unwrap().controller, "no-control");
    }
}
