//! Run options and the built-in policy names.
//!
//! The heart of the policy surface lives in [`crate::scheduler`]: the
//! [`ExpertScheduler`] trait and the [`PolicySpec`] handle that
//! [`SimOptions`] carries. This module keeps the paper-facing vocabulary —
//! the [`OffloadPolicy`] convenience enum (now a constructor for the
//! built-in schedulers, not a closed world), cache configuration, and the
//! option builders shared by every serving path.
//!
//! [`ExpertScheduler`]: crate::scheduler::ExpertScheduler

use crate::scheduler::{PolicySpec, SchedulerSetup};
use crate::{Result, RuntimeError};
use pgmoe_device::{MachineConfig, Tier};
use pgmoe_model::{ExpertPrecision, GatingMode, ModelConfig};
use pgmoe_workload::RoutingKind;

/// The paper's four design points (Section V, Fig 9), kept as a convenience
/// constructor for the built-in [`ExpertScheduler`] implementations — see
/// [`OffloadPolicy::scheduler`]. `SimOptions::new` accepts it directly, so
/// every Table I / Fig 9–16 reproduction path reads exactly as before.
///
/// [`ExpertScheduler`]: crate::scheduler::ExpertScheduler
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadPolicy {
    /// Everything resident in GPU HBM; oracular performance upper bound.
    GpuOnly,
    /// Fetch activated experts after the gate resolves (HF Accelerate).
    OnDemand,
    /// Prefetch the *entire* next block's expert set during the current
    /// block's execution (SE-MoE).
    PrefetchAll,
    /// The paper's system: pre-gate selects the next block's experts, so
    /// only activated experts migrate, overlapped with execution.
    Pregated,
}

impl OffloadPolicy {
    /// All four policies in the paper's presentation order.
    pub const ALL: [OffloadPolicy; 4] = [
        OffloadPolicy::GpuOnly,
        OffloadPolicy::Pregated,
        OffloadPolicy::OnDemand,
        OffloadPolicy::PrefetchAll,
    ];

    /// Display name matching the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            OffloadPolicy::GpuOnly => "GPU-only",
            OffloadPolicy::OnDemand => "MoE-OnDemand",
            OffloadPolicy::PrefetchAll => "MoE-Prefetch",
            OffloadPolicy::Pregated => "Pre-gated MoE",
        }
    }

    /// Whether expert parameters are offloaded off-GPU under this policy.
    pub fn offloads_experts(self) -> bool {
        !matches!(self, OffloadPolicy::GpuOnly)
    }
}

impl std::fmt::Display for OffloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Replacement policy for the expert cache (Fig 15 evaluates all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Last-in-first-out, as proposed by Huang et al. for expert buffering.
    Lifo,
    /// Least-frequently-used (SE-MoE's choice).
    Lfu,
    /// Least-recently-used.
    Lru,
}

impl Replacement {
    /// All replacement policies in Fig 15's order.
    pub const ALL: [Replacement; 3] = [Replacement::Lifo, Replacement::Lfu, Replacement::Lru];
}

impl std::fmt::Display for Replacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Replacement::Lifo => "LIFO",
            Replacement::Lfu => "LFU",
            Replacement::Lru => "LRU",
        })
    }
}

/// How the expert cache is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheCapacity {
    /// A fraction of the model's total experts in `(0, 1]` (Fig 15 uses
    /// 1 %, 10 %, 20 %).
    Fraction(f64),
    /// An explicit HBM byte budget: capacity in *experts* is
    /// `bytes / expert_bytes`, so the same budget holds ~2× the experts at
    /// f16 and ~3.8× at int8.
    Bytes(u64),
}

/// Expert-cache configuration: HBM reserved for resident experts, sized by
/// a [`CacheCapacity`], with a [`Replacement`] policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// How the cache is sized.
    pub capacity: CacheCapacity,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Creates a cache covering `fraction` of all experts.
    pub fn new(fraction: f64, replacement: Replacement) -> Self {
        CacheConfig { capacity: CacheCapacity::Fraction(fraction), replacement }
    }

    /// Creates a cache holding as many experts as fit in `bytes` of HBM at
    /// the run's expert precision.
    pub fn bytes(bytes: u64, replacement: Replacement) -> Self {
        CacheConfig { capacity: CacheCapacity::Bytes(bytes), replacement }
    }
}

/// Options for one simulated inference run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// The expert-scheduling policy. Built from an [`OffloadPolicy`], from
    /// the [`PolicySpec`] constructors, or from a user scheduler factory.
    pub policy: PolicySpec,
    /// Gate topology request. [`GatingMode::Conventional`] (the default)
    /// lets pre-gating schedulers use their default level 1; setting
    /// [`GatingMode::Pregated`] explicitly is only valid for schedulers
    /// that consume pre-gate routing (Fig 13-style latency ablations).
    pub gating: GatingMode,
    /// Where offloaded experts live: [`Tier::Ddr`] (default) or
    /// [`Tier::Ssd`] (Fig 16).
    pub offload_tier: Tier,
    /// Optional expert cache (Fig 15).
    pub cache: Option<CacheConfig>,
    /// Override the number of experts activated per token (Fig 14's sweep);
    /// `None` uses the model's `top_k`.
    pub active_experts_override: Option<usize>,
    /// Simulated machine. Defaults to the paper's A100 + PCIe gen4 host.
    pub machine: MachineConfig,
    /// Retain the execution trace for timeline rendering (Fig 9).
    pub trace_timeline: bool,
    /// Routing statistics for the decode trace (Fig 15's caching study uses
    /// a Zipf-skewed trace; everything else defaults to uniform).
    pub routing: RoutingKind,
    /// Seed for the routing trace.
    pub seed: u64,
    /// Override of the model's expert storage precision for this run:
    /// `Some(p)` makes every expert-byte-derived quantity (fetch latency,
    /// transients, cache capacity, HBM admission) use `p`; `None` keeps the
    /// model's own [`ModelConfig::expert_precision`].
    ///
    /// [`ModelConfig::expert_precision`]: pgmoe_model::ModelConfig
    pub expert_precision: Option<ExpertPrecision>,
    /// Whether decode iterations compile through the plan cache
    /// ([`crate::plan`], on by default). Bit-exact either way; disable only
    /// to measure the interpreted path (the bench A/B harness does).
    pub plan_cache: bool,
}

impl SimOptions {
    /// Default options for a policy: DDR offload, no cache, the scheduler's
    /// default gating, the paper's machine. Accepts an [`OffloadPolicy`]
    /// variant or any [`PolicySpec`].
    pub fn new(policy: impl Into<PolicySpec>) -> Self {
        SimOptions {
            policy: policy.into(),
            gating: GatingMode::Conventional,
            offload_tier: Tier::Ddr,
            cache: None,
            active_experts_override: None,
            machine: MachineConfig::a100_like(),
            trace_timeline: false,
            routing: RoutingKind::Uniform,
            seed: 0x5EED,
            expert_precision: None,
            plan_cache: true,
        }
    }

    /// Builder: force every decode iteration through the interpreted core,
    /// bypassing the compiled-plan cache.
    pub fn without_plan_cache(mut self) -> Self {
        self.plan_cache = false;
        self
    }

    /// Builder: set the decode routing statistics.
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Builder: offload experts to SSD instead of CPU DRAM.
    pub fn with_ssd_offload(mut self) -> Self {
        self.offload_tier = Tier::Ssd;
        self
    }

    /// Builder: enable an expert cache.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Builder: force `k` active experts per token (Fig 14).
    pub fn with_active_experts(mut self, k: usize) -> Self {
        self.active_experts_override = Some(k);
        self
    }

    /// Builder: keep the execution trace.
    pub fn with_timeline(mut self) -> Self {
        self.trace_timeline = true;
        self
    }

    /// Builder: set the routing seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: request an explicit gate topology (only valid for
    /// schedulers that consume pre-gate routing).
    pub fn with_gating(mut self, gating: GatingMode) -> Self {
        self.gating = gating;
        self
    }

    /// Builder: serve with experts stored (and migrated) at `precision`.
    pub fn with_expert_precision(mut self, precision: ExpertPrecision) -> Self {
        self.expert_precision = Some(precision);
        self
    }

    /// Experts activated per token per block for `cfg` under these options.
    pub(crate) fn active_per_block(&self, cfg: &ModelConfig) -> usize {
        self.active_experts_override.unwrap_or(cfg.top_k).min(cfg.num_experts)
    }

    /// The [`SchedulerSetup`] a run over `cfg` instantiates schedulers with.
    pub(crate) fn setup_for(&self, cfg: &ModelConfig) -> SchedulerSetup {
        SchedulerSetup {
            dec_blocks: cfg.decoder_moe_layers(),
            enc_blocks: cfg.encoder_layers / cfg.moe_every,
            num_experts: cfg.num_experts,
            active_per_block: self.active_per_block(cfg),
            token_bytes: (cfg.d_model as f64 * cfg.precision.bytes_per_param()) as u64,
            gating: self.gating,
            seed: self.seed,
        }
    }

    /// Validates these options against a model, rejecting configurations
    /// that would otherwise silently misbehave: a zero (or too large)
    /// active-expert override, a cache fraction outside `(0, 1]`, and an
    /// explicit [`GatingMode::Pregated`] on a scheduler that does not
    /// consume pre-gate routing.
    ///
    /// Called by every serving path before work starts; exposed so tools
    /// can fail fast.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] describing the offending option.
    pub fn validate(&self, cfg: &ModelConfig) -> Result<()> {
        if let Some(k) = self.active_experts_override {
            if k == 0 || k > cfg.num_experts {
                return Err(RuntimeError::InvalidConfig {
                    message: format!("active experts {k} outside 1..={}", cfg.num_experts),
                });
            }
        }
        if let Some(c) = self.cache {
            if let CacheCapacity::Fraction(f) = c.capacity {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(RuntimeError::InvalidConfig {
                        message: format!("cache fraction {f} outside (0, 1]"),
                    });
                }
            }
        }
        if let GatingMode::Pregated { level } = self.gating {
            if level == 0 {
                return Err(RuntimeError::InvalidConfig {
                    message: "explicit pre-gate level must be >= 1 (use GatingMode::Conventional \
                              for the scheduler's default)"
                        .into(),
                });
            }
            let sched = self.policy.build(&self.setup_for(cfg));
            if !sched.uses_pregate() {
                return Err(RuntimeError::InvalidConfig {
                    message: format!(
                        "GatingMode::Pregated configured for scheduler `{}`, which does not \
                         consume pre-gate routing",
                        sched.name()
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::PolicySpec;

    #[test]
    fn paper_names_match_figures() {
        assert_eq!(OffloadPolicy::Pregated.paper_name(), "Pre-gated MoE");
        assert_eq!(OffloadPolicy::PrefetchAll.to_string(), "MoE-Prefetch");
    }

    #[test]
    fn gpu_only_does_not_offload() {
        assert!(!OffloadPolicy::GpuOnly.offloads_experts());
        assert!(OffloadPolicy::Pregated.offloads_experts());
    }

    #[test]
    fn builders_compose() {
        let opts = SimOptions::new(OffloadPolicy::OnDemand)
            .with_ssd_offload()
            .with_cache(CacheConfig::new(0.1, Replacement::Lru))
            .with_active_experts(4)
            .with_seed(9)
            .with_expert_precision(pgmoe_model::ExpertPrecision::Int8);
        assert_eq!(opts.offload_tier, Tier::Ssd);
        assert_eq!(opts.cache.unwrap().replacement, Replacement::Lru);
        assert_eq!(opts.active_experts_override, Some(4));
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.expert_precision, Some(pgmoe_model::ExpertPrecision::Int8));
        assert_eq!(opts.policy.name(), "MoE-OnDemand");
    }

    #[test]
    fn byte_budget_cache_config() {
        let c = CacheConfig::bytes(1 << 30, Replacement::Lfu);
        assert_eq!(c.capacity, CacheCapacity::Bytes(1 << 30));
        assert_eq!(c.replacement, Replacement::Lfu);
        assert_eq!(CacheConfig::new(0.1, Replacement::Lru).capacity, CacheCapacity::Fraction(0.1));
    }

    #[test]
    fn validation_rejects_zero_active_experts() {
        let cfg = ModelConfig::switch_base(8);
        let err = SimOptions::new(OffloadPolicy::Pregated)
            .with_active_experts(0)
            .validate(&cfg)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig { .. }), "{err}");
        let err = SimOptions::new(OffloadPolicy::Pregated).with_active_experts(9).validate(&cfg);
        assert!(err.is_err(), "k above expert count must be rejected");
        assert!(SimOptions::new(OffloadPolicy::Pregated)
            .with_active_experts(8)
            .validate(&cfg)
            .is_ok());
    }

    #[test]
    fn validation_rejects_bad_cache_fraction() {
        let cfg = ModelConfig::switch_base(8);
        for bad in [0.0, -0.5, 1.5] {
            let err = SimOptions::new(OffloadPolicy::OnDemand)
                .with_cache(CacheConfig::new(bad, Replacement::Lru))
                .validate(&cfg);
            assert!(err.is_err(), "fraction {bad} must be rejected");
        }
        assert!(SimOptions::new(OffloadPolicy::OnDemand)
            .with_cache(CacheConfig::new(1.0, Replacement::Lru))
            .validate(&cfg)
            .is_ok());
        // Byte budgets are never fraction-checked.
        assert!(SimOptions::new(OffloadPolicy::OnDemand)
            .with_cache(CacheConfig::bytes(1 << 20, Replacement::Lru))
            .validate(&cfg)
            .is_ok());
    }

    #[test]
    fn validation_rejects_gating_on_non_pregated_schedulers() {
        let cfg = ModelConfig::switch_base(8);
        for policy in [OffloadPolicy::GpuOnly, OffloadPolicy::OnDemand, OffloadPolicy::PrefetchAll]
        {
            for level in [0, 1] {
                let err = SimOptions::new(policy)
                    .with_gating(GatingMode::Pregated { level })
                    .validate(&cfg)
                    .unwrap_err();
                assert!(
                    matches!(err, RuntimeError::InvalidConfig { ref message }
                        if message.contains("pre-gate")),
                    "{policy} level {level}: {err}"
                );
            }
        }
        // An explicit level of 0 is rejected even on pre-gating schedulers
        // (it would silently coerce to level 1).
        assert!(SimOptions::new(OffloadPolicy::Pregated)
            .with_gating(GatingMode::Pregated { level: 0 })
            .validate(&cfg)
            .is_err());
        // Pre-gating schedulers accept an explicit level.
        for spec in [
            OffloadPolicy::Pregated.scheduler(),
            PolicySpec::speculative_top_m(4),
            PolicySpec::cache_pinned(2),
        ] {
            assert!(SimOptions::new(spec)
                .with_gating(GatingMode::Pregated { level: 2 })
                .validate(&cfg)
                .is_ok());
        }
    }
}
