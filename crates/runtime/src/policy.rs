//! Execution policies and run options.

use pgmoe_device::{MachineConfig, Tier};
use pgmoe_model::{ExpertPrecision, GatingMode};
use pgmoe_workload::RoutingKind;

/// Where expert parameters live and how they reach the GPU — the paper's
/// four design points (Section V, Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadPolicy {
    /// Everything resident in GPU HBM; oracular performance upper bound.
    GpuOnly,
    /// Fetch activated experts after the gate resolves (HF Accelerate).
    OnDemand,
    /// Prefetch the *entire* next block's expert set during the current
    /// block's execution (SE-MoE).
    PrefetchAll,
    /// The paper's system: pre-gate selects the next block's experts, so
    /// only activated experts migrate, overlapped with execution.
    Pregated,
}

impl OffloadPolicy {
    /// All four policies in the paper's presentation order.
    pub const ALL: [OffloadPolicy; 4] = [
        OffloadPolicy::GpuOnly,
        OffloadPolicy::Pregated,
        OffloadPolicy::OnDemand,
        OffloadPolicy::PrefetchAll,
    ];

    /// Display name matching the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            OffloadPolicy::GpuOnly => "GPU-only",
            OffloadPolicy::OnDemand => "MoE-OnDemand",
            OffloadPolicy::PrefetchAll => "MoE-Prefetch",
            OffloadPolicy::Pregated => "Pre-gated MoE",
        }
    }

    /// Whether expert parameters are offloaded off-GPU under this policy.
    pub fn offloads_experts(self) -> bool {
        !matches!(self, OffloadPolicy::GpuOnly)
    }
}

impl std::fmt::Display for OffloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Replacement policy for the expert cache (Fig 15 evaluates all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Last-in-first-out, as proposed by Huang et al. for expert buffering.
    Lifo,
    /// Least-frequently-used (SE-MoE's choice).
    Lfu,
    /// Least-recently-used.
    Lru,
}

impl Replacement {
    /// All replacement policies in Fig 15's order.
    pub const ALL: [Replacement; 3] = [Replacement::Lifo, Replacement::Lfu, Replacement::Lru];
}

impl std::fmt::Display for Replacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Replacement::Lifo => "LIFO",
            Replacement::Lfu => "LFU",
            Replacement::Lru => "LRU",
        })
    }
}

/// Expert-cache configuration: HBM reserved for resident experts, sized
/// either as a fraction of all experts or as a byte budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Fraction of the model's experts that fit in the cache (Fig 15 uses
    /// 1 %, 10 %, 20 %). Ignored when `hbm_bytes` is set.
    pub fraction: f64,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Explicit HBM byte budget for the cache region. When set, capacity in
    /// *experts* is `hbm_bytes / expert_bytes` — so the same budget holds
    /// ~2× the experts at f16 and ~3.8× at int8.
    pub hbm_bytes: Option<u64>,
}

impl CacheConfig {
    /// Creates a cache covering `fraction` of all experts.
    pub fn new(fraction: f64, replacement: Replacement) -> Self {
        CacheConfig { fraction, replacement, hbm_bytes: None }
    }

    /// Creates a cache holding as many experts as fit in `bytes` of HBM at
    /// the run's expert precision.
    pub fn bytes(bytes: u64, replacement: Replacement) -> Self {
        CacheConfig { fraction: 1.0, replacement, hbm_bytes: Some(bytes) }
    }
}

/// Options for one simulated inference run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Execution policy.
    pub policy: OffloadPolicy,
    /// Gate topology used when `policy` is [`OffloadPolicy::Pregated`]
    /// (level 1 unless running the Fig 13-style latency ablation).
    pub gating: GatingMode,
    /// Where offloaded experts live: [`Tier::Ddr`] (default) or
    /// [`Tier::Ssd`] (Fig 16).
    pub offload_tier: Tier,
    /// Optional expert cache (Fig 15).
    pub cache: Option<CacheConfig>,
    /// Override the number of experts activated per token (Fig 14's sweep);
    /// `None` uses the model's `top_k`.
    pub active_experts_override: Option<usize>,
    /// Simulated machine. Defaults to the paper's A100 + PCIe gen4 host.
    pub machine: MachineConfig,
    /// Retain the execution trace for timeline rendering (Fig 9).
    pub trace_timeline: bool,
    /// Routing statistics for the decode trace (Fig 15's caching study uses
    /// a Zipf-skewed trace; everything else defaults to uniform).
    pub routing: RoutingKind,
    /// Seed for the routing trace.
    pub seed: u64,
    /// Override of the model's expert storage precision for this run:
    /// `Some(p)` makes every expert-byte-derived quantity (fetch latency,
    /// transients, cache capacity, HBM admission) use `p`; `None` keeps the
    /// model's own [`ModelConfig::expert_precision`].
    ///
    /// [`ModelConfig::expert_precision`]: pgmoe_model::ModelConfig
    pub expert_precision: Option<ExpertPrecision>,
}

impl SimOptions {
    /// Default options for a policy: DDR offload, no cache, level-1
    /// pre-gating, the paper's machine.
    pub fn new(policy: OffloadPolicy) -> Self {
        SimOptions {
            policy,
            gating: GatingMode::Pregated { level: 1 },
            offload_tier: Tier::Ddr,
            cache: None,
            active_experts_override: None,
            machine: MachineConfig::a100_like(),
            trace_timeline: false,
            routing: RoutingKind::Uniform,
            seed: 0x5EED,
            expert_precision: None,
        }
    }

    /// Builder: set the decode routing statistics.
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Builder: offload experts to SSD instead of CPU DRAM.
    pub fn with_ssd_offload(mut self) -> Self {
        self.offload_tier = Tier::Ssd;
        self
    }

    /// Builder: enable an expert cache.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Builder: force `k` active experts per token (Fig 14).
    pub fn with_active_experts(mut self, k: usize) -> Self {
        self.active_experts_override = Some(k);
        self
    }

    /// Builder: keep the execution trace.
    pub fn with_timeline(mut self) -> Self {
        self.trace_timeline = true;
        self
    }

    /// Builder: set the routing seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: serve with experts stored (and migrated) at `precision`.
    pub fn with_expert_precision(mut self, precision: ExpertPrecision) -> Self {
        self.expert_precision = Some(precision);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_match_figures() {
        assert_eq!(OffloadPolicy::Pregated.paper_name(), "Pre-gated MoE");
        assert_eq!(OffloadPolicy::PrefetchAll.to_string(), "MoE-Prefetch");
    }

    #[test]
    fn gpu_only_does_not_offload() {
        assert!(!OffloadPolicy::GpuOnly.offloads_experts());
        assert!(OffloadPolicy::Pregated.offloads_experts());
    }

    #[test]
    fn builders_compose() {
        let opts = SimOptions::new(OffloadPolicy::OnDemand)
            .with_ssd_offload()
            .with_cache(CacheConfig::new(0.1, Replacement::Lru))
            .with_active_experts(4)
            .with_seed(9)
            .with_expert_precision(ExpertPrecision::Int8);
        assert_eq!(opts.offload_tier, Tier::Ssd);
        assert_eq!(opts.cache.unwrap().replacement, Replacement::Lru);
        assert_eq!(opts.active_experts_override, Some(4));
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.expert_precision, Some(ExpertPrecision::Int8));
    }

    #[test]
    fn byte_budget_cache_config() {
        let c = CacheConfig::bytes(1 << 30, Replacement::Lfu);
        assert_eq!(c.hbm_bytes, Some(1 << 30));
        assert_eq!(c.replacement, Replacement::Lfu);
        assert!(CacheConfig::new(0.1, Replacement::Lru).hbm_bytes.is_none());
    }
}
