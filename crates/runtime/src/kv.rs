//! Block-paged KV cache with copy-on-write prefix sharing.
//!
//! The unpaged serving path reserves **worst-case contiguous KV** per
//! request at admission (`input + output` tokens, all layers), which caps
//! the admitted batch far below what HBM actually holds: most of the
//! reservation is decode context that does not exist yet, and tenants'
//! shared system prompts are stored once *per request*. This module is the
//! vLLM-style fix:
//!
//! * KV lives in fixed-size **blocks** of [`KvBlockPool::block_tokens`]
//!   tokens; a request holds a [`BlockTable`] of physical block ids and
//!   only the blocks its *current* context needs.
//! * Full blocks inside a request's declared shared-prefix region are
//!   content-addressed by a chained FNV-1a hash; a second request whose
//!   prompt opens with the same tokens points its table at the **same
//!   physical block** ([`KvPoolStats::shared_hit_bytes`] counts the copies
//!   avoided).
//! * Shared blocks are refcounted and immutable. Writing into a shared
//!   *partial* block (possible after [`KvBlockPool::fork`], the
//!   parallel-sampling seam) triggers **copy-on-write**: the writer gets a
//!   private copy, the sibling's contents are untouched.
//!
//! The pool is a pure data structure — it owns no device memory. The
//! serving session reconciles [`KvBlockPool::used_bytes`] against the
//! simulated HBM pool and arbitrates the budget between KV blocks and the
//! expert cache (see `session.rs`).

use std::collections::HashMap;

/// Knobs for the paged-KV serving path (see
/// [`crate::BatchConfig::with_paged_kv`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedKvConfig {
    /// Tokens per KV block. Small blocks waste less tail space but shard
    /// the prefix index finer; vLLM's default is 16.
    pub block_tokens: usize,
    /// Maximum prompt tokens prefilled per scheduler step. Prefill work for
    /// longer prompts is chunked across decode-iteration boundaries so one
    /// long prompt cannot stall the whole batch. `usize::MAX` prefills
    /// every pending prompt in one step (timing-identical to the unpaged
    /// path when HBM is roomy).
    pub prefill_chunk_tokens: usize,
    /// Whether full blocks inside a declared shared prefix are deduplicated
    /// across requests.
    pub share_prefixes: bool,
    /// Whether block-table bookkeeping costs *simulated* time: each fresh
    /// block allocation charges one stream-sync of overhead and each
    /// copy-on-write copy charges a memory-bound read+write of the copied
    /// bytes (see `crate::plan::kv_append_duration`). Off by default so the
    /// paged path stays timing-identical to the unpaged path when HBM is
    /// roomy (the golden-equivalence pins rely on that).
    pub timed_appends: bool,
}

impl PagedKvConfig {
    /// Paged KV with `block_tokens`-token blocks, unbounded prefill chunks,
    /// and prefix sharing enabled.
    pub fn new(block_tokens: usize) -> Self {
        PagedKvConfig {
            block_tokens,
            prefill_chunk_tokens: usize::MAX,
            share_prefixes: true,
            timed_appends: false,
        }
    }

    /// Builder: bound prompt prefill to `tokens` per scheduler step.
    pub fn with_prefill_chunk(mut self, tokens: usize) -> Self {
        self.prefill_chunk_tokens = tokens.max(1);
        self
    }

    /// Builder: disable shared-prefix deduplication (every request gets
    /// private blocks).
    pub fn without_prefix_sharing(mut self) -> Self {
        self.share_prefixes = false;
        self
    }

    /// Builder: charge simulated time for block allocation and
    /// copy-on-write copies (see [`PagedKvConfig::timed_appends`]).
    pub fn with_timed_appends(mut self) -> Self {
        self.timed_appends = true;
        self
    }
}

/// Counters the pool accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvPoolStats {
    /// Bytes of KV *not* written because a full shared-prefix block was
    /// already resident (one hit = one block's bytes).
    pub shared_hit_bytes: u64,
    /// Bytes copied by copy-on-write when a writer appended into a shared
    /// partial block.
    pub cow_copy_bytes: u64,
    /// Copy-on-write events.
    pub cow_copies: u64,
    /// Physical blocks allocated over the pool's lifetime (frees not
    /// subtracted).
    pub blocks_allocated: u64,
}

/// Per-session paged-KV statistics surfaced in
/// [`crate::ServeStats::kv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvServeStats {
    /// Tokens per block the session ran with.
    pub block_tokens: usize,
    /// High-water physical blocks in use.
    pub peak_blocks: usize,
    /// High-water KV bytes in use (`peak_blocks` × block bytes).
    pub peak_kv_bytes: u64,
    /// Bytes saved by shared-prefix block reuse.
    pub shared_hit_bytes: u64,
    /// Bytes copied by copy-on-write.
    pub cow_copy_bytes: u64,
    /// Times the expert cache was shrunk to make room for KV blocks.
    pub cache_shrink_events: u64,
    /// Expert-cache capacity (in experts) when the session finished, after
    /// any KV-pressure arbitration.
    pub final_cache_experts: usize,
}

/// One request's view of its KV cache: an ordered list of physical block
/// ids plus the number of logical tokens stored. Obtained from
/// [`KvBlockPool::new_table`]; must be returned via
/// [`KvBlockPool::release`].
#[derive(Debug, Clone)]
pub struct BlockTable {
    blocks: Vec<usize>,
    tokens: usize,
    /// Running chained hash over every stamp appended so far — the content
    /// address of the *next* full block boundary.
    chain: u64,
    /// Leading tokens eligible for shared-prefix deduplication.
    sharable_tokens: usize,
}

impl BlockTable {
    /// Logical tokens stored.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Physical blocks referenced (shared blocks count once per table).
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The physical block ids, in logical order (the "block-table walk" an
    /// attention kernel would gather from).
    pub fn physical_blocks(&self) -> &[usize] {
        &self.blocks
    }
}

#[derive(Debug, Clone)]
struct PhysBlock {
    refcount: u32,
    /// Per-token content stamps. Length < `block_tokens` means partial.
    stamps: Vec<u64>,
    /// The chained content hash this block is indexed under, if shared.
    key: Option<u64>,
}

/// A refcounted slab of fixed-size KV blocks with a content-addressed
/// prefix index (module docs above).
///
/// # Example
///
/// ```
/// use pgmoe_runtime::KvBlockPool;
///
/// let mut pool = KvBlockPool::new(4, 1024); // 4-token blocks, 1 KiB/token
/// let mut a = pool.new_table(8);
/// pool.append(&mut a, &[1, 2, 3, 4, 5, 6, 7, 8]);
/// let mut b = pool.new_table(8);
/// pool.append(&mut b, &[1, 2, 3, 4, 5, 6, 7, 8]); // same prefix content
/// assert_eq!(pool.used_blocks(), 2, "both tables share both blocks");
/// assert_eq!(pool.stats().shared_hit_bytes, 2 * 4 * 1024);
/// pool.release(a);
/// pool.release(b);
/// assert_eq!(pool.used_blocks(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct KvBlockPool {
    block_tokens: usize,
    bytes_per_token: u64,
    blocks: Vec<PhysBlock>,
    free: Vec<usize>,
    index: HashMap<u64, usize>,
    used_blocks: usize,
    peak_blocks: usize,
    stats: KvPoolStats,
}

fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

impl KvBlockPool {
    /// A pool of `block_tokens`-token blocks costing `bytes_per_token` KV
    /// bytes per token (all layers). `block_tokens` is clamped to ≥ 1.
    pub fn new(block_tokens: usize, bytes_per_token: u64) -> Self {
        KvBlockPool {
            block_tokens: block_tokens.max(1),
            bytes_per_token,
            blocks: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            used_blocks: 0,
            peak_blocks: 0,
            stats: KvPoolStats::default(),
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// HBM bytes one block occupies.
    pub fn block_bytes(&self) -> u64 {
        self.block_tokens as u64 * self.bytes_per_token
    }

    /// Physical blocks currently in use.
    pub fn used_blocks(&self) -> usize {
        self.used_blocks
    }

    /// High-water physical blocks.
    pub fn peak_blocks(&self) -> usize {
        self.peak_blocks
    }

    /// HBM bytes currently occupied by KV blocks.
    pub fn used_bytes(&self) -> u64 {
        self.used_blocks as u64 * self.block_bytes()
    }

    /// High-water KV bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_blocks as u64 * self.block_bytes()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> KvPoolStats {
        self.stats
    }

    /// An empty table whose first `sharable_tokens` tokens may be
    /// deduplicated against other tables' identical prefixes. Pass 0 to
    /// keep every block private.
    pub fn new_table(&self, sharable_tokens: usize) -> BlockTable {
        BlockTable { blocks: Vec::new(), tokens: 0, chain: FNV_OFFSET, sharable_tokens }
    }

    /// How many of the first `min(tokens, sharable)` tokens' full blocks
    /// are already resident for the given stamp sequence — what admission
    /// control subtracts from a prompt's planned KV footprint. Does not
    /// touch refcounts.
    pub fn probe_shared_blocks(&self, stamps: impl IntoIterator<Item = u64>) -> usize {
        let mut chain = FNV_OFFSET;
        let mut hits = 0;
        let mut in_block = 0;
        for stamp in stamps {
            chain = fnv1a_u64(chain, stamp);
            in_block += 1;
            if in_block == self.block_tokens {
                match self.index.get(&chain) {
                    Some(_) => hits += 1,
                    // A miss breaks the chain of *resident* prefix blocks;
                    // later blocks would chain off a private block anyway.
                    None => break,
                }
                in_block = 0;
            }
        }
        hits
    }

    fn alloc_block(&mut self) -> usize {
        self.stats.blocks_allocated += 1;
        self.used_blocks += 1;
        self.peak_blocks = self.peak_blocks.max(self.used_blocks);
        match self.free.pop() {
            Some(id) => {
                debug_assert_eq!(self.blocks[id].refcount, 0);
                self.blocks[id].refcount = 1;
                self.blocks[id].stamps.clear();
                self.blocks[id].key = None;
                id
            }
            None => {
                self.blocks.push(PhysBlock { refcount: 1, stamps: Vec::new(), key: None });
                self.blocks.len() - 1
            }
        }
    }

    fn release_block(&mut self, id: usize) {
        let b = &mut self.blocks[id];
        debug_assert!(b.refcount > 0, "block double free");
        b.refcount -= 1;
        if b.refcount == 0 {
            if let Some(key) = b.key.take() {
                self.index.remove(&key);
            }
            b.stamps.clear();
            self.free.push(id);
            self.used_blocks -= 1;
        }
    }

    /// Appends token `stamps` to `table`, sharing full shared-prefix blocks
    /// with identical content and copy-on-write-copying a shared partial
    /// tail before writing into it. Stamps are the per-token content
    /// identity (real token ids, or deterministic synthetic stamps).
    pub fn append(&mut self, table: &mut BlockTable, stamps: &[u64]) {
        let mut rest = stamps;
        while !rest.is_empty() {
            let filled = table.tokens % self.block_tokens;
            let at_boundary = filled == 0;
            // Whole-block fast path: at a boundary, with a full block of
            // stamps entirely inside the sharable region, try the index
            // before allocating anything.
            if at_boundary
                && rest.len() >= self.block_tokens
                && table.tokens + self.block_tokens <= table.sharable_tokens
            {
                let (seg, tail) = rest.split_at(self.block_tokens);
                let chain = seg.iter().fold(table.chain, |h, &s| fnv1a_u64(h, s));
                if let Some(&shared) = self.index.get(&chain) {
                    self.blocks[shared].refcount += 1;
                    table.blocks.push(shared);
                    table.tokens += self.block_tokens;
                    table.chain = chain;
                    self.stats.shared_hit_bytes += self.block_bytes();
                    rest = tail;
                    continue;
                }
            }
            // Slow path: write into the (possibly new) last block.
            if at_boundary {
                let id = self.alloc_block();
                table.blocks.push(id);
            }
            let last = *table.blocks.last().expect("table has a tail block");
            let last = if self.blocks[last].refcount > 1 {
                // Copy-on-write: the tail is shared (a fork sibling or an
                // immutable prefix block we must not mutate).
                let copy = self.alloc_block();
                let stamps_now = self.blocks[last].stamps.clone();
                self.stats.cow_copies += 1;
                self.stats.cow_copy_bytes += stamps_now.len() as u64 * self.bytes_per_token;
                self.blocks[copy].stamps = stamps_now;
                self.release_block(last);
                *table.blocks.last_mut().expect("table has a tail block") = copy;
                copy
            } else {
                last
            };
            let room = self.block_tokens - self.blocks[last].stamps.len();
            let take = room.min(rest.len());
            let (seg, tail) = rest.split_at(take);
            for &s in seg {
                self.blocks[last].stamps.push(s);
                table.chain = fnv1a_u64(table.chain, s);
            }
            table.tokens += take;
            rest = tail;
            // Seal: a block that just filled inside the sharable region is
            // registered so later identical prefixes dedup against it.
            if self.blocks[last].stamps.len() == self.block_tokens
                && table.tokens <= table.sharable_tokens
                && self.blocks[last].key.is_none()
            {
                self.index.entry(table.chain).or_insert(last);
                if self.index[&table.chain] == last {
                    self.blocks[last].key = Some(table.chain);
                }
            }
        }
    }

    /// Forks `table` — the parallel-sampling/beam-search seam: the child
    /// shares every physical block (refcounts bumped), including a partial
    /// tail. The first append through either table copy-on-writes the tail.
    pub fn fork(&mut self, table: &BlockTable) -> BlockTable {
        for &id in &table.blocks {
            self.blocks[id].refcount += 1;
        }
        table.clone()
    }

    /// Content stamps of the physical block at `table`'s `idx`-th position
    /// (test/diagnostic: lets callers assert CoW really isolated a fork).
    pub fn block_stamps(&self, table: &BlockTable, idx: usize) -> &[u64] {
        &self.blocks[table.blocks[idx]].stamps
    }

    /// Returns `table`'s blocks to the pool; physical blocks are freed when
    /// their last reference drops (shared-prefix blocks leave the index at
    /// that point).
    pub fn release(&mut self, table: BlockTable) {
        for id in table.blocks {
            self.release_block(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BPT: u64 = 100; // bytes per token

    #[test]
    fn blocks_grow_and_free_by_refcount() {
        let mut pool = KvBlockPool::new(4, BPT);
        let mut t = pool.new_table(0);
        pool.append(&mut t, &[1, 2, 3, 4, 5]);
        assert_eq!(t.tokens(), 5);
        assert_eq!(t.blocks(), 2, "5 tokens over 4-token blocks");
        assert_eq!(pool.used_blocks(), 2);
        assert_eq!(pool.used_bytes(), 2 * 4 * BPT);
        pool.append(&mut t, &[6, 7, 8]);
        assert_eq!(t.blocks(), 2, "tail block had room");
        pool.append(&mut t, &[9]);
        assert_eq!(t.blocks(), 3);
        assert_eq!(pool.peak_blocks(), 3);
        pool.release(t);
        assert_eq!(pool.used_blocks(), 0);
        assert_eq!(pool.peak_blocks(), 3, "peak is a high-water mark");
    }

    #[test]
    fn freed_blocks_are_reused() {
        let mut pool = KvBlockPool::new(2, BPT);
        let mut a = pool.new_table(0);
        pool.append(&mut a, &[1, 2, 3, 4]);
        pool.release(a);
        let mut b = pool.new_table(0);
        pool.append(&mut b, &[5, 6]);
        assert_eq!(pool.blocks.len(), 2, "slab must not grow while free blocks exist");
        assert_eq!(pool.used_blocks(), 1);
        pool.release(b);
    }

    #[test]
    fn identical_shared_prefixes_occupy_one_physical_copy() {
        let mut pool = KvBlockPool::new(4, BPT);
        let stamps: Vec<u64> = (100..112).collect(); // 3 full blocks
        let mut a = pool.new_table(12);
        pool.append(&mut a, &stamps);
        assert_eq!(pool.used_blocks(), 3);
        let mut b = pool.new_table(12);
        pool.append(&mut b, &stamps);
        assert_eq!(pool.used_blocks(), 3, "b shares all of a's blocks");
        assert_eq!(pool.stats().shared_hit_bytes, 3 * 4 * BPT);
        assert_eq!(a.physical_blocks(), b.physical_blocks());
        // Releasing one table keeps the blocks for the other.
        pool.release(a);
        assert_eq!(pool.used_blocks(), 3);
        pool.release(b);
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn different_content_or_private_regions_do_not_share() {
        let mut pool = KvBlockPool::new(4, BPT);
        let mut a = pool.new_table(8);
        pool.append(&mut a, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // Same sharable length, different content: no sharing.
        let mut b = pool.new_table(8);
        pool.append(&mut b, &[9, 9, 9, 9, 5, 6, 7, 8]);
        assert_eq!(pool.used_blocks(), 4);
        // Same content, sharable region zero: no sharing.
        let mut c = pool.new_table(0);
        pool.append(&mut c, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(pool.used_blocks(), 6);
        assert_eq!(pool.stats().shared_hit_bytes, 0);
        pool.release(a);
        pool.release(b);
        pool.release(c);
    }

    #[test]
    fn partial_tail_inside_sharable_region_stays_private() {
        let mut pool = KvBlockPool::new(4, BPT);
        let mut a = pool.new_table(6);
        pool.append(&mut a, &[1, 2, 3, 4, 5, 6]);
        let mut b = pool.new_table(6);
        pool.append(&mut b, &[1, 2, 3, 4, 5, 6]);
        // First (full) block shared; 2-token tails private to each table.
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.stats().shared_hit_bytes, 4 * BPT);
        // Appends into the private tails never CoW.
        pool.append(&mut a, &[7]);
        pool.append(&mut b, &[8]);
        assert_eq!(pool.stats().cow_copies, 0);
        assert_ne!(pool.block_stamps(&a, 1), pool.block_stamps(&b, 1));
        pool.release(a);
        pool.release(b);
    }

    #[test]
    fn cow_isolates_forked_tables() {
        // The satellite's aliasing property: fork a table mid-block, write
        // through one fork, and the sibling's bytes must be untouched.
        let mut pool = KvBlockPool::new(4, BPT);
        let mut a = pool.new_table(0);
        pool.append(&mut a, &[1, 2, 3, 4, 5, 6]); // partial tail [5, 6]
        let mut b = pool.fork(&a);
        assert_eq!(pool.used_blocks(), 2, "fork shares, does not copy");
        pool.append(&mut b, &[77]);
        assert_eq!(pool.stats().cow_copies, 1);
        assert_eq!(pool.stats().cow_copy_bytes, 2 * BPT, "two stamps copied");
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.block_stamps(&a, 1), &[5, 6], "sibling untouched");
        assert_eq!(pool.block_stamps(&b, 1), &[5, 6, 77]);
        // The still-shared full block CoWs for whichever fork appends past
        // it... (it is full, so appends open new blocks — no aliasing).
        pool.append(&mut a, &[8, 9]);
        assert_eq!(pool.block_stamps(&b, 1), &[5, 6, 77], "a's append cannot reach b");
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn appending_past_a_shared_prefix_never_mutates_it() {
        let mut pool = KvBlockPool::new(4, BPT);
        let prefix: Vec<u64> = (0..4).collect();
        let mut a = pool.new_table(4);
        pool.append(&mut a, &prefix);
        let mut b = pool.new_table(4);
        pool.append(&mut b, &prefix);
        assert_eq!(pool.used_blocks(), 1);
        // Both continue privately: the shared block is full, so each append
        // opens a fresh private block.
        pool.append(&mut a, &[10]);
        pool.append(&mut b, &[20]);
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.block_stamps(&a, 0), pool.block_stamps(&b, 0));
        assert_eq!(pool.block_stamps(&a, 1), &[10]);
        assert_eq!(pool.block_stamps(&b, 1), &[20]);
        pool.release(a);
        pool.release(b);
    }

    #[test]
    fn probe_counts_resident_prefix_blocks_without_touching_refcounts() {
        let mut pool = KvBlockPool::new(4, BPT);
        let stamps: Vec<u64> = (0..8).collect();
        assert_eq!(pool.probe_shared_blocks(stamps.iter().copied()), 0);
        let mut a = pool.new_table(8);
        pool.append(&mut a, &stamps);
        assert_eq!(pool.probe_shared_blocks(stamps.iter().copied()), 2);
        // A diverging second block only credits the first.
        let diverge: Vec<u64> = (0..4).chain(90..94).collect();
        assert_eq!(pool.probe_shared_blocks(diverge.iter().copied()), 1);
        assert_eq!(pool.used_blocks(), 2, "probe allocates nothing");
        pool.release(a);
        assert_eq!(pool.probe_shared_blocks(stamps.iter().copied()), 0, "index cleared on free");
    }

    #[test]
    fn block_size_one_and_prime_sizes_behave() {
        for bt in [1usize, 3, 16, 17] {
            let mut pool = KvBlockPool::new(bt, BPT);
            let stamps: Vec<u64> = (0..37).collect();
            let mut a = pool.new_table(37);
            pool.append(&mut a, &stamps);
            assert_eq!(a.tokens(), 37);
            assert_eq!(a.blocks(), 37_usize.div_ceil(bt), "block count at size {bt}");
            let mut b = pool.new_table(37);
            pool.append(&mut b, &stamps);
            let full = 37 / bt;
            assert_eq!(
                pool.stats().shared_hit_bytes,
                (full * bt) as u64 * BPT,
                "full blocks shared at size {bt}"
            );
            pool.release(a);
            pool.release(b);
            assert_eq!(pool.used_blocks(), 0);
        }
    }
}
