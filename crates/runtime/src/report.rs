//! CSV emitters and latency summaries, matching the paper artifact's output
//! files (`block_lats.csv`, `throughputs.csv`, `peak_mems.csv`), plus the
//! fleet-level summary the iso-GPU shootout writes.

use crate::{FleetStats, RunReport};
use pgmoe_device::SimDuration;

/// Order statistics over a block-latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl LatencySummary {
    /// Summarises a latency population.
    ///
    /// Returns all-zero for an empty population.
    pub fn of(latencies: &[SimDuration]) -> Self {
        if latencies.is_empty() {
            return LatencySummary {
                mean: SimDuration::ZERO,
                p50: SimDuration::ZERO,
                p99: SimDuration::ZERO,
                max: SimDuration::ZERO,
            };
        }
        let mut sorted: Vec<u64> = latencies.iter().map(|d| d.as_nanos()).collect();
        sorted.sort_unstable();
        let pick = |q: f64| {
            let idx = ((sorted.len() - 1) as f64 * q).floor() as usize;
            SimDuration::from_nanos(sorted[idx])
        };
        let mean = sorted.iter().sum::<u64>() / sorted.len() as u64;
        LatencySummary {
            mean: SimDuration::from_nanos(mean),
            p50: pick(0.5),
            p99: pick(0.99),
            max: SimDuration::from_nanos(*sorted.last().expect("nonempty")),
        }
    }
}

/// Renders `block_lats.csv`: one row per (model, policy) with mean/p50/p99
/// block latency in microseconds.
pub fn csv_block_latencies(reports: &[RunReport]) -> String {
    let mut out = String::from("model,policy,mean_us,p50_us,p99_us,max_us\n");
    for r in reports {
        let s = LatencySummary::of(&r.block_latencies);
        out.push_str(&format!(
            "{},{},{:.1},{:.1},{:.1},{:.1}\n",
            r.model,
            r.policy,
            s.mean.as_micros_f64(),
            s.p50.as_micros_f64(),
            s.p99.as_micros_f64(),
            s.max.as_micros_f64(),
        ));
    }
    out
}

/// Renders `throughputs.csv`: tokens/s per (model, policy).
pub fn csv_throughputs(reports: &[RunReport]) -> String {
    let mut out = String::from("model,policy,tokens_per_sec\n");
    for r in reports {
        out.push_str(&format!("{},{},{:.2}\n", r.model, r.policy, r.tokens_per_sec));
    }
    out
}

/// Renders `peak_mems.csv`: measured and Equation-1 peaks in GB.
pub fn csv_peak_memory(reports: &[RunReport]) -> String {
    let mut out = String::from("model,policy,peak_gb,predicted_gb\n");
    for r in reports {
        out.push_str(&format!(
            "{},{},{:.3},{:.3}\n",
            r.model,
            r.policy,
            r.peak_hbm_bytes as f64 / 1e9,
            r.predicted_peak_bytes as f64 / 1e9,
        ));
    }
    out
}

/// Renders `fleet.csv`: one row per fleet run with the TCO metric
/// (tokens/s-per-GPU), tail QoS, dispatch traffic, and mean utilization.
/// A run that served no requests renders all-zero quantiles rather than
/// panicking.
pub fn csv_fleet_summary(runs: &[FleetStats]) -> String {
    let mut out = String::from(
        "backend,dispatch,gpus,tokens_per_sec,tokens_per_sec_per_gpu,p50_ms,p95_ms,p99_ms,\
         mean_util,fetched_gb,demand_gb\n",
    );
    for s in runs {
        let q = |quantile: f64| {
            if s.request_latencies.is_empty() {
                0.0
            } else {
                s.latency_quantile(quantile).as_micros_f64() / 1e3
            }
        };
        out.push_str(&format!(
            "{},{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.3},{:.3},{:.3}\n",
            s.policy,
            s.dispatch,
            s.gpus,
            s.tokens_per_sec,
            s.tokens_per_sec_per_gpu(),
            q(0.50),
            q(0.95),
            q(0.99),
            s.mean_utilization(),
            s.expert_fetch_bytes as f64 / 1e9,
            s.demand_fetch_bytes as f64 / 1e9,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OffloadPolicy;

    fn fake_report(policy: OffloadPolicy, lats_us: &[u64]) -> RunReport {
        RunReport {
            model: "test".into(),
            policy: policy.paper_name().to_string(),
            block_latencies: lats_us.iter().map(|&u| SimDuration::from_micros(u)).collect(),
            tokens_per_sec: 100.0,
            total_time: SimDuration::from_millis(10),
            time_to_first_token: SimDuration::from_micros(500),
            peak_hbm_bytes: 2_000_000_000,
            predicted_peak_bytes: 2_000_000_000,
            cache_stats: None,
            gpu_busy: SimDuration::ZERO,
            pcie_busy: SimDuration::ZERO,
            expert_fetch_bytes: 0,
            demand_fetch_bytes: 0,
            timeline: None,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
        }
    }

    #[test]
    fn summary_orders_quantiles() {
        let lats: Vec<SimDuration> = (1..=100).map(SimDuration::from_micros).collect();
        let s = LatencySummary::of(&lats);
        assert!(s.p50 <= s.p99);
        assert!(s.p99 <= s.max);
        assert_eq!(s.max, SimDuration::from_micros(100));
        assert_eq!(s.p50, SimDuration::from_micros(50));
    }

    #[test]
    fn empty_population_is_all_zero() {
        let s = LatencySummary::of(&[]);
        assert_eq!(s.mean, SimDuration::ZERO);
        assert_eq!(s.max, SimDuration::ZERO);
    }

    #[test]
    fn csv_headers_match_artifact_names() {
        let reports = vec![fake_report(OffloadPolicy::Pregated, &[500, 600])];
        assert!(csv_block_latencies(&reports).starts_with("model,policy,mean_us"));
        assert!(csv_throughputs(&reports).contains("Pre-gated MoE,100.00"));
        assert!(csv_peak_memory(&reports).contains("2.000"));
    }

    #[test]
    fn fleet_csv_reports_per_gpu_throughput() {
        let stats = FleetStats {
            dispatch: "round-robin".into(),
            policy: "Pre-gated MoE".into(),
            gpus: 4,
            replicas: Vec::new(),
            assignment: vec![0, 1],
            request_latencies: vec![SimDuration::from_millis(4), SimDuration::from_millis(8)],
            queueing_delays: vec![SimDuration::ZERO; 2],
            ttfts: vec![SimDuration::from_millis(1); 2],
            total_tokens: 80,
            makespan: SimDuration::from_millis(10),
            tokens_per_sec: 8000.0,
            expert_fetch_bytes: 2_000_000_000,
            demand_fetch_bytes: 500_000_000,
            peak_hbm_bytes: 1,
            utilization: vec![0.5, 0.7],
            gpu_time: SimDuration::from_millis(40),
            control: None,
        };
        let csv = csv_fleet_summary(&[stats]);
        assert!(csv.starts_with("backend,dispatch,gpus,tokens_per_sec,tokens_per_sec_per_gpu"));
        assert!(csv.contains("Pre-gated MoE,round-robin,4,8000.00,2000.00"), "{csv}");
        assert!(csv.contains("0.600"), "mean utilization column: {csv}");
    }

    #[test]
    fn fleet_csv_tolerates_an_empty_run() {
        let empty = FleetStats {
            dispatch: "round-robin".into(),
            policy: "Pre-gated MoE".into(),
            gpus: 2,
            replicas: Vec::new(),
            assignment: Vec::new(),
            request_latencies: Vec::new(),
            queueing_delays: Vec::new(),
            ttfts: Vec::new(),
            total_tokens: 0,
            makespan: SimDuration::ZERO,
            tokens_per_sec: 0.0,
            expert_fetch_bytes: 0,
            demand_fetch_bytes: 0,
            peak_hbm_bytes: 0,
            utilization: Vec::new(),
            gpu_time: SimDuration::ZERO,
            control: None,
        };
        let csv = csv_fleet_summary(&[empty]);
        assert!(csv.contains("Pre-gated MoE,round-robin,2,0.00,0.00,0.00,0.00,0.00"), "{csv}");
    }
}
