//! Fleet-scale serving: multi-replica dispatch over the shared scheduler
//! core.
//!
//! The paper's headline claim is *economic*: one GPU running Pre-gated MoE
//! with CPU-offloaded experts matches an expert-parallel GPU farm, so a
//! serving fleet should be built from cheap single-GPU replicas rather than
//! sharded clusters (Sections III-A, VII). This module stages that argument
//! end to end:
//!
//! * [`FleetSim`] dispatches an open-loop arrival stream across `N`
//!   independent single-GPU replicas. Each replica runs the existing
//!   [`BatchScheduler`] — continuous batching, HBM admission, expert cache,
//!   any [`PolicySpec`] — through the shared decode core; the fleet layer
//!   only decides *placement*.
//! * Dispatch is pluggable ([`DispatchPolicy`]): [`RoundRobin`],
//!   [`JoinShortestQueue`], and [`CacheAffinity`] (steer requests toward
//!   replicas whose [`ExpertCache`] already holds their hot experts — the
//!   win under domain-skewed Zipf routing) ship built in; implement the
//!   trait for your own (`examples/serve_fleet.rs` shows one).
//! * The expert-parallel cluster is a *drop-in alternative backend*:
//!   [`serve_cluster`] serves the same stream on one
//!   [`PolicySpec::expert_parallel`] pipeline and reports the same
//!   [`FleetStats`], so the iso-GPU shootout (`repro -- fleet`) is a
//!   one-line comparison on tokens/s-per-GPU — the TCO metric.
//!
//! Routing identity is a property of the *request*: the fleet stamps every
//! arrival with a placement-independent route seed
//! ([`pgmoe_workload::stamp_route_seeds`]), so two dispatch policies serve
//! byte-identical request populations and differ only in placement.
//!
//! [`BatchScheduler`]: crate::BatchScheduler
//! [`PolicySpec`]: crate::PolicySpec
//! [`PolicySpec::expert_parallel`]: crate::PolicySpec::expert_parallel
//! [`ExpertCache`]: crate::ExpertCache

use crate::control::ControlStats;
use crate::multi_gpu::ClusterConfig;
use crate::scheduler::PolicySpec;
use crate::serve::{quantile_of, ServeStats};
use crate::{BatchConfig, BatchScheduler, InferenceSim, Result, RuntimeError, SimOptions};
use pgmoe_device::SimDuration;
use pgmoe_model::ModelConfig;
use pgmoe_workload::{
    split_by_assignment, stamp_route_seeds, ArrivedRequest, DecodeRequest, RoutingTrace,
};

/// Fleet shape: how many single-GPU replicas, each batching how.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of independent single-GPU replicas.
    pub replicas: usize,
    /// Continuous-batching knobs every replica runs with.
    pub batch: BatchConfig,
}

impl FleetConfig {
    /// A fleet of `replicas` single-GPU machines with the given batching
    /// knobs.
    pub fn new(replicas: usize, batch: BatchConfig) -> Self {
        FleetConfig { replicas, batch }
    }

    /// Rejects fleet shapes that cannot serve anything: zero replicas, or a
    /// batch config that admits no requests. Mirrors the
    /// [`ClusterConfig::validate`] convention — construction stays infallible
    /// and every serving entry point validates before touching a machine.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] with a message naming the bad knob.
    pub fn validate(&self) -> Result<()> {
        if self.replicas == 0 {
            return Err(RuntimeError::InvalidConfig {
                message: "a fleet needs at least 1 replica".into(),
            });
        }
        if self.batch.max_batch == 0 {
            return Err(RuntimeError::InvalidConfig {
                message: "fleet batch config must admit at least one request (max_batch >= 1)"
                    .into(),
            });
        }
        Ok(())
    }
}

/// What a dispatcher may observe about one replica at dispatch time — the
/// information a real load balancer has: its own assignment history and
/// service-time estimates, never the replica's internal simulator state.
#[derive(Debug)]
pub struct ReplicaView<'a> {
    /// Requests dispatched to this replica and estimated still unfinished.
    pub queue_depth: usize,
    /// Total requests assigned so far.
    pub assigned: usize,
    /// Estimated instant this replica drains its backlog, ns.
    pub est_free_at_ns: u64,
    /// Per-expert dispatch counts: how often each expert appeared in the
    /// routing probes of requests already steered here. The affinity signal
    /// cache-aware dispatch ranks replicas by.
    pub affinity: &'a [u64],
}

/// What a dispatcher may observe about the request being placed.
#[derive(Debug)]
pub struct RequestProfile<'a> {
    /// Arrival instant, ns.
    pub arrival_ns: u64,
    /// The request's shape.
    pub request: DecodeRequest,
    /// Sorted union of experts the request's first decode token activates
    /// (derived from its route seed — the dispatcher-visible routing
    /// fingerprint).
    pub probe: &'a [usize],
}

/// A fleet dispatch policy: given the replicas' observable state, pick the
/// replica that serves the next request.
///
/// Implement this trait to add your own strategy; the built-ins are
/// [`RoundRobin`], [`JoinShortestQueue`] and [`CacheAffinity`].
pub trait DispatchPolicy {
    /// Display name threaded into [`FleetStats::dispatch`].
    fn name(&self) -> String;

    /// The replica index (`< replicas.len()`) to serve `request`.
    fn choose(&mut self, replicas: &[ReplicaView<'_>], request: &RequestProfile<'_>) -> usize;
}

/// Cycle through replicas in order — the placement-blind baseline.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh round-robin dispatcher.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl DispatchPolicy for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn choose(&mut self, replicas: &[ReplicaView<'_>], _request: &RequestProfile<'_>) -> usize {
        let r = self.next % replicas.len();
        self.next = self.next.wrapping_add(1);
        r
    }
}

/// Send each request to the replica with the fewest estimated-unfinished
/// requests (ties: earliest estimated drain, then lowest index).
#[derive(Debug, Default)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// A fresh join-shortest-queue dispatcher.
    pub fn new() -> Self {
        JoinShortestQueue
    }
}

impl DispatchPolicy for JoinShortestQueue {
    fn name(&self) -> String {
        "join-shortest-queue".into()
    }

    fn choose(&mut self, replicas: &[ReplicaView<'_>], _request: &RequestProfile<'_>) -> usize {
        replicas
            .iter()
            .enumerate()
            .min_by_key(|(i, r)| (r.queue_depth, r.est_free_at_ns, *i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Cache-affinity routing with bounded load: among the replicas whose queue
/// is within `slack` of the shortest, pick the one whose dispatch history
/// overlaps the request's expert probe the most — so requests sharing hot
/// experts pile onto the same replica and its [`ExpertCache`] stays warm,
/// instead of every replica's cache thrashing over the union of all
/// domains. Falls back to join-shortest-queue while no affinity signal has
/// accumulated.
///
/// [`ExpertCache`]: crate::ExpertCache
#[derive(Debug)]
pub struct CacheAffinity {
    /// How many requests beyond the shortest queue a replica may hold and
    /// still win on affinity (0 = strict JSQ with affinity tie-breaks).
    pub slack: usize,
}

impl CacheAffinity {
    /// Affinity dispatch tolerating `slack` extra queued requests for a
    /// warm cache.
    pub fn new(slack: usize) -> Self {
        CacheAffinity { slack }
    }
}

impl DispatchPolicy for CacheAffinity {
    fn name(&self) -> String {
        format!("cache-affinity(slack={})", self.slack)
    }

    fn choose(&mut self, replicas: &[ReplicaView<'_>], request: &RequestProfile<'_>) -> usize {
        let min_depth = replicas.iter().map(|r| r.queue_depth).min().unwrap_or(0);
        let score = |r: &ReplicaView<'_>| -> u64 {
            request.probe.iter().map(|&e| r.affinity.get(e).copied().unwrap_or(0)).sum()
        };
        replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.queue_depth <= min_depth + self.slack)
            .max_by_key(|(i, r)| {
                (score(r), std::cmp::Reverse(r.queue_depth), std::cmp::Reverse(*i))
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Fleet-level serving statistics: per-replica [`ServeStats`] plus the
/// aggregate QoS and TCO metrics a fleet operator monitors.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Display name of the dispatch policy that placed the requests (the
    /// backend label for [`serve_cluster`] runs).
    pub dispatch: String,
    /// Display name of the expert scheduler every replica ran.
    pub policy: String,
    /// GPUs the deployment occupies (replica count, or the cluster's GPU
    /// count for [`serve_cluster`]).
    pub gpus: usize,
    /// Per-replica serving statistics, replica order.
    pub replicas: Vec<ServeStats>,
    /// Which replica served each request, global arrival order.
    pub assignment: Vec<usize>,
    /// Per-request end-to-end latency, global arrival order.
    pub request_latencies: Vec<SimDuration>,
    /// Per-request queueing delay, global arrival order.
    pub queueing_delays: Vec<SimDuration>,
    /// Per-request time to first token, global arrival order.
    pub ttfts: Vec<SimDuration>,
    /// Total generated tokens across the fleet.
    pub total_tokens: usize,
    /// First arrival to last completion across the whole fleet.
    pub makespan: SimDuration,
    /// Aggregate throughput over the makespan, tokens/s.
    pub tokens_per_sec: f64,
    /// Total expert bytes migrated from the offload tier, summed over
    /// replicas.
    pub expert_fetch_bytes: u64,
    /// Expert bytes fetched on block critical paths (miss stalls), summed
    /// over replicas — the metric cache-affinity dispatch drives down.
    pub demand_fetch_bytes: u64,
    /// Largest per-GPU peak HBM across replicas.
    pub peak_hbm_bytes: u64,
    /// Per-replica GPU-busy fraction of the fleet makespan. For
    /// [`serve_cluster`] runs there is one entry — the lockstep pipeline's
    /// busy fraction amortized over the cluster's GPUs, so it stays
    /// comparable with a replica fleet's per-GPU figures.
    pub utilization: Vec<f64>,
    /// Total GPU-time the deployment was billed for: each replica charged
    /// from when it joined the fleet (or the first arrival) until it retired
    /// (or the last completion). For a static fleet this is simply
    /// `makespan × gpus`; under autoscaling it is what an elastic deployment
    /// actually pays, the denominator of [`FleetStats::tokens_per_gpu_second`].
    pub gpu_time: SimDuration,
    /// Control-loop accounting (faults injected, redispatches, scaling and
    /// policy-switch actions). `None` for runs outside
    /// [`ControlledFleet`](crate::control::ControlledFleet).
    pub control: Option<ControlStats>,
}

impl FleetStats {
    /// Tokens/s per occupied GPU — the TCO metric of the iso-GPU shootout.
    pub fn tokens_per_sec_per_gpu(&self) -> f64 {
        self.tokens_per_sec / self.gpus.max(1) as f64
    }

    /// Delivered tokens per GPU-*second* billed — the elastic-deployment
    /// TCO metric. Identical to [`FleetStats::tokens_per_sec_per_gpu`] for a
    /// static fleet (where `gpu_time = makespan × gpus`); under autoscaling
    /// it credits the controller for GPU-time it did *not* rent.
    pub fn tokens_per_gpu_second(&self) -> f64 {
        if self.gpu_time == SimDuration::ZERO {
            0.0
        } else {
            self.total_tokens as f64 / self.gpu_time.as_secs_f64()
        }
    }

    /// End-to-end latency at quantile `q ∈ [0, 1]` (nearest-rank). Zero
    /// when no requests were served.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> SimDuration {
        quantile_of(&self.request_latencies, q)
    }

    /// Median end-to-end latency.
    pub fn p50(&self) -> SimDuration {
        self.latency_quantile(0.50)
    }

    /// 95th-percentile end-to-end latency.
    pub fn p95(&self) -> SimDuration {
        self.latency_quantile(0.95)
    }

    /// 99th-percentile end-to-end latency.
    pub fn p99(&self) -> SimDuration {
        self.latency_quantile(0.99)
    }

    /// Time-to-first-token at quantile `q ∈ [0, 1]` (nearest-rank). Zero
    /// when no requests were served.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn ttft_quantile(&self, q: f64) -> SimDuration {
        quantile_of(&self.ttfts, q)
    }

    /// Queueing delay at quantile `q ∈ [0, 1]` (nearest-rank). Zero when
    /// no requests were served.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn queueing_quantile(&self, q: f64) -> SimDuration {
        quantile_of(&self.queueing_delays, q)
    }

    /// Mean per-replica GPU-busy fraction of the makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        self.utilization.iter().sum::<f64>() / self.utilization.len() as f64
    }
}

/// A multi-replica serving simulator (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use pgmoe_model::ModelConfig;
/// use pgmoe_runtime::{
///     BatchConfig, FleetConfig, FleetSim, OffloadPolicy, RoundRobin, SimOptions,
/// };
/// use pgmoe_workload::{ArrivalProcess, ArrivalStream, DecodeRequest};
///
/// let arrivals = ArrivalStream::new(
///     ArrivalProcess::Poisson { rate_per_sec: 40.0 },
///     DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 },
///     1,
///     7,
/// );
/// let fleet = FleetSim::new(
///     ModelConfig::switch_base(8),
///     SimOptions::new(OffloadPolicy::Pregated),
///     FleetConfig::new(2, BatchConfig::new(4)),
/// );
/// let stats = fleet.serve(arrivals.take(6), &mut RoundRobin::new())?;
/// assert_eq!(stats.request_latencies.len(), 6);
/// assert_eq!(stats.gpus, 2);
/// assert!(stats.tokens_per_sec_per_gpu() > 0.0);
/// # Ok::<(), pgmoe_runtime::RuntimeError>(())
/// ```
pub struct FleetSim {
    cfg: ModelConfig,
    opts: SimOptions,
    fleet: FleetConfig,
}

impl FleetSim {
    /// A fleet of identical replicas serving `cfg` under `opts`.
    pub fn new(cfg: ModelConfig, opts: SimOptions, fleet: FleetConfig) -> Self {
        FleetSim { cfg, opts, fleet }
    }

    /// Dispatches `arrivals` across the fleet per `dispatch`, serves every
    /// replica's sub-stream to completion, and aggregates.
    ///
    /// Requests without a pre-stamped route seed are stamped from the run
    /// seed and their global arrival index, so routing is identical under
    /// every dispatch policy.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::InvalidConfig`] for a zero-replica fleet, options
    ///   the policy surface rejects, or a dispatcher returning an
    ///   out-of-range replica.
    /// * Any error a replica's [`BatchScheduler`] raises (e.g. OOM).
    ///
    /// [`BatchScheduler`]: crate::BatchScheduler
    pub fn serve(
        &self,
        arrivals: impl IntoIterator<Item = ArrivedRequest>,
        dispatch: &mut dyn DispatchPolicy,
    ) -> Result<FleetStats> {
        self.fleet.validate()?;
        self.opts.validate(&self.cfg)?;
        let mut arrivals: Vec<ArrivedRequest> = arrivals.into_iter().collect();
        // Fills only unseeded requests; caller-pinned seeds survive.
        stamp_route_seeds(&mut arrivals, self.opts.seed);

        let assignment = self.dispatch(&arrivals, dispatch)?;
        let streams = split_by_assignment(&arrivals, &assignment, self.fleet.replicas);
        let mut replica_stats = Vec::with_capacity(self.fleet.replicas);
        for stream in &streams {
            let sched = BatchScheduler::new(self.cfg.clone(), self.opts.clone(), self.fleet.batch);
            replica_stats.push(sched.serve(stream.iter().copied())?);
        }
        Ok(aggregate(
            dispatch.name(),
            self.fleet.replicas,
            &arrivals,
            assignment,
            &streams,
            replica_stats,
        ))
    }

    /// Places every arrival, maintaining the dispatcher-observable replica
    /// state (queue estimates + affinity histograms).
    fn dispatch(
        &self,
        arrivals: &[ArrivedRequest],
        dispatch: &mut dyn DispatchPolicy,
    ) -> Result<Vec<usize>> {
        let mut state = DispatchState::new(&self.cfg, &self.opts, self.fleet.replicas)?;
        let all: Vec<usize> = (0..self.fleet.replicas).collect();
        arrivals
            .iter()
            .enumerate()
            .map(|(idx, arr)| state.place(idx, arr, &all, dispatch))
            .collect()
    }
}

/// A deterministic per-request service-time estimate for queue-depth
/// bookkeeping, calibrated once on the replica configuration (one short
/// batch-1 run). Dispatchers only need relative ordering, not absolute
/// accuracy — real load balancers work from the same kind of estimate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServiceEstimate {
    ttft_ns: u64,
    per_decode_ns: u64,
}

impl ServiceEstimate {
    pub(crate) fn calibrate(cfg: &ModelConfig, opts: &SimOptions) -> Result<Self> {
        let calib = DecodeRequest { input_tokens: 32, output_tokens: 8, batch_size: 1 };
        let report = InferenceSim::new(cfg.clone(), opts.clone()).run(calib, 1)?;
        let ttft_ns = report.time_to_first_token.as_nanos();
        let per_decode_ns = (report.total_time.as_nanos().saturating_sub(ttft_ns))
            / (calib.output_tokens - 1) as u64;
        Ok(ServiceEstimate { ttft_ns, per_decode_ns })
    }

    pub(crate) fn ns_for(&self, req: &DecodeRequest) -> u64 {
        self.ttft_ns + self.per_decode_ns * req.output_tokens.saturating_sub(1) as u64
    }
}

/// The dispatcher-observable bookkeeping behind [`FleetSim::dispatch`],
/// factored out so the fault-tolerant control loop ([`crate::control`]) can
/// place arrivals *incrementally* — one at a time, restricted to the
/// replicas currently eligible (alive, warm, not draining) — while the
/// static path places the whole trace upfront. Both paths call the same
/// [`DispatchState::place`], so placement decisions are bit-identical
/// whenever the eligible set is the full fleet.
pub(crate) struct DispatchState {
    est: ServiceEstimate,
    est_done: Vec<Vec<u64>>,
    est_free: Vec<u64>,
    affinity: Vec<Vec<u64>>,
    assigned: Vec<usize>,
    num_experts: usize,
    dec_blocks: usize,
    active: usize,
    routing: pgmoe_workload::RoutingKind,
    default_seed: u64,
}

impl DispatchState {
    pub(crate) fn new(cfg: &ModelConfig, opts: &SimOptions, replicas: usize) -> Result<Self> {
        Ok(DispatchState {
            est: ServiceEstimate::calibrate(cfg, opts)?,
            est_done: vec![Vec::new(); replicas],
            est_free: vec![0; replicas],
            affinity: vec![vec![0; cfg.num_experts]; replicas],
            assigned: vec![0; replicas],
            num_experts: cfg.num_experts,
            dec_blocks: cfg.decoder_moe_layers(),
            active: opts.active_per_block(cfg),
            routing: opts.routing,
            default_seed: opts.seed,
        })
    }

    /// Opens bookkeeping for one more replica (a scale-up); it starts with
    /// an empty queue estimate and a cold affinity histogram.
    pub(crate) fn add_replica(&mut self) {
        self.est_done.push(Vec::new());
        self.est_free.push(0);
        self.affinity.push(vec![0; self.num_experts]);
        self.assigned.push(0);
    }

    /// Clears a dead replica's queue estimates so redispatch does not steer
    /// around a ghost backlog. The affinity history stays: it describes
    /// requests, not the replica's health.
    pub(crate) fn forget_replica(&mut self, r: usize) {
        self.est_done[r].clear();
        self.est_free[r] = 0;
    }

    /// The routing fingerprint the dispatcher may inspect: the request's
    /// first decode token, regenerated from its seed (the replica will draw
    /// the identical trace).
    fn probe_of(&self, arr: &ArrivedRequest) -> Vec<usize> {
        let seed = arr.route_seed.unwrap_or(self.default_seed);
        let probe_trace = RoutingTrace::generate(
            1,
            self.dec_blocks,
            self.num_experts,
            self.active,
            self.routing,
            seed,
        );
        let mut probe: Vec<usize> =
            (0..self.dec_blocks).flat_map(|b| probe_trace.experts(0, b).iter().copied()).collect();
        probe.sort_unstable();
        probe.dedup();
        probe
    }

    /// Places arrival `idx` on one of the `eligible` replicas (global
    /// indices, ascending). The dispatcher sees views in `eligible` order
    /// and its choice maps back to the global index, which is returned.
    pub(crate) fn place(
        &mut self,
        idx: usize,
        arr: &ArrivedRequest,
        eligible: &[usize],
        dispatch: &mut dyn DispatchPolicy,
    ) -> Result<usize> {
        let t = arr.arrival_ns;
        let probe = self.probe_of(arr);
        let views: Vec<ReplicaView<'_>> = eligible
            .iter()
            .map(|&r| ReplicaView {
                queue_depth: self.est_done[r].iter().filter(|&&d| d > t).count(),
                assigned: self.assigned[r],
                est_free_at_ns: self.est_free[r].max(t),
                affinity: &self.affinity[r],
            })
            .collect();
        let profile = RequestProfile { arrival_ns: t, request: arr.request, probe: &probe };
        let v = dispatch.choose(&views, &profile);
        if v >= eligible.len() {
            return Err(RuntimeError::InvalidConfig {
                message: format!(
                    "dispatch policy `{}` chose replica {v} of {} for request {idx}",
                    dispatch.name(),
                    eligible.len()
                ),
            });
        }
        let r = eligible[v];
        let start = self.est_free[r].max(t);
        let done = start + self.est.ns_for(&arr.request);
        self.est_free[r] = done;
        self.est_done[r].push(done);
        self.assigned[r] += 1;
        for &e in &probe {
            self.affinity[r][e] += 1;
        }
        Ok(r)
    }
}

/// Merges per-replica [`ServeStats`] back into global arrival order and
/// derives the fleet aggregates.
fn aggregate(
    dispatch: String,
    replicas: usize,
    arrivals: &[ArrivedRequest],
    assignment: Vec<usize>,
    streams: &[Vec<ArrivedRequest>],
    replica_stats: Vec<ServeStats>,
) -> FleetStats {
    let n = arrivals.len();
    let mut latencies = vec![SimDuration::ZERO; n];
    let mut queueing = vec![SimDuration::ZERO; n];
    let mut ttfts = vec![SimDuration::ZERO; n];
    let mut cursor = vec![0usize; replicas];
    let mut last_completion_ns = 0u64;
    for (i, &r) in assignment.iter().enumerate() {
        let k = cursor[r];
        cursor[r] += 1;
        latencies[i] = replica_stats[r].request_latencies[k];
        queueing[i] = replica_stats[r].queueing_delays[k];
        ttfts[i] = replica_stats[r].ttfts[k];
        last_completion_ns =
            last_completion_ns.max(arrivals[i].arrival_ns + latencies[i].as_nanos());
    }
    debug_assert!(streams.iter().zip(&cursor).all(|(s, &c)| s.len() == c));
    let first_arrival_ns = arrivals.first().map(|a| a.arrival_ns).unwrap_or(0);
    let makespan = SimDuration::from_nanos(last_completion_ns.saturating_sub(first_arrival_ns));
    let total_tokens: usize = replica_stats.iter().map(|s| s.total_tokens).sum();
    let tokens_per_sec = if makespan == SimDuration::ZERO {
        0.0
    } else {
        total_tokens as f64 / makespan.as_secs_f64()
    };
    let utilization = replica_stats
        .iter()
        .map(|s| {
            if makespan == SimDuration::ZERO {
                0.0
            } else {
                s.gpu_busy.as_nanos() as f64 / makespan.as_nanos() as f64
            }
        })
        .collect();
    FleetStats {
        dispatch,
        policy: replica_stats.first().map(|s| s.policy.clone()).unwrap_or_default(),
        gpus: replicas,
        expert_fetch_bytes: replica_stats.iter().map(|s| s.expert_fetch_bytes).sum(),
        demand_fetch_bytes: replica_stats.iter().map(|s| s.demand_fetch_bytes).sum(),
        peak_hbm_bytes: replica_stats.iter().map(|s| s.peak_hbm_bytes).max().unwrap_or(0),
        replicas: replica_stats,
        assignment,
        request_latencies: latencies,
        queueing_delays: queueing,
        ttfts,
        total_tokens,
        makespan,
        tokens_per_sec,
        utilization,
        gpu_time: SimDuration::from_nanos(makespan.as_nanos() * replicas as u64),
        control: None,
    }
}

/// Serves `arrivals` on ONE expert-parallel cluster — the iso-GPU
/// alternative backend. The cluster's GPUs run in lockstep through a single
/// [`BatchScheduler`] pipeline whose scheduler is
/// [`PolicySpec::expert_parallel`]; the returned [`FleetStats`] charges the
/// deployment for all `cluster.num_gpus` GPUs, so
/// [`FleetStats::tokens_per_sec_per_gpu`] is directly comparable with a
/// replica fleet's.
///
/// `opts`' policy and machine are overridden from `cluster` (cost model,
/// per-GPU HBM); routing, seed and batching semantics carry over, so the
/// shootout serves the identical request population.
///
/// # Errors
///
/// See [`BatchScheduler::serve`]; additionally rejects invalid clusters.
///
/// [`BatchScheduler`]: crate::BatchScheduler
/// [`BatchScheduler::serve`]: crate::BatchScheduler::serve
/// [`PolicySpec::expert_parallel`]: crate::PolicySpec::expert_parallel
pub fn serve_cluster(
    cfg: ModelConfig,
    cluster: &ClusterConfig,
    mut opts: SimOptions,
    batch: BatchConfig,
    arrivals: impl IntoIterator<Item = ArrivedRequest>,
) -> Result<FleetStats> {
    cluster.validate()?;
    opts.policy = PolicySpec::expert_parallel(cluster);
    opts.machine.hbm_capacity = cluster.hbm_per_gpu;
    opts.machine.cost = cluster.cost;
    let mut arrivals: Vec<ArrivedRequest> = arrivals.into_iter().collect();
    stamp_route_seeds(&mut arrivals, opts.seed);
    let stats = BatchScheduler::new(cfg, opts, batch).serve(arrivals.iter().copied())?;
    let assignment = vec![0usize; arrivals.len()];
    let streams = vec![arrivals.clone()];
    let mut fleet = aggregate(
        format!("cluster({}gpu)", cluster.num_gpus),
        1,
        &arrivals,
        assignment,
        &streams,
        vec![stats],
    );
    fleet.gpus = cluster.num_gpus;
    fleet.gpu_time = SimDuration::from_nanos(fleet.makespan.as_nanos() * cluster.num_gpus as u64);
    // The single timeline stands for the lockstep cluster's critical path;
    // amortize its busy fraction over every GPU the deployment occupies so
    // the figure is per-GPU like a replica fleet's. (Attention is
    // replicated while each block's expert work lands on its owners, so
    // true mean per-GPU utilization lies between this amortized value and
    // the raw pipeline fraction — Section III-A's point is exactly that
    // (g-1)/g of the cluster idles during MoE blocks.)
    for u in &mut fleet.utilization {
        *u /= cluster.num_gpus.max(1) as f64;
    }
    Ok(fleet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, OffloadPolicy, Replacement};
    use pgmoe_workload::{ArrivalProcess, ArrivalStream, RoutingKind};

    fn req(output: usize) -> DecodeRequest {
        DecodeRequest { input_tokens: 16, output_tokens: output, batch_size: 1 }
    }

    fn poisson(n: usize, rate: f64, seed: u64) -> Vec<ArrivedRequest> {
        ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: rate }, req(6), 1, seed)
            .take(n)
            .collect()
    }

    fn fleet(replicas: usize) -> FleetSim {
        FleetSim::new(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            FleetConfig::new(replicas, BatchConfig::new(4)),
        )
    }

    #[test]
    fn serves_every_request_exactly_once_across_replicas() {
        let stats = fleet(3).serve(poisson(18, 80.0, 5), &mut RoundRobin::new()).unwrap();
        assert_eq!(stats.request_latencies.len(), 18);
        assert_eq!(stats.assignment.len(), 18);
        assert_eq!(stats.gpus, 3);
        assert_eq!(stats.replicas.iter().map(|s| s.request_latencies.len()).sum::<usize>(), 18);
        assert_eq!(stats.total_tokens, stats.replicas.iter().map(|s| s.total_tokens).sum());
        assert!(stats.tokens_per_sec > 0.0);
        assert_eq!(stats.utilization.len(), 3);
        assert!(stats.utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
        // Round-robin spreads evenly.
        for r in 0..3 {
            assert_eq!(stats.assignment.iter().filter(|&&a| a == r).count(), 6);
        }
        for i in 0..18 {
            assert!(stats.request_latencies[i] >= stats.ttfts[i]);
            assert!(stats.ttfts[i] >= stats.queueing_delays[i]);
        }
    }

    #[test]
    fn deterministic_given_seed_and_dispatcher() {
        let run = || fleet(2).serve(poisson(10, 100.0, 9), &mut JoinShortestQueue::new()).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.request_latencies, b.request_latencies);
        assert_eq!(a.total_tokens, b.total_tokens);
    }

    #[test]
    fn routing_is_placement_independent() {
        // The same request population must migrate the same expert bytes no
        // matter how it is placed — routing identity rides the route seed,
        // not the replica-local stream position. Batch-1 replicas isolate
        // the per-request traffic (continuous batching would legitimately
        // dedup co-batched unions differently per placement).
        let sim = FleetSim::new(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            FleetConfig::new(3, BatchConfig::new(1)),
        );
        let arrivals = poisson(12, 100.0, 7);
        let rr = sim.serve(arrivals.clone(), &mut RoundRobin::new()).unwrap();
        let jsq = sim.serve(arrivals, &mut JoinShortestQueue::new()).unwrap();
        assert_eq!(rr.total_tokens, jsq.total_tokens);
        assert_eq!(rr.expert_fetch_bytes, jsq.expert_fetch_bytes);
    }

    #[test]
    fn more_replicas_lift_aggregate_throughput_under_load() {
        let arrivals = poisson(24, 200.0, 3);
        let one = fleet(1).serve(arrivals.clone(), &mut RoundRobin::new()).unwrap();
        let four = fleet(4).serve(arrivals, &mut RoundRobin::new()).unwrap();
        assert!(
            four.tokens_per_sec > 2.0 * one.tokens_per_sec,
            "4 replicas must outrun 1 under saturating load ({:.1} vs {:.1})",
            four.tokens_per_sec,
            one.tokens_per_sec
        );
        assert!(four.p95() < one.p95(), "parallel service must cut the queueing tail");
    }

    #[test]
    fn jsq_beats_round_robin_on_queueing_under_bursty_load() {
        // Bursts land on a fleet whose replicas drain at different speeds
        // (heterogeneous request sizes): round-robin keeps feeding busy
        // replicas by position, JSQ routes around them.
        let arrivals: Vec<ArrivedRequest> = ArrivalStream::new(
            ArrivalProcess::Bursty { rate_per_sec: 120.0, burst: 5 },
            req(8),
            6,
            13,
        )
        .take(30)
        .collect();
        let sim = FleetSim::new(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            FleetConfig::new(3, BatchConfig::new(1)),
        );
        let rr = sim.serve(arrivals.clone(), &mut RoundRobin::new()).unwrap();
        let jsq = sim.serve(arrivals, &mut JoinShortestQueue::new()).unwrap();
        assert_ne!(rr.assignment, jsq.assignment, "JSQ must actually re-place requests");
        let mean = |s: &FleetStats| {
            s.queueing_delays.iter().map(|d| d.as_nanos()).sum::<u64>()
                / s.queueing_delays.len() as u64
        };
        assert!(
            mean(&jsq) < mean(&rr),
            "JSQ mean queueing {} must undercut round-robin {}",
            mean(&jsq),
            mean(&rr)
        );
    }

    #[test]
    fn cache_affinity_concentrates_domains_and_cuts_demand_fetches() {
        // Domain-skewed Zipf population + per-replica expert caches: the
        // affinity dispatcher keeps each domain's hot set warm on one
        // replica, so fleet-wide demand-fetch bytes drop vs round-robin.
        let cfg = ModelConfig::switch_base(64);
        let opts = SimOptions::new(OffloadPolicy::Pregated)
            .with_routing(RoutingKind::ZipfDomains { s: 1.5, domains: 4 })
            .with_cache(CacheConfig::new(0.15, Replacement::Lru));
        let sim = FleetSim::new(cfg, opts, FleetConfig::new(4, BatchConfig::new(4)));
        let decode_heavy = DecodeRequest { input_tokens: 4, output_tokens: 32, batch_size: 1 };
        let arrivals: Vec<ArrivedRequest> =
            ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: 80.0 }, decode_heavy, 2, 11)
                .take(40)
                .collect();
        let rr = sim.serve(arrivals.clone(), &mut RoundRobin::new()).unwrap();
        let aff = sim.serve(arrivals, &mut CacheAffinity::new(8)).unwrap();
        assert!(
            (aff.demand_fetch_bytes as f64) < 0.9 * rr.demand_fetch_bytes as f64,
            "affinity demand {} must undercut round-robin {} by >10%",
            aff.demand_fetch_bytes,
            rr.demand_fetch_bytes
        );
        assert!(
            aff.expert_fetch_bytes < rr.expert_fetch_bytes,
            "warm caches must also cut total migration"
        );
    }

    #[test]
    fn cluster_backend_reports_iso_gpu_stats() {
        let cfg = ModelConfig::switch_base(8);
        let cluster = ClusterConfig::a100_nvlink(4);
        let stats = serve_cluster(
            cfg,
            &cluster,
            SimOptions::new(OffloadPolicy::Pregated), // policy overridden
            BatchConfig::new(4),
            poisson(8, 50.0, 3),
        )
        .unwrap();
        assert_eq!(stats.gpus, 4, "the deployment is charged for every cluster GPU");
        assert_eq!(stats.policy, "Expert-Parallel-4GPU");
        assert_eq!(stats.request_latencies.len(), 8);
        assert_eq!(stats.expert_fetch_bytes, 0, "cluster experts never cross PCIe");
        let per_gpu = stats.tokens_per_sec_per_gpu();
        assert!(per_gpu > 0.0 && per_gpu * 4.0 - stats.tokens_per_sec < 1e-9);
        // Utilization is amortized per GPU: one lockstep pipeline cannot
        // report more than 1/g busy fraction per GPU.
        assert_eq!(stats.utilization.len(), 1);
        assert!(
            stats.utilization[0] <= 0.25 + 1e-9,
            "per-GPU utilization {} must be the pipeline fraction / 4",
            stats.utilization[0]
        );
    }

    #[test]
    fn invalid_fleets_and_dispatchers_are_rejected() {
        let zero = fleet(0).serve(poisson(2, 10.0, 1), &mut RoundRobin::new());
        assert!(matches!(zero, Err(RuntimeError::InvalidConfig { .. })));

        struct OutOfRange;
        impl DispatchPolicy for OutOfRange {
            fn name(&self) -> String {
                "broken".into()
            }
            fn choose(&mut self, r: &[ReplicaView<'_>], _: &RequestProfile<'_>) -> usize {
                r.len() + 7
            }
        }
        let bad = fleet(2).serve(poisson(2, 10.0, 1), &mut OutOfRange);
        assert!(matches!(bad, Err(RuntimeError::InvalidConfig { .. })));

        let bad_opts = FleetSim::new(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated).with_active_experts(0),
            FleetConfig::new(2, BatchConfig::new(2)),
        );
        assert!(matches!(
            bad_opts.serve(poisson(2, 10.0, 1), &mut RoundRobin::new()),
            Err(RuntimeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_stream_yields_zeroed_stats() {
        let stats = fleet(2).serve(Vec::new(), &mut RoundRobin::new()).unwrap();
        assert_eq!(stats.total_tokens, 0);
        assert_eq!(stats.tokens_per_sec, 0.0);
        assert!(stats.request_latencies.is_empty());
        assert_eq!(stats.gpus, 2);
    }
}
