//! Parameter placement and the peak-GPU-memory law (Equation 1).

use crate::scheduler::MemoryProfile;
use crate::{CacheCapacity, SimOptions};
use pgmoe_model::ModelConfig;

/// Static placement plan for one (model, policy) pair: what lives in HBM
/// permanently, what migrates, and the analytic peak-memory prediction of
/// the paper's Equation 1 — generalised per scheduler through
/// [`ExpertScheduler::hbm_plan`].
///
/// The simulator allocates through `pgmoe-device`'s pools; this plan exists
/// so tests can cross-validate the *measured* peak against the *predicted*
/// peak, and so Fig 12 can be regenerated analytically for configurations
/// the simulator marks OOM.
///
/// [`ExpertScheduler::hbm_plan`]: crate::scheduler::ExpertScheduler::hbm_plan
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    offloads_experts: bool,
    expert_bytes: u64,
    moe_bytes: u64,
    non_moe_bytes: u64,
    activation_bytes: u64,
    cache_experts: usize,
    active_per_block: usize,
    /// Scheduler-pinned permanently-resident bytes (Equation 1 static term).
    resident_bytes: u64,
    /// Scheduler transient bytes per in-flight block (Equation 1 dynamic
    /// term).
    transient_bytes: u64,
    /// Experts' worth of encoder fetch staging.
    staging_experts: u64,
}

impl PlacementPlan {
    /// Builds the plan for a model under `opts`, serving requests with
    /// `ctx_tokens` of live context and the given batch size.
    ///
    /// Expert-byte-derived quantities honour the run's effective expert
    /// precision ([`SimOptions::expert_precision`] when set, else the
    /// model's own): smaller experts mean smaller fetches, smaller
    /// Equation-1 transients, and more experts per cache byte.
    pub fn new(cfg: &ModelConfig, opts: &SimOptions, ctx_tokens: usize, batch: usize) -> Self {
        let retagged;
        let eff = match opts.expert_precision {
            Some(p) if p != cfg.expert_precision => {
                retagged = cfg.clone().with_expert_precision(p);
                &retagged
            }
            _ => cfg,
        };
        let active_per_block = opts.active_per_block(cfg);
        let expert_bytes = eff.expert_bytes();
        let cache_experts = opts
            .cache
            .map(|c| {
                let total = cfg.moe_layers() * cfg.num_experts;
                match c.capacity {
                    CacheCapacity::Bytes(bytes) => {
                        ((bytes / expert_bytes.max(1)) as usize).min(total)
                    }
                    CacheCapacity::Fraction(fraction) => {
                        ((total as f64 * fraction).round() as usize).min(total)
                    }
                }
            })
            .unwrap_or(0);
        let sched = opts.policy.build(&opts.setup_for(cfg));
        let hbm = sched.hbm_plan(&MemoryProfile {
            expert_bytes,
            num_experts: cfg.num_experts,
            active_per_block,
            moe_layers: cfg.moe_layers(),
        });
        PlacementPlan {
            offloads_experts: sched.offloads_experts(),
            expert_bytes,
            moe_bytes: eff.moe_bytes(),
            non_moe_bytes: cfg.non_moe_bytes(),
            activation_bytes: activation_bytes(cfg, ctx_tokens, batch),
            cache_experts,
            active_per_block,
            resident_bytes: hbm.resident_bytes,
            transient_bytes: hbm.transient_bytes,
            staging_experts: hbm.encoder_staging_experts,
        }
    }

    /// Bytes held in HBM for the whole run: non-MoE parameters, activations
    /// and KV cache, the pinned expert cache, any scheduler-pinned resident
    /// experts — plus the full MoE parameters when nothing is offloaded.
    pub fn hbm_static_bytes(&self) -> u64 {
        let mut bytes = self.non_moe_bytes + self.activation_bytes;
        bytes += self.cache_experts as u64 * self.expert_bytes;
        bytes += self.resident_bytes;
        if !self.offloads_experts {
            bytes += self.moe_bytes;
        }
        bytes
    }

    /// Bytes of one expert at the model's precision.
    pub fn expert_bytes(&self) -> u64 {
        self.expert_bytes
    }

    /// Activation/KV-cache bytes this plan reserves (the `ctx_tokens` ×
    /// `batch` dependent part of [`PlacementPlan::hbm_static_bytes`]).
    pub fn activation_bytes(&self) -> u64 {
        self.activation_bytes
    }

    /// HBM bytes that do not depend on live context: non-MoE parameters,
    /// the pinned expert cache, and any weights the scheduler keeps
    /// resident. The continuous-batching scheduler reserves this once and
    /// accounts activations per admitted request on top.
    pub fn static_non_activation_bytes(&self) -> u64 {
        self.hbm_static_bytes() - self.activation_bytes
    }

    /// Experts pinned in the cache region.
    pub fn cache_experts(&self) -> usize {
        self.cache_experts
    }

    /// Experts activated per MoE block for this run.
    pub fn active_per_block(&self) -> usize {
        self.active_per_block
    }

    /// Experts' worth of staging the encoder pass streams fetches through.
    pub(crate) fn staging_experts(&self) -> u64 {
        self.staging_experts
    }

    /// Transient HBM bytes needed while one MoE block is in flight: the
    /// scheduler's migration buffers (Equation 1's dynamic term).
    pub fn transient_bytes_per_block(&self) -> u64 {
        self.transient_bytes
    }

    /// The paper's Equation 1 (generalised per scheduler): predicted peak
    /// GPU memory for model parameters + activations.
    pub fn predicted_peak_bytes(&self) -> u64 {
        self.hbm_static_bytes() + self.transient_bytes_per_block()
    }

    /// Bytes that must fit in the offload tier (CPU DRAM or SSD).
    pub fn offload_bytes(&self) -> u64 {
        if self.offloads_experts {
            self.moe_bytes
        } else {
            0
        }
    }
}

/// KV-cache bytes for `batch` sequences holding `ctx_tokens` of live
/// context across `layers` attention layers: one K and one V vector of
/// `d_model` f32 elements per token per layer.
///
/// This is the **single** KV accounting path. Admission control
/// ([`PlacementPlan::activation_bytes`], full-depth) and the decode cost
/// model ([`crate::InferenceSim`]'s per-layer attention bytes, `layers = 1`)
/// both route through it; they once used two hand-expanded copies of this
/// formula that disagreed on the layer factor, so admission and the cost
/// model accounted different KV footprints for the same request.
pub fn kv_bytes(layers: usize, ctx_tokens: usize, d_model: usize, batch: usize) -> u64 {
    2 * layers as u64 * ctx_tokens as u64 * d_model as u64 * 4 * batch as u64
}

/// Non-KV working buffers (logits, residuals, attention scratch) for
/// `batch` sequences of `ctx_tokens` context.
pub(crate) fn working_bytes(cfg: &ModelConfig, ctx_tokens: usize, batch: usize) -> u64 {
    8 * ctx_tokens as u64 * cfg.d_model as u64 * 4 * batch as u64
}

/// Live activation footprint: KV cache over every attention layer plus
/// working buffers. Small next to parameters, but part of Equation 1.
pub(crate) fn activation_bytes(cfg: &ModelConfig, ctx_tokens: usize, batch: usize) -> u64 {
    kv_bytes(cfg.total_layers(), ctx_tokens, cfg.d_model, batch)
        + working_bytes(cfg, ctx_tokens, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::PolicySpec;
    use crate::OffloadPolicy;
    use pgmoe_model::ModelConfig;

    fn plan(policy: OffloadPolicy, experts: usize) -> PlacementPlan {
        let cfg = ModelConfig::switch_base(experts);
        let opts = SimOptions::new(policy);
        PlacementPlan::new(&cfg, &opts, 320, 1)
    }

    #[test]
    fn gpu_only_holds_everything() {
        let cfg = ModelConfig::switch_base(64);
        let p = plan(OffloadPolicy::GpuOnly, 64);
        assert!(p.hbm_static_bytes() > cfg.capacity_bytes());
        assert_eq!(p.transient_bytes_per_block(), 0);
        assert_eq!(p.offload_bytes(), 0);
    }

    #[test]
    fn equation1_pregated_is_two_active_expert_sets() {
        let p = plan(OffloadPolicy::Pregated, 128);
        assert_eq!(p.transient_bytes_per_block(), 2 * p.expert_bytes());
        // OnDemand holds one set: exactly one expert fewer.
        let q = plan(OffloadPolicy::OnDemand, 128);
        assert_eq!(p.transient_bytes_per_block() - q.transient_bytes_per_block(), p.expert_bytes());
    }

    #[test]
    fn prefetch_all_holds_two_full_blocks() {
        let p = plan(OffloadPolicy::PrefetchAll, 64);
        assert_eq!(p.transient_bytes_per_block(), 2 * 64 * p.expert_bytes());
    }

    #[test]
    fn peak_ordering_matches_fig12() {
        // GPU-only > PrefetchAll > Pregated ≳ OnDemand.
        let gpu = plan(OffloadPolicy::GpuOnly, 128).predicted_peak_bytes();
        let pf = plan(OffloadPolicy::PrefetchAll, 128).predicted_peak_bytes();
        let pg = plan(OffloadPolicy::Pregated, 128).predicted_peak_bytes();
        let od = plan(OffloadPolicy::OnDemand, 128).predicted_peak_bytes();
        assert!(gpu > pf && pf > pg && pg > od);
        // Paper: Pre-gated uses ~23 % of GPU-only and ~0.2 % more than
        // OnDemand (Section VI-B). Check bands loosely.
        let frac = pg as f64 / gpu as f64;
        assert!(frac < 0.30, "Pre-gated/GPU-only peak fraction {frac}");
        let delta = (pg - od) as f64 / gpu as f64;
        assert!(delta < 0.01, "Pre-gated vs OnDemand delta {delta}");
    }

    #[test]
    fn memory_saving_grows_with_expert_count() {
        let f8 = plan(OffloadPolicy::Pregated, 8).predicted_peak_bytes() as f64
            / plan(OffloadPolicy::GpuOnly, 8).predicted_peak_bytes() as f64;
        let f256 = plan(OffloadPolicy::Pregated, 256).predicted_peak_bytes() as f64
            / plan(OffloadPolicy::GpuOnly, 256).predicted_peak_bytes() as f64;
        assert!(f256 < f8, "saving must grow with experts: {f8} vs {f256}");
    }

    #[test]
    fn cache_region_counts_toward_static_hbm() {
        let cfg = ModelConfig::switch_large_128();
        let base = SimOptions::new(OffloadPolicy::Pregated);
        let cached = SimOptions::new(OffloadPolicy::Pregated)
            .with_cache(crate::CacheConfig::new(0.1, crate::Replacement::Lru));
        let p0 = PlacementPlan::new(&cfg, &base, 320, 1);
        let p1 = PlacementPlan::new(&cfg, &cached, 320, 1);
        let expected = (cfg.moe_layers() * cfg.num_experts) as f64 * 0.1;
        assert_eq!(p1.cache_experts(), expected.round() as usize);
        assert_eq!(
            p1.hbm_static_bytes() - p0.hbm_static_bytes(),
            p1.cache_experts() as u64 * cfg.expert_bytes()
        );
    }

    #[test]
    fn fig14_override_scales_transients() {
        let cfg = ModelConfig::switch_base(64);
        let opts = SimOptions::new(OffloadPolicy::Pregated).with_active_experts(16);
        let p = PlacementPlan::new(&cfg, &opts, 320, 1);
        assert_eq!(p.active_per_block(), 16);
        assert_eq!(p.transient_bytes_per_block(), 2 * 16 * cfg.expert_bytes());
    }

    #[test]
    fn pinned_residents_count_toward_static_hbm() {
        let cfg = ModelConfig::switch_base(64);
        let base = PlacementPlan::new(&cfg, &SimOptions::new(OffloadPolicy::Pregated), 320, 1);
        let pinned =
            PlacementPlan::new(&cfg, &SimOptions::new(PolicySpec::cache_pinned(8)), 320, 1);
        assert_eq!(
            pinned.hbm_static_bytes() - base.hbm_static_bytes(),
            (cfg.moe_layers() * 8) as u64 * cfg.expert_bytes(),
            "pinned experts are Equation 1's static term"
        );
        // The pre-gated tail keeps the same transient shape.
        assert_eq!(pinned.transient_bytes_per_block(), base.transient_bytes_per_block());
        assert_eq!(pinned.offload_bytes(), base.offload_bytes());
    }

    #[test]
    fn expert_precision_override_shrinks_plan_bytes() {
        use pgmoe_model::ExpertPrecision;
        let cfg = ModelConfig::switch_base(64);
        let f32_plan = PlacementPlan::new(&cfg, &SimOptions::new(OffloadPolicy::Pregated), 320, 1);
        let int8_plan = PlacementPlan::new(
            &cfg,
            &SimOptions::new(OffloadPolicy::Pregated).with_expert_precision(ExpertPrecision::Int8),
            320,
            1,
        );
        let ratio = f32_plan.expert_bytes() as f64 / int8_plan.expert_bytes() as f64;
        assert!((3.7..3.8).contains(&ratio), "int8 expert shrink {ratio}");
        assert!(int8_plan.offload_bytes() < f32_plan.offload_bytes() / 3);
        assert!(int8_plan.transient_bytes_per_block() < f32_plan.transient_bytes_per_block() / 3);
        // Sub-byte Q4 pushes past 7× vs f32 and ≥1.7× vs int8 — the byte
        // geometry the quantized-offload e2e gate asserts end to end.
        let q4_plan = PlacementPlan::new(
            &cfg,
            &SimOptions::new(OffloadPolicy::Pregated).with_expert_precision(ExpertPrecision::Q4),
            320,
            1,
        );
        let q4_ratio = f32_plan.expert_bytes() as f64 / q4_plan.expert_bytes() as f64;
        assert!((7.0..7.2).contains(&q4_ratio), "q4 expert shrink {q4_ratio}");
        let int8_vs_q4 = int8_plan.expert_bytes() as f64 / q4_plan.expert_bytes() as f64;
        assert!(int8_vs_q4 >= 1.7, "q4 must beat int8 by ≥1.7×, got {int8_vs_q4}");
        // The override matches tagging the model itself.
        let tagged = cfg.with_expert_precision(ExpertPrecision::Int8);
        let tagged_plan =
            PlacementPlan::new(&tagged, &SimOptions::new(OffloadPolicy::Pregated), 320, 1);
        assert_eq!(tagged_plan.expert_bytes(), int8_plan.expert_bytes());
        assert_eq!(tagged_plan.offload_bytes(), int8_plan.offload_bytes());
    }

    #[test]
    fn admission_and_cost_model_kv_accounting_agree() {
        // Regression: admission control (PlacementPlan::activation_bytes,
        // all layers) and the decode cost model (attn_bytes_for, one layer
        // at a time) once hand-expanded the KV formula separately and
        // disagreed on the layer factor. Both now route through kv_bytes:
        // the full-depth footprint must be exactly the per-layer footprint
        // times the layer count, and the plan's activation bytes must
        // decompose into that same KV term plus working buffers.
        let cfg = ModelConfig::switch_base(8);
        let opts = SimOptions::new(OffloadPolicy::Pregated);
        for (ctx, batch) in [(1usize, 1usize), (320, 1), (544, 4), (7, 3)] {
            let per_layer = kv_bytes(1, ctx, cfg.d_model, 1);
            assert_eq!(
                kv_bytes(cfg.total_layers(), ctx, cfg.d_model, batch),
                per_layer * cfg.total_layers() as u64 * batch as u64,
                "layer factor must be the only difference between the two views"
            );
            let plan = PlacementPlan::new(&cfg, &opts, ctx, batch);
            assert_eq!(
                plan.activation_bytes(),
                kv_bytes(cfg.total_layers(), ctx, cfg.d_model, batch)
                    + working_bytes(&cfg, ctx, batch),
                "admission accounting must decompose into shared kv + working terms"
            );
            // The cost model's per-layer KV scan (attn_bytes_for minus its
            // batch-independent weight term) is the same shared term.
            let weights = {
                let d = cfg.d_model as u64;
                ((4 * d * d) as f64 * cfg.precision.bytes_per_param()) as u64
            };
            let attn = crate::engine::attn_bytes_for(&cfg, std::iter::repeat_n(ctx, batch));
            assert_eq!(attn - weights, per_layer * batch as u64);
        }
    }

    #[test]
    fn byte_budget_cache_fits_more_experts_at_lower_precision() {
        use crate::{CacheConfig, Replacement};
        use pgmoe_model::ExpertPrecision;
        let cfg = ModelConfig::switch_base(64);
        // A budget of exactly 16 f32 experts.
        let budget = 16 * cfg.expert_bytes();
        let plan_at = |p: ExpertPrecision| {
            let opts = SimOptions::new(OffloadPolicy::Pregated)
                .with_cache(CacheConfig::bytes(budget, Replacement::Lru))
                .with_expert_precision(p);
            PlacementPlan::new(&cfg, &opts, 320, 1)
        };
        let f32_cap = plan_at(ExpertPrecision::F32).cache_experts();
        let f16_cap = plan_at(ExpertPrecision::F16).cache_experts();
        let int8_cap = plan_at(ExpertPrecision::Int8).cache_experts();
        let q4_cap = plan_at(ExpertPrecision::Q4).cache_experts();
        let q4k_cap = plan_at(ExpertPrecision::Q4K).cache_experts();
        assert_eq!(f32_cap, 16);
        assert_eq!(f16_cap, 32);
        assert!(int8_cap >= 2 * f32_cap, "int8 cache {int8_cap} vs f32 {f32_cap}");
        // 4.5 bits/weight: the same budget holds ~7.1× the f32 experts.
        assert_eq!(q4_cap, 113, "q4 cache {q4_cap} vs f32 {f32_cap}");
        assert!(q4k_cap >= 6 * f32_cap && q4k_cap <= q4_cap, "q4k cache {q4k_cap}");
        // The HBM the region costs is capped by the budget either way.
        for p in ExpertPrecision::ALL {
            let plan = plan_at(p);
            assert!(plan.cache_experts() as u64 * plan.expert_bytes() <= budget);
        }
    }
}
