//! The inference simulator: schedules one serving run under a policy.

use crate::{
    CacheStats, ExpertCache, ExpertKey, OffloadPolicy, PlacementPlan, Result, RuntimeError,
    SimOptions,
};
use pgmoe_device::{AllocId, EventId, Machine, SimDuration, SimTime, Tier};
use pgmoe_model::{GateTopology, ModelConfig};
use pgmoe_workload::{DecodeRequest, RoutingTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measurements from one simulated serving run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Policy that produced the run.
    pub policy: OffloadPolicy,
    /// Latency of every decoder MoE block execution, in submission order
    /// (the population behind Fig 10's averages).
    pub block_latencies: Vec<SimDuration>,
    /// End-to-end generation throughput in output tokens per second
    /// (Fig 11).
    pub tokens_per_sec: f64,
    /// Wall-clock (simulated) time for the whole run.
    pub total_time: SimDuration,
    /// Time from run start until the first request's first output token
    /// completed (encoder pass + one decode iteration) — the per-request
    /// TTFT building block the serving layer aggregates.
    pub time_to_first_token: SimDuration,
    /// Measured peak HBM usage (Fig 12).
    pub peak_hbm_bytes: u64,
    /// Equation-1 analytic prediction, for cross-validation.
    pub predicted_peak_bytes: u64,
    /// Cache statistics if a cache was configured (Fig 15).
    pub cache_stats: Option<CacheStats>,
    /// GPU busy time (compute-utilisation numerator).
    pub gpu_busy: SimDuration,
    /// PCIe DMA busy time.
    pub pcie_busy: SimDuration,
    /// Total expert bytes migrated onto the GPU from the offload tier
    /// (0 under GPU-only; shrinks with the expert precision).
    pub expert_fetch_bytes: u64,
    /// ASCII execution timeline of the final decode iteration, when
    /// requested (Fig 9).
    pub timeline: Option<String>,
}

impl RunReport {
    /// Mean decoder-MoE-block latency.
    pub fn mean_block_latency(&self) -> SimDuration {
        if self.block_latencies.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.block_latencies.iter().map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(total / self.block_latencies.len() as u64)
    }
}

/// Simulates serving a model under a policy on the paper's machine.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct InferenceSim {
    cfg: ModelConfig,
    opts: SimOptions,
}

/// Per-MoE-block in-flight state for one decode iteration.
#[derive(Debug, Default)]
struct BlockInFlight {
    fetch_done: Option<EventId>,
    buffers: Vec<AllocId>,
}

/// Reusable per-iteration decode state: hoisted out of the token loop so
/// steady-state decode performs zero heap allocations (capacities are
/// retained across iterations).
#[derive(Debug)]
struct DecodeScratch {
    inflight: Vec<BlockInFlight>,
    /// The full `0..num_experts` set (MoE-Prefetch moves everything).
    all_experts: Vec<usize>,
    /// Wait-list under construction for the current expert kernel.
    waits: Vec<EventId>,
}

impl DecodeScratch {
    fn new(dec_blocks: usize, num_experts: usize) -> Self {
        DecodeScratch {
            inflight: (0..dec_blocks).map(|_| BlockInFlight::default()).collect(),
            all_experts: (0..num_experts).collect(),
            waits: Vec::with_capacity(4),
        }
    }

    fn reset(&mut self) {
        for f in &mut self.inflight {
            f.fetch_done = None;
            debug_assert!(f.buffers.is_empty(), "iteration left transient buffers alive");
            f.buffers.clear();
        }
        self.waits.clear();
    }
}

impl InferenceSim {
    /// Creates a simulator for `cfg` under `opts`.
    pub fn new(cfg: ModelConfig, opts: SimOptions) -> Self {
        InferenceSim { cfg, opts }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Runs `num_requests` back-to-back requests and reports measurements.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::OutOfMemory`] if the model does not fit the policy's
    ///   HBM footprint (GPU-only on Switch-Large-128).
    /// * [`RuntimeError::InvalidConfig`] for inconsistent options.
    pub fn run(&self, request: DecodeRequest, num_requests: usize) -> Result<RunReport> {
        self.validate(&request)?;
        let cfg = &self.cfg;
        let opts = &self.opts;
        let mut machine = Machine::new(opts.machine.clone());
        machine.set_trace_enabled(opts.trace_timeline);

        let ctx = request.input_tokens + request.output_tokens;
        let plan = PlacementPlan::new(cfg, opts, ctx, request.batch_size);
        machine.pool_mut(Tier::Hbm).alloc(plan.hbm_static_bytes())?;
        if plan.offload_bytes() > 0 {
            machine.pool_mut(opts.offload_tier).alloc(plan.offload_bytes())?;
        }

        let k_active = plan.active_per_block();
        let dec_blocks = cfg.decoder_moe_layers();
        let topo = self.decoder_topology(dec_blocks)?;
        let trace = RoutingTrace::generate(
            request.output_tokens,
            dec_blocks,
            cfg.num_experts,
            k_active,
            opts.routing,
            opts.seed,
        );
        let mut cache = opts.cache.map(|c| ExpertCache::new(plan.cache_experts(), c.replacement));

        // One reservation up front; the token loop itself never allocates.
        let mut block_latencies =
            Vec::with_capacity(num_requests * request.output_tokens * dec_blocks);
        let mut scratch = DecodeScratch::new(dec_blocks, cfg.num_experts);
        let mut ctx_len = request.input_tokens;
        let mut first_token_time: Option<SimTime> = None;
        for req in 0..num_requests {
            self.encoder_pass(&mut machine, &plan, &mut cache, request.input_tokens, req as u64)?;
            for tok in 0..request.output_tokens {
                // Keep the timeline bounded: retain only the final iteration.
                if opts.trace_timeline {
                    let is_last = req + 1 == num_requests && tok + 1 == request.output_tokens;
                    if is_last {
                        machine.clear_trace();
                    }
                }
                self.decode_iteration(
                    &mut machine,
                    &plan,
                    &topo,
                    &trace,
                    &mut cache,
                    tok,
                    ctx_len + tok,
                    &mut block_latencies,
                    &mut scratch,
                )?;
                if first_token_time.is_none() {
                    first_token_time = Some(machine.horizon());
                }
            }
            ctx_len = request.input_tokens; // next request starts fresh
        }

        let total_time = machine.horizon() - SimTime::ZERO;
        let generated = (num_requests * request.output_tokens) as f64;
        let timeline =
            opts.trace_timeline.then(|| pgmoe_device::render_timeline(machine.trace(), 100));
        Ok(RunReport {
            model: cfg.name.clone(),
            policy: opts.policy,
            block_latencies,
            tokens_per_sec: generated / total_time.as_secs_f64(),
            total_time,
            time_to_first_token: first_token_time.unwrap_or(SimTime::ZERO) - SimTime::ZERO,
            peak_hbm_bytes: machine.pool(Tier::Hbm).peak_bytes(),
            predicted_peak_bytes: plan.predicted_peak_bytes(),
            cache_stats: cache.map(|c| c.stats()),
            gpu_busy: machine.gpu_busy(),
            pcie_busy: machine.pcie_busy(),
            expert_fetch_bytes: machine.offload_traffic_bytes(),
            timeline,
        })
    }

    fn validate(&self, request: &DecodeRequest) -> Result<()> {
        if request.output_tokens == 0 || request.batch_size == 0 {
            return Err(RuntimeError::InvalidConfig {
                message: "request must generate at least one token with batch >= 1".into(),
            });
        }
        if let Some(c) = self.opts.cache {
            if !(0.0..=1.0).contains(&c.fraction) || c.fraction == 0.0 {
                return Err(RuntimeError::InvalidConfig {
                    message: format!("cache fraction {} outside (0, 1]", c.fraction),
                });
            }
        }
        if let Some(k) = self.opts.active_experts_override {
            if k == 0 || k > self.cfg.num_experts {
                return Err(RuntimeError::InvalidConfig {
                    message: format!("active experts {k} outside 1..={}", self.cfg.num_experts),
                });
            }
        }
        Ok(())
    }

    fn decoder_topology(&self, dec_blocks: usize) -> Result<GateTopology> {
        match self.opts.policy {
            OffloadPolicy::Pregated => {
                let level = self.opts.gating.level().max(1);
                if level >= dec_blocks {
                    return Err(RuntimeError::InvalidConfig {
                        message: format!(
                            "pre-gate level {level} needs more than {dec_blocks} decoder MoE blocks"
                        ),
                    });
                }
                Ok(GateTopology::new(dec_blocks, pgmoe_model::GatingMode::Pregated { level }))
            }
            _ => Ok(GateTopology::conventional(dec_blocks)),
        }
    }

    // ------------------------------------------------------------------
    // Kernel-cost helpers (all memory-bound at batch 1; see CostModel docs)
    // ------------------------------------------------------------------

    /// HBM bytes streamed by one decoder layer's attention (self + cross
    /// projections read once, plus the KV cache scan).
    fn attn_bytes(&self, ctx: usize) -> u64 {
        attn_bytes_for(&self.cfg, [ctx])
    }

    fn dense_ffn_bytes(&self) -> u64 {
        dense_ffn_bytes_for(&self.cfg)
    }

    // ------------------------------------------------------------------
    // Encoder
    // ------------------------------------------------------------------

    /// Simulates the encoder pass over the prompt. The encoder runs once per
    /// request; under offloading policies its MoE blocks fetch the distinct
    /// experts its `input_tokens` activate, with the same overlap structure
    /// as the decoder.
    fn encoder_pass(
        &self,
        machine: &mut Machine,
        plan: &PlacementPlan,
        cache: &mut Option<ExpertCache>,
        input_tokens: usize,
        request_seed: u64,
    ) -> Result<()> {
        let cfg = &self.cfg;
        let enc_blocks = cfg.encoder_layers / cfg.moe_every;
        let distinct =
            expected_distinct_experts(input_tokens * plan.active_per_block(), cfg.num_experts);
        // Encoder expert staging: the prompt activates many distinct experts
        // per block, but they are *streamed* through a small staging region
        // (single buffer when fetches serialize with execution, double buffer
        // when they overlap) — except MoE-Prefetch, which by design holds two
        // entire blocks' expert sets. This keeps measured peaks on the
        // decode-side Equation-1 footprint, as in the paper.
        let staging_experts: u64 = match self.opts.policy {
            OffloadPolicy::GpuOnly => 0,
            OffloadPolicy::OnDemand => 1,
            OffloadPolicy::Pregated => 2,
            OffloadPolicy::PrefetchAll => 2 * cfg.num_experts as u64,
        };
        let staging = if staging_experts > 0 {
            Some(machine.pool_mut(Tier::Hbm).alloc(staging_experts * plan.expert_bytes())?)
        } else {
            None
        };
        let mut rng = StdRng::seed_from_u64(self.opts.seed ^ request_seed.wrapping_mul(0x9E37));
        // Token-parallel encoder kernels: flops scale with tokens, weight
        // bytes are read once.
        let tokens = input_tokens as f64;
        let d = cfg.d_model as f64;
        let attn_flops = tokens * 2.0 * (4.0 * d * d + 2.0 * d * tokens);
        let ffn_flops_dense = tokens * 4.0 * d * cfg.d_ff as f64;
        let mut moe_idx = 0usize;
        let mut pending: Option<EventId> = None;
        // Encoder fetches stream through the staging region
        // (`alloc_buffers = false`), so this scratch stays empty.
        let mut no_buffers: Vec<AllocId> = Vec::new();
        for layer in 0..cfg.encoder_layers {
            let is_moe = layer % cfg.moe_every == cfg.moe_every - 1;
            machine.launch_kernel("attn", attn_flops, self.attn_bytes(input_tokens), &[]);
            if !is_moe {
                machine.launch_kernel("ffn", ffn_flops_dense, self.dense_ffn_bytes(), &[]);
                continue;
            }
            // Sample this block's distinct activated experts.
            let experts = sample_distinct_experts(distinct, cfg.num_experts, &mut rng);
            let exec_bytes = experts.len() as u64 * plan.expert_bytes();
            let exec_flops = ffn_flops_dense * plan.active_per_block() as f64;
            match self.opts.policy {
                OffloadPolicy::GpuOnly => {
                    let gate = machine.compute_op("gate", machine.cost().gate_overhead, &[]);
                    machine.launch_kernel("expert", exec_flops, exec_bytes, &[gate]);
                }
                OffloadPolicy::OnDemand => {
                    let gate = machine.compute_op("gate", machine.cost().gate_overhead, &[]);
                    let fetch = self.fetch_experts(
                        machine,
                        plan,
                        cache,
                        moe_idx,
                        &experts,
                        &[gate],
                        false,
                        &mut no_buffers,
                    );
                    machine.launch_kernel("expert", exec_flops, exec_bytes, &[fetch]);
                }
                OffloadPolicy::PrefetchAll | OffloadPolicy::Pregated => {
                    // Both policies overlap the fetch with the preceding
                    // layer's compute in the encoder; PrefetchAll moves every
                    // expert, Pre-gated only the activated ones.
                    let gate = machine.compute_op("gate", machine.cost().gate_overhead, &[]);
                    let fetch = if self.opts.policy == OffloadPolicy::PrefetchAll {
                        let all: Vec<usize> = (0..cfg.num_experts).collect();
                        self.fetch_experts(
                            machine,
                            plan,
                            cache,
                            moe_idx,
                            &all,
                            &[],
                            false,
                            &mut no_buffers,
                        )
                    } else if let Some(ev) = pending.take() {
                        ev
                    } else {
                        // First encoder MoE block: serialized, like OnDemand.
                        self.fetch_experts(
                            machine,
                            plan,
                            cache,
                            moe_idx,
                            &experts,
                            &[gate],
                            false,
                            &mut no_buffers,
                        )
                    };
                    machine.launch_kernel("expert", exec_flops, exec_bytes, &[fetch, gate]);
                    // Pre-gate: issue the next encoder MoE block's fetch now.
                    if self.opts.policy == OffloadPolicy::Pregated && moe_idx + 1 < enc_blocks {
                        let next = sample_distinct_experts(distinct, cfg.num_experts, &mut rng);
                        pending = Some(self.fetch_experts(
                            machine,
                            plan,
                            cache,
                            moe_idx + 1,
                            &next,
                            &[gate],
                            false,
                            &mut no_buffers,
                        ));
                    }
                }
            }
            moe_idx += 1;
        }
        if let Some(staging) = staging {
            machine.pool_mut(Tier::Hbm).free(staging).expect("encoder staging double free");
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Decoder
    // ------------------------------------------------------------------

    /// Simulates one decode iteration (one output token) through the decoder
    /// stack, recording each MoE block's latency. All per-iteration state
    /// lives in `scratch`, so the steady state allocates nothing.
    #[allow(clippy::too_many_arguments)]
    fn decode_iteration(
        &self,
        machine: &mut Machine,
        plan: &PlacementPlan,
        topo: &GateTopology,
        trace: &RoutingTrace,
        cache: &mut Option<ExpertCache>,
        tok: usize,
        ctx: usize,
        block_latencies: &mut Vec<SimDuration>,
        scratch: &mut DecodeScratch,
    ) -> Result<()> {
        let cfg = &self.cfg;
        let dec_blocks = cfg.decoder_moe_layers();
        // Decoder MoE blocks get cache keys disjoint from the encoder's:
        // block ids are global across the whole model.
        let enc_blocks = cfg.encoder_layers / cfg.moe_every;
        scratch.reset();

        // MoE-Prefetch: block 0's full-set prefetch is issued at iteration
        // start (SE-MoE migrates ahead of use, without gate knowledge).
        if self.opts.policy == OffloadPolicy::PrefetchAll {
            let ev = self.fetch_experts(
                machine,
                plan,
                cache,
                enc_blocks,
                &scratch.all_experts,
                &[],
                true,
                &mut scratch.inflight[0].buffers,
            );
            scratch.inflight[0].fetch_done = Some(ev);
        }

        let mut moe_idx = 0usize;
        for layer in 0..cfg.decoder_layers {
            let is_moe = layer % cfg.moe_every == cfg.moe_every - 1;
            let compute = machine.compute_stream();
            let block_start = machine.engine_mut().stream_tail(compute);
            machine.launch_kernel("attn", 0.0, self.attn_bytes(ctx), &[]);
            if !is_moe {
                machine.launch_kernel("ffn", 0.0, self.dense_ffn_bytes(), &[]);
                continue;
            }
            let b = moe_idx;
            let experts = trace.experts(tok, b);
            let exec_bytes = experts.len() as u64 * plan.expert_bytes();
            let gate = machine.compute_op("gate", machine.cost().gate_overhead, &[]);

            // Resolve this block's expert availability FIRST: a first-block
            // serialized fetch is on the block's critical path and must not
            // queue behind the next block's prefetch on the in-order copy
            // stream.
            scratch.waits.clear();
            match self.opts.policy {
                OffloadPolicy::GpuOnly => scratch.waits.push(gate),
                OffloadPolicy::OnDemand => {
                    let ev = self.fetch_experts(
                        machine,
                        plan,
                        cache,
                        enc_blocks + b,
                        experts,
                        &[gate],
                        true,
                        &mut scratch.inflight[b].buffers,
                    );
                    scratch.waits.push(ev);
                    scratch.waits.push(gate);
                }
                OffloadPolicy::PrefetchAll => {
                    let ev = scratch.inflight[b].fetch_done.expect("prefetch must be in flight");
                    scratch.waits.push(ev);
                    scratch.waits.push(gate);
                }
                OffloadPolicy::Pregated => {
                    if let Some(ev) = scratch.inflight[b].fetch_done {
                        scratch.waits.push(ev);
                        scratch.waits.push(gate);
                    } else {
                        // First block(s) of the iteration: no pre-selection
                        // available — serialized fetch, like OnDemand
                        // (footnote 1 of the paper).
                        let ev = self.fetch_experts(
                            machine,
                            plan,
                            cache,
                            enc_blocks + b,
                            experts,
                            &[gate],
                            true,
                            &mut scratch.inflight[b].buffers,
                        );
                        scratch.waits.push(ev);
                        scratch.waits.push(gate);
                    }
                }
            }

            // Then issue the fetches this block is responsible for: the
            // pre-gated targets selected by gates hosted here, or the next
            // block's full-set prefetch (MoE-Prefetch).
            match self.opts.policy {
                OffloadPolicy::Pregated => {
                    for target in topo.gates_hosted_at(b) {
                        if target == b {
                            continue; // own routing: resolved above
                        }
                        let target_experts = trace.experts(tok, target);
                        let ev = self.fetch_experts(
                            machine,
                            plan,
                            cache,
                            enc_blocks + target,
                            target_experts,
                            &[gate],
                            true,
                            &mut scratch.inflight[target].buffers,
                        );
                        scratch.inflight[target].fetch_done = Some(ev);
                    }
                }
                OffloadPolicy::PrefetchAll if b + 1 < dec_blocks => {
                    let ev = self.fetch_experts(
                        machine,
                        plan,
                        cache,
                        enc_blocks + b + 1,
                        &scratch.all_experts,
                        &[],
                        true,
                        &mut scratch.inflight[b + 1].buffers,
                    );
                    scratch.inflight[b + 1].fetch_done = Some(ev);
                }
                _ => {}
            }
            let exec = machine.launch_kernel("expert", 0.0, exec_bytes, &scratch.waits);
            free_buffers(machine, &mut scratch.inflight[b].buffers);
            block_latencies.push(machine.event_time(exec) - block_start);
            moe_idx += 1;
        }
        Ok(())
    }

    /// Enqueues migration of `experts` of MoE block `block` to the GPU.
    /// Cache-resident experts cost nothing; missed experts get a transient
    /// HBM buffer (ids pushed onto `buffers`) and a copy from the offload
    /// tier — the decoder allocates transients, the encoder streams through
    /// its staging region instead (`alloc_buffers = false`). Returns the
    /// event after which every requested expert is GPU-resident.
    #[allow(clippy::too_many_arguments)]
    fn fetch_experts(
        &self,
        machine: &mut Machine,
        plan: &PlacementPlan,
        cache: &mut Option<ExpertCache>,
        block: usize,
        experts: &[usize],
        waits: &[EventId],
        alloc_buffers: bool,
        buffers: &mut Vec<AllocId>,
    ) -> EventId {
        match fetch_experts_on(
            machine,
            plan,
            cache,
            self.opts.offload_tier,
            block,
            experts,
            waits,
            alloc_buffers,
            buffers,
        ) {
            Ok(done) => done,
            // Surfacing OOM lazily keeps the hot path simple; the static
            // allocation catches the common failure first.
            Err(err) => panic!("transient expert buffer OOM: {err}"),
        }
    }
}

/// HBM bytes streamed by one decoder attention layer: the projection
/// weights are read once regardless of batch size, the KV cache is scanned
/// per live context (one entry per batched request).
pub(crate) fn attn_bytes_for(cfg: &ModelConfig, ctx_lens: impl IntoIterator<Item = usize>) -> u64 {
    let d = cfg.d_model as u64;
    let bpp = cfg.precision.bytes_per_param();
    let weights = (4 * d * d) as f64 * bpp;
    let kv: u64 = ctx_lens.into_iter().map(|ctx| 2 * ctx as u64 * d * 4).sum();
    (weights + kv as f64) as u64
}

/// HBM bytes streamed by one dense FFN layer (weights read once).
pub(crate) fn dense_ffn_bytes_for(cfg: &ModelConfig) -> u64 {
    let bpp = cfg.precision.bytes_per_param();
    (2.0 * cfg.d_model as f64 * cfg.d_ff as f64 * bpp) as u64
}

/// Enqueues migration of `experts` of MoE block `block` to the GPU —
/// shared by the batch-1 serving path and the continuous-batching
/// scheduler so their cost models cannot drift. Cache-resident experts
/// cost nothing; missed experts get a transient HBM buffer (when
/// `alloc_buffers`) and a copy from `offload_tier`. Returns the event
/// after which every requested expert is GPU-resident; transient-buffer
/// ids are **pushed onto the caller-provided `buffers`** (a reusable
/// scratch vector — decode iterations recycle it so the steady state
/// performs no heap allocation). On OOM the buffers pushed so far are
/// freed and drained before the error propagates (the engine panics on
/// it, the scheduler surfaces it as a runtime error).
#[allow(clippy::too_many_arguments)]
pub(crate) fn fetch_experts_on(
    machine: &mut Machine,
    plan: &PlacementPlan,
    cache: &mut Option<ExpertCache>,
    offload_tier: Tier,
    block: usize,
    experts: &[usize],
    waits: &[EventId],
    alloc_buffers: bool,
    buffers: &mut Vec<AllocId>,
) -> std::result::Result<EventId, pgmoe_device::DeviceError> {
    debug_assert!(buffers.is_empty(), "fetch_experts_on expects a drained buffer scratch");
    let trace = machine.trace_enabled();
    let mut last = None;
    for &e in experts {
        let hit = cache.as_mut().map(|c| c.access(ExpertKey { block, expert: e })).unwrap_or(false);
        if hit {
            continue;
        }
        // Transient staging buffer; OOM here is a real capacity failure.
        if alloc_buffers {
            match machine.pool_mut(Tier::Hbm).alloc(plan.expert_bytes()) {
                Ok(id) => buffers.push(id),
                Err(err) => {
                    free_buffers(machine, buffers);
                    return Err(err);
                }
            }
        }
        // Per-expert labels only exist to render Fig 9 timelines; skip the
        // string build on untraced (steady-state) runs.
        let ev = if trace {
            machine.copy_to_gpu(
                &format!("fetch-b{block}e{e}"),
                plan.expert_bytes(),
                offload_tier,
                waits,
            )
        } else {
            machine.copy_to_gpu("fetch", plan.expert_bytes(), offload_tier, waits)
        };
        last = Some(ev);
    }
    // All experts resident: the copy stream is in-order, so the last
    // submitted copy dominates. All-hit fetches complete immediately
    // relative to `waits` via a zero-length barrier.
    let done = match last {
        Some(ev) => ev,
        None => {
            let copy = machine.copy_stream();
            machine.engine_mut().barrier(copy, waits)
        }
    };
    Ok(done)
}

/// Frees and drains transient expert buffers, keeping the vector's capacity
/// for the next iteration.
pub(crate) fn free_buffers(machine: &mut Machine, buffers: &mut Vec<AllocId>) {
    for id in buffers.drain(..) {
        machine.pool_mut(Tier::Hbm).free(id).expect("expert buffer double free");
    }
}

/// Expected number of distinct experts activated by `draws` independent
/// uniform draws over `experts` (balls-in-bins).
pub(crate) fn expected_distinct_experts(draws: usize, experts: usize) -> usize {
    let e = experts as f64;
    let expected = e * (1.0 - (1.0 - 1.0 / e).powi(draws as i32));
    (expected.round() as usize).clamp(1, experts)
}

pub(crate) fn sample_distinct_experts(
    count: usize,
    experts: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..experts).collect();
    for i in 0..count.min(experts) {
        let j = rng.gen_range(i..experts);
        pool.swap(i, j);
    }
    let mut chosen: Vec<usize> = pool[..count.min(experts)].to_vec();
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmoe_model::ModelConfig;
    use pgmoe_workload::DecodeRequest;

    fn short_request() -> DecodeRequest {
        DecodeRequest { input_tokens: 32, output_tokens: 8, batch_size: 1 }
    }

    fn run(policy: OffloadPolicy, experts: usize) -> RunReport {
        let cfg = ModelConfig::switch_base(experts);
        InferenceSim::new(cfg, SimOptions::new(policy)).run(short_request(), 1).expect("run")
    }

    #[test]
    fn all_policies_complete_and_report() {
        for policy in OffloadPolicy::ALL {
            let r = run(policy, 8);
            assert!(r.tokens_per_sec > 0.0, "{policy}");
            assert_eq!(r.block_latencies.len(), 8 * 6, "{policy}: 8 tokens × 6 decoder blocks");
            assert!(r.peak_hbm_bytes > 0);
        }
    }

    #[test]
    fn fig10_latency_ordering() {
        // GPU-only < Pre-gated < OnDemand < PrefetchAll under sparse
        // activation — the core result of the paper.
        let gpu = run(OffloadPolicy::GpuOnly, 64).mean_block_latency();
        let pg = run(OffloadPolicy::Pregated, 64).mean_block_latency();
        let od = run(OffloadPolicy::OnDemand, 64).mean_block_latency();
        let pf = run(OffloadPolicy::PrefetchAll, 64).mean_block_latency();
        assert!(gpu < pg, "GPU-only {gpu} !< Pre-gated {pg}");
        assert!(pg < od, "Pre-gated {pg} !< OnDemand {od}");
        assert!(od.as_nanos() * 5 < pf.as_nanos(), "OnDemand {od} should be ≪ Prefetch {pf}");
    }

    #[test]
    fn fig10_bands_switch_base_64() {
        let gpu = run(OffloadPolicy::GpuOnly, 64).mean_block_latency().as_nanos() as f64;
        let pg = run(OffloadPolicy::Pregated, 64).mean_block_latency().as_nanos() as f64;
        let od = run(OffloadPolicy::OnDemand, 64).mean_block_latency().as_nanos() as f64;
        let pf = run(OffloadPolicy::PrefetchAll, 64).mean_block_latency().as_nanos() as f64;
        let pg_ratio = pg / gpu;
        let od_ratio = od / gpu;
        let pf_ratio = pf / gpu;
        assert!((1.0..1.45).contains(&pg_ratio), "Pre-gated/GPU-only {pg_ratio} (paper 1.2)");
        assert!((1.6..2.6).contains(&od_ratio), "OnDemand/GPU-only {od_ratio} (paper ~1.9-2.0)");
        assert!((30.0..90.0).contains(&pf_ratio), "Prefetch/GPU-only {pf_ratio} (paper 54)");
    }

    #[test]
    fn gpu_only_ooms_on_switch_large() {
        let cfg = ModelConfig::switch_large_128();
        let err = InferenceSim::new(cfg, SimOptions::new(OffloadPolicy::GpuOnly))
            .run(short_request(), 1)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::OutOfMemory(_)));
    }

    #[test]
    fn offloading_policies_fit_switch_large() {
        for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand, OffloadPolicy::PrefetchAll]
        {
            let cfg = ModelConfig::switch_large_128();
            let r = InferenceSim::new(cfg, SimOptions::new(policy)).run(short_request(), 1);
            assert!(r.is_ok(), "{policy} should fit Switch-Large");
        }
    }

    #[test]
    fn measured_peak_matches_equation1_prediction() {
        for policy in OffloadPolicy::ALL {
            let r = run(policy, 64);
            let measured = r.peak_hbm_bytes as f64;
            let predicted = r.predicted_peak_bytes as f64;
            let rel = (measured - predicted).abs() / predicted;
            assert!(rel < 0.05, "{policy}: measured {measured} vs Eq.1 {predicted} ({rel})");
        }
    }

    #[test]
    fn pregated_peak_is_close_to_ondemand() {
        let pg = run(OffloadPolicy::Pregated, 128).peak_hbm_bytes;
        let od = run(OffloadPolicy::OnDemand, 128).peak_hbm_bytes;
        let gpu = run(OffloadPolicy::GpuOnly, 128).peak_hbm_bytes;
        assert!(pg > od);
        let delta = (pg - od) as f64 / gpu as f64;
        assert!(delta < 0.005, "Pre-gated ≈ OnDemand + one expert (delta {delta})");
    }

    #[test]
    fn cache_improves_ondemand_more_than_pregated() {
        use crate::{CacheConfig, Replacement};
        use pgmoe_workload::RoutingKind;
        let cfg = ModelConfig::switch_base(64);
        let mk = |policy, cached: bool| {
            let mut opts = SimOptions::new(policy).with_routing(RoutingKind::Zipf { s: 1.2 });
            if cached {
                opts = opts.with_cache(CacheConfig::new(0.2, Replacement::Lru));
            }
            InferenceSim::new(cfg.clone(), opts)
                .run(DecodeRequest { input_tokens: 32, output_tokens: 16, batch_size: 1 }, 1)
                .unwrap()
                .tokens_per_sec
        };
        let od_gain = mk(OffloadPolicy::OnDemand, true) / mk(OffloadPolicy::OnDemand, false);
        let pg_gain = mk(OffloadPolicy::Pregated, true) / mk(OffloadPolicy::Pregated, false);
        assert!(od_gain > 1.02, "caching should speed up OnDemand (gain {od_gain})");
        assert!(od_gain > pg_gain, "caching helps OnDemand more (od {od_gain} vs pg {pg_gain})");
    }

    #[test]
    fn ssd_offload_degrades_throughput() {
        let cfg = ModelConfig::switch_large_128();
        let ddr = InferenceSim::new(cfg.clone(), SimOptions::new(OffloadPolicy::Pregated))
            .run(short_request(), 1)
            .unwrap();
        let ssd =
            InferenceSim::new(cfg, SimOptions::new(OffloadPolicy::Pregated).with_ssd_offload())
                .run(short_request(), 1)
                .unwrap();
        assert!(ssd.tokens_per_sec < ddr.tokens_per_sec / 2.0);
    }

    #[test]
    fn fig14_full_activation_closes_prefetch_gap() {
        let cfg = ModelConfig::switch_base(64);
        let ratio = |policy, k| {
            let r = InferenceSim::new(cfg.clone(), SimOptions::new(policy).with_active_experts(k))
                .run(short_request(), 1)
                .unwrap();
            r.mean_block_latency().as_nanos() as f64
        };
        let gap_sparse = ratio(OffloadPolicy::PrefetchAll, 1) / ratio(OffloadPolicy::Pregated, 1);
        let gap_dense = ratio(OffloadPolicy::PrefetchAll, 64) / ratio(OffloadPolicy::Pregated, 64);
        assert!(gap_sparse > 10.0, "sparse gap {gap_sparse}");
        assert!(gap_dense < 2.0, "dense gap {gap_dense} should collapse");
    }

    #[test]
    fn timeline_renders_when_requested() {
        let cfg = ModelConfig::switch_base(8);
        let r = InferenceSim::new(cfg, SimOptions::new(OffloadPolicy::Pregated).with_timeline())
            .run(short_request(), 1)
            .unwrap();
        let t = r.timeline.expect("timeline requested");
        assert!(t.contains("compute"));
        assert!(t.contains("copy"));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        use crate::{CacheConfig, Replacement};
        let cfg = ModelConfig::switch_base(8);
        let bad_cache = SimOptions::new(OffloadPolicy::Pregated)
            .with_cache(CacheConfig::new(0.0, Replacement::Lru));
        assert!(matches!(
            InferenceSim::new(cfg.clone(), bad_cache).run(short_request(), 1),
            Err(RuntimeError::InvalidConfig { .. })
        ));
        let bad_k = SimOptions::new(OffloadPolicy::Pregated).with_active_experts(9);
        assert!(matches!(
            InferenceSim::new(cfg, bad_k).run(short_request(), 1),
            Err(RuntimeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn expert_precision_shrinks_traffic_and_time() {
        use pgmoe_model::ExpertPrecision;
        let f32_r = run(OffloadPolicy::Pregated, 64);
        assert!(f32_r.expert_fetch_bytes > 0, "offloading must move expert bytes");
        let int8_r = InferenceSim::new(
            ModelConfig::switch_base(64),
            SimOptions::new(OffloadPolicy::Pregated).with_expert_precision(ExpertPrecision::Int8),
        )
        .run(short_request(), 1)
        .unwrap();
        // Same routing trace (same seed) → same fetch count, ~3.76x fewer
        // bytes, strictly less simulated time.
        assert!(
            int8_r.expert_fetch_bytes * 3 < f32_r.expert_fetch_bytes,
            "int8 {} vs f32 {}",
            int8_r.expert_fetch_bytes,
            f32_r.expert_fetch_bytes
        );
        assert!(int8_r.total_time < f32_r.total_time);
        assert_eq!(run(OffloadPolicy::GpuOnly, 8).expert_fetch_bytes, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(OffloadPolicy::Pregated, 64);
        let b = run(OffloadPolicy::Pregated, 64);
        assert_eq!(a.tokens_per_sec, b.tokens_per_sec);
        assert_eq!(a.block_latencies, b.block_latencies);
    }

    #[test]
    fn distinct_expert_expectation_is_sane() {
        assert_eq!(expected_distinct_experts(1, 64), 1);
        assert!(expected_distinct_experts(64, 64) > 30);
        assert_eq!(expected_distinct_experts(10_000, 8), 8);
    }
}
