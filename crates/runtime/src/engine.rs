//! The inference simulator: schedules one serving run under a policy.

use crate::core::{
    self, expected_distinct_experts, CoreEnv, CoreScratch, DecodeCosts, PrefillCosts,
};
use crate::plan::{self, PlanSession, PlanTrace};
use crate::scheduler::{ExpertScheduler, RoutedSource};
use crate::{CacheStats, ExpertCache, PlacementPlan, Result, RuntimeError, SimOptions};
use pgmoe_device::{Machine, SimDuration, SimTime, Tier};
use pgmoe_model::{ExpertPrecision, GateTopology, ModelConfig};
use pgmoe_workload::{DecodeRequest, RoutingTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measurements from one simulated serving run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Display name of the scheduler that produced the run (the paper
    /// policies use their figure names, e.g. `"Pre-gated MoE"`).
    pub policy: String,
    /// Latency of every decoder MoE block execution, in submission order
    /// (the population behind Fig 10's averages).
    pub block_latencies: Vec<SimDuration>,
    /// End-to-end generation throughput in output tokens per second
    /// (Fig 11).
    pub tokens_per_sec: f64,
    /// Wall-clock (simulated) time for the whole run.
    pub total_time: SimDuration,
    /// Time from run start until the first request's first output token
    /// completed (encoder pass + one decode iteration) — the per-request
    /// TTFT building block the serving layer aggregates.
    pub time_to_first_token: SimDuration,
    /// Measured peak HBM usage (Fig 12).
    pub peak_hbm_bytes: u64,
    /// Equation-1 analytic prediction, for cross-validation.
    pub predicted_peak_bytes: u64,
    /// Cache statistics if a cache was configured (Fig 15).
    pub cache_stats: Option<CacheStats>,
    /// GPU busy time (compute-utilisation numerator).
    pub gpu_busy: SimDuration,
    /// PCIe DMA busy time.
    pub pcie_busy: SimDuration,
    /// Total expert bytes migrated onto the GPU from the offload tier
    /// (0 under GPU-only; shrinks with the expert precision).
    pub expert_fetch_bytes: u64,
    /// Expert bytes copied on a block's critical path — serialized
    /// residency fetches and prefetch-miss fills. This is the on-demand
    /// stall metric: prefetching schedulers shrink it at the cost of more
    /// total [`RunReport::expert_fetch_bytes`].
    pub demand_fetch_bytes: u64,
    /// ASCII execution timeline of the final decode iteration, when
    /// requested (Fig 9).
    pub timeline: Option<String>,
    /// Decode iterations replayed from a compiled plan (see [`crate::plan`]).
    pub plan_cache_hits: u64,
    /// Decode iterations lowered and compiled because no cached plan
    /// matched (uncacheable configurations run interpreted and count
    /// neither way).
    pub plan_cache_misses: u64,
}

impl RunReport {
    /// Mean decoder-MoE-block latency.
    pub fn mean_block_latency(&self) -> SimDuration {
        if self.block_latencies.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.block_latencies.iter().map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(total / self.block_latencies.len() as u64)
    }
}

/// Adapter: one decode iteration's routing as a slice of the trace.
struct TraceRouted<'a> {
    trace: &'a RoutingTrace,
    token: usize,
}

impl RoutedSource for TraceRouted<'_> {
    fn experts(&self, block: usize) -> &[usize] {
        self.trace.experts(self.token, block)
    }
}

/// Simulates serving a model under a policy on the paper's machine.
///
/// All policy decisions — built-in or user-defined — flow through the
/// [`ExpertScheduler`] hooks into the shared decode core; this type owns
/// only the run lifecycle (placement, routing trace, report assembly).
///
/// See the [crate docs](crate) for an end-to-end example.
///
/// [`ExpertScheduler`]: crate::scheduler::ExpertScheduler
#[derive(Debug, Clone)]
pub struct InferenceSim {
    cfg: ModelConfig,
    opts: SimOptions,
}

impl InferenceSim {
    /// Creates a simulator for `cfg` under `opts`.
    pub fn new(cfg: ModelConfig, opts: SimOptions) -> Self {
        InferenceSim { cfg, opts }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Runs `num_requests` back-to-back requests and reports measurements.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::OutOfMemory`] if the model does not fit the policy's
    ///   HBM footprint (GPU-only on Switch-Large-128).
    /// * [`RuntimeError::InvalidConfig`] for inconsistent options.
    pub fn run(&self, request: DecodeRequest, num_requests: usize) -> Result<RunReport> {
        let mut ps = PlanSession::new(self.opts.plan_cache, self.dequant());
        self.run_with(request, num_requests, &mut ps)
    }

    /// Compiles one decode iteration under this simulator's policy and
    /// returns its rendered plan, without caching or replaying it. Works for
    /// every scheduler — including uncacheable ones like
    /// `speculative_top_m` — because capture only records the interpreted
    /// iteration. The captured iteration is the run's *last* decode
    /// iteration (steady state: caches warm, frequency histograms settled).
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceSim::run`].
    pub fn trace_plan(&self, request: DecodeRequest, num_requests: usize) -> Result<PlanTrace> {
        let mut ps = PlanSession::capturing(self.dequant());
        let report = self.run_with(request, num_requests, &mut ps)?;
        let plan = ps.take_captured().ok_or_else(|| RuntimeError::InvalidConfig {
            message: "plan capture recorded no decode iteration".into(),
        })?;
        Ok(PlanTrace::new(report.policy, plan))
    }

    /// Whether this run executes quantized experts through the fused
    /// dequant-GEMM path (annotates compiled plans).
    fn dequant(&self) -> bool {
        self.opts.expert_precision.unwrap_or(self.cfg.expert_precision) != ExpertPrecision::F32
    }

    fn run_with(
        &self,
        request: DecodeRequest,
        num_requests: usize,
        ps: &mut PlanSession,
    ) -> Result<RunReport> {
        self.validate(&request)?;
        let cfg = &self.cfg;
        let opts = &self.opts;
        let mut machine = Machine::new(opts.machine.clone());
        machine.set_trace_enabled(opts.trace_timeline);

        let ctx = request.input_tokens + request.output_tokens;
        let plan = PlacementPlan::new(cfg, opts, ctx, request.batch_size);
        machine.pool_mut(Tier::Hbm).alloc(plan.hbm_static_bytes())?;
        if plan.offload_bytes() > 0 {
            machine.pool_mut(opts.offload_tier).alloc(plan.offload_bytes())?;
        }

        let k_active = plan.active_per_block();
        let dec_blocks = cfg.decoder_moe_layers();
        let enc_blocks = cfg.encoder_layers / cfg.moe_every;
        let mut sched = opts.policy.build(&opts.setup_for(cfg));
        let topo = sched.decoder_topology(dec_blocks)?;
        let trace = RoutingTrace::generate(
            request.output_tokens,
            dec_blocks,
            cfg.num_experts,
            k_active,
            opts.routing,
            opts.seed,
        );
        let mut cache = opts.cache.map(|c| ExpertCache::new(plan.cache_experts(), c.replacement));
        let mut demand_bytes = 0u64;

        // One reservation up front; the token loop itself never allocates.
        let mut block_latencies =
            Vec::with_capacity(num_requests * request.output_tokens * dec_blocks);
        let mut scratch = CoreScratch::new(dec_blocks, cfg.num_experts);
        let mut ctx_len = request.input_tokens;
        let mut first_token_time: Option<SimTime> = None;
        for req in 0..num_requests {
            self.encoder_pass(
                &mut machine,
                &plan,
                &mut cache,
                sched.as_mut(),
                &topo,
                request.input_tokens,
                req as u64,
                &mut demand_bytes,
            )?;
            for tok in 0..request.output_tokens {
                // Keep the timeline bounded: retain only the final iteration.
                if opts.trace_timeline {
                    let is_last = req + 1 == num_requests && tok + 1 == request.output_tokens;
                    if is_last {
                        machine.clear_trace();
                    }
                }
                let costs = DecodeCosts {
                    attn_bytes: self.attn_bytes(ctx_len + tok),
                    ffn_bytes: self.dense_ffn_bytes(),
                    decoder_layers: cfg.decoder_layers,
                    moe_every: cfg.moe_every,
                };
                let mut env = CoreEnv {
                    machine: &mut machine,
                    plan: &plan,
                    cache: &mut cache,
                    offload_tier: opts.offload_tier,
                    num_experts: cfg.num_experts,
                    demand_bytes: &mut demand_bytes,
                };
                plan::decode_iteration_planned(
                    &mut env,
                    sched.as_mut(),
                    &topo,
                    &TraceRouted { trace: &trace, token: tok },
                    tok,
                    enc_blocks,
                    &costs,
                    &mut scratch,
                    Some(&mut block_latencies),
                    ps,
                    1,
                )?;
                if first_token_time.is_none() {
                    first_token_time = Some(machine.horizon());
                }
            }
            ctx_len = request.input_tokens; // next request starts fresh
        }

        let total_time = machine.horizon() - SimTime::ZERO;
        let generated = (num_requests * request.output_tokens) as f64;
        let timeline =
            opts.trace_timeline.then(|| pgmoe_device::render_timeline(machine.trace(), 100));
        Ok(RunReport {
            model: cfg.name.clone(),
            policy: sched.name(),
            block_latencies,
            tokens_per_sec: generated / total_time.as_secs_f64(),
            total_time,
            time_to_first_token: first_token_time.unwrap_or(SimTime::ZERO) - SimTime::ZERO,
            peak_hbm_bytes: machine.pool(Tier::Hbm).peak_bytes(),
            predicted_peak_bytes: plan.predicted_peak_bytes(),
            cache_stats: cache.map(|c| c.stats()),
            gpu_busy: machine.gpu_busy(),
            pcie_busy: machine.pcie_busy(),
            expert_fetch_bytes: machine.offload_traffic_bytes(),
            demand_fetch_bytes: demand_bytes,
            timeline,
            plan_cache_hits: ps.stats().hits,
            plan_cache_misses: ps.stats().misses,
        })
    }

    fn validate(&self, request: &DecodeRequest) -> Result<()> {
        if request.output_tokens == 0 || request.batch_size == 0 {
            return Err(RuntimeError::InvalidConfig {
                message: "request must generate at least one token with batch >= 1".into(),
            });
        }
        self.opts.validate(&self.cfg)
    }

    // ------------------------------------------------------------------
    // Kernel-cost helpers (all memory-bound at batch 1; see CostModel docs)
    // ------------------------------------------------------------------

    /// HBM bytes streamed by one decoder layer's attention (self + cross
    /// projections read once, plus the KV cache scan).
    fn attn_bytes(&self, ctx: usize) -> u64 {
        attn_bytes_for(&self.cfg, [ctx])
    }

    fn dense_ffn_bytes(&self) -> u64 {
        dense_ffn_bytes_for(&self.cfg)
    }

    /// Simulates the encoder pass over the prompt: policy hooks drive the
    /// fetch structure through the shared prefill core, and fetches stream
    /// through a scheduler-sized staging region (`alloc_buffers = false`)
    /// so measured peaks stay on the decode-side Equation-1 footprint, as
    /// in the paper.
    #[allow(clippy::too_many_arguments)]
    fn encoder_pass(
        &self,
        machine: &mut Machine,
        plan: &PlacementPlan,
        cache: &mut Option<ExpertCache>,
        sched: &mut dyn ExpertScheduler,
        topo: &GateTopology,
        input_tokens: usize,
        request_seed: u64,
        demand_bytes: &mut u64,
    ) -> Result<()> {
        let cfg = &self.cfg;
        let enc_blocks = cfg.encoder_layers / cfg.moe_every;
        let distinct =
            expected_distinct_experts(input_tokens * plan.active_per_block(), cfg.num_experts);
        let staging = if plan.staging_experts() > 0 {
            Some(machine.pool_mut(Tier::Hbm).alloc(plan.staging_experts() * plan.expert_bytes())?)
        } else {
            None
        };
        let mut rng = StdRng::seed_from_u64(self.opts.seed ^ request_seed.wrapping_mul(0x9E37));
        // Token-parallel encoder kernels: flops scale with tokens, weight
        // bytes are read once.
        let tokens = input_tokens as f64;
        let d = cfg.d_model as f64;
        let ffn_flops_dense = tokens * 4.0 * d * cfg.d_ff as f64;
        let costs = PrefillCosts {
            attn_flops: tokens * 2.0 * (4.0 * d * d + 2.0 * d * tokens),
            attn_bytes: self.attn_bytes(input_tokens),
            ffn_flops: ffn_flops_dense,
            ffn_bytes: self.dense_ffn_bytes(),
            exec_flops: ffn_flops_dense * plan.active_per_block() as f64,
            encoder_layers: cfg.encoder_layers,
            moe_every: cfg.moe_every,
            distinct,
            labels: ["attn", "ffn", "expert"],
        };
        let mut env = CoreEnv {
            machine,
            plan,
            cache,
            offload_tier: self.opts.offload_tier,
            num_experts: cfg.num_experts,
            demand_bytes,
        };
        core::prefill_pass(&mut env, sched, topo, enc_blocks, &costs, &mut rng, false)?;
        if let Some(staging) = staging {
            machine.pool_mut(Tier::Hbm).free(staging).expect("encoder staging double free");
        }
        Ok(())
    }
}

/// HBM bytes streamed by one decoder attention layer: the projection
/// weights are read once regardless of batch size, the KV cache is scanned
/// per live context (one entry per batched request). The KV term is the
/// shared [`crate::memory::kv_bytes`] accounting path at depth 1 — the same
/// per-token bytes admission control multiplies by the full layer count.
pub(crate) fn attn_bytes_for(cfg: &ModelConfig, ctx_lens: impl IntoIterator<Item = usize>) -> u64 {
    let d = cfg.d_model as u64;
    let bpp = cfg.precision.bytes_per_param();
    let weights = (4 * d * d) as f64 * bpp;
    let kv: u64 =
        ctx_lens.into_iter().map(|ctx| crate::memory::kv_bytes(1, ctx, cfg.d_model, 1)).sum();
    (weights + kv as f64) as u64
}

/// HBM bytes streamed by one dense FFN layer (weights read once).
pub(crate) fn dense_ffn_bytes_for(cfg: &ModelConfig) -> u64 {
    let bpp = cfg.precision.bytes_per_param();
    (2.0 * cfg.d_model as f64 * cfg.d_ff as f64 * bpp) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::PolicySpec;
    use crate::OffloadPolicy;
    use pgmoe_model::ModelConfig;
    use pgmoe_workload::DecodeRequest;

    fn short_request() -> DecodeRequest {
        DecodeRequest { input_tokens: 32, output_tokens: 8, batch_size: 1 }
    }

    fn run(policy: OffloadPolicy, experts: usize) -> RunReport {
        let cfg = ModelConfig::switch_base(experts);
        InferenceSim::new(cfg, SimOptions::new(policy)).run(short_request(), 1).expect("run")
    }

    #[test]
    fn all_policies_complete_and_report() {
        for policy in OffloadPolicy::ALL {
            let r = run(policy, 8);
            assert!(r.tokens_per_sec > 0.0, "{policy}");
            assert_eq!(r.block_latencies.len(), 8 * 6, "{policy}: 8 tokens × 6 decoder blocks");
            assert!(r.peak_hbm_bytes > 0);
            assert_eq!(r.policy, policy.paper_name());
        }
    }

    #[test]
    fn new_schedulers_complete_and_report() {
        let cfg = ModelConfig::switch_base(16);
        for spec in [PolicySpec::speculative_top_m(4), PolicySpec::cache_pinned(4)] {
            let name = spec.name();
            let r = InferenceSim::new(cfg.clone(), SimOptions::new(spec))
                .run(short_request(), 1)
                .expect("run");
            assert!(r.tokens_per_sec > 0.0, "{name}");
            assert_eq!(r.policy, name);
            assert!(r.expert_fetch_bytes > 0, "{name} offloads");
            assert!(
                r.peak_hbm_bytes <= r.predicted_peak_bytes,
                "{name}: measured {} must stay under the scheduler's Eq.1 bound {}",
                r.peak_hbm_bytes,
                r.predicted_peak_bytes
            );
        }
    }

    #[test]
    fn speculative_trades_bytes_for_demand_stalls() {
        // The new-scheduler acceptance property: versus Pre-gated, the
        // speculative superset moves strictly more link bytes and stalls on
        // strictly fewer on-demand bytes.
        let cfg = ModelConfig::switch_base(64);
        let request = DecodeRequest { input_tokens: 32, output_tokens: 16, batch_size: 1 };
        let zipf = pgmoe_workload::RoutingKind::Zipf { s: 1.2 };
        let pg = InferenceSim::new(
            cfg.clone(),
            SimOptions::new(OffloadPolicy::Pregated).with_routing(zipf),
        )
        .run(request, 1)
        .unwrap();
        let spec = InferenceSim::new(
            cfg,
            SimOptions::new(PolicySpec::speculative_top_m(8)).with_routing(zipf),
        )
        .run(request, 1)
        .unwrap();
        assert!(pg.demand_fetch_bytes > 0, "Pre-gated serializes the first block");
        assert!(
            spec.demand_fetch_bytes < pg.demand_fetch_bytes,
            "speculation must cut demand stalls: {} !< {}",
            spec.demand_fetch_bytes,
            pg.demand_fetch_bytes
        );
        assert!(
            spec.expert_fetch_bytes > pg.expert_fetch_bytes,
            "the margin costs link bytes: {} !> {}",
            spec.expert_fetch_bytes,
            pg.expert_fetch_bytes
        );
    }

    #[test]
    fn cache_pinned_cuts_traffic_under_zipf() {
        let cfg = ModelConfig::switch_base(64);
        let request = DecodeRequest { input_tokens: 32, output_tokens: 16, batch_size: 1 };
        let zipf = pgmoe_workload::RoutingKind::Zipf { s: 1.2 };
        let pg = InferenceSim::new(
            cfg.clone(),
            SimOptions::new(OffloadPolicy::Pregated).with_routing(zipf),
        )
        .run(request, 1)
        .unwrap();
        let pinned =
            InferenceSim::new(cfg, SimOptions::new(PolicySpec::cache_pinned(8)).with_routing(zipf))
                .run(request, 1)
                .unwrap();
        assert!(
            pinned.expert_fetch_bytes < pg.expert_fetch_bytes,
            "pinned hot experts must shrink migration: {} !< {}",
            pinned.expert_fetch_bytes,
            pg.expert_fetch_bytes
        );
        assert!(pinned.peak_hbm_bytes > pg.peak_hbm_bytes, "residents cost HBM");
        assert!(pinned.total_time < pg.total_time, "fewer fetches, faster decode");
    }

    #[test]
    fn overlapping_prefetch_directives_merge_without_refetch() {
        // A scheduler that splits each pre-gated prefetch into two
        // overlapping directives must behave exactly like Pre-gated: the
        // core merges coverage and never copies an expert twice.
        use crate::scheduler::{
            ExpertScheduler as Es, FetchSet, Phase, PolicyCtx, Prefetch, Residency,
            SchedulerFactory, SchedulerSetup,
        };
        #[derive(Debug)]
        struct SplitFactory;
        impl SchedulerFactory for SplitFactory {
            fn scheduler_name(&self) -> String {
                "Split-Pregated".into()
            }
            fn build(&self, _setup: &SchedulerSetup) -> Box<dyn Es> {
                Box::new(Split)
            }
        }
        struct Split;
        impl Es for Split {
            fn name(&self) -> String {
                "Split-Pregated".into()
            }
            fn uses_pregate(&self) -> bool {
                true
            }
            fn decoder_topology(&self, dec_blocks: usize) -> crate::Result<GateTopology> {
                Ok(GateTopology::pregated(dec_blocks))
            }
            fn hbm_plan(&self, p: &crate::scheduler::MemoryProfile) -> crate::scheduler::HbmPlan {
                crate::scheduler::HbmPlan {
                    resident_bytes: 0,
                    transient_bytes: 2 * p.active_per_block as u64 * p.expert_bytes,
                    encoder_staging_experts: 2,
                }
            }
            fn on_block_start(&mut self, _ctx: &PolicyCtx<'_>, _block: usize) -> Residency {
                Residency::AwaitPending
            }
            fn on_gate(&mut self, ctx: &PolicyCtx<'_>, block: usize, out: &mut Vec<Prefetch>) {
                if ctx.phase == Phase::Prefill {
                    if block + 1 < ctx.blocks {
                        out.push(Prefetch {
                            block: block + 1,
                            set: FetchSet::Routed,
                            after_gate: true,
                        });
                    }
                    return;
                }
                for target in ctx.topology.gates_hosted_at(block) {
                    if target != block {
                        let routed = ctx.experts(target);
                        // First half, then the FULL set again (overlap).
                        out.push(Prefetch {
                            block: target,
                            set: FetchSet::Listed(routed[..routed.len() / 2].to_vec()),
                            after_gate: true,
                        });
                        out.push(Prefetch {
                            block: target,
                            set: FetchSet::Listed(routed.to_vec()),
                            after_gate: true,
                        });
                    }
                }
            }
        }
        let cfg = ModelConfig::switch_base(16);
        let request = DecodeRequest { input_tokens: 32, output_tokens: 8, batch_size: 1 };
        let opts = SimOptions::new(OffloadPolicy::Pregated).with_active_experts(2);
        let pg = InferenceSim::new(cfg.clone(), opts).run(request, 1).unwrap();
        let split_opts = SimOptions::new(PolicySpec::custom(std::sync::Arc::new(SplitFactory)))
            .with_active_experts(2);
        let split = InferenceSim::new(cfg, split_opts).run(request, 1).unwrap();
        assert_eq!(split.expert_fetch_bytes, pg.expert_fetch_bytes, "no duplicate copies");
        assert_eq!(split.demand_fetch_bytes, pg.demand_fetch_bytes, "merged coverage");
        assert_eq!(split.block_latencies, pg.block_latencies, "identical event graph");
        assert_eq!(split.total_time, pg.total_time);
    }

    #[test]
    fn fig10_latency_ordering() {
        // GPU-only < Pre-gated < OnDemand < PrefetchAll under sparse
        // activation — the core result of the paper.
        let gpu = run(OffloadPolicy::GpuOnly, 64).mean_block_latency();
        let pg = run(OffloadPolicy::Pregated, 64).mean_block_latency();
        let od = run(OffloadPolicy::OnDemand, 64).mean_block_latency();
        let pf = run(OffloadPolicy::PrefetchAll, 64).mean_block_latency();
        assert!(gpu < pg, "GPU-only {gpu} !< Pre-gated {pg}");
        assert!(pg < od, "Pre-gated {pg} !< OnDemand {od}");
        assert!(od.as_nanos() * 5 < pf.as_nanos(), "OnDemand {od} should be ≪ Prefetch {pf}");
    }

    #[test]
    fn fig10_bands_switch_base_64() {
        let gpu = run(OffloadPolicy::GpuOnly, 64).mean_block_latency().as_nanos() as f64;
        let pg = run(OffloadPolicy::Pregated, 64).mean_block_latency().as_nanos() as f64;
        let od = run(OffloadPolicy::OnDemand, 64).mean_block_latency().as_nanos() as f64;
        let pf = run(OffloadPolicy::PrefetchAll, 64).mean_block_latency().as_nanos() as f64;
        let pg_ratio = pg / gpu;
        let od_ratio = od / gpu;
        let pf_ratio = pf / gpu;
        assert!((1.0..1.45).contains(&pg_ratio), "Pre-gated/GPU-only {pg_ratio} (paper 1.2)");
        assert!((1.6..2.6).contains(&od_ratio), "OnDemand/GPU-only {od_ratio} (paper ~1.9-2.0)");
        assert!((30.0..90.0).contains(&pf_ratio), "Prefetch/GPU-only {pf_ratio} (paper 54)");
    }

    #[test]
    fn gpu_only_ooms_on_switch_large() {
        let cfg = ModelConfig::switch_large_128();
        let err = InferenceSim::new(cfg, SimOptions::new(OffloadPolicy::GpuOnly))
            .run(short_request(), 1)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::OutOfMemory(_)));
    }

    #[test]
    fn offloading_policies_fit_switch_large() {
        for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand, OffloadPolicy::PrefetchAll]
        {
            let cfg = ModelConfig::switch_large_128();
            let r = InferenceSim::new(cfg, SimOptions::new(policy)).run(short_request(), 1);
            assert!(r.is_ok(), "{policy} should fit Switch-Large");
        }
    }

    #[test]
    fn measured_peak_matches_equation1_prediction() {
        for policy in OffloadPolicy::ALL {
            let r = run(policy, 64);
            let measured = r.peak_hbm_bytes as f64;
            let predicted = r.predicted_peak_bytes as f64;
            let rel = (measured - predicted).abs() / predicted;
            assert!(rel < 0.05, "{policy}: measured {measured} vs Eq.1 {predicted} ({rel})");
        }
    }

    #[test]
    fn pregated_peak_is_close_to_ondemand() {
        let pg = run(OffloadPolicy::Pregated, 128).peak_hbm_bytes;
        let od = run(OffloadPolicy::OnDemand, 128).peak_hbm_bytes;
        let gpu = run(OffloadPolicy::GpuOnly, 128).peak_hbm_bytes;
        assert!(pg > od);
        let delta = (pg - od) as f64 / gpu as f64;
        assert!(delta < 0.005, "Pre-gated ≈ OnDemand + one expert (delta {delta})");
    }

    #[test]
    fn cache_improves_ondemand_more_than_pregated() {
        use crate::{CacheConfig, Replacement};
        use pgmoe_workload::RoutingKind;
        let cfg = ModelConfig::switch_base(64);
        let mk = |policy, cached: bool| {
            let mut opts = SimOptions::new(policy).with_routing(RoutingKind::Zipf { s: 1.2 });
            if cached {
                opts = opts.with_cache(CacheConfig::new(0.2, Replacement::Lru));
            }
            InferenceSim::new(cfg.clone(), opts)
                .run(DecodeRequest { input_tokens: 32, output_tokens: 16, batch_size: 1 }, 1)
                .unwrap()
                .tokens_per_sec
        };
        let od_gain = mk(OffloadPolicy::OnDemand, true) / mk(OffloadPolicy::OnDemand, false);
        let pg_gain = mk(OffloadPolicy::Pregated, true) / mk(OffloadPolicy::Pregated, false);
        assert!(od_gain > 1.02, "caching should speed up OnDemand (gain {od_gain})");
        assert!(od_gain > pg_gain, "caching helps OnDemand more (od {od_gain} vs pg {pg_gain})");
    }

    #[test]
    fn ssd_offload_degrades_throughput() {
        let cfg = ModelConfig::switch_large_128();
        let ddr = InferenceSim::new(cfg.clone(), SimOptions::new(OffloadPolicy::Pregated))
            .run(short_request(), 1)
            .unwrap();
        let ssd =
            InferenceSim::new(cfg, SimOptions::new(OffloadPolicy::Pregated).with_ssd_offload())
                .run(short_request(), 1)
                .unwrap();
        assert!(ssd.tokens_per_sec < ddr.tokens_per_sec / 2.0);
    }

    #[test]
    fn fig14_full_activation_closes_prefetch_gap() {
        let cfg = ModelConfig::switch_base(64);
        let ratio = |policy, k| {
            let r = InferenceSim::new(cfg.clone(), SimOptions::new(policy).with_active_experts(k))
                .run(short_request(), 1)
                .unwrap();
            r.mean_block_latency().as_nanos() as f64
        };
        let gap_sparse = ratio(OffloadPolicy::PrefetchAll, 1) / ratio(OffloadPolicy::Pregated, 1);
        let gap_dense = ratio(OffloadPolicy::PrefetchAll, 64) / ratio(OffloadPolicy::Pregated, 64);
        assert!(gap_sparse > 10.0, "sparse gap {gap_sparse}");
        assert!(gap_dense < 2.0, "dense gap {gap_dense} should collapse");
    }

    #[test]
    fn timeline_renders_when_requested() {
        let cfg = ModelConfig::switch_base(8);
        let r = InferenceSim::new(cfg, SimOptions::new(OffloadPolicy::Pregated).with_timeline())
            .run(short_request(), 1)
            .unwrap();
        let t = r.timeline.expect("timeline requested");
        assert!(t.contains("compute"));
        assert!(t.contains("copy"));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        use crate::{CacheConfig, Replacement};
        let cfg = ModelConfig::switch_base(8);
        let bad_cache = SimOptions::new(OffloadPolicy::Pregated)
            .with_cache(CacheConfig::new(0.0, Replacement::Lru));
        assert!(matches!(
            InferenceSim::new(cfg.clone(), bad_cache).run(short_request(), 1),
            Err(RuntimeError::InvalidConfig { .. })
        ));
        let bad_k = SimOptions::new(OffloadPolicy::Pregated).with_active_experts(9);
        assert!(matches!(
            InferenceSim::new(cfg.clone(), bad_k).run(short_request(), 1),
            Err(RuntimeError::InvalidConfig { .. })
        ));
        let bad_gating = SimOptions::new(OffloadPolicy::OnDemand)
            .with_gating(pgmoe_model::GatingMode::Pregated { level: 1 });
        assert!(matches!(
            InferenceSim::new(cfg, bad_gating).run(short_request(), 1),
            Err(RuntimeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn expert_precision_shrinks_traffic_and_time() {
        use pgmoe_model::ExpertPrecision;
        let f32_r = run(OffloadPolicy::Pregated, 64);
        assert!(f32_r.expert_fetch_bytes > 0, "offloading must move expert bytes");
        let int8_r = InferenceSim::new(
            ModelConfig::switch_base(64),
            SimOptions::new(OffloadPolicy::Pregated).with_expert_precision(ExpertPrecision::Int8),
        )
        .run(short_request(), 1)
        .unwrap();
        // Same routing trace (same seed) → same fetch count, ~3.76x fewer
        // bytes, strictly less simulated time.
        assert!(
            int8_r.expert_fetch_bytes * 3 < f32_r.expert_fetch_bytes,
            "int8 {} vs f32 {}",
            int8_r.expert_fetch_bytes,
            f32_r.expert_fetch_bytes
        );
        assert!(int8_r.total_time < f32_r.total_time);
        assert_eq!(run(OffloadPolicy::GpuOnly, 8).expert_fetch_bytes, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(OffloadPolicy::Pregated, 64);
        let b = run(OffloadPolicy::Pregated, 64);
        assert_eq!(a.tokens_per_sec, b.tokens_per_sec);
        assert_eq!(a.block_latencies, b.block_latencies);
    }
}
