//! Pull-based incremental decoding over the shared batch core.
//!
//! [`crate::BatchScheduler::serve`] is run-to-completion: it consumes a
//! whole pre-generated arrival trace and only then hands back statistics.
//! A real serving front door cannot work that way — requests arrive on
//! live sockets while earlier ones are mid-decode, and every generated
//! token must be streamed back the moment it exists. [`BatchSession`] is
//! the seam that makes that possible: it owns exactly the state the batch
//! scheduler's serve loop used to keep on its stack (machine, placement
//! plan, expert cache, policy scheduler, in-flight set) and exposes it as
//! three small operations the caller drives:
//!
//! * [`BatchSession::try_admit`] — offer one request at the current clock;
//!   admission control (max batch + the scheduler's own HBM contract)
//!   answers [`Admission::Admitted`], [`Admission::BatchFull`], or
//!   [`Admission::OverBudget`].
//! * [`BatchSession::step`] — run one scheduler step: prefill for anything
//!   admitted since the last step, then one decode iteration for the whole
//!   batch, returning a [`TokenEvent`] per in-flight request.
//! * [`BatchSession::finish`] — consume the session and produce the same
//!   [`ServeStats`] the run-to-completion path reports.
//!
//! [`BatchScheduler::serve`] is now a thin loop over this handle (the
//! golden-equivalence suite pins the refactor bit-exactly), and
//! `pgmoe-serve` drives the same handle from an HTTP event loop with live
//! wall-clock arrivals, streaming each [`TokenEvent`] back as an HTTP
//! chunk.
//!
//! # Real routing
//!
//! Offline simulation draws expert routing from a synthetic
//! [`RoutingTrace`]. When a *real* model runs next to the session (the
//! HTTP server runs the numeric `SwitchNet` forward pass), the caller can
//! supply the network's actual routing decisions through [`LiveRouting`]
//! and [`BatchSession::step_routed`], so fetch/cache bookkeeping follows
//! what the model really activated instead of the synthetic trace.
//!
//! [`BatchScheduler::serve`]: crate::BatchScheduler::serve

use crate::batch::BatchConfig;
use crate::core::{
    self, batched_prefill_costs, expected_distinct_experts, CoreEnv, CoreScratch, DecodeCosts,
};
use crate::engine::{attn_bytes_for, dense_ffn_bytes_for};
use crate::kv::{BlockTable, KvBlockPool, KvServeStats, PagedKvConfig};
use crate::plan::{self, PlanCacheStats, PlanSession};
use crate::scheduler::{ExpertScheduler, MemoryProfile, PolicySpec, RoutedSource};
use crate::serve::ServeStats;
use crate::{ExpertCache, PlacementPlan, Result, RuntimeError, SimOptions};
use pgmoe_device::{AllocId, Machine, SimDuration, SimTime, Tier};
use pgmoe_model::{ExpertPrecision, GateTopology, ModelConfig};
use pgmoe_workload::{ArrivedRequest, RoutingTrace, SharedPrefix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of offering one request to [`BatchSession::try_admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request joined the running batch and will receive its first
    /// token after the next [`BatchSession::step`]. `queueing` is the
    /// admission clock minus the request's arrival stamp.
    Admitted {
        /// Time the request waited between arrival and admission.
        queueing: SimDuration,
    },
    /// The batch already holds `max_batch` requests; offer again after a
    /// step retires someone.
    BatchFull,
    /// Admitting this request now would breach the HBM budget (static
    /// weights + in-flight KV/activations + the scheduler's worst-case
    /// migration transients). Offer again once the batch drains.
    OverBudget,
}

/// One token produced by a [`BatchSession::step`] for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    /// The id the caller passed to [`BatchSession::try_admit`].
    pub id: u64,
    /// Zero-based index of this token within the request's output.
    pub index: usize,
    /// `true` when this is the request's last token; its batch slot and
    /// activation memory have already been released.
    pub done: bool,
    /// Session clock when the token was emitted.
    pub at: SimTime,
}

/// What [`BatchSession::abort`] hands back for a request removed from the
/// batch before completing: enough for a control layer to account the
/// wasted work and redispatch the request elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortedRequest {
    /// The id the caller passed to [`BatchSession::try_admit`].
    pub id: u64,
    /// Tokens the request had generated when it was aborted — work that is
    /// thrown away (the replica that takes the request over regenerates the
    /// stream from its route seed).
    pub tokens_generated: usize,
}

/// Caller-supplied expert routing for [`BatchSession::step_routed`].
///
/// Implemented by serving layers that run a real model alongside the
/// session: returning `true` after filling `out` with the experts request
/// `id` activates at decoder MoE block `block` for its `generated`-th
/// output token replaces the synthetic trace for that request/block.
/// Returning `false` falls back to the request's [`RoutingTrace`].
pub trait LiveRouting {
    /// Fills `out` with activated expert indices (may be empty) and
    /// returns whether live routing is available for this slot.
    fn experts(&mut self, id: u64, generated: usize, block: usize, out: &mut Vec<usize>) -> bool;
}

/// A request currently being decoded.
struct InFlight {
    id: u64,
    /// Index into `records` (admission order).
    record: usize,
    arrival: SimTime,
    request: pgmoe_workload::DecodeRequest,
    /// Synthetic per-request routing decisions (the fallback when no
    /// [`LiveRouting`] is supplied).
    trace: RoutingTrace,
    generated: usize,
    first_token_at: Option<SimTime>,
    act_alloc: AllocId,
    act_bytes: u64,
    /// Prompt tokens prefilled so far. The unpaged path prefills whole
    /// prompts in the admission step, so this starts at `input_tokens`;
    /// the paged path advances it chunk by chunk across steps.
    prefilled: usize,
    /// Paged-KV block table (paged sessions only).
    table: Option<BlockTable>,
    /// Seed for synthetic KV content stamps outside the shared prefix.
    stamp_seed: u64,
    shared_prefix: Option<SharedPrefix>,
}

impl InFlight {
    fn ctx_len(&self) -> usize {
        self.request.input_tokens + self.generated
    }

    /// Whether the whole prompt is prefilled — only then does the request
    /// join decode iterations.
    fn ready(&self) -> bool {
        self.prefilled >= self.request.input_tokens
    }

    /// Content stamp of the token at position `pos`: shared-prefix tokens
    /// stamp off the tenant's prefix hash (equal across that tenant's
    /// requests, which is what makes their KV blocks deduplicate), every
    /// other position off the request's private seed.
    fn stamp_at(&self, pos: usize) -> u64 {
        match self.shared_prefix {
            Some(p) if pos < p.tokens.min(self.request.input_tokens) => kv_stamp(p.hash, pos),
            _ => kv_stamp(self.stamp_seed, pos),
        }
    }
}

/// Splitmix-style finalizer: deterministic, well-spread content stamps for
/// synthetic KV blocks.
fn kv_stamp(seed: u64, pos: usize) -> u64 {
    let mut z = seed ^ (pos as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Paged-KV machinery for one session: the block pool, its machine-side
/// byte mirror, and the resizable expert-cache region it arbitrates
/// against (see [`crate::kv`]).
struct PagedState {
    cfg: PagedKvConfig,
    pool: KvBlockPool,
    /// One HBM alloc mirroring `pool.used_bytes()`, re-reconciled whenever
    /// the pool grows or shrinks.
    kv_alloc: Option<AllocId>,
    kv_alloc_bytes: u64,
    /// The expert-cache region's own alloc, resizable under KV pressure.
    cache_alloc: Option<AllocId>,
    cache_experts_now: usize,
    plan_cache_experts: usize,
    expert_bytes: u64,
    shrink_events: u64,
}

/// Per-request completion record, in admission order.
struct Record {
    queueing: SimDuration,
    ttft: SimDuration,
    latency: SimDuration,
}

/// Adapter: the batch's per-block expert unions as a routing source.
struct UnionRouted<'a> {
    unions: &'a [Vec<usize>],
}

impl RoutedSource for UnionRouted<'_> {
    fn experts(&self, block: usize) -> &[usize] {
        &self.unions[block]
    }
}

/// An incrementally-driven continuous-batching decode session (see the
/// module docs for the protocol).
///
/// # Example
///
/// ```
/// use pgmoe_device::SimTime;
/// use pgmoe_model::ModelConfig;
/// use pgmoe_runtime::{Admission, BatchConfig, BatchSession, OffloadPolicy, SimOptions};
/// use pgmoe_workload::{ArrivedRequest, DecodeRequest};
///
/// let mut session = BatchSession::new(
///     ModelConfig::switch_base(8),
///     SimOptions::new(OffloadPolicy::Pregated),
///     BatchConfig::new(4),
/// )?;
/// let req = DecodeRequest { input_tokens: 16, output_tokens: 2, batch_size: 1 };
/// let admission = session.try_admit(0, ArrivedRequest::at_nanos(0, req))?;
/// assert!(matches!(admission, Admission::Admitted { .. }));
/// let first = session.step()?;
/// assert_eq!((first[0].id, first[0].index, first[0].done), (0, 0, false));
/// let second = session.step()?;
/// assert!(second[0].done);
/// let stats = session.finish();
/// assert_eq!(stats.total_tokens, 2);
/// # Ok::<(), pgmoe_runtime::RuntimeError>(())
/// ```
pub struct BatchSession {
    cfg: ModelConfig,
    opts: SimOptions,
    batch: BatchConfig,
    sched: Box<dyn ExpertScheduler>,
    topo: GateTopology,
    machine: Machine,
    base_plan: PlacementPlan,
    cache: Option<ExpertCache>,
    budget: u64,
    inflight: Vec<InFlight>,
    /// Indices (into `inflight`) admitted since the last step; they get a
    /// prefill pass at the start of the next step.
    admitted_now: Vec<usize>,
    records: Vec<Record>,
    scratch: CoreScratch,
    plans: PlanSession,
    unions: Vec<Vec<usize>>,
    route_scratch: Vec<usize>,
    demand_bytes: u64,
    iteration: usize,
    clock: SimTime,
    total_tokens: usize,
    first_arrival: Option<SimTime>,
    last_completion: SimTime,
    paged: Option<PagedState>,
    peak_batch: usize,
}

impl BatchSession {
    /// Opens a session: validates the options, reserves the static model
    /// footprint, and builds the expert scheduler.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::InvalidConfig`] for a zero `max_batch` or options
    ///   the policy surface rejects.
    /// * [`RuntimeError::OutOfMemory`] if the static footprint does not
    ///   fit the machine.
    pub fn new(cfg: ModelConfig, opts: SimOptions, batch: BatchConfig) -> Result<Self> {
        if batch.max_batch == 0 {
            return Err(RuntimeError::InvalidConfig {
                message: "max_batch must be at least 1".into(),
            });
        }
        if let Some(p) = batch.paged_kv {
            if p.block_tokens == 0 || p.prefill_chunk_tokens == 0 {
                return Err(RuntimeError::InvalidConfig {
                    message: "paged KV needs block_tokens and prefill_chunk_tokens of at least 1"
                        .into(),
                });
            }
        }
        opts.validate(&cfg)?;
        let sched = opts.policy.build(&opts.setup_for(&cfg));
        let topo = sched.decoder_topology(cfg.decoder_moe_layers())?;
        let mut machine = Machine::new(opts.machine.clone());
        // Sessions never render machine timelines, and span tracing forces
        // every iteration through the interpreted core (compiled-plan
        // replay does not re-emit trace spans — see [`crate::plan`]).
        machine.set_trace_enabled(false);
        let base_plan = PlacementPlan::new(&cfg, &opts, 0, 1);
        // Paged sessions place the expert-cache region as its own alloc so
        // KV arbitration can resize it; the unpaged path keeps the single
        // static alloc (same total bytes either way, so peak accounting is
        // untouched).
        let cache_region = base_plan.cache_experts() as u64 * base_plan.expert_bytes();
        let paged = match batch.paged_kv {
            Some(pcfg) => {
                machine
                    .pool_mut(Tier::Hbm)
                    .alloc(base_plan.static_non_activation_bytes() - cache_region)?;
                let cache_alloc = if cache_region > 0 {
                    Some(machine.pool_mut(Tier::Hbm).alloc(cache_region)?)
                } else {
                    None
                };
                let bytes_per_token =
                    crate::memory::kv_bytes(cfg.total_layers(), 1, cfg.d_model, 1);
                Some(PagedState {
                    cfg: pcfg,
                    pool: KvBlockPool::new(pcfg.block_tokens, bytes_per_token),
                    kv_alloc: None,
                    kv_alloc_bytes: 0,
                    cache_alloc,
                    cache_experts_now: base_plan.cache_experts(),
                    plan_cache_experts: base_plan.cache_experts(),
                    expert_bytes: base_plan.expert_bytes(),
                    shrink_events: 0,
                })
            }
            None => {
                machine.pool_mut(Tier::Hbm).alloc(base_plan.static_non_activation_bytes())?;
                None
            }
        };
        if base_plan.offload_bytes() > 0 {
            machine.pool_mut(opts.offload_tier).alloc(base_plan.offload_bytes())?;
        }
        let budget = batch
            .hbm_budget_bytes
            .unwrap_or(opts.machine.hbm_capacity)
            .min(opts.machine.hbm_capacity);
        let cache = opts.cache.map(|c| ExpertCache::new(base_plan.cache_experts(), c.replacement));
        let dec_blocks = cfg.decoder_moe_layers();
        let scratch = CoreScratch::new(dec_blocks, cfg.num_experts);
        let plans = PlanSession::new(
            opts.plan_cache,
            opts.expert_precision.unwrap_or(cfg.expert_precision) != ExpertPrecision::F32,
        );
        Ok(BatchSession {
            sched,
            topo,
            machine,
            base_plan,
            cache,
            budget,
            inflight: Vec::new(),
            admitted_now: Vec::new(),
            records: Vec::new(),
            scratch,
            plans,
            unions: vec![Vec::new(); dec_blocks],
            route_scratch: Vec::new(),
            demand_bytes: 0,
            iteration: 0,
            clock: SimTime::ZERO,
            total_tokens: 0,
            first_arrival: None,
            last_completion: SimTime::ZERO,
            paged,
            peak_batch: 0,
            cfg,
            opts,
            batch,
        })
    }

    /// The display name of the scheduler serving this session.
    pub fn policy_name(&self) -> String {
        self.sched.name()
    }

    /// Number of requests currently being decoded.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The session clock (starts at zero, advances by the measured span of
    /// every step and by [`BatchSession::advance_clock`]).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Advances the clock to `t` if it is ahead of the current clock —
    /// callers do this with the next arrival stamp when the system is
    /// idle, and live servers do it with the wall clock before offering
    /// fresh arrivals.
    pub fn advance_clock(&mut self, t: SimTime) {
        self.clock = self.clock.max(t);
    }

    /// Tokens emitted so far.
    pub fn total_tokens(&self) -> usize {
        self.total_tokens
    }

    /// Peak HBM across the session so far.
    pub fn peak_hbm_bytes(&self) -> u64 {
        self.machine.pool(Tier::Hbm).peak_bytes()
    }

    /// Expert bytes migrated from the offload tier so far.
    pub fn expert_fetch_bytes(&self) -> u64 {
        self.machine.offload_traffic_bytes()
    }

    /// Expert bytes fetched on a block's critical path so far (on-demand
    /// miss stalls).
    pub fn demand_fetch_bytes(&self) -> u64 {
        self.demand_bytes
    }

    /// Plan-cache counters so far: decode iterations replayed from a
    /// compiled plan (`hits`), iterations that compiled a fresh plan
    /// (`misses`), and explicit invalidations (scheduler swaps). See
    /// [`crate::plan`].
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Offers one request for admission at the current clock. `id` is an
    /// opaque caller handle echoed in [`TokenEvent::id`]; it also seeds the
    /// request's synthetic routing trace (unless the request carries an
    /// explicit `route_seed`), so equal ids replay equal traces.
    ///
    /// The request's arrival stamp must not be ahead of the session clock
    /// (advance the clock first); its queueing delay is the difference.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::InvalidConfig`] for a request with zero output
    ///   tokens, a batch size other than 1, or an arrival stamp ahead of
    ///   the clock.
    /// * [`RuntimeError::OutOfMemory`] if the request cannot fit the HBM
    ///   budget even with the batch otherwise empty — it will *never* be
    ///   admissible, so the caller should reject it rather than retry.
    pub fn try_admit(&mut self, id: u64, arr: ArrivedRequest) -> Result<Admission> {
        if arr.request.output_tokens == 0 || arr.request.batch_size != 1 {
            return Err(RuntimeError::InvalidConfig {
                message: "batched serving admits single-sequence requests with at least one \
                          output token"
                    .into(),
            });
        }
        let arrival = SimTime::from_nanos(arr.arrival_ns);
        if arrival > self.clock {
            return Err(RuntimeError::InvalidConfig {
                message: "request arrival is ahead of the session clock".into(),
            });
        }
        if self.inflight.len() >= self.batch.max_batch {
            return Ok(Admission::BatchFull);
        }
        let cfg = &self.cfg;
        let opts = &self.opts;
        let full_ctx = arr.request.input_tokens + arr.request.output_tokens;
        // Unpaged: reserve worst-case contiguous KV + working buffers for
        // the whole lifetime up front. Paged: reserve working buffers only,
        // and plan KV at block granularity — live blocks, the prompt's new
        // blocks (discounting blocks a sibling's shared prefix already
        // holds), and one growth block per in-flight sequence.
        let (act_bytes, kv_planned) = match &self.paged {
            Some(p) => {
                let working = crate::memory::working_bytes(cfg, full_ctx, 1);
                let block_bytes = p.pool.block_bytes();
                let prompt_blocks = arr.request.input_tokens.div_ceil(p.cfg.block_tokens) as u64;
                let shared = match (p.cfg.share_prefixes, arr.shared_prefix) {
                    (true, Some(sp)) => {
                        let n = sp.tokens.min(arr.request.input_tokens);
                        p.pool.probe_shared_blocks((0..n).map(|i| kv_stamp(sp.hash, i))) as u64
                    }
                    _ => 0,
                };
                let growth = (self.inflight.len() as u64 + 1) * block_bytes;
                (working, p.pool.used_bytes() + (prompt_blocks - shared) * block_bytes + growth)
            }
            None => (PlacementPlan::new(cfg, opts, full_ctx, 1).activation_bytes(), 0),
        };
        let in_flight_act: u64 = self.inflight.iter().map(|r| r.act_bytes).sum();
        let prefill_inputs = match &self.paged {
            Some(p) => {
                let pending: usize = self
                    .inflight
                    .iter()
                    .map(|r| r.request.input_tokens - r.prefilled)
                    .sum::<usize>()
                    + arr.request.input_tokens;
                pending.min(p.cfg.prefill_chunk_tokens)
            }
            None => {
                self.admitted_now
                    .iter()
                    .map(|&i| self.inflight[i].request.input_tokens)
                    .sum::<usize>()
                    + arr.request.input_tokens
            }
        };
        let transient = decode_transient_bytes(
            cfg,
            self.sched.as_ref(),
            &self.base_plan,
            self.inflight.len() + 1,
        )
        .max(prefill_transient_bytes_of(
            cfg,
            self.sched.as_ref(),
            &self.base_plan,
            prefill_inputs,
        ));
        let planned = self.base_plan.static_non_activation_bytes()
            + in_flight_act
            + act_bytes
            + kv_planned
            + transient;
        if planned > self.budget {
            if self.inflight.is_empty() && self.admitted_now.is_empty() {
                // Even alone this request cannot fit: fail loudly rather
                // than deadlock the queue.
                return Err(RuntimeError::OutOfMemory(pgmoe_device::DeviceError::OutOfMemory {
                    tier: Tier::Hbm,
                    requested: planned,
                    available: self
                        .budget
                        .saturating_sub(self.base_plan.static_non_activation_bytes()),
                    capacity: self.budget,
                }));
            }
            return Ok(Admission::OverBudget);
        }
        let act_alloc = self.machine.pool_mut(Tier::Hbm).alloc(act_bytes)?;
        // A stamped route seed wins (fleet dispatch: routing is a property
        // of the request, not its placement); otherwise the seed derives
        // from the caller-chosen id.
        let seed = arr.route_seed.unwrap_or(opts.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let trace = RoutingTrace::generate(
            arr.request.output_tokens,
            cfg.decoder_moe_layers(),
            cfg.num_experts,
            self.base_plan.active_per_block(),
            opts.routing,
            seed,
        );
        let queueing = self.clock - arrival;
        self.first_arrival = Some(match self.first_arrival {
            Some(t) => t.min(arrival),
            None => arrival,
        });
        let (prefilled, table) = match self.paged.as_mut() {
            Some(p) => {
                let sharable = if p.cfg.share_prefixes {
                    arr.shared_prefix.map(|sp| sp.tokens.min(arr.request.input_tokens)).unwrap_or(0)
                } else {
                    0
                };
                (0, Some(p.pool.new_table(sharable)))
            }
            // Unpaged prompts prefill whole in the admission step.
            None => (arr.request.input_tokens, None),
        };
        self.records.push(Record { queueing, ttft: SimDuration::ZERO, latency: SimDuration::ZERO });
        self.inflight.push(InFlight {
            id,
            record: self.records.len() - 1,
            arrival,
            request: arr.request,
            trace,
            generated: 0,
            first_token_at: None,
            act_alloc,
            act_bytes,
            prefilled,
            table,
            stamp_seed: seed ^ 0xD6E8_FEB8_6659_FD93,
            shared_prefix: arr.shared_prefix,
        });
        if self.paged.is_none() {
            self.admitted_now.push(self.inflight.len() - 1);
        }
        Ok(Admission::Admitted { queueing })
    }

    /// Removes an in-flight request from the batch before it completes —
    /// the client disconnected or a control layer is draining the replica.
    /// The request's HBM activation reservation is released immediately
    /// (its batch slot is admissible again at the next
    /// [`BatchSession::try_admit`]); its per-request row in
    /// [`BatchSession::finish`] keeps zero latency, exactly like a request
    /// still in flight when the session ends.
    ///
    /// Returns `None` if `id` is not in flight.
    pub fn abort(&mut self, id: u64) -> Option<AbortedRequest> {
        let i = self.inflight.iter().position(|r| r.id == id)?;
        let r = self.inflight.swap_remove(i);
        // `admitted_now` holds indices into `inflight`: drop the aborted
        // entry and re-point whichever entry the swap_remove relocated.
        let moved = self.inflight.len();
        self.admitted_now.retain(|&x| x != i);
        for x in &mut self.admitted_now {
            if *x == moved {
                *x = i;
            }
        }
        self.machine.pool_mut(Tier::Hbm).free(r.act_alloc).expect("activation double free");
        if let Some(p) = self.paged.as_mut() {
            if let Some(table) = r.table {
                p.pool.release(table);
            }
            // Releasing blocks only shrinks the pool, so the reconcile's
            // free-then-alloc cannot fail.
            self.sync_paged_kv().expect("kv reconcile after abort");
        }
        Some(AbortedRequest { id: r.id, tokens_generated: r.generated })
    }

    /// Aborts every in-flight request (replica death / shutdown drain), in
    /// admission order. See [`BatchSession::abort`].
    pub fn drain_inflight(&mut self) -> Vec<AbortedRequest> {
        let mut order: Vec<(usize, u64)> = self.inflight.iter().map(|r| (r.record, r.id)).collect();
        order.sort_unstable();
        order.into_iter().filter_map(|(_, id)| self.abort(id)).collect()
    }

    /// Swaps the expert scheduler for `policy` at an iteration boundary,
    /// keeping the machine state, expert cache contents, clock and every
    /// in-flight request — the online policy-switching seam a drift
    /// controller uses on a *live* replica.
    ///
    /// The swap is only legal between steps (which is the only place a
    /// caller driving the admit/step protocol can be), and the new policy
    /// must keep the static placement footprint byte-identical — the
    /// session cannot re-place weights that are already resident.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::InvalidConfig`] if the options reject the new
    ///   policy or its static placement differs from the current one.
    pub fn swap_scheduler(&mut self, policy: PolicySpec) -> Result<()> {
        let mut opts = self.opts.clone();
        opts.policy = policy;
        opts.validate(&self.cfg)?;
        let new_plan = PlacementPlan::new(&self.cfg, &opts, 0, 1);
        if new_plan.static_non_activation_bytes() != self.base_plan.static_non_activation_bytes()
            || new_plan.offload_bytes() != self.base_plan.offload_bytes()
        {
            return Err(RuntimeError::InvalidConfig {
                message: format!(
                    "scheduler swap must preserve the static placement footprint \
                     (current {} B resident, replacement wants {} B)",
                    self.base_plan.static_non_activation_bytes(),
                    new_plan.static_non_activation_bytes()
                ),
            });
        }
        let sched = opts.policy.build(&opts.setup_for(&self.cfg));
        let topo = sched.decoder_topology(self.cfg.decoder_moe_layers())?;
        self.sched = sched;
        self.topo = topo;
        self.base_plan = new_plan;
        self.opts = opts;
        // Compiled plans bake in the old scheduler's decisions; drop them
        // all rather than trust the key to separate two schedulers that
        // might share a fingerprint scheme.
        self.plans.invalidate();
        Ok(())
    }

    /// Runs one scheduler step with synthetic trace routing: prefill for
    /// requests admitted since the last step, then one decode iteration
    /// emitting one token per in-flight request.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures (e.g. HBM exhaustion mid-iteration).
    pub fn step(&mut self) -> Result<Vec<TokenEvent>> {
        self.step_impl(None)
    }

    /// Like [`BatchSession::step`], but asks `routing` for each request's
    /// activated experts first, falling back to the synthetic trace where
    /// it reports none (see [`LiveRouting`]).
    ///
    /// # Errors
    ///
    /// See [`BatchSession::step`].
    pub fn step_routed(&mut self, routing: &mut dyn LiveRouting) -> Result<Vec<TokenEvent>> {
        self.step_impl(Some(routing))
    }

    fn step_impl(&mut self, mut routing: Option<&mut dyn LiveRouting>) -> Result<Vec<TokenEvent>> {
        let mut events = Vec::with_capacity(self.inflight.len());
        if self.inflight.is_empty() {
            return Ok(events);
        }
        let span_start = self.machine.horizon();
        if self.paged.is_some() {
            self.chunked_prefill()?;
        } else if !self.admitted_now.is_empty() {
            self.prefill()?;
        }
        self.admitted_now.clear();
        // Only fully-prefilled requests decode (the unpaged path prefills
        // whole prompts at admission, so there the filter admits everyone).
        let ready = self.inflight.iter().filter(|r| r.ready()).count();
        self.peak_batch = self.peak_batch.max(ready);
        if ready > 0 {
            let num_experts = self.cfg.num_experts;
            for (b, union) in self.unions.iter_mut().enumerate() {
                union.clear();
                for r in self.inflight.iter().filter(|r| r.ready()) {
                    let live = match routing.as_deref_mut() {
                        Some(rt) => {
                            self.route_scratch.clear();
                            rt.experts(r.id, r.generated, b, &mut self.route_scratch)
                        }
                        None => false,
                    };
                    if live {
                        union.extend(
                            self.route_scratch.iter().copied().filter(|&e| e < num_experts),
                        );
                    } else {
                        union.extend_from_slice(r.trace.experts(r.generated, b));
                    }
                }
                union.sort_unstable();
                union.dedup();
            }
            let costs = DecodeCosts {
                attn_bytes: attn_bytes_for(
                    &self.cfg,
                    self.inflight.iter().filter(|r| r.ready()).map(|r| r.ctx_len()),
                ),
                ffn_bytes: dense_ffn_bytes_for(&self.cfg),
                decoder_layers: self.cfg.decoder_layers,
                moe_every: self.cfg.moe_every,
            };
            let enc_blocks = self.cfg.encoder_layers / self.cfg.moe_every;
            let mut env = CoreEnv {
                machine: &mut self.machine,
                plan: &self.base_plan,
                cache: &mut self.cache,
                offload_tier: self.opts.offload_tier,
                num_experts: self.cfg.num_experts,
                demand_bytes: &mut self.demand_bytes,
            };
            plan::decode_iteration_planned(
                &mut env,
                self.sched.as_mut(),
                &self.topo,
                &UnionRouted { unions: &self.unions },
                self.iteration,
                enc_blocks,
                &costs,
                &mut self.scratch,
                None,
                &mut self.plans,
                ready as u64,
            )?;
            self.iteration += 1;
        }
        let span = self.machine.horizon() - span_start;
        self.clock += span;

        // Retire tokens; complete and release finished requests. Requests
        // still mid-prefill did not decode and are skipped.
        let mut i = 0;
        while i < self.inflight.len() {
            if !self.inflight[i].ready() {
                i += 1;
                continue;
            }
            let r = &mut self.inflight[i];
            r.generated += 1;
            self.total_tokens += 1;
            if r.first_token_at.is_none() {
                r.first_token_at = Some(self.clock);
                self.records[r.record].ttft = self.clock - r.arrival;
            }
            let done = r.generated == r.request.output_tokens;
            events.push(TokenEvent { id: r.id, index: r.generated - 1, done, at: self.clock });
            if done {
                self.records[r.record].latency = self.clock - r.arrival;
                self.last_completion = self.last_completion.max(self.clock);
                self.machine.pool_mut(Tier::Hbm).free(r.act_alloc).expect("activation double free");
                let finished = self.inflight.swap_remove(i);
                if let (Some(p), Some(table)) = (self.paged.as_mut(), finished.table) {
                    p.pool.release(table);
                }
            } else {
                if let Some(p) = self.paged.as_mut() {
                    // The new decode token's KV joins the block table
                    // (opening a fresh block at each boundary).
                    let r = &mut self.inflight[i];
                    let stamp = r.stamp_at(r.ctx_len() - 1);
                    let table = r.table.as_mut().expect("paged request has a table");
                    let before = p.pool.stats();
                    p.pool.append(table, &[stamp]);
                    if p.cfg.timed_appends {
                        let after = p.pool.stats();
                        plan::execute_kv_append(
                            &mut self.machine,
                            after.blocks_allocated - before.blocks_allocated,
                            after.cow_copy_bytes - before.cow_copy_bytes,
                        );
                    }
                }
                i += 1;
            }
        }
        self.sync_paged_kv()?;
        // Timed paged-KV appends submitted during token retirement land
        // after the measured span: fold their cost into the clock here so
        // the next step starts from a consistent horizon. A no-op unless
        // `timed_appends` charged something above.
        let tail = self.machine.horizon() - span_start;
        self.clock += tail.saturating_sub(span);
        Ok(events)
    }

    /// Consumes the session and reports the same [`ServeStats`] the
    /// run-to-completion [`crate::BatchScheduler::serve`] produces, with
    /// per-request rows in admission order. In-flight requests that never
    /// completed report zero latency.
    pub fn finish(self) -> ServeStats {
        let span = match self.first_arrival {
            // max: a session drained before completing anything has a
            // last-completion watermark predating its first arrival.
            Some(first) => self.last_completion.max(first).duration_since(first),
            None => SimDuration::ZERO,
        };
        let tokens_per_sec = if span == SimDuration::ZERO {
            0.0
        } else {
            self.total_tokens as f64 / span.as_secs_f64()
        };
        let kv = self.paged.as_ref().map(|p| KvServeStats {
            block_tokens: p.pool.block_tokens(),
            peak_blocks: p.pool.peak_blocks(),
            peak_kv_bytes: p.pool.peak_bytes(),
            shared_hit_bytes: p.pool.stats().shared_hit_bytes,
            cow_copy_bytes: p.pool.stats().cow_copy_bytes,
            cache_shrink_events: p.shrink_events,
            final_cache_experts: p.cache_experts_now,
        });
        ServeStats {
            policy: self.sched.name(),
            request_latencies: self.records.iter().map(|r| r.latency).collect(),
            queueing_delays: self.records.iter().map(|r| r.queueing).collect(),
            ttfts: self.records.iter().map(|r| r.ttft).collect(),
            total_tokens: self.total_tokens,
            tokens_per_sec,
            peak_hbm_bytes: self.machine.pool(Tier::Hbm).peak_bytes(),
            expert_fetch_bytes: self.machine.offload_traffic_bytes(),
            demand_fetch_bytes: self.demand_bytes,
            gpu_busy: self.machine.gpu_busy(),
            peak_batch: self.peak_batch,
            plan_cache_hits: self.plans.stats().hits,
            plan_cache_misses: self.plans.stats().misses,
            kv,
        }
    }

    /// Prefill (encoder pass) for newly admitted requests, batched: weight
    /// reads amortize across the admitted set, expert fetches move the
    /// expected distinct set their prompts activate — structured by the
    /// same scheduler hooks as everything else.
    fn prefill(&mut self) -> Result<()> {
        let total_inputs: usize =
            self.admitted_now.iter().map(|&i| self.inflight[i].request.input_tokens).sum();
        let first_id = self.admitted_now.first().map(|&i| self.inflight[i].id).unwrap_or(0);
        self.prefill_pass_for(total_inputs, first_id)
    }

    /// Chunked prefill at the decode-iteration boundary (paged sessions):
    /// spends at most `prefill_chunk_tokens` prompt tokens on the oldest
    /// pending prompts (admission order), appending their KV blocks as it
    /// goes. With an unbounded chunk this submits the same encoder pass as
    /// the unpaged all-at-once prefill ([`batched_prefill_costs`] is
    /// shared), so long prompts only change *when* prefill work runs, not
    /// what it costs.
    fn chunked_prefill(&mut self) -> Result<()> {
        let p = self.paged.as_mut().expect("chunked prefill requires paged state");
        let mut budget = p.cfg.prefill_chunk_tokens;
        let mut order: Vec<usize> =
            (0..self.inflight.len()).filter(|&i| !self.inflight[i].ready()).collect();
        order.sort_unstable_by_key(|&i| self.inflight[i].record);
        let mut total = 0usize;
        let mut first_id = None;
        let mut stamps: Vec<u64> = Vec::new();
        for &i in &order {
            if budget == 0 {
                break;
            }
            let r = &mut self.inflight[i];
            let todo = (r.request.input_tokens - r.prefilled).min(budget);
            if todo == 0 {
                continue;
            }
            if first_id.is_none() {
                first_id = Some(r.id);
            }
            stamps.clear();
            stamps.extend((r.prefilled..r.prefilled + todo).map(|pos| r.stamp_at(pos)));
            let table = r.table.as_mut().expect("paged request has a table");
            let before = p.pool.stats();
            p.pool.append(table, &stamps);
            if p.cfg.timed_appends {
                let after = p.pool.stats();
                plan::execute_kv_append(
                    &mut self.machine,
                    after.blocks_allocated - before.blocks_allocated,
                    after.cow_copy_bytes - before.cow_copy_bytes,
                );
            }
            r.prefilled += todo;
            total += todo;
            budget -= todo;
        }
        if total == 0 {
            return Ok(());
        }
        self.sync_paged_kv()?;
        self.prefill_pass_for(total, first_id.unwrap_or(0))
    }

    /// The shared encoder pass both prefill flavours submit: `total_inputs`
    /// prompt tokens, expert samples seeded off the first prefilled
    /// request's id.
    fn prefill_pass_for(&mut self, total_inputs: usize, first_id: u64) -> Result<()> {
        let cfg = &self.cfg;
        // Sample which experts the prompts activate (per block, like the
        // batch-1 encoder pass) — a fixed 0..distinct set would turn every
        // later prefill into a guaranteed cache hit and undercount traffic.
        let mut rng =
            StdRng::seed_from_u64(self.opts.seed ^ first_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let costs = batched_prefill_costs(
            cfg,
            &self.base_plan,
            total_inputs,
            attn_bytes_for(cfg, self.inflight.iter().map(InFlight::ctx_len)),
        );
        let enc_blocks = cfg.encoder_layers / cfg.moe_every;
        let mut env = CoreEnv {
            machine: &mut self.machine,
            plan: &self.base_plan,
            cache: &mut self.cache,
            offload_tier: self.opts.offload_tier,
            num_experts: cfg.num_experts,
            demand_bytes: &mut self.demand_bytes,
        };
        core::prefill_pass(
            &mut env,
            self.sched.as_mut(),
            &self.topo,
            enc_blocks,
            &costs,
            &mut rng,
            true,
        )
    }

    /// Reconciles the machine's HBM bookkeeping with the block pool and
    /// arbitrates the expert-cache region against KV pressure: when live
    /// KV blocks plus working buffers and the scheduler's own claim
    /// ([`crate::HbmPlan::total_bytes`]) leave less headroom than the
    /// cache's plan capacity, the cache shrinks (evicting through its
    /// replacement policy); when headroom returns it regrows, up to the
    /// plan capacity.
    fn sync_paged_kv(&mut self) -> Result<()> {
        let Some(p) = self.paged.as_mut() else {
            return Ok(());
        };
        let want = p.pool.used_bytes();
        if want != p.kv_alloc_bytes {
            if let Some(id) = p.kv_alloc.take() {
                self.machine.pool_mut(Tier::Hbm).free(id).expect("kv alloc double free");
            }
            if want > 0 {
                p.kv_alloc = Some(self.machine.pool_mut(Tier::Hbm).alloc(want)?);
            }
            p.kv_alloc_bytes = want;
        }
        if p.plan_cache_experts == 0 {
            return Ok(());
        }
        let static_wo_cache = self.base_plan.static_non_activation_bytes()
            - p.plan_cache_experts as u64 * p.expert_bytes;
        let working: u64 = self.inflight.iter().map(|r| r.act_bytes).sum();
        let transient = decode_transient_bytes(
            &self.cfg,
            self.sched.as_ref(),
            &self.base_plan,
            self.inflight.len().max(1),
        );
        let committed = static_wo_cache + working + want + transient;
        let headroom = self.budget.saturating_sub(committed);
        let target = p.plan_cache_experts.min((headroom / p.expert_bytes.max(1)) as usize);
        if target != p.cache_experts_now {
            if target < p.cache_experts_now {
                p.shrink_events += 1;
            }
            if let Some(id) = p.cache_alloc.take() {
                self.machine.pool_mut(Tier::Hbm).free(id).expect("cache alloc double free");
            }
            if target > 0 {
                p.cache_alloc =
                    Some(self.machine.pool_mut(Tier::Hbm).alloc(target as u64 * p.expert_bytes)?);
            }
            if let Some(c) = self.cache.as_mut() {
                c.set_capacity(target);
            }
            p.cache_experts_now = target;
        }
        Ok(())
    }
}

/// The scheduler-facing memory profile for `active` concurrently-activated
/// experts per block under `cfg`.
fn profile(cfg: &ModelConfig, plan: &PlacementPlan, active: usize) -> MemoryProfile {
    MemoryProfile {
        expert_bytes: plan.expert_bytes(),
        num_experts: cfg.num_experts,
        active_per_block: active,
        moe_layers: cfg.moe_layers(),
    }
}

/// Worst-case migration-transient bytes while prefilling prompts with
/// `total_inputs` tokens, per the scheduler's own memory contract.
pub(crate) fn prefill_transient_bytes_of(
    cfg: &ModelConfig,
    sched: &dyn ExpertScheduler,
    plan: &PlacementPlan,
    total_inputs: usize,
) -> u64 {
    let distinct =
        expected_distinct_experts(total_inputs * plan.active_per_block(), cfg.num_experts);
    sched.hbm_plan(&profile(cfg, plan, distinct)).transient_bytes
}

/// Worst-case migration-transient bytes for one decode iteration at batch
/// size `batch` — the headroom admission control keeps free.
pub(crate) fn decode_transient_bytes(
    cfg: &ModelConfig,
    sched: &dyn ExpertScheduler,
    plan: &PlacementPlan,
    batch: usize,
) -> u64 {
    let union = (batch * plan.active_per_block()).min(cfg.num_experts);
    sched.admission_transient_bytes(&profile(cfg, plan, union))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OffloadPolicy;
    use pgmoe_workload::DecodeRequest;

    fn req(input: usize, output: usize) -> DecodeRequest {
        DecodeRequest { input_tokens: input, output_tokens: output, batch_size: 1 }
    }

    fn session(max_batch: usize) -> BatchSession {
        BatchSession::new(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(max_batch),
        )
        .unwrap()
    }

    #[test]
    fn emits_one_event_per_inflight_request_per_step() {
        let mut s = session(4);
        for id in 0..3u64 {
            let adm = s.try_admit(id, ArrivedRequest::at_nanos(0, req(8, 2))).unwrap();
            assert!(matches!(adm, Admission::Admitted { .. }), "{adm:?}");
        }
        let first = s.step().unwrap();
        assert_eq!(first.len(), 3);
        assert!(first.iter().all(|e| e.index == 0 && !e.done));
        let second = s.step().unwrap();
        assert_eq!(second.len(), 3);
        assert!(second.iter().all(|e| e.index == 1 && e.done));
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.total_tokens(), 6);
    }

    #[test]
    fn batch_full_and_empty_step() {
        let mut s = session(1);
        assert!(s.step().unwrap().is_empty(), "empty session steps to no events");
        let a = s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 4))).unwrap();
        assert!(matches!(a, Admission::Admitted { .. }));
        let b = s.try_admit(1, ArrivedRequest::at_nanos(0, req(8, 4))).unwrap();
        assert_eq!(b, Admission::BatchFull);
    }

    #[test]
    fn future_arrival_is_rejected_until_clock_advances() {
        let mut s = session(2);
        let fut = ArrivedRequest::at_nanos(5_000, req(8, 1));
        assert!(matches!(s.try_admit(0, fut), Err(RuntimeError::InvalidConfig { .. })));
        s.advance_clock(SimTime::from_nanos(5_000));
        assert!(matches!(s.try_admit(0, fut).unwrap(), Admission::Admitted { .. }));
    }

    #[test]
    fn queueing_delay_reflects_clock_gap() {
        let mut s = session(2);
        s.advance_clock(SimTime::from_nanos(10_000));
        let adm = s.try_admit(0, ArrivedRequest::at_nanos(4_000, req(8, 1))).unwrap();
        match adm {
            Admission::Admitted { queueing } => {
                assert_eq!(queueing, SimDuration::from_nanos(6_000));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_output_request_is_invalid() {
        let mut s = session(2);
        let bad = s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 0)));
        assert!(matches!(bad, Err(RuntimeError::InvalidConfig { .. })));
    }

    #[test]
    fn never_fitting_request_errors_instead_of_deferring() {
        let cfg = ModelConfig::switch_base(8);
        let opts = SimOptions::new(OffloadPolicy::Pregated);
        let base = PlacementPlan::new(&cfg, &opts, 0, 1);
        // Budget below static + any request: the lone request can never fit.
        let budget = base.static_non_activation_bytes() + 1;
        let mut s =
            BatchSession::new(cfg, opts, BatchConfig::new(2).with_hbm_budget(budget)).unwrap();
        let res = s.try_admit(0, ArrivedRequest::at_nanos(0, req(64, 8)));
        assert!(matches!(res, Err(RuntimeError::OutOfMemory(_))));
    }

    #[test]
    fn live_routing_overrides_trace_and_changes_traffic() {
        // A LiveRouting source that activates a single fixed expert must
        // fetch no more bytes than the synthetic trace's spread (dedup to
        // one expert per block vs up to batch-many distinct experts).
        struct Fixed;
        impl LiveRouting for Fixed {
            fn experts(
                &mut self,
                _id: u64,
                _generated: usize,
                _block: usize,
                out: &mut Vec<usize>,
            ) -> bool {
                out.push(0);
                true
            }
        }
        let run = |live: bool| {
            let mut s = BatchSession::new(
                ModelConfig::switch_base(64),
                SimOptions::new(OffloadPolicy::Pregated),
                BatchConfig::new(8),
            )
            .unwrap();
            for id in 0..8u64 {
                s.try_admit(id, ArrivedRequest::at_nanos(0, req(16, 4))).unwrap();
            }
            while s.in_flight() > 0 {
                if live {
                    s.step_routed(&mut Fixed).unwrap();
                } else {
                    s.step().unwrap();
                }
            }
            s.finish()
        };
        let traced = run(false);
        let fixed = run(true);
        assert_eq!(fixed.total_tokens, traced.total_tokens);
        assert!(
            fixed.expert_fetch_bytes < traced.expert_fetch_bytes,
            "single-expert live routing ({}) must migrate less than the synthetic trace ({})",
            fixed.expert_fetch_bytes,
            traced.expert_fetch_bytes
        );
    }

    #[test]
    fn abort_releases_hbm_reservation_and_readmits_a_queued_request() {
        // A batch-1 session holding one mid-decode request rejects the next
        // offer; aborting the in-flight request must free both the slot and
        // its activation bytes so the queued request is admissible at once.
        let mut s = session(1);
        let adm = s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 16))).unwrap();
        assert!(matches!(adm, Admission::Admitted { .. }));
        s.step().unwrap();
        s.step().unwrap();
        let blocked = s.try_admit(1, ArrivedRequest::at_nanos(0, req(8, 4))).unwrap();
        assert_eq!(blocked, Admission::BatchFull);
        let hbm_held = s.machine.pool(Tier::Hbm).used_bytes();

        let aborted = s.abort(0).expect("request 0 is in flight");
        assert_eq!(aborted, AbortedRequest { id: 0, tokens_generated: 2 });
        assert_eq!(s.in_flight(), 0);
        assert!(
            s.machine.pool(Tier::Hbm).used_bytes() < hbm_held,
            "abort must release the activation reservation"
        );
        assert_eq!(
            s.machine.pool(Tier::Hbm).used_bytes(),
            s.base_plan.static_non_activation_bytes(),
            "only the static footprint stays resident after the drain"
        );
        assert!(s.abort(0).is_none(), "double abort is a no-op");

        // The queued request now admits and runs to completion.
        let readmitted = s.try_admit(1, ArrivedRequest::at_nanos(0, req(8, 4))).unwrap();
        assert!(matches!(readmitted, Admission::Admitted { .. }));
        let mut done = 0;
        while s.in_flight() > 0 {
            done += s.step().unwrap().iter().filter(|e| e.done).count();
        }
        assert_eq!(done, 1);
        let stats = s.finish();
        // Two admission records: the aborted one reports zero latency, the
        // completed one a real one.
        assert_eq!(stats.request_latencies.len(), 2);
        assert_eq!(stats.request_latencies[0], SimDuration::ZERO);
        assert!(stats.request_latencies[1] > SimDuration::ZERO);
    }

    #[test]
    fn drain_aborts_every_inflight_request_in_admission_order() {
        let mut s = session(4);
        for id in 0..3u64 {
            s.try_admit(id, ArrivedRequest::at_nanos(0, req(8, 8))).unwrap();
        }
        s.step().unwrap();
        let drained = s.drain_inflight();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained.iter().map(|a| a.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(drained.iter().all(|a| a.tokens_generated == 1));
        assert_eq!(s.in_flight(), 0);
        assert_eq!(
            s.machine.pool(Tier::Hbm).used_bytes(),
            s.base_plan.static_non_activation_bytes()
        );
        assert!(s.step().unwrap().is_empty(), "a drained session steps to nothing");
    }

    #[test]
    fn abort_before_first_step_cancels_the_pending_prefill() {
        // Admit two, abort one before stepping: the survivor's prefill must
        // still run exactly once and the session must stay consistent.
        let mut s = session(4);
        s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 2))).unwrap();
        s.try_admit(1, ArrivedRequest::at_nanos(0, req(8, 2))).unwrap();
        assert!(s.abort(0).is_some());
        let events = s.step().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, 1);
        while s.in_flight() > 0 {
            s.step().unwrap();
        }
        assert_eq!(s.total_tokens(), 2);
    }

    #[test]
    fn scheduler_swap_at_iteration_boundary_keeps_inflight_requests() {
        use crate::scheduler::PolicySpec;
        let mut s = session(4);
        s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 6))).unwrap();
        s.step().unwrap();
        assert_eq!(s.policy_name(), "Pre-gated MoE");
        s.swap_scheduler(PolicySpec::from(OffloadPolicy::OnDemand)).unwrap();
        assert_eq!(s.policy_name(), "MoE-OnDemand");
        let mut tokens = 1;
        while s.in_flight() > 0 {
            tokens += s.step().unwrap().len();
        }
        assert_eq!(tokens, 6, "the in-flight request finishes under the new scheduler");
        let stats = s.finish();
        assert_eq!(stats.policy, "MoE-OnDemand");
        assert_eq!(stats.request_latencies.len(), 1);
        assert!(stats.request_latencies[0] > SimDuration::ZERO);
    }

    #[test]
    fn scheduler_swap_rejects_a_different_static_footprint() {
        // GpuOnly places every expert in HBM — a radically different static
        // footprint the live session cannot adopt.
        let mut s = session(2);
        s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 4))).unwrap();
        s.step().unwrap();
        let err = s.swap_scheduler(PolicySpec::from(OffloadPolicy::GpuOnly));
        assert!(matches!(err, Err(RuntimeError::InvalidConfig { .. })));
        assert_eq!(s.policy_name(), "Pre-gated MoE", "a rejected swap leaves the scheduler alone");
    }

    #[test]
    fn scheduler_swap_invalidates_compiled_plans() {
        use crate::scheduler::PolicySpec;
        let mut s = session(2);
        s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 6))).unwrap();
        while s.in_flight() > 0 {
            s.step().unwrap();
        }
        let warm = s.plan_cache_stats();
        assert!(warm.hits > 0, "steady-state decode must replay compiled plans: {warm:?}");
        assert_eq!(warm.invalidations, 0);

        s.swap_scheduler(PolicySpec::from(OffloadPolicy::OnDemand)).unwrap();
        assert_eq!(
            s.plan_cache_stats().invalidations,
            1,
            "a swap must flush plans that baked in the old scheduler's decisions"
        );

        s.try_admit(1, ArrivedRequest::at_nanos(0, req(8, 6))).unwrap();
        while s.in_flight() > 0 {
            s.step().unwrap();
        }
        let resumed = s.plan_cache_stats();
        assert!(resumed.misses > warm.misses, "the first post-swap iteration must recompile");
        assert!(resumed.hits > warm.hits, "later iterations replay the fresh plan");
    }

    #[test]
    fn routing_drift_compiles_one_plan_per_distinct_shape() {
        // A live router whose fan-out width drifts across iterations: every
        // distinct per-block set-size vector is a different plan key, so
        // the session must recompile instead of replaying a plan whose
        // fetch set no longer matches the routing.
        struct Fan(usize);
        impl LiveRouting for Fan {
            fn experts(
                &mut self,
                _id: u64,
                _generated: usize,
                block: usize,
                out: &mut Vec<usize>,
            ) -> bool {
                for e in 0..self.0 {
                    out.push((block + e) % 8);
                }
                true
            }
        }
        let run = |width: &dyn Fn(usize) -> usize| {
            let mut s = session(1);
            s.try_admit(0, ArrivedRequest::at_nanos(0, req(8, 9))).unwrap();
            let mut i = 0;
            while s.in_flight() > 0 {
                s.step_routed(&mut Fan(width(i))).unwrap();
                i += 1;
            }
            s.plan_cache_stats()
        };
        let steady = run(&|_| 1);
        assert!(steady.hits > 0, "a constant width replays: {steady:?}");
        let drifting = run(&|i| 1 + i % 3);
        assert!(drifting.misses >= 3, "three distinct widths need three compiles: {drifting:?}");
        assert!(drifting.misses > steady.misses, "{drifting:?} vs {steady:?}");
    }

    #[test]
    fn kv_pressure_cache_shrink_recompiles_plans_bit_exactly() {
        use crate::{serve_batched, CacheConfig, Replacement};
        // A budget that fits the full expert-cache region while the KV pool
        // is empty but squeezes it once decode KV accumulates: the
        // paged-KV reconcile shrinks the cache mid-run via set_capacity,
        // which changes the plan key's cache-state fingerprint. A stale
        // pre-shrink plan must never replay — asserted by bitwise equality
        // against the interpreted (plan-cache-off) run.
        let cfg = ModelConfig::switch_base(8);
        let eb = PlacementPlan::new(&cfg, &SimOptions::new(OffloadPolicy::Pregated), 0, 1)
            .expert_bytes();
        let opts = |plan: bool| {
            let o = SimOptions::new(OffloadPolicy::Pregated)
                .with_cache(CacheConfig::bytes(8 * eb, Replacement::Lru));
            if plan {
                o
            } else {
                o.without_plan_cache()
            }
        };
        let base = PlacementPlan::new(&cfg, &opts(true), 0, 1);
        let long = PlacementPlan::new(&cfg, &opts(true), 536, 1).activation_bytes();
        // The paged-KV gate's tight-budget recipe: static weights + two
        // long requests' activations + the expert working set. Paging
        // admits a deep batch whose accumulated KV blocks push the
        // analytic headroom below the cache's plan capacity mid-run.
        let budget = base.static_non_activation_bytes() + 2 * long + 2 * 8 * eb;
        let batch = BatchConfig::new(16)
            .with_hbm_budget(budget)
            .with_paged_kv(PagedKvConfig::new(16).with_prefill_chunk(256));
        let arrivals = pgmoe_workload::mixed_context_trace(24, 512, 384, 2, 50_000);
        let run =
            |plan: bool| serve_batched(cfg.clone(), opts(plan), batch, arrivals.clone()).unwrap();
        let on = run(true);
        let off = run(false);
        let kv = on.kv.as_ref().expect("paged run reports kv stats");
        assert!(kv.cache_shrink_events > 0, "the budget must squeeze the cache mid-run: {kv:?}");
        assert_eq!(off.plan_cache_misses, 0, "the interpreted run never compiles");
        assert_eq!(
            on.request_latencies, off.request_latencies,
            "replay across a capacity shrink must stay bit-exact"
        );
        assert_eq!(on.ttfts, off.ttfts);
        assert_eq!(on.expert_fetch_bytes, off.expert_fetch_bytes);
        assert_eq!(on.demand_fetch_bytes, off.demand_fetch_bytes);
    }

    #[test]
    fn finish_matches_run_to_completion_serve() {
        use pgmoe_workload::{ArrivalProcess, ArrivalStream};
        let cfg = ModelConfig::switch_base(8);
        let opts = SimOptions::new(OffloadPolicy::Pregated);
        let arrivals: Vec<ArrivedRequest> =
            ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: 50.0 }, req(16, 4), 1, 3)
                .take(12)
                .collect();
        let via_serve =
            crate::serve_batched(cfg.clone(), opts.clone(), BatchConfig::new(4), arrivals.clone())
                .unwrap();
        // Drive a session by hand with the same FIFO discipline.
        let mut s = BatchSession::new(cfg, opts, BatchConfig::new(4)).unwrap();
        let mut pending: std::collections::VecDeque<(u64, ArrivedRequest)> =
            arrivals.iter().copied().enumerate().map(|(i, a)| (i as u64, a)).collect();
        while !pending.is_empty() || s.in_flight() > 0 {
            if s.in_flight() == 0 {
                if let Some(&(_, next)) = pending.front() {
                    s.advance_clock(SimTime::from_nanos(next.arrival_ns));
                }
            }
            while let Some(&(id, arr)) = pending.front() {
                if SimTime::from_nanos(arr.arrival_ns) > s.clock() {
                    break;
                }
                match s.try_admit(id, arr).unwrap() {
                    Admission::Admitted { .. } => {
                        pending.pop_front();
                    }
                    _ => break,
                }
            }
            s.step().unwrap();
        }
        let via_session = s.finish();
        assert_eq!(via_session.request_latencies, via_serve.request_latencies);
        assert_eq!(via_session.queueing_delays, via_serve.queueing_delays);
        assert_eq!(via_session.ttfts, via_serve.ttfts);
        assert_eq!(via_session.total_tokens, via_serve.total_tokens);
        assert_eq!(via_session.peak_hbm_bytes, via_serve.peak_hbm_bytes);
        assert_eq!(via_session.expert_fetch_bytes, via_serve.expert_fetch_bytes);
        assert_eq!(via_session.tokens_per_sec, via_serve.tokens_per_sec);
    }
}
