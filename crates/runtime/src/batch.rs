//! Continuous-batching serving scheduler.
//!
//! [`crate::serve_stream`] reproduces the paper's operating point — batch-1,
//! closed-loop serving. Production serving is open-loop: requests arrive on
//! their own schedule and a scheduler decides how to share the GPU. This
//! module implements **iteration-level continuous batching** (the
//! Orca/vLLM discipline) on top of the same device simulator, placement
//! plan, expert cache — and, since the policy redesign, the exact same
//! policy-driven decode core — as [`crate::InferenceSim`]:
//!
//! * Requests arrive from a [`pgmoe_workload::ArrivalStream`] (Poisson or
//!   bursty) and wait in an admission queue.
//! * At every decode-iteration boundary the scheduler admits waiting
//!   requests while the batch is below `max_batch` **and** the admission
//!   would keep peak HBM — static weights + per-request KV/activations +
//!   the policy's worst-case migration transients (asked of the
//!   [`ExpertScheduler`] itself) — inside the budget.
//! * One iteration decodes one token for *every* in-flight request. Weight
//!   traffic (attention projections, dense FFNs) is read once per iteration
//!   regardless of batch size, which is exactly why continuous batching
//!   lifts tokens/sec; expert fetches migrate the *union* of the batch's
//!   activated experts, overlapped per the configured scheduler.
//! * Completed requests leave immediately; their slot is reusable at the
//!   next boundary ("continuous" — no waiting for the whole batch).
//!
//! Per-request QoS (queueing delay, TTFT, end-to-end latency) lands in the
//! same [`ServeStats`] the batch-1 path produces, so the two disciplines are
//! directly comparable (`examples/serve_batched.rs`).
//!
//! [`ExpertScheduler`]: crate::scheduler::ExpertScheduler

use crate::serve::ServeStats;
use crate::session::{Admission, BatchSession};
use crate::{Result, RuntimeError, SimOptions};
use pgmoe_device::SimTime;
use pgmoe_model::ModelConfig;
use pgmoe_workload::ArrivedRequest;
use std::collections::VecDeque;

/// Scheduler knobs for continuous batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum number of requests decoded together per iteration.
    pub max_batch: usize,
    /// HBM budget for admission control, bytes. `None` uses the machine's
    /// full HBM capacity. Values above the capacity are clamped to it.
    pub hbm_budget_bytes: Option<u64>,
    /// Block-paged KV cache with chunked prefill and shared-prefix reuse.
    /// `None` keeps the classic unpaged path (worst-case contiguous KV
    /// reserved per request at admission).
    pub paged_kv: Option<crate::kv::PagedKvConfig>,
}

impl BatchConfig {
    /// A config admitting up to `max_batch` concurrent requests under the
    /// machine's full HBM capacity.
    pub fn new(max_batch: usize) -> Self {
        BatchConfig { max_batch, hbm_budget_bytes: None, paged_kv: None }
    }

    /// Builder: cap the HBM bytes admission control may plan against.
    pub fn with_hbm_budget(mut self, bytes: u64) -> Self {
        self.hbm_budget_bytes = Some(bytes);
        self
    }

    /// Builder: switch the session to the block-paged KV path (see
    /// [`crate::PagedKvConfig`]).
    pub fn with_paged_kv(mut self, paged: crate::kv::PagedKvConfig) -> Self {
        self.paged_kv = Some(paged);
        self
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::new(8)
    }
}

/// Iteration-level continuous-batching scheduler (see the module docs
/// above).
///
/// # Example
///
/// ```
/// use pgmoe_model::ModelConfig;
/// use pgmoe_runtime::{BatchConfig, BatchScheduler, OffloadPolicy, SimOptions};
/// use pgmoe_workload::{ArrivalProcess, ArrivalStream, DecodeRequest};
///
/// let arrivals = ArrivalStream::new(
///     ArrivalProcess::Poisson { rate_per_sec: 20.0 },
///     DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 },
///     1,
///     7,
/// );
/// let scheduler = BatchScheduler::new(
///     ModelConfig::switch_base(8),
///     SimOptions::new(OffloadPolicy::Pregated),
///     BatchConfig::new(4),
/// );
/// let stats = scheduler.serve(arrivals.take(6))?;
/// assert_eq!(stats.request_latencies.len(), 6);
/// assert!(stats.mean_ttft() <= stats.mean_latency());
/// # Ok::<(), pgmoe_runtime::RuntimeError>(())
/// ```
pub struct BatchScheduler {
    cfg: ModelConfig,
    opts: SimOptions,
    batch: BatchConfig,
}

impl BatchScheduler {
    /// Creates a scheduler serving `cfg` under `opts` with the given
    /// batching knobs.
    pub fn new(cfg: ModelConfig, opts: SimOptions, batch: BatchConfig) -> Self {
        BatchScheduler { cfg, opts, batch }
    }

    /// Serves an open-loop arrival trace to completion.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::OutOfMemory`] if the static footprint (or a single
    ///   admitted request) cannot fit the HBM budget.
    /// * [`RuntimeError::InvalidConfig`] for a zero `max_batch`, a request
    ///   with zero output tokens or batch size ≠ 1, unsorted arrivals, or
    ///   options the policy surface rejects.
    pub fn serve(&self, arrivals: impl IntoIterator<Item = ArrivedRequest>) -> Result<ServeStats> {
        let arrivals: Vec<ArrivedRequest> = arrivals.into_iter().collect();
        self.validate(&arrivals)?;
        if arrivals.is_empty() {
            // Empty streams report the built scheduler's name without
            // touching the machine (the static footprint is never placed).
            let sched = self.opts.policy.build(&self.opts.setup_for(&self.cfg));
            return Ok(ServeStats {
                policy: sched.name(),
                request_latencies: Vec::new(),
                queueing_delays: Vec::new(),
                ttfts: Vec::new(),
                total_tokens: 0,
                tokens_per_sec: 0.0,
                peak_hbm_bytes: 0,
                expert_fetch_bytes: 0,
                demand_fetch_bytes: 0,
                gpu_busy: pgmoe_device::SimDuration::ZERO,
                peak_batch: 0,
                plan_cache_hits: 0,
                plan_cache_misses: 0,
                kv: None,
            });
        }

        let mut session = BatchSession::new(self.cfg.clone(), self.opts.clone(), self.batch)?;
        let mut pending: VecDeque<(usize, ArrivedRequest)> =
            arrivals.iter().copied().enumerate().collect();

        while !pending.is_empty() || session.in_flight() > 0 {
            // Idle system: jump the clock to the next arrival.
            if session.in_flight() == 0 {
                if let Some(&(_, next)) = pending.front() {
                    session.advance_clock(SimTime::from_nanos(next.arrival_ns));
                }
            }

            // FIFO admission at the iteration boundary: offer the queue
            // head while it has arrived and the session accepts it.
            while let Some(&(idx, arr)) = pending.front() {
                if SimTime::from_nanos(arr.arrival_ns) > session.clock() {
                    break;
                }
                match session.try_admit(idx as u64, arr)? {
                    Admission::Admitted { .. } => {
                        pending.pop_front();
                    }
                    Admission::BatchFull | Admission::OverBudget => break,
                }
            }

            // One scheduler step: prefill for the newly admitted requests,
            // then one decode iteration for the whole batch.
            session.step()?;
        }
        Ok(session.finish())
    }

    fn validate(&self, arrivals: &[ArrivedRequest]) -> Result<()> {
        if self.batch.max_batch == 0 {
            return Err(RuntimeError::InvalidConfig {
                message: "max_batch must be at least 1".into(),
            });
        }
        self.opts.validate(&self.cfg)?;
        for (i, a) in arrivals.iter().enumerate() {
            if a.request.output_tokens == 0 || a.request.batch_size != 1 {
                return Err(RuntimeError::InvalidConfig {
                    message: format!(
                        "request {i}: continuous batching serves single-sequence requests \
                         with at least one output token"
                    ),
                });
            }
            if i > 0 && arrivals[i - 1].arrival_ns > a.arrival_ns {
                return Err(RuntimeError::InvalidConfig {
                    message: format!("arrivals must be sorted by time (violated at index {i})"),
                });
            }
        }
        Ok(())
    }

    /// Test/diagnostic variant of [`crate::session`]'s decode-transient
    /// bound, building its own scheduler instance.
    #[cfg(test)]
    fn worst_case_transient_bytes(&self, plan: &crate::PlacementPlan, batch: usize) -> u64 {
        let sched = self.opts.policy.build(&self.opts.setup_for(&self.cfg));
        crate::session::decode_transient_bytes(&self.cfg, sched.as_ref(), plan, batch)
    }

    /// Test/diagnostic variant of [`crate::session`]'s prefill-transient
    /// bound, building its own scheduler instance.
    #[cfg(test)]
    fn prefill_transient_bytes(&self, plan: &crate::PlacementPlan, total_inputs: usize) -> u64 {
        let sched = self.opts.policy.build(&self.opts.setup_for(&self.cfg));
        crate::session::prefill_transient_bytes_of(&self.cfg, sched.as_ref(), plan, total_inputs)
    }
}

/// Convenience wrapper: build a [`BatchScheduler`] and serve `arrivals`.
///
/// # Errors
///
/// See [`BatchScheduler::serve`].
pub fn serve_batched(
    cfg: ModelConfig,
    opts: SimOptions,
    batch: BatchConfig,
    arrivals: impl IntoIterator<Item = ArrivedRequest>,
) -> Result<ServeStats> {
    BatchScheduler::new(cfg, opts, batch).serve(arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::PolicySpec;
    use crate::{OffloadPolicy, PlacementPlan, SimOptions};
    use pgmoe_workload::{ArrivalProcess, ArrivalStream, DecodeRequest};

    fn req(output_tokens: usize) -> DecodeRequest {
        DecodeRequest { input_tokens: 16, output_tokens, batch_size: 1 }
    }

    fn poisson(n: usize, rate: f64, seed: u64) -> Vec<ArrivedRequest> {
        ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: rate }, req(4), 1, seed)
            .take(n)
            .collect()
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let stats = serve_batched(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(4),
            poisson(12, 50.0, 3),
        )
        .unwrap();
        assert_eq!(stats.request_latencies.len(), 12);
        assert_eq!(stats.queueing_delays.len(), 12);
        assert_eq!(stats.ttfts.len(), 12);
        assert!(stats.total_tokens >= 12 * 3);
        assert!(stats.tokens_per_sec > 0.0);
        assert_eq!(stats.policy, "Pre-gated MoE");
        for i in 0..12 {
            assert!(stats.ttfts[i] >= stats.queueing_delays[i], "ttft covers queueing at {i}");
            assert!(stats.request_latencies[i] >= stats.ttfts[i], "latency covers ttft at {i}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            serve_batched(
                ModelConfig::switch_base(8),
                SimOptions::new(OffloadPolicy::Pregated),
                BatchConfig::new(4),
                poisson(10, 100.0, 11),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.request_latencies, b.request_latencies);
        assert_eq!(a.ttfts, b.ttfts);
        assert_eq!(a.total_tokens, b.total_tokens);
    }

    #[test]
    fn sparse_arrivals_have_zero_queueing_delay() {
        // Arrivals 10 s apart: the system is always idle when the next
        // request lands, so admission is immediate.
        let arrivals: Vec<ArrivedRequest> =
            (0..4).map(|i| ArrivedRequest::at_nanos(i * 10_000_000_000, req(3))).collect();
        let stats = serve_batched(
            ModelConfig::switch_base(8),
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(4),
            arrivals,
        )
        .unwrap();
        for (i, q) in stats.queueing_delays.iter().enumerate() {
            assert_eq!(q.as_nanos(), 0, "request {i} should not queue");
        }
    }

    #[test]
    fn continuous_batching_beats_batch_one_under_load() {
        // The tentpole claim: under a saturating Poisson stream, batching
        // lifts tokens/sec AND improves tail latency (queueing dominates
        // the batch-1 p95).
        let cfg = ModelConfig::switch_base(8);
        let arrivals = poisson(24, 12.0, 5);
        let opts = SimOptions::new(OffloadPolicy::Pregated);
        let b1 = serve_batched(cfg.clone(), opts.clone(), BatchConfig::new(1), arrivals.clone())
            .unwrap();
        let b8 = serve_batched(cfg, opts, BatchConfig::new(8), arrivals).unwrap();
        assert!(
            b8.tokens_per_sec > b1.tokens_per_sec,
            "batched {:.1} tok/s must beat batch-1 {:.1} tok/s",
            b8.tokens_per_sec,
            b1.tokens_per_sec
        );
        assert!(
            b8.p95() <= b1.p95(),
            "batched p95 {} must not exceed batch-1 p95 {}",
            b8.p95(),
            b1.p95()
        );
    }

    #[test]
    fn hbm_budget_throttles_admission_but_completes() {
        let cfg = ModelConfig::switch_base(8);
        // Budget just above the static footprint: at most a request or two
        // fit concurrently, but everything must still finish.
        let base = PlacementPlan::new(&cfg, &SimOptions::new(OffloadPolicy::Pregated), 0, 1);
        let one_request =
            PlacementPlan::new(&cfg, &SimOptions::new(OffloadPolicy::Pregated), 20, 1)
                .activation_bytes();
        // Room for two requests' activations plus the prefill/decode
        // transient of a small admitted set (the admission check's own
        // worst-case bound keeps actual usage below this).
        let budget =
            base.static_non_activation_bytes() + 2 * one_request + 2 * 8 * base.expert_bytes();
        let tight = serve_batched(
            cfg.clone(),
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(8).with_hbm_budget(budget),
            poisson(10, 200.0, 9),
        )
        .unwrap();
        assert_eq!(tight.request_latencies.len(), 10);
        let roomy = serve_batched(
            cfg,
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(8),
            poisson(10, 200.0, 9),
        )
        .unwrap();
        assert!(tight.peak_hbm_bytes <= budget, "admission must respect the budget");
        assert!(roomy.peak_hbm_bytes >= tight.peak_hbm_bytes);
    }

    #[test]
    fn budget_holds_at_gating_level_two() {
        // Regression: a level-2 pre-gate keeps three union-sets of expert
        // buffers in flight, which an earlier 2x reservation under-counted
        // and let peak HBM exceed the configured budget.
        use pgmoe_model::GatingMode;
        let cfg = ModelConfig::switch_base(8);
        let opts =
            SimOptions::new(OffloadPolicy::Pregated).with_gating(GatingMode::Pregated { level: 2 });
        let scheduler = BatchScheduler::new(cfg.clone(), opts.clone(), BatchConfig::new(8));
        let base = PlacementPlan::new(&cfg, &opts, 0, 1);
        let act = PlacementPlan::new(&cfg, &opts, 20, 1).activation_bytes();
        let budget = base.static_non_activation_bytes()
            + 2 * act
            + scheduler
                .worst_case_transient_bytes(&base, 2)
                .max(scheduler.prefill_transient_bytes(&base, 2 * 16));
        let stats = serve_batched(
            cfg,
            opts,
            BatchConfig::new(8).with_hbm_budget(budget),
            poisson(10, 200.0, 9),
        )
        .unwrap();
        assert_eq!(stats.request_latencies.len(), 10);
        assert!(
            stats.peak_hbm_bytes <= budget,
            "peak {} exceeded budget {budget} at gating level 2",
            stats.peak_hbm_bytes
        );
    }

    #[test]
    fn new_schedulers_serve_batched_streams() {
        let cfg = ModelConfig::switch_base(16);
        for spec in [PolicySpec::speculative_top_m(4), PolicySpec::cache_pinned(4)] {
            let name = spec.name();
            let stats = serve_batched(
                cfg.clone(),
                SimOptions::new(spec),
                BatchConfig::new(4),
                poisson(8, 50.0, 3),
            )
            .unwrap();
            assert_eq!(stats.request_latencies.len(), 8, "{name}");
            assert_eq!(stats.policy, name);
            assert!(stats.tokens_per_sec > 0.0, "{name}");
        }
    }

    #[test]
    fn gpu_only_oom_propagates() {
        let err = serve_batched(
            ModelConfig::switch_large_128(),
            SimOptions::new(OffloadPolicy::GpuOnly),
            BatchConfig::new(2),
            poisson(2, 10.0, 1),
        );
        assert!(matches!(err, Err(RuntimeError::OutOfMemory(_))));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = ModelConfig::switch_base(8);
        let opts = SimOptions::new(OffloadPolicy::Pregated);
        let zero_batch =
            serve_batched(cfg.clone(), opts.clone(), BatchConfig::new(0), poisson(2, 10.0, 1));
        assert!(matches!(zero_batch, Err(RuntimeError::InvalidConfig { .. })));
        let unsorted =
            vec![ArrivedRequest::at_nanos(1_000, req(2)), ArrivedRequest::at_nanos(0, req(2))];
        let bad = serve_batched(cfg.clone(), opts, BatchConfig::new(2), unsorted);
        assert!(matches!(bad, Err(RuntimeError::InvalidConfig { .. })));
        // The shared SimOptions validation applies to batched serving too.
        let zero_k = SimOptions::new(OffloadPolicy::Pregated).with_active_experts(0);
        assert!(matches!(
            serve_batched(cfg, zero_k, BatchConfig::new(2), poisson(2, 10.0, 1)),
            Err(RuntimeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn int8_experts_cut_traffic_and_lift_throughput_when_batched() {
        use pgmoe_model::ExpertPrecision;
        let cfg = ModelConfig::switch_base(64);
        let arrivals = poisson(12, 20.0, 7);
        let f32_stats = serve_batched(
            cfg.clone(),
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(4),
            arrivals.clone(),
        )
        .unwrap();
        let int8_stats = serve_batched(
            cfg,
            SimOptions::new(OffloadPolicy::Pregated).with_expert_precision(ExpertPrecision::Int8),
            BatchConfig::new(4),
            arrivals,
        )
        .unwrap();
        assert!(f32_stats.expert_fetch_bytes > 0);
        assert!(
            int8_stats.expert_fetch_bytes * 3 < f32_stats.expert_fetch_bytes,
            "int8 {} vs f32 {} fetched bytes",
            int8_stats.expert_fetch_bytes,
            f32_stats.expert_fetch_bytes
        );
        assert!(
            int8_stats.tokens_per_sec >= f32_stats.tokens_per_sec,
            "int8 {:.1} tok/s must not lose to f32 {:.1}",
            int8_stats.tokens_per_sec,
            f32_stats.tokens_per_sec
        );
        assert!(int8_stats.p95() <= f32_stats.p95());
    }

    #[test]
    fn pregated_beats_ondemand_when_batched() {
        // The paper's overlap advantage must survive batching: same arrival
        // trace, same batch limit, Pre-gated vs OnDemand.
        let cfg = ModelConfig::switch_base(64);
        let arrivals = poisson(12, 20.0, 7);
        let pg = serve_batched(
            cfg.clone(),
            SimOptions::new(OffloadPolicy::Pregated),
            BatchConfig::new(4),
            arrivals.clone(),
        )
        .unwrap();
        let od = serve_batched(
            cfg,
            SimOptions::new(OffloadPolicy::OnDemand),
            BatchConfig::new(4),
            arrivals,
        )
        .unwrap();
        assert!(
            pg.tokens_per_sec > od.tokens_per_sec,
            "Pre-gated {:.1} must beat OnDemand {:.1} under batching",
            pg.tokens_per_sec,
            od.tokens_per_sec
        );
        assert!(pg.p95() < od.p95());
    }
}
