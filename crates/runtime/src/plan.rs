//! Compiled decode plans: an op-IR, a plan cache, and an executor for the
//! shared decode core.
//!
//! The decode core (`crate::core`) derives every iteration's schedule from
//! `ExpertScheduler` trait-object hooks — pure host overhead once the HTTP
//! front door and the fleet multiply it by thousands of concurrent streams.
//! This module lowers one decode iteration into a small op-IR
//! ([`PlanOp`]), caches compiled plans keyed on
//! `(scheduler fingerprint, routing-window fingerprint, expert-cache state
//! fingerprint, precision, batch shape)`, and replays cached plans against
//! the [`Machine`]/[`crate::ExpertCache`] with zero per-op trait dispatch.
//!
//! # Bit-exactness contract
//!
//! Lowering *is* execution: the first time a key is seen, the core runs the
//! scheduler hooks and the expert-cache accesses for real while the recorder
//! captures the resulting machine-call stream. A cache hit replays exactly
//! that stream — same kernels, same copies, same waits, same transient
//! allocations, same cache probes (re-applied through
//! [`crate::ExpertCache::access_with`] so hit/miss counters, recency, and
//! evictions advance identically). The IR changes *when* decisions are
//! computed, never *what* they are, which is why every golden-equivalence
//! suite holds bit-exactly with the plan cache enabled.
//!
//! # Cacheability
//!
//! A scheduler opts into plan caching by returning `Some` from
//! [`crate::ExpertScheduler::plan_fingerprint`]; the default `None` keeps
//! stateful or unknown schedulers on the interpreted path (e.g.
//! `speculative_top_m`, whose hooks mutate a frequency histogram every
//! block). Traced runs are never cached (their per-expert span labels are
//! the product being built). See
//! [`crate::ExpertScheduler::plan_routing_sensitivity`] for how much of the
//! routing window ends up in the key.

use crate::core::{self, CoreEnv, CoreScratch, DecodeCosts};
use crate::scheduler::{ExpertScheduler, RoutedSource};
use crate::{ExpertKey, Result, RuntimeError};
use pgmoe_device::{AllocId, CostModel, EventId, Machine, SimDuration, SimTime, Tier};
use pgmoe_model::GateTopology;
use std::collections::HashMap;

/// Maximum number of compiled plans retained per run before the cache is
/// wholesale cleared (a routing-churn backstop, not a tuning knob).
const PLAN_CACHE_CAP: usize = 128;

// ---------------------------------------------------------------------
// FNV-1a fingerprinting
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a state.
pub(crate) fn fnv_mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a string, used by schedulers to tag their
/// [`crate::ExpertScheduler::plan_fingerprint`] with a stable name+version.
pub(crate) fn fingerprint_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------
// Routing sensitivity
// ---------------------------------------------------------------------

/// How much of the routing window a scheduler's decisions depend on —
/// declared via [`crate::ExpertScheduler::plan_routing_sensitivity`] and
/// used to build the plan-cache key's routing fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingSensitivity {
    /// Decisions depend only on how *many* distinct experts each block
    /// routes, never on their identities. Valid for schedulers that never
    /// pin experts, never emit [`crate::FetchSet::Listed`] sets derived
    /// from expert ids, and use the default byte-proportional
    /// [`crate::ExecPlan`]. The paper's four built-ins qualify, which is
    /// what makes steady-state plans reusable across tokens whose routed
    /// sets differ but whose per-block counts repeat.
    Counts,
    /// Decisions may depend on exact expert identities (pinned residents,
    /// cache steering). The key fingerprints the full per-block sets; the
    /// core also forces this mode whenever an [`crate::ExpertCache`] is
    /// attached, because cache probes are keyed by expert id.
    Exact,
}

fn routing_fingerprint(
    routed: &dyn RoutedSource,
    blocks: usize,
    sensitivity: RoutingSensitivity,
) -> u64 {
    let mut h = FNV_OFFSET;
    for b in 0..blocks {
        let experts = routed.experts(b);
        h = fnv_mix(h, experts.len() as u64);
        if sensitivity == RoutingSensitivity::Exact {
            for &e in experts {
                h = fnv_mix(h, e as u64);
            }
        }
    }
    h
}

// ---------------------------------------------------------------------
// The op-IR
// ---------------------------------------------------------------------

/// A byte operand resolved at execution time, so one compiled plan serves
/// every token of a growing context (attention bytes grow per token; the
/// plan's *structure* does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanBytes {
    /// The iteration's per-layer attention bytes.
    Attn,
    /// The iteration's dense-FFN bytes.
    Ffn,
    /// A byte count fixed at compile time (expert execution).
    Lit(u64),
}

/// One expert-cache access recorded at compile time and re-applied on every
/// cached execution, so counters, recency, and evictions advance exactly as
/// the interpreted path would have advanced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheProbe {
    /// The expert looked up (and admitted on a miss).
    pub key: ExpertKey,
    /// The scheduler's admission verdict captured at compile time.
    pub admit: bool,
    /// The scheduler's eviction hint captured at compile time.
    pub hint: Option<ExpertKey>,
    /// The hit/miss outcome the plan was compiled against; a divergent
    /// outcome on replay marks the plan stale and aborts execution.
    pub hit: bool,
}

/// One host→device expert copy within a [`PlanOp::Fetch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCopy {
    /// Expert index being migrated (for rendering; untraced copies all
    /// submit under the label `"fetch"`).
    pub expert: usize,
    /// Transient-buffer slot allocated for this copy, if the fetch stages
    /// through per-expert HBM buffers.
    pub buf: Option<u32>,
}

/// One operation of a compiled decode plan.
///
/// Event operands are *slots* — indices into the executor's event table,
/// assigned in submission order at compile time — so a plan holds no live
/// [`EventId`]s and can be replayed any number of times.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Marks the compute-stream tail as the origin for the next
    /// [`PlanOp::Latency`] sample.
    BlockStart,
    /// A compute-stream kernel (`attn` / `ffn` / `expert`).
    Gemm {
        /// Kernel label.
        label: &'static str,
        /// HBM bytes streamed, possibly resolved at execution time.
        bytes: PlanBytes,
        /// Event slots the kernel waits on.
        waits: Vec<u32>,
        /// Completion-event slot, when later ops wait on this kernel.
        out: Option<u32>,
    },
    /// The block's gate evaluation (fixed host-side overhead from the cost
    /// model).
    Gate {
        /// Completion-event slot.
        out: u32,
    },
    /// An all-to-all communication hop serialized on the compute stream
    /// (expert-parallel dispatch/combine).
    AllToAll {
        /// Op label (`a2a-dispatch` / `a2a-combine`).
        label: &'static str,
        /// Serialized hop duration fixed at compile time.
        dur: SimDuration,
        /// Event slots the hop waits on.
        waits: Vec<u32>,
        /// Completion-event slot.
        out: u32,
    },
    /// Migration of one expert group for one MoE block: cache probes,
    /// transient-buffer allocations, and host→device copies, collapsing to
    /// a copy-stream barrier when every expert was resident or cached.
    Fetch {
        /// Cache key-space block the fetch targets (encoder-offset).
        block: usize,
        /// Bytes of one expert at the run's effective precision.
        bytes_each: u64,
        /// Tier the copies read from.
        tier: Tier,
        /// Expert-cache accesses to re-apply (empty when no cache).
        probes: Vec<CacheProbe>,
        /// Copies to submit, in order.
        copies: Vec<PlanCopy>,
        /// Event slots the copies wait on.
        waits: Vec<u32>,
        /// Whether the copied bytes count as demand (critical-path) stalls.
        demand: bool,
        /// Completion-event slot (last copy, or the barrier).
        out: u32,
    },
    /// Annotation: the expert kernel that follows consumes quantized
    /// weights through the fused dequant-GEMM path. Costs are folded into
    /// the kernel's bytes; executing this op is free.
    Dequant {
        /// MoE block index within the decoder.
        block: usize,
    },
    /// Annotation: the preceding fetch's admissions evicted `count`
    /// experts from the cache. The evictions themselves re-run through the
    /// recorded probes; this op only keeps plan renderings honest.
    Evict {
        /// Cache key-space block whose fetch triggered the evictions.
        block: usize,
        /// Number of evictions.
        count: u64,
    },
    /// Paged-KV block bookkeeping charged to simulated time: `blocks`
    /// freshly allocated KV blocks and `cow_bytes` of copy-on-write block
    /// copies (see `kv_append_duration` for the cost model).
    KvAppend {
        /// KV blocks newly allocated this iteration.
        blocks: u64,
        /// Bytes copied by copy-on-write forks this iteration.
        cow_bytes: u64,
    },
    /// Frees transient expert buffers by slot, in the recorded order.
    FreeBufs {
        /// Buffer slots to free.
        bufs: Vec<u32>,
    },
    /// Samples `event_time(done) − block_start` into the caller's
    /// block-latency vector.
    Latency {
        /// Event slot of the block's completion event.
        done: u32,
    },
}

/// A lowered decode iteration: the op stream plus its slot-table sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    ops: Vec<PlanOp>,
    n_events: u32,
    n_buffers: u32,
    /// Most transient expert buffers live at once (× `expert_bytes` =
    /// the iteration's transient HBM high-water mark).
    peak_bufs: u32,
    /// Whether every transient buffer the plan allocates is also freed by
    /// the plan — the invariant that lets replay collapse the buffer churn
    /// into one peak-sized reservation.
    balanced: bool,
}

impl CompiledPlan {
    /// The plan's operations in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

/// Captures the machine-call stream of one interpreted decode iteration.
///
/// The recorder is passive: the core performs every call for real and the
/// recorder only notes what happened, mapping live [`EventId`]s /
/// [`AllocId`]s to dense slots. If the core ever waits on an event the
/// recorder never saw (a cross-iteration dependency no current scheduler
/// can create), the recording is poisoned and simply not cached.
pub(crate) struct PlanRecorder {
    ops: Vec<PlanOp>,
    event_slots: HashMap<EventId, u32>,
    buf_slots: HashMap<AllocId, u32>,
    dequant: bool,
    poisoned: bool,
}

impl PlanRecorder {
    pub(crate) fn new(dequant: bool) -> Self {
        PlanRecorder {
            ops: Vec::with_capacity(64),
            event_slots: HashMap::new(),
            buf_slots: HashMap::new(),
            dequant,
            poisoned: false,
        }
    }

    /// Whether the run executes quantized experts (adds [`PlanOp::Dequant`]
    /// annotations ahead of expert kernels).
    pub(crate) fn dequant(&self) -> bool {
        self.dequant
    }

    pub(crate) fn op(&mut self, op: PlanOp) {
        self.ops.push(op);
    }

    /// Assigns the next event slot to a freshly created event.
    pub(crate) fn event(&mut self, ev: EventId) -> u32 {
        let slot = self.event_slots.len() as u32;
        if self.event_slots.insert(ev, slot).is_some() {
            self.poisoned = true;
        }
        slot
    }

    /// Resolves already-recorded events to their slots.
    pub(crate) fn slots_of(&mut self, waits: &[EventId]) -> Vec<u32> {
        let mut out = Vec::with_capacity(waits.len());
        for ev in waits {
            match self.event_slots.get(ev) {
                Some(&slot) => out.push(slot),
                None => self.poisoned = true,
            }
        }
        out
    }

    /// Assigns the next buffer slot to a freshly allocated transient.
    pub(crate) fn buffer(&mut self, id: AllocId) -> u32 {
        let slot = self.buf_slots.len() as u32;
        if self.buf_slots.insert(id, slot).is_some() {
            self.poisoned = true;
        }
        slot
    }

    /// Resolves live buffer ids to their slots (for frees).
    pub(crate) fn buf_slots_of(&mut self, bufs: &[AllocId]) -> Vec<u32> {
        let mut out = Vec::with_capacity(bufs.len());
        for id in bufs {
            match self.buf_slots.get(id) {
                Some(&slot) => out.push(slot),
                None => self.poisoned = true,
            }
        }
        out
    }

    fn finish(self) -> Option<CompiledPlan> {
        if self.poisoned {
            return None;
        }
        let (mut live, mut peak, mut freed) = (0u32, 0u32, 0u32);
        for op in &self.ops {
            match op {
                PlanOp::Fetch { copies, .. } => {
                    live += copies.iter().filter(|c| c.buf.is_some()).count() as u32;
                    peak = peak.max(live);
                }
                PlanOp::FreeBufs { bufs } => {
                    live = live.saturating_sub(bufs.len() as u32);
                    freed += bufs.len() as u32;
                }
                _ => {}
            }
        }
        let n_buffers = self.buf_slots.len() as u32;
        Some(CompiledPlan {
            ops: self.ops,
            n_events: self.event_slots.len() as u32,
            n_buffers,
            peak_bufs: peak,
            balanced: live == 0 && freed == n_buffers,
        })
    }
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

/// The full cache key: any field drifting forces a recompile, which is the
/// entire invalidation story — `swap_scheduler` additionally clears the
/// cache outright (the old scheduler's plans can never be keyed again).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    /// Scheduler name+config fingerprint
    /// ([`crate::ExpertScheduler::plan_fingerprint`]).
    sched: u64,
    /// Routing-window fingerprint at the declared sensitivity.
    routing: u64,
    /// Expert-cache state fingerprint (membership + shift-invariant
    /// recency/frequency ranks); `0` when no cache is attached.
    cache_state: u64,
    /// Bytes of one expert — the precision axis.
    expert_bytes: u64,
    /// Batch shape (ready-request count for the batched path, 1 for the
    /// batch-1 engine).
    batch_shape: u64,
    /// Pass geometry: decoder blocks, encoder offset, layer structure, and
    /// whether block latencies are sampled.
    shape: u64,
}

/// Plan-cache hit/miss counters, surfaced through `RunReport`,
/// `ServeStats`, and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Iterations executed from a cached plan (zero trait dispatch).
    pub hits: u64,
    /// Iterations lowered and compiled because no plan matched.
    pub misses: u64,
    /// Explicit invalidations (`swap_scheduler`, overflow clears).
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Cache-hit rate in `[0, 1]` (0 for a run that never compiled).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-run plan-compilation state: the bounded plan cache, its counters,
/// and the capture hook the plan tracer uses.
pub(crate) struct PlanSession {
    plans: Option<HashMap<PlanKey, CompiledPlan>>,
    stats: PlanCacheStats,
    dequant: bool,
    capture: bool,
    captured: Option<CompiledPlan>,
}

impl PlanSession {
    /// A session with plan caching `enabled`; `dequant` annotates expert
    /// kernels as fused dequant-GEMM in rendered plans.
    pub(crate) fn new(enabled: bool, dequant: bool) -> Self {
        PlanSession {
            plans: enabled.then(HashMap::new),
            stats: PlanCacheStats::default(),
            dequant,
            capture: false,
            captured: None,
        }
    }

    /// A capture session: every iteration is lowered (never cached, never
    /// replayed) and the last compiled plan is retained for rendering.
    pub(crate) fn capturing(dequant: bool) -> Self {
        PlanSession {
            plans: None,
            stats: PlanCacheStats::default(),
            dequant,
            capture: true,
            captured: None,
        }
    }

    /// Drops every compiled plan (scheduler swap, capacity churn beyond
    /// what the key can absorb).
    pub(crate) fn invalidate(&mut self) {
        if let Some(plans) = self.plans.as_mut() {
            if !plans.is_empty() {
                plans.clear();
                self.stats.invalidations += 1;
            }
        }
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    pub(crate) fn take_captured(&mut self) -> Option<CompiledPlan> {
        self.captured.take()
    }
}

// ---------------------------------------------------------------------
// Compile-or-replay entry point
// ---------------------------------------------------------------------

/// Runs one decode iteration through the plan compiler: replaying a cached
/// plan when the key matches, otherwise lowering the interpreted iteration
/// while recording it. Uncacheable configurations (no fingerprint, traced
/// runs, caching disabled) fall through to the plain interpreted core —
/// and behave identically either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_iteration_planned(
    env: &mut CoreEnv<'_>,
    sched: &mut dyn ExpertScheduler,
    topo: &GateTopology,
    routed: &dyn RoutedSource,
    token: usize,
    enc_blocks: usize,
    costs: &DecodeCosts,
    scratch: &mut CoreScratch,
    mut block_latencies: Option<&mut Vec<SimDuration>>,
    ps: &mut PlanSession,
    batch_shape: u64,
) -> Result<()> {
    if ps.capture {
        let mut rec = PlanRecorder::new(ps.dequant);
        core::decode_iteration(
            env,
            sched,
            topo,
            routed,
            token,
            enc_blocks,
            costs,
            scratch,
            block_latencies,
            Some(&mut rec),
        )?;
        if let Some(plan) = rec.finish() {
            ps.captured = Some(plan);
        }
        return Ok(());
    }
    let fingerprint = if ps.plans.is_some() && !env.machine.trace_enabled() {
        sched.plan_fingerprint()
    } else {
        None
    };
    let Some(sched_fp) = fingerprint else {
        return core::decode_iteration(
            env,
            sched,
            topo,
            routed,
            token,
            enc_blocks,
            costs,
            scratch,
            block_latencies,
            None,
        );
    };
    let dec_blocks = scratch.dec_blocks();
    let sensitivity = if env.cache.is_some() {
        RoutingSensitivity::Exact
    } else {
        sched.plan_routing_sensitivity()
    };
    let mut shape = fnv_mix(FNV_OFFSET, dec_blocks as u64);
    shape = fnv_mix(shape, enc_blocks as u64);
    shape = fnv_mix(shape, costs.decoder_layers as u64);
    shape = fnv_mix(shape, costs.moe_every as u64);
    shape = fnv_mix(shape, block_latencies.is_some() as u64);
    let key = PlanKey {
        sched: sched_fp,
        routing: routing_fingerprint(routed, dec_blocks, sensitivity),
        cache_state: env.cache.as_ref().map(|c| c.state_fingerprint()).unwrap_or(0),
        expert_bytes: env.plan.expert_bytes(),
        batch_shape,
        shape,
    };
    let plans = ps.plans.as_mut().expect("fingerprint implies enabled cache");
    if let Some(plan) = plans.get(&key) {
        ps.stats.hits += 1;
        return execute(plan, env, costs, block_latencies.as_deref_mut());
    }
    let mut rec = PlanRecorder::new(ps.dequant);
    core::decode_iteration(
        env,
        sched,
        topo,
        routed,
        token,
        enc_blocks,
        costs,
        scratch,
        block_latencies,
        Some(&mut rec),
    )?;
    ps.stats.misses += 1;
    if let Some(plan) = rec.finish() {
        let plans = ps.plans.as_mut().expect("fingerprint implies enabled cache");
        if plans.len() >= PLAN_CACHE_CAP {
            plans.clear();
            ps.stats.invalidations += 1;
        }
        plans.insert(key, plan);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

/// Simulated cost of paged-KV block bookkeeping: copy-on-write block copies
/// read and write HBM (`2 × cow_bytes` memory-bound), and each fresh block
/// allocation costs one stream-sync of bookkeeping.
pub(crate) fn kv_append_duration(cost: &CostModel, blocks: u64, cow_bytes: u64) -> SimDuration {
    let copies = if cow_bytes > 0 { cost.membound_time(2 * cow_bytes) } else { SimDuration::ZERO };
    SimDuration::from_nanos(copies.as_nanos() + blocks * cost.sync_overhead.as_nanos())
}

/// Executes a [`PlanOp::KvAppend`] charge directly (the paged session emits
/// these outside the decode loop, once per chunked-prefill or token-append
/// step).
pub(crate) fn execute_kv_append(machine: &mut Machine, blocks: u64, cow_bytes: u64) {
    let dur = kv_append_duration(machine.cost(), blocks, cow_bytes);
    if dur > SimDuration::ZERO {
        machine.compute_op("kv-append", dur, &[]);
    }
}

fn stale(msg: &str) -> RuntimeError {
    RuntimeError::InvalidConfig { message: format!("stale compiled plan: {msg}") }
}

/// Replays a compiled plan against the live machine and expert cache.
///
/// The fast path never touches the engine per op: plans are self-contained
/// (the recorder poisons any recording that waits across iterations), so
/// the whole schedule is computed arithmetically with the exact
/// [`pgmoe_device::SimEngine::submit`] law and applied in one
/// [`Machine::apply_replay`] — same tails, busy time, traffic counters,
/// pool peak, block latencies. When the transient reservation does not fit
/// the op-by-op path runs instead, reproducing the interpreted iteration's
/// exact OOM semantics. Either way cache probes are re-applied and verified
/// against their compile-time outcomes (a divergence means the plan-key
/// fingerprint failed, which is a bug, not a recoverable state).
fn execute(
    plan: &CompiledPlan,
    env: &mut CoreEnv<'_>,
    costs: &DecodeCosts,
    mut block_latencies: Option<&mut Vec<SimDuration>>,
) -> Result<()> {
    if replay(plan, env, costs, block_latencies.as_deref_mut())? {
        return Ok(());
    }
    execute_ops(plan, env, costs, block_latencies)
}

/// The arithmetic fast path behind [`execute`]: `Ok(true)` when the plan
/// was fully applied, `Ok(false)` to fall back to [`execute_ops`].
fn replay(
    plan: &CompiledPlan,
    env: &mut CoreEnv<'_>,
    costs: &DecodeCosts,
    mut block_latencies: Option<&mut Vec<SimDuration>>,
) -> Result<bool> {
    if !plan.balanced {
        return Ok(false);
    }
    // One peak-sized reservation stands in for the per-expert transient
    // buffers: the pool's high-water mark moves exactly as the interleaved
    // alloc/free stream would have moved it.
    let reservation = if plan.peak_bufs > 0 {
        match env.machine.pool_mut(Tier::Hbm).alloc(plan.peak_bufs as u64 * env.plan.expert_bytes())
        {
            Ok(id) => Some(id),
            Err(_) => return Ok(false),
        }
    } else {
        None
    };
    let compute = env.machine.compute_stream();
    let copy = env.machine.copy_stream();
    let mut tail_c = env.machine.engine_mut().stream_tail(compute);
    let mut tail_p = env.machine.engine_mut().stream_tail(copy);
    let (mut busy_c, mut busy_p) = (SimDuration::ZERO, SimDuration::ZERO);
    let mut offload = 0u64;
    let mut times: Vec<SimTime> = Vec::with_capacity(plan.n_events as usize);
    let gate_dur = env.machine.cost().gate_overhead;
    let mut block_start = SimTime::ZERO;
    for op in &plan.ops {
        match op {
            PlanOp::BlockStart => block_start = tail_c,
            PlanOp::Gemm { bytes, waits, out, .. } => {
                let b = match bytes {
                    PlanBytes::Attn => costs.attn_bytes,
                    PlanBytes::Ffn => costs.ffn_bytes,
                    PlanBytes::Lit(v) => *v,
                };
                let dur = env.machine.cost().kernel_time(0.0, b);
                let mut start = tail_c;
                for &s in waits {
                    start = start.max(times[s as usize]);
                }
                tail_c = start + dur;
                busy_c += dur;
                if out.is_some() {
                    times.push(tail_c);
                }
            }
            PlanOp::Gate { .. } => {
                tail_c += gate_dur;
                busy_c += gate_dur;
                times.push(tail_c);
            }
            PlanOp::AllToAll { dur, waits, .. } => {
                let mut start = tail_c;
                for &s in waits {
                    start = start.max(times[s as usize]);
                }
                tail_c = start + *dur;
                busy_c += *dur;
                times.push(tail_c);
            }
            PlanOp::Fetch { bytes_each, tier, probes, copies, waits, demand, .. } => {
                for p in probes {
                    let verified =
                        env.cache.as_mut().map(|c| c.access_with(p.key, p.admit, p.hint) == p.hit);
                    if verified != Some(true) {
                        if let Some(id) = reservation {
                            env.machine
                                .pool_mut(Tier::Hbm)
                                .free(id)
                                .expect("replay reservation double free");
                        }
                        return Err(stale(if verified.is_none() {
                            "cache detached"
                        } else {
                            "probe outcome diverged"
                        }));
                    }
                }
                let mut start = tail_p;
                for &s in waits {
                    start = start.max(times[s as usize]);
                }
                // The copies serialize on the in-order copy stream behind a
                // shared wait set, so n equal-length copies collapse to one
                // interval (a zero-copy fetch is the zero-length barrier).
                let n = copies.len() as u64;
                let span = env.machine.transfer_time(*bytes_each, *tier).as_nanos() * n;
                tail_p = start + SimDuration::from_nanos(span);
                busy_p += SimDuration::from_nanos(span);
                if *tier != Tier::Hbm {
                    offload += n * bytes_each;
                }
                if *demand {
                    *env.demand_bytes += n * bytes_each;
                }
                times.push(tail_p);
            }
            PlanOp::Latency { done } => {
                if let Some(lat) = block_latencies.as_deref_mut() {
                    lat.push(times[*done as usize] - block_start);
                }
            }
            PlanOp::FreeBufs { .. } | PlanOp::Dequant { .. } | PlanOp::Evict { .. } => {}
            PlanOp::KvAppend { blocks, cow_bytes } => {
                let dur = kv_append_duration(env.machine.cost(), *blocks, *cow_bytes);
                if dur > SimDuration::ZERO {
                    tail_c += dur;
                    busy_c += dur;
                }
            }
        }
    }
    if let Some(id) = reservation {
        env.machine.pool_mut(Tier::Hbm).free(id).expect("replay reservation double free");
    }
    env.machine.apply_replay(tail_c, tail_p, busy_c, busy_p, offload);
    Ok(true)
}

/// The event-by-event fallback executor: submits the recorded machine-call
/// stream byte-identically to the interpreted iteration the plan was
/// compiled from.
fn execute_ops(
    plan: &CompiledPlan,
    env: &mut CoreEnv<'_>,
    costs: &DecodeCosts,
    mut block_latencies: Option<&mut Vec<SimDuration>>,
) -> Result<()> {
    let mut events: Vec<EventId> = Vec::with_capacity(plan.n_events as usize);
    let mut bufs: Vec<Option<AllocId>> = Vec::with_capacity(plan.n_buffers as usize);
    let mut wl: Vec<EventId> = Vec::with_capacity(4);
    let mut block_start = SimTime::ZERO;
    for op in &plan.ops {
        match op {
            PlanOp::BlockStart => {
                let compute = env.machine.compute_stream();
                block_start = env.machine.engine_mut().stream_tail(compute);
            }
            PlanOp::Gemm { label, bytes, waits, out } => {
                wl.clear();
                wl.extend(waits.iter().map(|&s| events[s as usize]));
                let b = match bytes {
                    PlanBytes::Attn => costs.attn_bytes,
                    PlanBytes::Ffn => costs.ffn_bytes,
                    PlanBytes::Lit(v) => *v,
                };
                let ev = env.machine.launch_kernel(label, 0.0, b, &wl);
                if out.is_some() {
                    events.push(ev);
                }
            }
            PlanOp::Gate { .. } => {
                let dur = env.machine.cost().gate_overhead;
                events.push(env.machine.compute_op("gate", dur, &[]));
            }
            PlanOp::AllToAll { label, dur, waits, .. } => {
                wl.clear();
                wl.extend(waits.iter().map(|&s| events[s as usize]));
                events.push(env.machine.compute_op(label, *dur, &wl));
            }
            PlanOp::Fetch { bytes_each, tier, probes, copies, waits, demand, .. } => {
                for p in probes {
                    let cache = env.cache.as_mut().ok_or_else(|| stale("cache detached"))?;
                    if cache.access_with(p.key, p.admit, p.hint) != p.hit {
                        return Err(stale("probe outcome diverged"));
                    }
                }
                wl.clear();
                wl.extend(waits.iter().map(|&s| events[s as usize]));
                let mut last = None;
                for c in copies {
                    if c.buf.is_some() {
                        match env.machine.pool_mut(Tier::Hbm).alloc(*bytes_each) {
                            Ok(id) => bufs.push(Some(id)),
                            Err(err) => {
                                for id in bufs.iter_mut().filter_map(Option::take) {
                                    env.machine
                                        .pool_mut(Tier::Hbm)
                                        .free(id)
                                        .expect("expert buffer double free");
                                }
                                return Err(err.into());
                            }
                        }
                    }
                    last = Some(env.machine.copy_to_gpu("fetch", *bytes_each, *tier, &wl));
                }
                let done = match last {
                    Some(ev) => ev,
                    None => {
                        let copy = env.machine.copy_stream();
                        env.machine.engine_mut().barrier(copy, &wl)
                    }
                };
                if *demand {
                    *env.demand_bytes += copies.len() as u64 * bytes_each;
                }
                events.push(done);
            }
            PlanOp::FreeBufs { bufs: list } => {
                for &s in list {
                    if let Some(id) = bufs[s as usize].take() {
                        env.machine
                            .pool_mut(Tier::Hbm)
                            .free(id)
                            .expect("expert buffer double free");
                    }
                }
            }
            PlanOp::Latency { done } => {
                if let Some(lat) = block_latencies.as_deref_mut() {
                    lat.push(env.machine.event_time(events[*done as usize]) - block_start);
                }
            }
            PlanOp::Dequant { .. } | PlanOp::Evict { .. } => {}
            PlanOp::KvAppend { blocks, cow_bytes } => {
                execute_kv_append(env.machine, *blocks, *cow_bytes);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Plan tracing / diffing
// ---------------------------------------------------------------------

/// A rendered view of one compiled decode plan, for ablations that explain
/// *why* two policies' metrics differ by diffing what they scheduled
/// (`repro -- plans`).
#[derive(Debug, Clone)]
pub struct PlanTrace {
    policy: String,
    plan: CompiledPlan,
}

impl PlanTrace {
    pub(crate) fn new(policy: String, plan: CompiledPlan) -> Self {
        PlanTrace { policy, plan }
    }

    /// The policy the plan was compiled for.
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// The plan's operations in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        self.plan.ops()
    }

    fn lines(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.plan.ops.len());
        for op in &self.plan.ops {
            out.push(match op {
                PlanOp::BlockStart => "block-start".to_string(),
                PlanOp::Gemm { label, bytes, waits, .. } => {
                    let b = match bytes {
                        PlanBytes::Attn => "attn-bytes".to_string(),
                        PlanBytes::Ffn => "ffn-bytes".to_string(),
                        PlanBytes::Lit(v) => format!("{v}B"),
                    };
                    format!("gemm {label} {b} waits={}", waits.len())
                }
                PlanOp::Gate { .. } => "gate".to_string(),
                PlanOp::AllToAll { label, dur, .. } => format!("a2a {label} {dur}"),
                PlanOp::Fetch { block, bytes_each, tier, probes, copies, demand, .. } => {
                    let experts: Vec<String> =
                        copies.iter().map(|c| c.expert.to_string()).collect();
                    format!(
                        "fetch b{block} [{}] {}B {:?} probes={} demand={}",
                        experts.join(","),
                        bytes_each,
                        tier,
                        probes.len(),
                        demand,
                    )
                }
                PlanOp::Dequant { block } => format!("dequant b{block} (fused)"),
                PlanOp::Evict { block, count } => format!("evict b{block} x{count}"),
                PlanOp::KvAppend { blocks, cow_bytes } => {
                    format!("kv-append blocks={blocks} cow={cow_bytes}B")
                }
                PlanOp::FreeBufs { bufs } => format!("free x{}", bufs.len()),
                PlanOp::Latency { .. } => "latency-sample".to_string(),
            });
        }
        out
    }

    /// Renders the plan as one op per line.
    pub fn render(&self) -> String {
        let mut out = format!("plan[{}] {} ops\n", self.policy, self.plan.ops.len());
        for line in self.lines() {
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Line-level diff against another plan: `-` lines only this plan
    /// schedules, `+` lines only the other schedules, positionally aligned.
    /// Returns the rendered diff and the number of differing lines.
    pub fn diff(&self, other: &PlanTrace) -> (String, usize) {
        let a = self.lines();
        let b = other.lines();
        let mut out = format!("diff {} vs {}\n", self.policy, other.policy);
        let mut differing = 0usize;
        for i in 0..a.len().max(b.len()) {
            match (a.get(i), b.get(i)) {
                (Some(x), Some(y)) if x == y => {}
                (x, y) => {
                    differing += 1;
                    if let Some(x) = x {
                        out.push_str(&format!("  - {x}\n"));
                    }
                    if let Some(y) = y {
                        out.push_str(&format!("  + {y}\n"));
                    }
                }
            }
        }
        (out, differing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(fingerprint_str("pregated"), fingerprint_str("pregated"));
        assert_ne!(fingerprint_str("pregated"), fingerprint_str("on-demand"));
        assert_ne!(fnv_mix(FNV_OFFSET, 1), fnv_mix(FNV_OFFSET, 2));
    }

    struct FixedRouting(Vec<Vec<usize>>);
    impl RoutedSource for FixedRouting {
        fn experts(&self, block: usize) -> &[usize] {
            &self.0[block]
        }
    }

    #[test]
    fn counts_sensitivity_ignores_identities_exact_does_not() {
        let a = FixedRouting(vec![vec![1, 2], vec![5]]);
        let b = FixedRouting(vec![vec![3, 7], vec![9]]);
        let c = FixedRouting(vec![vec![3], vec![9]]);
        assert_eq!(
            routing_fingerprint(&a, 2, RoutingSensitivity::Counts),
            routing_fingerprint(&b, 2, RoutingSensitivity::Counts),
        );
        assert_ne!(
            routing_fingerprint(&a, 2, RoutingSensitivity::Counts),
            routing_fingerprint(&c, 2, RoutingSensitivity::Counts),
        );
        assert_ne!(
            routing_fingerprint(&a, 2, RoutingSensitivity::Exact),
            routing_fingerprint(&b, 2, RoutingSensitivity::Exact),
        );
    }

    #[test]
    fn recorder_poisons_on_unknown_event() {
        let mut m = Machine::new(pgmoe_device::MachineConfig::a100_like());
        let ev = m.compute_op("x", SimDuration::from_nanos(1), &[]);
        let mut rec = PlanRecorder::new(false);
        let slots = rec.slots_of(&[ev]);
        assert!(slots.is_empty());
        assert!(rec.finish().is_none(), "unknown waits must poison the recording");
    }

    #[test]
    fn hit_rate_counts() {
        let s = PlanCacheStats { hits: 3, misses: 1, invalidations: 0 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PlanCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn kv_append_cost_scales_with_cow_bytes_and_blocks() {
        let cost = CostModel::a100_pcie4();
        assert_eq!(kv_append_duration(&cost, 0, 0), SimDuration::ZERO);
        let alloc_only = kv_append_duration(&cost, 3, 0);
        assert_eq!(alloc_only.as_nanos(), 3 * cost.sync_overhead.as_nanos());
        let with_cow = kv_append_duration(&cost, 3, 1 << 20);
        assert!(with_cow > alloc_only);
    }

    #[test]
    fn plan_trace_diff_counts_divergent_lines() {
        let plan_a = CompiledPlan {
            ops: vec![
                PlanOp::BlockStart,
                PlanOp::Gemm { label: "attn", bytes: PlanBytes::Attn, waits: vec![], out: None },
            ],
            n_events: 0,
            n_buffers: 0,
            peak_bufs: 0,
            balanced: true,
        };
        let mut plan_b = plan_a.clone();
        plan_b.ops.push(PlanOp::Gate { out: 0 });
        let a = PlanTrace::new("A".into(), plan_a);
        let b = PlanTrace::new("B".into(), plan_b);
        let (text, differing) = a.diff(&b);
        assert_eq!(differing, 1);
        assert!(text.contains("+ gate"));
        let (_, same) = a.diff(&a);
        assert_eq!(same, 0);
    }
}
