//! The pluggable expert-scheduling API.
//!
//! The paper's four designs (GPU-only, on-demand, prefetch-all, pre-gated)
//! are one family of answers to a single question: *when* do an MoE block's
//! expert parameters migrate to the GPU, and *which* ones? This module turns
//! that question into a public seam — the [`ExpertScheduler`] trait — so new
//! strategies (speculative top-m prefetch, frequency-pinned residents,
//! anything a user can imagine) plug into the same decode core, cost model,
//! cache, and serving schedulers as the paper's baselines.
//!
//! A scheduler is a small state machine driven by the runtime's shared
//! decode core at three points per MoE block:
//!
//! 1. [`ExpertScheduler::on_iteration_start`] — once per decode iteration,
//!    before any block executes (MoE-Prefetch launches block 0's full-set
//!    migration here; SpeculativeTopM speculates the first block's experts).
//! 2. [`ExpertScheduler::on_block_start`] — how the executing block's
//!    experts become GPU-resident: already resident, fetched serially now,
//!    or awaited from an earlier prefetch (with automatic on-demand fill of
//!    anything the prefetch missed).
//! 3. [`ExpertScheduler::on_gate`] — once the block's gate has resolved,
//!    which *future* blocks' experts to start migrating (the pre-gate's
//!    whole trick).
//!
//! A scheduler also owns its memory contract ([`ExpertScheduler::hbm_plan`],
//! the paper's Equation 1 generalised) and may pin experts permanently
//! resident ([`ExpertScheduler::is_resident`]) or steer the expert cache
//! ([`ExpertScheduler::cache_admission`], [`ExpertScheduler::eviction_hint`]).
//!
//! Runs are configured with a [`PolicySpec`] — a cheap, cloneable handle to
//! a [`SchedulerFactory`]. The paper's four policies are available via
//! [`OffloadPolicy::scheduler`] (or just `SimOptions::new(OffloadPolicy::X)`,
//! which converts implicitly); two schedulers the old closed enum could not
//! express ship as [`PolicySpec::speculative_top_m`] and
//! [`PolicySpec::cache_pinned`]; `examples/custom_policy.rs` builds one
//! entirely outside this crate.

use crate::plan::{fingerprint_str, fnv_mix, RoutingSensitivity};
use crate::{ExpertCache, ExpertKey, OffloadPolicy, Result, RuntimeError};
use pgmoe_device::SimDuration;
use pgmoe_model::{GateTopology, GatingMode};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Context handed to scheduler hooks
// ---------------------------------------------------------------------

/// Which pass of the model the decode core is currently driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Encoder / prompt prefill: expert activations are sampled as the pass
    /// runs, so [`PolicyCtx::experts`] is empty and prefetch directives
    /// should use [`FetchSet::Routed`] (the core samples the target set when
    /// it issues the copy).
    Prefill,
    /// Decode: the routing trace for the whole iteration is known, so
    /// [`PolicyCtx::experts`] answers for every block.
    Decode,
}

/// Read-only view of one iteration's state, handed to every scheduler hook.
///
/// Exposes the routing-trace window (which experts each block activates),
/// the gate topology, cache state, and the run's byte geometry — everything
/// a policy may condition on, nothing it may corrupt.
pub struct PolicyCtx<'a> {
    /// Which pass is executing.
    pub phase: Phase,
    /// Decode-iteration index within the request (0 during prefill).
    pub token: usize,
    /// Number of MoE blocks in the current pass (encoder blocks during
    /// [`Phase::Prefill`], decoder blocks during [`Phase::Decode`]).
    pub blocks: usize,
    /// Experts per MoE block.
    pub num_experts: usize,
    /// Experts activated per token per block for this run.
    pub active_per_block: usize,
    /// Bytes of one expert at the run's effective precision.
    pub expert_bytes: u64,
    /// The decoder's gate topology (which block hosts which block's gate).
    pub topology: &'a GateTopology,
    pub(crate) routed: RoutedView<'a>,
    pub(crate) cache: Option<&'a ExpertCache>,
}

/// Internal routing view behind [`PolicyCtx::experts`].
pub(crate) enum RoutedView<'a> {
    /// No routing decisions visible (prefill: sampled by the core).
    Hidden,
    /// Per-block expert sets for the current decode iteration.
    Sets(&'a dyn RoutedSource),
}

/// Source of per-block routed expert sets (object-safe so the engine's
/// trace-backed view and the batch scheduler's union-backed view share one
/// decode core).
pub(crate) trait RoutedSource {
    fn experts(&self, block: usize) -> &[usize];
}

impl PolicyCtx<'_> {
    /// The sorted expert set block `block` activates this iteration, or an
    /// empty slice during [`Phase::Prefill`] (where activations are sampled
    /// by the core as the pass runs).
    pub fn experts(&self, block: usize) -> &[usize] {
        match self.routed {
            RoutedView::Hidden => &[],
            RoutedView::Sets(s) => s.experts(block),
        }
    }

    /// Whether `key` is currently resident in the expert cache (false when
    /// no cache is configured). Does not touch recency/frequency state.
    pub fn cache_contains(&self, key: ExpertKey) -> bool {
        self.cache.map(|c| c.contains(key)).unwrap_or(false)
    }

    /// Whether an expert cache is configured for this run.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }
}

// ---------------------------------------------------------------------
// Hook vocabulary
// ---------------------------------------------------------------------

/// Which experts a fetch directive moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchSet {
    /// The target block's routed (activated) expert set. During prefill the
    /// core samples the set when the copy is issued, mirroring how a real
    /// pre-gate's selection materialises just-in-time.
    Routed,
    /// Every expert of the target block (MoE-Prefetch's firehose).
    All,
    /// An explicit sorted expert list chosen by the scheduler (speculative
    /// supersets, frequency predictions, random strawmen, ...).
    Listed(Vec<usize>),
}

/// A migration directive: start moving `set` for MoE block `block` now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prefetch {
    /// Target MoE block (index within the current pass).
    pub block: usize,
    /// Which experts to move.
    pub set: FetchSet,
    /// Whether the copy must wait for the issuing block's gate to resolve
    /// (true for anything derived from routing; false for blind prefetch).
    pub after_gate: bool,
}

/// How the executing block's experts become GPU-resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Residency {
    /// Weights are already on the GPU (GPU-only, or fully pinned blocks):
    /// execution waits only on the gate.
    Resident,
    /// Fetch `set` serially right now — the fetch is on the block's
    /// critical path (MoE-OnDemand's defining cost).
    Fetch {
        /// Which experts to move.
        set: FetchSet,
        /// Whether the copy waits on this block's gate.
        after_gate: bool,
    },
    /// Wait on the prefetch issued earlier for this block. Any activated
    /// expert the prefetch did not cover is fetched on demand (counted as a
    /// miss stall); if no prefetch is in flight at all, the core falls back
    /// to a serialized routed fetch, exactly like the paper's first-block
    /// footnote.
    AwaitPending,
}

/// How one MoE block's activated experts *execute*, consumed by the decode
/// core when it launches the block's expert kernel.
///
/// The default ([`ExecPlan::local`]) is single-GPU execution: the executing
/// GPU streams every activated expert's weights and no communication
/// happens. Schedulers that model distributed execution — the expert-parallel
/// [`ClusterScheduler`] sharding experts across GPUs — override
/// [`ExpertScheduler::exec_plan`] to charge only the critical-path shard and
/// to serialize all-to-all dispatch/combine hops around the kernel.
///
/// [`ClusterScheduler`]: crate::ClusterConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPlan {
    /// HBM bytes the critical-path GPU streams executing the block's
    /// experts (the kernel is memory-bound at batch 1).
    pub exec_bytes: u64,
    /// Communication serialized *before* execution (all-to-all token
    /// dispatch under expert parallelism; zero on a single GPU).
    pub dispatch: SimDuration,
    /// Communication serialized *after* execution (all-to-all result
    /// combine; zero on a single GPU).
    pub combine: SimDuration,
}

impl ExecPlan {
    /// Single-GPU execution of `count` experts of `expert_bytes` each — the
    /// default every non-distributed scheduler uses.
    pub fn local(count: usize, expert_bytes: u64) -> Self {
        ExecPlan {
            exec_bytes: count as u64 * expert_bytes,
            dispatch: SimDuration::ZERO,
            combine: SimDuration::ZERO,
        }
    }
}

/// A scheduler's memory contract, consumed by the placement planner — the
/// paper's Equation 1 generalised per policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmPlan {
    /// HBM held for the whole run beyond weights/activations/cache (e.g.
    /// frequency-pinned resident experts).
    pub resident_bytes: u64,
    /// Peak transient migration-buffer bytes while one MoE block is in
    /// flight (two activated sets for the pre-gated pipeline, two full
    /// blocks for prefetch-all, ...).
    pub transient_bytes: u64,
    /// Experts' worth of staging the encoder pass streams its fetches
    /// through (0 when nothing migrates).
    pub encoder_staging_experts: u64,
}

impl HbmPlan {
    /// Resident plus transient bytes — the scheduler's whole claim on the
    /// HBM budget for one in-flight block. The paged-KV session arbitrates
    /// the expert cache against KV blocks around this floor: the cache may
    /// shrink under KV pressure, but the scheduler's own claim never does.
    pub fn total_bytes(&self) -> u64 {
        self.resident_bytes + self.transient_bytes
    }
}

/// Byte geometry a scheduler's memory hooks are evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryProfile {
    /// Bytes of one expert at the run's effective precision.
    pub expert_bytes: u64,
    /// Experts per MoE block.
    pub num_experts: usize,
    /// Experts activated per block — the request's `top_k` for a single
    /// sequence, or the batch's union size for admission control.
    pub active_per_block: usize,
    /// Total MoE blocks in the model (encoder + decoder).
    pub moe_layers: usize,
}

/// Everything a [`SchedulerFactory`] gets to instantiate a per-run
/// scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerSetup {
    /// Decoder MoE blocks per iteration.
    pub dec_blocks: usize,
    /// Encoder MoE blocks per prefill pass.
    pub enc_blocks: usize,
    /// Experts per MoE block.
    pub num_experts: usize,
    /// Experts activated per token per block.
    pub active_per_block: usize,
    /// Bytes of one token's activation vector at the model's precision —
    /// what an all-to-all exchange moves per hop under expert parallelism.
    pub token_bytes: u64,
    /// The run's gate topology request ([`GatingMode::Conventional`] means
    /// "the scheduler's default level").
    pub gating: GatingMode,
    /// The run's routing seed (for schedulers that speculate).
    pub seed: u64,
}

impl SchedulerSetup {
    /// The pre-gate activation level this run asks for (≥ 1; conventional
    /// gating maps to the paper's default level 1).
    pub fn level(&self) -> usize {
        self.gating.level().max(1)
    }
}

// ---------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------

/// An expert-migration strategy, driven by the runtime's shared decode core.
///
/// One instance is built per run ([`SchedulerFactory::build`]) and may keep
/// arbitrary mutable state across iterations (observed frequencies, pending
/// predictions, ...). All hooks are infallible by design: a scheduler
/// *decides*, the core *executes* (and surfaces OOM or config errors).
///
/// See the [module docs](self) for the hook protocol and
/// `examples/custom_policy.rs` for a complete out-of-crate implementation.
pub trait ExpertScheduler {
    /// Display name threaded into `RunReport`/`ServeStats` and every sweep.
    fn name(&self) -> String;

    /// Whether expert parameters live off-GPU under this scheduler (false
    /// only for GPU-resident baselines).
    fn offloads_experts(&self) -> bool {
        true
    }

    /// Whether this scheduler consumes pre-gate routing (selection for block
    /// `b` available before block `b` starts). Configuring
    /// [`GatingMode::Pregated`] on a scheduler that answers false is
    /// rejected as an invalid configuration.
    fn uses_pregate(&self) -> bool {
        false
    }

    /// The decoder gate topology this scheduler runs under.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] if the topology cannot exist (e.g. a
    /// pre-gate level at or beyond the block count).
    fn decoder_topology(&self, dec_blocks: usize) -> Result<GateTopology> {
        Ok(GateTopology::conventional(dec_blocks))
    }

    /// The scheduler's Equation-1 memory contract for one in-flight block.
    fn hbm_plan(&self, profile: &MemoryProfile) -> HbmPlan;

    /// Worst-case transient bytes one decode iteration can have in flight —
    /// the headroom continuous-batching admission control must keep free.
    /// `profile.active_per_block` is the admitted batch's union size.
    /// Defaults to [`ExpertScheduler::hbm_plan`]'s transient bytes.
    fn admission_transient_bytes(&self, profile: &MemoryProfile) -> u64 {
        self.hbm_plan(profile).transient_bytes
    }

    /// Called once per decode iteration before any block executes; push
    /// migration directives into `out` (e.g. block 0's prefetch, which no
    /// gate can cover).
    fn on_iteration_start(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Prefetch>) {
        let _ = (ctx, out);
    }

    /// How block `block`'s activated experts become GPU-resident.
    fn on_block_start(&mut self, ctx: &PolicyCtx<'_>, block: usize) -> Residency;

    /// How block `block`'s experts *execute* once resident: the bytes the
    /// critical-path GPU streams and any serialized communication around
    /// the kernel. `experts` is the set the core is about to execute (the
    /// routed set or batch union during decode, the sampled activation set
    /// during prefill). Defaults to single-GPU execution of the whole set;
    /// distributed schedulers (expert parallelism) override this.
    fn exec_plan(&self, ctx: &PolicyCtx<'_>, block: usize, experts: &[usize]) -> ExecPlan {
        let _ = block;
        ExecPlan::local(experts.len(), ctx.expert_bytes)
    }

    /// Called after block `block`'s gate has resolved (and its residency was
    /// settled); push prefetch directives for *future* blocks into `out`.
    fn on_gate(&mut self, ctx: &PolicyCtx<'_>, block: usize, out: &mut Vec<Prefetch>) {
        let _ = (ctx, block, out);
    }

    /// Whether `key` is permanently GPU-resident under this scheduler
    /// (pinned experts are never fetched and never occupy cache slots).
    fn is_resident(&self, key: ExpertKey) -> bool {
        let _ = key;
        false
    }

    /// Whether a fetched expert should be admitted into the expert cache
    /// (consulted on every cache miss; defaults to admit-everything).
    fn cache_admission(&self, key: ExpertKey) -> bool {
        let _ = key;
        true
    }

    /// A preferred eviction victim when admitting `key` into a full cache;
    /// `None` defers to the cache's configured replacement policy. A hint
    /// that is not resident is ignored.
    fn eviction_hint(&self, key: ExpertKey) -> Option<ExpertKey> {
        let _ = key;
        None
    }

    /// Fingerprint of this scheduler's *decision function* for compiled-plan
    /// caching, or `None` (the default) to opt out of plan caching.
    ///
    /// Returning `Some(fp)` is a contract: every hook must be a pure
    /// function of the scheduler's construction-time configuration (folded
    /// into `fp`) and the [`PolicyCtx`] fields the plan cache keys on — the
    /// routing window, the expert-cache state, and `expert_bytes`. Hooks
    /// must not consult mutable state accumulated across iterations and
    /// must not condition on `ctx.token`; schedulers that do either (e.g.
    /// the frequency-tracking `speculative_top_m`) must keep the `None`
    /// default, which makes the core interpret every iteration.
    fn plan_fingerprint(&self) -> Option<u64> {
        None
    }

    /// How much of the routing window this scheduler's decisions read,
    /// which bounds what the plan cache must key on. The conservative
    /// default says hooks may read exact expert ids; schedulers whose
    /// decisions depend only on per-block routed-set *sizes* can answer
    /// [`RoutingSensitivity::Counts`] and share one compiled plan across
    /// every token with the same per-block counts. Ignored (forced to
    /// `Exact`) whenever an [`ExpertCache`] is
    /// attached, since cache probes are keyed on expert ids.
    fn plan_routing_sensitivity(&self) -> RoutingSensitivity {
        RoutingSensitivity::Exact
    }
}

/// Builds a fresh [`ExpertScheduler`] for each run.
///
/// Factories are the cloneable, shareable half of a policy: `SimOptions`
/// carries one (via [`PolicySpec`]) and every `InferenceSim::run` /
/// `BatchScheduler::serve` call instantiates its own scheduler state from
/// it, so concurrent runs never share mutable policy state.
pub trait SchedulerFactory: std::fmt::Debug + Send + Sync {
    /// Static display name for listings. Per-run reports
    /// (`RunReport::policy`, `ServeStats::policy`) use the *built*
    /// scheduler's [`ExpertScheduler::name`] instead, which may reflect
    /// run-clamped parameters (e.g. a speculative margin capped at the
    /// expert count).
    fn scheduler_name(&self) -> String;

    /// Instantiates per-run scheduler state.
    fn build(&self, setup: &SchedulerSetup) -> Box<dyn ExpertScheduler>;
}

/// A cheap, cloneable handle to an expert-scheduling policy.
///
/// Obtain one from [`OffloadPolicy::scheduler`] (the paper's four built-ins
/// — `SimOptions::new` also accepts the enum directly), from the
/// [`PolicySpec::speculative_top_m`] / [`PolicySpec::cache_pinned`]
/// constructors, or from [`PolicySpec::custom`] with your own factory.
#[derive(Debug, Clone)]
pub struct PolicySpec {
    factory: Arc<dyn SchedulerFactory>,
}

impl PolicySpec {
    /// Wraps a user-provided scheduler factory — the extension seam.
    pub fn custom(factory: Arc<dyn SchedulerFactory>) -> Self {
        PolicySpec { factory }
    }

    /// Speculative top-m prefetch: pre-gated migration widened to the
    /// predictor's top `margin ≥ top_k` candidates per block, plus a
    /// frequency-based speculation for the first block of each iteration
    /// (which plain pre-gating must fetch serially). Trades link bytes for
    /// on-demand miss stalls — something the closed policy enum could not
    /// express.
    pub fn speculative_top_m(margin: usize) -> Self {
        PolicySpec { factory: Arc::new(SpeculativeTopMFactory { margin }) }
    }

    /// Frequency-pinned residents: the `per_block` lowest-Zipf-rank experts
    /// of every MoE block stay permanently in HBM (paid for in Equation 1's
    /// static term), and the unpinned tail migrates pre-gated.
    pub fn cache_pinned(per_block: usize) -> Self {
        PolicySpec { factory: Arc::new(CachePinnedFactory { per_block }) }
    }

    /// The policy's display name (see
    /// [`SchedulerFactory::scheduler_name`] for how it relates to per-run
    /// report names).
    pub fn name(&self) -> String {
        self.factory.scheduler_name()
    }

    /// Instantiates the per-run scheduler state.
    pub fn build(&self, setup: &SchedulerSetup) -> Box<dyn ExpertScheduler> {
        self.factory.build(setup)
    }
}

impl From<OffloadPolicy> for PolicySpec {
    fn from(policy: OffloadPolicy) -> Self {
        policy.scheduler()
    }
}

impl OffloadPolicy {
    /// The built-in [`ExpertScheduler`] implementing this paper policy.
    ///
    /// The enum survives purely as a convenience constructor: every Table I
    /// / Fig 9–16 reproduction path spells `SimOptions::new(OffloadPolicy::X)`
    /// and runs through the same trait-driven decode core as any custom
    /// scheduler.
    pub fn scheduler(self) -> PolicySpec {
        PolicySpec { factory: Arc::new(PaperFactory { policy: self }) }
    }
}

// ---------------------------------------------------------------------
// Built-ins: the paper's four policies
// ---------------------------------------------------------------------

#[derive(Debug)]
struct PaperFactory {
    policy: OffloadPolicy,
}

impl SchedulerFactory for PaperFactory {
    fn scheduler_name(&self) -> String {
        self.policy.paper_name().to_string()
    }

    fn build(&self, setup: &SchedulerSetup) -> Box<dyn ExpertScheduler> {
        match self.policy {
            OffloadPolicy::GpuOnly => Box::new(GpuOnlySched),
            OffloadPolicy::OnDemand => Box::new(OnDemandSched),
            OffloadPolicy::PrefetchAll => Box::new(PrefetchAllSched),
            OffloadPolicy::Pregated => Box::new(PregatedSched { level: setup.level() }),
        }
    }
}

/// GPU-only: every parameter resident, no migration.
#[derive(Debug)]
struct GpuOnlySched;

impl ExpertScheduler for GpuOnlySched {
    fn name(&self) -> String {
        OffloadPolicy::GpuOnly.paper_name().to_string()
    }

    fn offloads_experts(&self) -> bool {
        false
    }

    fn hbm_plan(&self, _profile: &MemoryProfile) -> HbmPlan {
        HbmPlan { resident_bytes: 0, transient_bytes: 0, encoder_staging_experts: 0 }
    }

    fn on_block_start(&mut self, _ctx: &PolicyCtx<'_>, _block: usize) -> Residency {
        Residency::Resident
    }

    fn plan_fingerprint(&self) -> Option<u64> {
        Some(fingerprint_str("gpu-only"))
    }

    fn plan_routing_sensitivity(&self) -> RoutingSensitivity {
        RoutingSensitivity::Counts
    }
}

/// HF-Accelerate-style fetch-on-demand: gate, then fetch, then execute.
#[derive(Debug)]
struct OnDemandSched;

impl ExpertScheduler for OnDemandSched {
    fn name(&self) -> String {
        OffloadPolicy::OnDemand.paper_name().to_string()
    }

    fn hbm_plan(&self, profile: &MemoryProfile) -> HbmPlan {
        HbmPlan {
            resident_bytes: 0,
            transient_bytes: profile.active_per_block as u64 * profile.expert_bytes,
            encoder_staging_experts: 1,
        }
    }

    fn on_block_start(&mut self, _ctx: &PolicyCtx<'_>, _block: usize) -> Residency {
        Residency::Fetch { set: FetchSet::Routed, after_gate: true }
    }

    fn plan_fingerprint(&self) -> Option<u64> {
        Some(fingerprint_str("on-demand"))
    }

    fn plan_routing_sensitivity(&self) -> RoutingSensitivity {
        RoutingSensitivity::Counts
    }
}

/// SE-MoE-style prefetch-all: the next block's *entire* expert set migrates
/// during the current block's execution.
#[derive(Debug)]
struct PrefetchAllSched;

impl ExpertScheduler for PrefetchAllSched {
    fn name(&self) -> String {
        OffloadPolicy::PrefetchAll.paper_name().to_string()
    }

    fn hbm_plan(&self, profile: &MemoryProfile) -> HbmPlan {
        let e = profile.num_experts as u64;
        HbmPlan {
            resident_bytes: 0,
            transient_bytes: 2 * e * profile.expert_bytes,
            encoder_staging_experts: 2 * e,
        }
    }

    fn on_iteration_start(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Prefetch>) {
        if ctx.phase == Phase::Decode {
            out.push(Prefetch { block: 0, set: FetchSet::All, after_gate: false });
        }
    }

    fn on_block_start(&mut self, ctx: &PolicyCtx<'_>, _block: usize) -> Residency {
        match ctx.phase {
            // The encoder has no per-block prefetch pipeline: each block
            // streams the full set through staging as it executes.
            Phase::Prefill => Residency::Fetch { set: FetchSet::All, after_gate: false },
            Phase::Decode => Residency::AwaitPending,
        }
    }

    fn on_gate(&mut self, ctx: &PolicyCtx<'_>, block: usize, out: &mut Vec<Prefetch>) {
        if ctx.phase == Phase::Decode && block + 1 < ctx.blocks {
            out.push(Prefetch { block: block + 1, set: FetchSet::All, after_gate: false });
        }
    }

    fn plan_fingerprint(&self) -> Option<u64> {
        Some(fingerprint_str("prefetch-all"))
    }

    fn plan_routing_sensitivity(&self) -> RoutingSensitivity {
        RoutingSensitivity::Counts
    }
}

/// The paper's co-design: the pre-gate hosted at block `b` selects block
/// `b + level`'s experts, so only activated experts migrate, overlapped
/// with execution.
#[derive(Debug)]
struct PregatedSched {
    level: usize,
}

impl ExpertScheduler for PregatedSched {
    fn name(&self) -> String {
        OffloadPolicy::Pregated.paper_name().to_string()
    }

    fn uses_pregate(&self) -> bool {
        true
    }

    fn decoder_topology(&self, dec_blocks: usize) -> Result<GateTopology> {
        pregated_topology(self.level, dec_blocks)
    }

    fn hbm_plan(&self, profile: &MemoryProfile) -> HbmPlan {
        HbmPlan {
            resident_bytes: 0,
            // Equation 1: the activated sets of two consecutive blocks.
            transient_bytes: 2 * profile.active_per_block as u64 * profile.expert_bytes,
            encoder_staging_experts: 2,
        }
    }

    fn admission_transient_bytes(&self, profile: &MemoryProfile) -> u64 {
        // A level-N pre-gate keeps up to N prefetched unions in flight on
        // top of the executing block's set.
        (self.level as u64 + 1) * profile.active_per_block as u64 * profile.expert_bytes
    }

    fn on_block_start(&mut self, _ctx: &PolicyCtx<'_>, _block: usize) -> Residency {
        Residency::AwaitPending
    }

    fn on_gate(&mut self, ctx: &PolicyCtx<'_>, block: usize, out: &mut Vec<Prefetch>) {
        pregated_on_gate(ctx, block, out);
    }

    fn plan_fingerprint(&self) -> Option<u64> {
        Some(fnv_mix(fingerprint_str("pregated"), self.level as u64))
    }

    fn plan_routing_sensitivity(&self) -> RoutingSensitivity {
        RoutingSensitivity::Counts
    }
}

/// Shared pre-gated fan-out: prefetch every future block whose gate is
/// hosted at `block` (decode follows the topology; prefill pipelines the
/// next block, as the paper's encoder does).
fn pregated_on_gate(ctx: &PolicyCtx<'_>, block: usize, out: &mut Vec<Prefetch>) {
    match ctx.phase {
        Phase::Prefill => {
            if block + 1 < ctx.blocks {
                out.push(Prefetch { block: block + 1, set: FetchSet::Routed, after_gate: true });
            }
        }
        Phase::Decode => {
            for target in ctx.topology.gates_hosted_at(block) {
                if target != block {
                    out.push(Prefetch { block: target, set: FetchSet::Routed, after_gate: true });
                }
            }
        }
    }
}

/// Validated pre-gated decoder topology.
fn pregated_topology(level: usize, dec_blocks: usize) -> Result<GateTopology> {
    if level >= dec_blocks {
        return Err(RuntimeError::InvalidConfig {
            message: format!(
                "pre-gate level {level} needs more than {dec_blocks} decoder MoE blocks"
            ),
        });
    }
    Ok(GateTopology::new(dec_blocks, GatingMode::Pregated { level }))
}

// ---------------------------------------------------------------------
// SpeculativeTopM
// ---------------------------------------------------------------------

#[derive(Debug)]
struct SpeculativeTopMFactory {
    margin: usize,
}

impl SchedulerFactory for SpeculativeTopMFactory {
    fn scheduler_name(&self) -> String {
        format!("Speculative-Top{}", self.margin)
    }

    fn build(&self, setup: &SchedulerSetup) -> Box<dyn ExpertScheduler> {
        let margin = self.margin.clamp(setup.active_per_block, setup.num_experts);
        Box::new(SpeculativeTopMSched {
            margin,
            level: setup.level(),
            freq: vec![0; setup.num_experts],
            freq_version: 0,
            ranked: (0..setup.num_experts).collect(),
            ranked_version: u64::MAX,
        })
    }
}

/// Pre-gated migration widened to a top-`margin` candidate superset, plus a
/// frequency-predicted speculation for the first block of each iteration.
///
/// Plain pre-gating must fetch the first block's experts serially (no
/// earlier gate exists to pre-select them — the paper's footnote 1). This
/// scheduler keeps an activation-frequency histogram and, at iteration
/// start, speculatively migrates the `margin` historically hottest experts
/// for block 0; whatever the gate then actually picks is usually already
/// in flight. Misses are fetched on demand and counted as demand stalls —
/// strictly fewer than pre-gating's, at strictly more link bytes.
#[derive(Debug)]
struct SpeculativeTopMSched {
    margin: usize,
    level: usize,
    /// Observed activation counts across all decoder blocks.
    freq: Vec<u64>,
    /// Bumped whenever `freq` changes, so the ranking below is re-sorted
    /// lazily — once per observation batch, not once per prefetch directive.
    freq_version: u64,
    /// Expert ids sorted hottest-first at `ranked_version` (reused buffer).
    ranked: Vec<usize>,
    ranked_version: u64,
}

impl SpeculativeTopMSched {
    /// Expert ids sorted hottest-first (ties broken by index, so the
    /// prediction is deterministic from the routing trace alone). Cached
    /// against `freq_version`: the per-token host path re-sorts at most
    /// once per frequency update instead of once per directive.
    fn ranked(&mut self) -> &[usize] {
        if self.ranked_version != self.freq_version {
            let freq = &self.freq;
            self.ranked.sort_by_key(|&e| (std::cmp::Reverse(freq[e]), e));
            self.ranked_version = self.freq_version;
        }
        &self.ranked
    }

    /// The `margin` hottest experts so far, sorted by id.
    fn top_margin(&mut self) -> Vec<usize> {
        let margin = self.margin;
        let mut top: Vec<usize> = self.ranked()[..margin].to_vec();
        top.sort_unstable();
        top
    }

    /// `routed` widened with the hottest non-routed experts up to `margin`.
    fn widened(&mut self, routed: &[usize]) -> Vec<usize> {
        let margin = self.margin;
        let mut set: Vec<usize> = routed.to_vec();
        for &e in self.ranked() {
            if set.len() >= margin {
                break;
            }
            if !routed.contains(&e) {
                set.push(e);
            }
        }
        set.sort_unstable();
        set
    }
}

impl ExpertScheduler for SpeculativeTopMSched {
    fn name(&self) -> String {
        format!("Speculative-Top{}", self.margin)
    }

    fn uses_pregate(&self) -> bool {
        true
    }

    fn decoder_topology(&self, dec_blocks: usize) -> Result<GateTopology> {
        pregated_topology(self.level, dec_blocks)
    }

    fn hbm_plan(&self, profile: &MemoryProfile) -> HbmPlan {
        let m = self.margin.max(profile.active_per_block).min(profile.num_experts) as u64;
        HbmPlan {
            resident_bytes: 0,
            // Two widened sets in the pre-gate pipeline plus the iteration's
            // block-0 speculation can be in flight together.
            transient_bytes: (3 * m + profile.active_per_block as u64) * profile.expert_bytes,
            encoder_staging_experts: 2,
        }
    }

    fn admission_transient_bytes(&self, profile: &MemoryProfile) -> u64 {
        let m = self.margin.max(profile.active_per_block).min(profile.num_experts) as u64;
        (self.level as u64 + 2) * m * profile.expert_bytes
    }

    fn on_iteration_start(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Prefetch>) {
        if ctx.phase == Phase::Decode && ctx.token > 0 {
            out.push(Prefetch {
                block: 0,
                set: FetchSet::Listed(self.top_margin()),
                after_gate: false,
            });
        }
    }

    fn on_block_start(&mut self, ctx: &PolicyCtx<'_>, block: usize) -> Residency {
        if ctx.phase == Phase::Decode {
            for &e in ctx.experts(block) {
                self.freq[e] += 1;
            }
            self.freq_version += 1;
        }
        Residency::AwaitPending
    }

    fn on_gate(&mut self, ctx: &PolicyCtx<'_>, block: usize, out: &mut Vec<Prefetch>) {
        match ctx.phase {
            Phase::Prefill => pregated_on_gate(ctx, block, out),
            Phase::Decode => {
                for target in ctx.topology.gates_hosted_at(block) {
                    if target != block {
                        let widened = self.widened(ctx.experts(target));
                        out.push(Prefetch {
                            block: target,
                            set: FetchSet::Listed(widened),
                            after_gate: true,
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// CachePinned
// ---------------------------------------------------------------------

#[derive(Debug)]
struct CachePinnedFactory {
    per_block: usize,
}

impl SchedulerFactory for CachePinnedFactory {
    fn scheduler_name(&self) -> String {
        format!("Cache-Pinned-{}", self.per_block)
    }

    fn build(&self, setup: &SchedulerSetup) -> Box<dyn ExpertScheduler> {
        Box::new(CachePinnedSched {
            per_block: self.per_block.min(setup.num_experts),
            level: setup.level(),
        })
    }
}

/// Frequency-pinned residents + pre-gated tail.
///
/// The `per_block` hottest experts of every MoE block (the lowest Zipf
/// ranks — [`pgmoe_workload::RoutingKind::Zipf`] puts rank 1 at index 0)
/// are held permanently in HBM, paid for in Equation 1's static term;
/// everything else migrates through the pre-gated pipeline. Pinned experts
/// are never fetched, never stall, and never churn the expert cache —
/// a static counterpart to LIFO/LFU/LRU buffering the closed enum had no
/// way to spell.
#[derive(Debug)]
struct CachePinnedSched {
    per_block: usize,
    level: usize,
}

impl ExpertScheduler for CachePinnedSched {
    fn name(&self) -> String {
        format!("Cache-Pinned-{}", self.per_block)
    }

    fn uses_pregate(&self) -> bool {
        true
    }

    fn decoder_topology(&self, dec_blocks: usize) -> Result<GateTopology> {
        pregated_topology(self.level, dec_blocks)
    }

    fn hbm_plan(&self, profile: &MemoryProfile) -> HbmPlan {
        HbmPlan {
            resident_bytes: (profile.moe_layers * self.per_block) as u64 * profile.expert_bytes,
            transient_bytes: 2 * profile.active_per_block as u64 * profile.expert_bytes,
            encoder_staging_experts: 2,
        }
    }

    fn admission_transient_bytes(&self, profile: &MemoryProfile) -> u64 {
        (self.level as u64 + 1) * profile.active_per_block as u64 * profile.expert_bytes
    }

    fn is_resident(&self, key: ExpertKey) -> bool {
        key.expert < self.per_block
    }

    fn cache_admission(&self, key: ExpertKey) -> bool {
        // Pinned experts never transit the cache; everything else may.
        !self.is_resident(key)
    }

    fn on_block_start(&mut self, _ctx: &PolicyCtx<'_>, _block: usize) -> Residency {
        Residency::AwaitPending
    }

    fn on_gate(&mut self, ctx: &PolicyCtx<'_>, block: usize, out: &mut Vec<Prefetch>) {
        pregated_on_gate(ctx, block, out);
    }

    fn plan_fingerprint(&self) -> Option<u64> {
        // Keeps the `Exact` routing-sensitivity default: `is_resident`
        // partitions the routed set by expert id.
        Some(fnv_mix(
            fnv_mix(fingerprint_str("cache-pinned"), self.per_block as u64),
            self.level as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> SchedulerSetup {
        SchedulerSetup {
            dec_blocks: 6,
            enc_blocks: 6,
            num_experts: 64,
            active_per_block: 1,
            token_bytes: 3072,
            gating: GatingMode::Conventional,
            seed: 7,
        }
    }

    fn profile() -> MemoryProfile {
        MemoryProfile { expert_bytes: 100, num_experts: 64, active_per_block: 1, moe_layers: 12 }
    }

    #[test]
    fn paper_names_thread_through_specs() {
        for policy in OffloadPolicy::ALL {
            assert_eq!(policy.scheduler().name(), policy.paper_name());
            let spec: PolicySpec = policy.into();
            assert_eq!(spec.build(&setup()).name(), policy.paper_name());
        }
        assert_eq!(PolicySpec::speculative_top_m(8).name(), "Speculative-Top8");
        assert_eq!(PolicySpec::cache_pinned(4).name(), "Cache-Pinned-4");
    }

    #[test]
    fn paper_hbm_plans_match_equation1() {
        let p = profile();
        let plan = |policy: OffloadPolicy| policy.scheduler().build(&setup()).hbm_plan(&p);
        assert_eq!(plan(OffloadPolicy::GpuOnly).transient_bytes, 0);
        assert_eq!(plan(OffloadPolicy::OnDemand).transient_bytes, 100);
        assert_eq!(plan(OffloadPolicy::Pregated).transient_bytes, 200);
        assert_eq!(plan(OffloadPolicy::PrefetchAll).transient_bytes, 2 * 64 * 100);
        assert!(!OffloadPolicy::GpuOnly.scheduler().build(&setup()).offloads_experts());
    }

    #[test]
    fn pregated_level_drives_admission_bound() {
        let mut s = setup();
        s.gating = GatingMode::Pregated { level: 2 };
        let sched = OffloadPolicy::Pregated.scheduler().build(&s);
        assert_eq!(sched.admission_transient_bytes(&profile()), 3 * 100);
        assert!(sched.uses_pregate());
        assert!(sched.decoder_topology(6).is_ok());
        assert!(sched.decoder_topology(2).is_err(), "level 2 needs > 2 blocks");
    }

    #[test]
    fn speculative_margin_is_clamped_and_widens() {
        let spec = PolicySpec::speculative_top_m(200);
        let sched = spec.build(&setup());
        // Clamped to the expert count.
        assert_eq!(sched.name(), "Speculative-Top64");
        let spec = PolicySpec::speculative_top_m(4);
        let mut sched = spec.build(&setup());
        let topo = sched.decoder_topology(6).unwrap();
        // Before any observation there is no block-0 speculation.
        let ctx = PolicyCtx {
            phase: Phase::Decode,
            token: 0,
            blocks: 6,
            num_experts: 64,
            active_per_block: 1,
            expert_bytes: 100,
            topology: &topo,
            routed: RoutedView::Hidden,
            cache: None,
        };
        let mut out = Vec::new();
        sched.on_iteration_start(&ctx, &mut out);
        assert!(out.is_empty(), "no history yet");
        let later = PolicyCtx { token: 3, ..ctx };
        sched.on_iteration_start(&later, &mut out);
        assert_eq!(out.len(), 1);
        match &out[0].set {
            FetchSet::Listed(l) => assert_eq!(l.len(), 4),
            other => panic!("expected a listed speculation, got {other:?}"),
        }
    }

    #[test]
    fn cache_pinned_pins_low_indices() {
        let sched = PolicySpec::cache_pinned(4).build(&setup());
        assert!(sched.is_resident(ExpertKey { block: 3, expert: 0 }));
        assert!(sched.is_resident(ExpertKey { block: 0, expert: 3 }));
        assert!(!sched.is_resident(ExpertKey { block: 0, expert: 4 }));
        assert!(!sched.cache_admission(ExpertKey { block: 1, expert: 2 }), "pinned skip cache");
        assert!(sched.cache_admission(ExpertKey { block: 1, expert: 9 }));
        let plan = sched.hbm_plan(&profile());
        assert_eq!(plan.resident_bytes, 12 * 4 * 100);
    }
}
