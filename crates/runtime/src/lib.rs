//! # pgmoe-runtime
//!
//! The Pre-gated MoE inference system and its baselines (ISCA 2024), built on
//! the `pgmoe-device` simulator and the `pgmoe-model` model zoo.
//!
//! Expert migration is a *pluggable policy*: the public [`ExpertScheduler`]
//! trait decides what to fetch, when, and for which MoE block, and a single
//! shared decode core executes those decisions for every serving path
//! (batch-1 [`InferenceSim`], continuous-batching [`BatchScheduler`], QoS
//! [`serve_stream`], and the multi-replica [`fleet`] layer with its
//! pluggable [`DispatchPolicy`] and iso-GPU expert-parallel backend
//! [`PolicySpec::expert_parallel`]). The paper's four design points
//! (Section V) ship as built-in schedulers behind the [`OffloadPolicy`]
//! convenience enum:
//!
//! * [`OffloadPolicy::GpuOnly`] — the oracular upper bound: every parameter
//!   in HBM, no migration (OOMs on Switch-Large-128's 105.6 GB).
//! * [`OffloadPolicy::OnDemand`] — HuggingFace-Accelerate-style
//!   fetch-on-demand: the gate must finish before the activated experts are
//!   fetched, serializing selection → migration → execution.
//! * [`OffloadPolicy::PrefetchAll`] — SE-MoE-style prefetch-all: the *entire*
//!   next block's expert set migrates during the current block's execution.
//! * [`OffloadPolicy::Pregated`] — the paper's co-design: the pre-gate at
//!   block `N` selects the experts for block `N+1`, so only the *activated*
//!   experts migrate, overlapped with block `N`'s execution (Figs 7–9).
//!
//! Two schedulers the old closed enum could not express ship alongside
//! them: [`PolicySpec::speculative_top_m`] (top-m prefetch margin, trading
//! link bytes for on-demand miss stalls) and [`PolicySpec::cache_pinned`]
//! (frequency-pinned residents + pre-gated tail). Write your own by
//! implementing [`ExpertScheduler`] + [`SchedulerFactory`] — see
//! `examples/custom_policy.rs` and the [`scheduler`] module docs.
//!
//! [`InferenceSim`] runs a decode workload under a policy and reports
//! per-MoE-block latency (Fig 10), end-to-end throughput (Fig 11), and peak
//! GPU memory (Fig 12, Equation 1). [`ExpertCache`] adds the LIFO/LFU/LRU
//! expert-buffering study (Fig 15), and [`SimOptions::offload_tier`] switches
//! CPU DRAM for SSD (Fig 16).
//!
//! # Example
//!
//! ```
//! use pgmoe_model::ModelConfig;
//! use pgmoe_runtime::{InferenceSim, OffloadPolicy, SimOptions};
//! use pgmoe_workload::DecodeRequest;
//!
//! let cfg = ModelConfig::switch_base(8);
//! let opts = SimOptions::new(OffloadPolicy::Pregated);
//! let report = InferenceSim::new(cfg, opts).run(DecodeRequest::paper_default(), 1)?;
//! assert!(report.tokens_per_sec > 0.0);
//! # Ok::<(), pgmoe_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod cache;
pub mod control;
mod core;
mod engine;
mod error;
pub mod fleet;
mod kv;
mod memory;
mod multi_gpu;
pub mod plan;
mod policy;
mod report;
pub mod scheduler;
mod serve;
pub mod session;

pub use batch::{serve_batched, BatchConfig, BatchScheduler};
pub use cache::{CacheStats, ExpertCache, ExpertKey};
pub use control::{
    ControlAction, ControlOptions, ControlStats, ControlWindow, ControlledFleet, DriftSwitcher,
    FleetController, NoControl, QueueAutoScaler, ReplicaObs,
};
pub use engine::{InferenceSim, RunReport};
pub use error::{Result, RuntimeError};
pub use fleet::{
    serve_cluster, CacheAffinity, DispatchPolicy, FleetConfig, FleetSim, FleetStats,
    JoinShortestQueue, ReplicaView, RequestProfile, RoundRobin,
};
pub use kv::{BlockTable, KvBlockPool, KvPoolStats, KvServeStats, PagedKvConfig};
pub use memory::{kv_bytes, PlacementPlan};
pub use multi_gpu::{simulate_expert_parallel, ClusterConfig, ClusterReport};
pub use plan::{
    CacheProbe, CompiledPlan, PlanBytes, PlanCacheStats, PlanCopy, PlanOp, PlanTrace,
    RoutingSensitivity,
};
pub use policy::{CacheCapacity, CacheConfig, OffloadPolicy, Replacement, SimOptions};
pub use report::{
    csv_block_latencies, csv_fleet_summary, csv_peak_memory, csv_throughputs, LatencySummary,
};
pub use scheduler::{
    ExecPlan, ExpertScheduler, FetchSet, HbmPlan, MemoryProfile, Phase, PolicyCtx, PolicySpec,
    Prefetch, Residency, SchedulerFactory, SchedulerSetup,
};
pub use serve::{serve_stream, ServeStats};
pub use session::{AbortedRequest, Admission, BatchSession, LiveRouting, TokenEvent};
