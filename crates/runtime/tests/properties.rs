//! Property-based tests for runtime invariants: policy orderings, byte
//! accounting, cache behaviour and Equation 1, across randomized
//! model/workload configurations.

use pgmoe_model::ModelConfig;
use pgmoe_runtime::{
    CacheConfig, ExpertCache, ExpertKey, InferenceSim, OffloadPolicy, Replacement, SimOptions,
};
use pgmoe_workload::DecodeRequest;
use proptest::prelude::*;

fn request(output_tokens: usize) -> DecodeRequest {
    DecodeRequest { input_tokens: 16, output_tokens, batch_size: 1 }
}

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        (1usize..5).prop_map(|i| ModelConfig::switch_base(1 << (i + 2))), // 8..64
        Just(ModelConfig::switch_base(128)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper's core ordering holds for any expert count and seed under
    /// sparse (top-1) activation.
    #[test]
    fn policy_latency_ordering_is_invariant(cfg in arb_model(), seed in 0u64..1_000, toks in 2usize..6) {
        let lat = |policy| {
            InferenceSim::new(cfg.clone(), SimOptions::new(policy).with_seed(seed))
                .run(request(toks), 1)
                .unwrap()
                .mean_block_latency()
        };
        let gpu = lat(OffloadPolicy::GpuOnly);
        let pg = lat(OffloadPolicy::Pregated);
        let od = lat(OffloadPolicy::OnDemand);
        let pf = lat(OffloadPolicy::PrefetchAll);
        prop_assert!(gpu <= pg, "GPU-only {gpu} > Pre-gated {pg}");
        prop_assert!(pg < od, "Pre-gated {pg} >= OnDemand {od}");
        prop_assert!(od < pf, "OnDemand {od} >= Prefetch {pf}");
    }

    /// Pre-gated and OnDemand move exactly the same expert bytes (activated
    /// experts only) for identical routing seeds — the co-design changes
    /// *when* bytes move, never *how many*.
    #[test]
    fn pregated_matches_ondemand_bytes(seed in 0u64..1_000, toks in 2usize..6) {
        let cfg = ModelConfig::switch_base(32);
        let busy = |policy| {
            InferenceSim::new(cfg.clone(), SimOptions::new(policy).with_seed(seed))
                .run(request(toks), 1)
                .unwrap()
                .pcie_busy
        };
        let pg = busy(OffloadPolicy::Pregated);
        let od = busy(OffloadPolicy::OnDemand);
        let rel = (pg.as_nanos() as f64 - od.as_nanos() as f64).abs() / od.as_nanos() as f64;
        prop_assert!(rel < 0.02, "PCIe busy differs: {pg} vs {od}");
    }

    /// Measured peak never exceeds HBM capacity, and Equation 1 predicts it
    /// within tolerance whenever the run fits.
    #[test]
    fn equation1_holds_for_any_seed(cfg in arb_model(), seed in 0u64..1_000) {
        for policy in [OffloadPolicy::Pregated, OffloadPolicy::OnDemand, OffloadPolicy::PrefetchAll] {
            let r = InferenceSim::new(cfg.clone(), SimOptions::new(policy).with_seed(seed))
                .run(request(3), 1)
                .unwrap();
            prop_assert!(r.peak_hbm_bytes <= 80 * (1 << 30));
            let rel = (r.peak_hbm_bytes as f64 - r.predicted_peak_bytes as f64).abs()
                / r.predicted_peak_bytes as f64;
            prop_assert!(rel < 0.06, "{policy}: Eq.1 off by {rel}");
        }
    }

    /// Longer generations amortise the serialized first block: Pre-gated's
    /// overhead *relative to GPU-only* (which shares the same KV-cache
    /// growth) never increases with generation length.
    #[test]
    fn pregated_overhead_amortises_with_length(seed in 0u64..200) {
        let cfg = ModelConfig::switch_base(16);
        let ratio = |toks: usize| {
            let pg = InferenceSim::new(cfg.clone(), SimOptions::new(OffloadPolicy::Pregated).with_seed(seed))
                .run(request(toks), 1)
                .unwrap()
                .mean_block_latency();
            let gpu = InferenceSim::new(cfg.clone(), SimOptions::new(OffloadPolicy::GpuOnly).with_seed(seed))
                .run(request(toks), 1)
                .unwrap()
                .mean_block_latency();
            pg.as_nanos() as f64 / gpu.as_nanos() as f64
        };
        prop_assert!(ratio(8) <= ratio(2) * 1.001);
    }

    /// Cache: hit + miss counts equal accesses; hits never exceed capacity
    /// semantics (cold start misses at least the working-set size).
    #[test]
    fn cache_counters_are_consistent(
        capacity in 0usize..32,
        keys in proptest::collection::vec((0usize..4, 0usize..64), 1..200),
    ) {
        for policy in Replacement::ALL {
            let mut cache = ExpertCache::new(capacity, policy);
            let mut distinct = std::collections::HashSet::new();
            for &(block, expert) in &keys {
                cache.access(ExpertKey { block, expert });
                distinct.insert((block, expert));
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, keys.len() as u64);
            prop_assert!(stats.misses >= distinct.len().min(capacity.max(1)) as u64 || capacity == 0);
            prop_assert!(cache.len() <= capacity);
        }
    }

    /// A cached run is never slower than an uncached one under OnDemand
    /// (cache hits only remove PCIe work).
    #[test]
    fn cache_never_hurts_ondemand(seed in 0u64..200, fraction in 0.05f64..0.5) {
        let cfg = ModelConfig::switch_base(32);
        let tput = |cache: Option<CacheConfig>| {
            let mut opts = SimOptions::new(OffloadPolicy::OnDemand)
                .with_seed(seed)
                .with_routing(pgmoe_workload::RoutingKind::Zipf { s: 1.4 });
            if let Some(c) = cache {
                opts = opts.with_cache(c);
            }
            InferenceSim::new(cfg.clone(), opts).run(request(6), 1).unwrap().tokens_per_sec
        };
        let plain = tput(None);
        let cached = tput(Some(CacheConfig::new(fraction, Replacement::Lru)));
        prop_assert!(cached >= plain * 0.999, "cache hurt: {plain} -> {cached}");
    }
}
