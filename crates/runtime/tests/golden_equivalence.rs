//! Equivalence gate for the policy-trait redesign.
//!
//! The `OffloadPolicy` enum used to be matched deep inside two hand-written
//! decode loops; it is now four `ExpertScheduler` trait impls running
//! through one shared decode core. This test pins the refactor: every
//! built-in scheduler must reproduce the **legacy enum path's `RunReport`
//! bit-exactly** — per-block latencies (hashed), total time, TTFT, measured
//! and predicted peak HBM, GPU/PCIe busy time, and migrated bytes — for all
//! 4 policies × {DDR, SSD} × {f32, int8}, plus a cached Zipf row per policy
//! (hit/miss/eviction counters included).
//!
//! The constants below were captured by running the pre-refactor engine
//! (commit `5cb1dc9`) on `Switch-Base-32`, request 32→8, default seed. If
//! this test fails, the shared core's event wiring has drifted from the
//! paper's cost model — fix the core, do not re-capture, unless the change
//! to the cost model is intentional and documented.

use pgmoe_model::{ExpertPrecision, ModelConfig};
use pgmoe_runtime::{
    serve_batched, BatchConfig, CacheConfig, InferenceSim, OffloadPolicy, Replacement, RunReport,
    SimOptions,
};
use pgmoe_workload::{ArrivalProcess, ArrivalStream, ArrivedRequest, DecodeRequest, RoutingKind};

/// FNV-1a over the little-endian nanos of every block latency.
fn latency_hash(report: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for d in &report.block_latencies {
        for b in d.as_nanos().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[derive(Debug, Clone, Copy)]
enum Tier {
    Ddr,
    Ssd,
}

#[derive(Debug)]
struct Golden {
    lat_hash: u64,
    total_ns: u64,
    ttft_ns: u64,
    peak: u64,
    predicted: u64,
    gpu_busy_ns: u64,
    pcie_busy_ns: u64,
    fetch_bytes: u64,
    /// `(hits, misses, evictions)` for the cached Zipf rows.
    cache: Option<(u64, u64, u64)>,
}

fn request() -> DecodeRequest {
    DecodeRequest { input_tokens: 32, output_tokens: 8, batch_size: 1 }
}

fn check(policy: OffloadPolicy, tier: Tier, precision: ExpertPrecision, golden: Golden) {
    let mut opts = SimOptions::new(policy);
    if matches!(tier, Tier::Ssd) {
        opts = opts.with_ssd_offload();
    }
    if precision != ExpertPrecision::F32 {
        opts = opts.with_expert_precision(precision);
    }
    if golden.cache.is_some() {
        opts = opts
            .with_routing(RoutingKind::Zipf { s: 1.2 })
            .with_cache(CacheConfig::new(0.2, Replacement::Lru));
    }
    let r = InferenceSim::new(ModelConfig::switch_base(32), opts).run(request(), 1).expect("run");
    let tag = format!("{policy} / {tier:?} / {precision}");
    assert_eq!(latency_hash(&r), golden.lat_hash, "{tag}: block latencies diverged");
    assert_eq!(r.total_time.as_nanos(), golden.total_ns, "{tag}: total time");
    assert_eq!(r.time_to_first_token.as_nanos(), golden.ttft_ns, "{tag}: TTFT");
    assert_eq!(r.peak_hbm_bytes, golden.peak, "{tag}: measured peak");
    assert_eq!(r.predicted_peak_bytes, golden.predicted, "{tag}: Eq.1 prediction");
    assert_eq!(r.gpu_busy.as_nanos(), golden.gpu_busy_ns, "{tag}: GPU busy");
    assert_eq!(r.pcie_busy.as_nanos(), golden.pcie_busy_ns, "{tag}: PCIe busy");
    assert_eq!(r.expert_fetch_bytes, golden.fetch_bytes, "{tag}: migrated bytes");
    assert_eq!(r.policy, policy.paper_name(), "{tag}: policy name threading");
    if let Some((hits, misses, evictions)) = golden.cache {
        let cs = r.cache_stats.expect("cache stats");
        assert_eq!((cs.hits, cs.misses, cs.evictions), (hits, misses, evictions), "{tag}: cache");
    }
}

#[test]
fn trait_schedulers_reproduce_legacy_runreports_bit_exactly() {
    let g = check;
    // 4 policies × {DDR, SSD} × {f32, int8}, captured from the legacy path.
    g(
        OffloadPolicy::GpuOnly,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x9136c725be126805,
            total_ns: 112414992,
            ttft_ns: 59836704,
            peak: 7921047552,
            predicted: 7921047552,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 0,
            fetch_bytes: 0,
            cache: None,
        },
    );
    g(
        OffloadPolicy::GpuOnly,
        Tier::Ddr,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0x71f92e05725c6795,
            total_ns: 63901968,
            ttft_ns: 23451936,
            peak: 2598475776,
            predicted: 2598475776,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 0,
            fetch_bytes: 0,
            cache: None,
        },
    );
    g(
        OffloadPolicy::GpuOnly,
        Tier::Ssd,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x9136c725be126805,
            total_ns: 112414992,
            ttft_ns: 59836704,
            peak: 7921047552,
            predicted: 7921047552,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 0,
            fetch_bytes: 0,
            cache: None,
        },
    );
    g(
        OffloadPolicy::GpuOnly,
        Tier::Ssd,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0x71f92e05725c6795,
            total_ns: 63901968,
            ttft_ns: 23451936,
            peak: 2598475776,
            predicted: 2598475776,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 0,
            fetch_bytes: 0,
            cache: None,
        },
    );
    g(
        OffloadPolicy::Pregated,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0xbc3fd438c36023bd,
            total_ns: 145582744,
            ttft_ns: 88805688,
            peak: 709859328,
            predicted: 709859328,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 100770432,
            fetch_bytes: 3170893824,
            cache: None,
        },
    );
    g(
        OffloadPolicy::Pregated,
        Tier::Ddr,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0xb64ed6bdf465f6d5,
            total_ns: 70503064,
            ttft_ns: 28886328,
            peak: 682137600,
            predicted: 682137600,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 28000896,
            fetch_bytes: 842268672,
            cache: None,
        },
    );
    g(
        OffloadPolicy::Pregated,
        Tier::Ssd,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x3c245c2fd2e5d9b9,
            total_ns: 1087460440,
            ttft_ns: 811516240,
            peak: 709859328,
            predicted: 709859328,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 1068724608,
            fetch_bytes: 3170893824,
            cache: None,
        },
    );
    g(
        OffloadPolicy::Pregated,
        Tier::Ssd,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0xd08011584a10c581,
            total_ns: 303166552,
            ttft_ns: 223295824,
            peak: 682137600,
            predicted: 682137600,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 292516224,
            fetch_bytes: 842268672,
            cache: None,
        },
    );
    g(
        OffloadPolicy::OnDemand,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0xed863c5fd680ec25,
            total_ns: 213185424,
            ttft_ns: 135414528,
            peak: 690984960,
            predicted: 690984960,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 100770432,
            fetch_bytes: 3170893824,
            cache: None,
        },
    );
    g(
        OffloadPolicy::OnDemand,
        Tier::Ddr,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0x65252784deed65f5,
            total_ns: 91902864,
            ttft_ns: 44452608,
            peak: 677124096,
            predicted: 677124096,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 28000896,
            fetch_bytes: 842268672,
            cache: None,
        },
    );
    g(
        OffloadPolicy::OnDemand,
        Tier::Ssd,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x5760d6925239eebd,
            total_ns: 1181139600,
            ttft_ns: 861380160,
            peak: 690984960,
            predicted: 690984960,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 1068724608,
            fetch_bytes: 3170893824,
            cache: None,
        },
    );
    g(
        OffloadPolicy::OnDemand,
        Tier::Ssd,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0xf81a728bfec752bd,
            total_ns: 356418192,
            ttft_ns: 242839104,
            peak: 677124096,
            predicted: 677124096,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 292516224,
            fetch_bytes: 842268672,
            cache: None,
        },
    );
    g(
        OffloadPolicy::PrefetchAll,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x1b00789ed40dc544,
            total_ns: 1036901088,
            ttft_ns: 230737632,
            peak: 1880070144,
            predicted: 1880070144,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 1036495872,
            fetch_bytes: 32614907904,
            cache: None,
        },
    );
    g(
        OffloadPolicy::PrefetchAll,
        Tier::Ddr,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0x118b25cac89d7e83,
            total_ns: 288125664,
            ttft_ns: 64118496,
            peak: 992974848,
            predicted: 992974848,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 288009216,
            fetch_bytes: 8663334912,
            cache: None,
        },
    );
    g(
        OffloadPolicy::PrefetchAll,
        Tier::Ssd,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0xec8ad03e825d997a,
            total_ns: 10993001184,
            ttft_ns: 2443204320,
            peak: 1880070144,
            predicted: 1880070144,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 10992595968,
            fetch_bytes: 32614907904,
            cache: None,
        },
    );
    g(
        OffloadPolicy::PrefetchAll,
        Tier::Ssd,
        ExpertPrecision::Int8,
        Golden {
            lat_hash: 0xb2525adbe6f5330f,
            total_ns: 3008854752,
            ttft_ns: 668724960,
            peak: 992974848,
            predicted: 992974848,
            gpu_busy_ns: 63901968,
            pcie_busy_ns: 3008738304,
            fetch_bytes: 8663334912,
            cache: None,
        },
    );
}

/// Golden metrics for the continuous-batching path (legacy
/// `BatchScheduler` loops, captured at commit `5cb1dc9`): one FNV hash
/// over every request's latency + TTFT + queueing delay, plus token,
/// peak-HBM, and migrated-byte totals.
#[derive(Debug)]
struct BatchGolden {
    qos_hash: u64,
    total_tokens: usize,
    peak: u64,
    fetch_bytes: u64,
}

fn check_batched(policy: OffloadPolicy, int8: bool, ssd: bool, golden: BatchGolden) {
    let req = DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 };
    let arrivals: Vec<ArrivedRequest> =
        ArrivalStream::new(ArrivalProcess::Poisson { rate_per_sec: 50.0 }, req, 1, 3)
            .take(10)
            .collect();
    let mut opts = SimOptions::new(policy);
    if int8 {
        opts = opts.with_expert_precision(ExpertPrecision::Int8);
    }
    if ssd {
        opts = opts.with_ssd_offload();
    }
    let s = serve_batched(ModelConfig::switch_base(32), opts, BatchConfig::new(4), arrivals)
        .expect("serve");
    let mut h: u64 = 0xcbf29ce484222325;
    for d in s.request_latencies.iter().chain(&s.ttfts).chain(&s.queueing_delays) {
        for b in d.as_nanos().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    let tag = format!("batched {policy} int8={int8} ssd={ssd}");
    assert_eq!(h, golden.qos_hash, "{tag}: per-request QoS diverged");
    assert_eq!(s.total_tokens, golden.total_tokens, "{tag}: tokens");
    assert_eq!(s.peak_hbm_bytes, golden.peak, "{tag}: peak HBM");
    assert_eq!(s.expert_fetch_bytes, golden.fetch_bytes, "{tag}: migrated bytes");
    assert_eq!(s.policy, policy.paper_name(), "{tag}: policy name threading");
}

#[test]
fn trait_schedulers_reproduce_legacy_batched_serving_bit_exactly() {
    // The continuous-batching scheduler's legacy per-policy decode/prefill
    // loops were deleted too; the shared core must reproduce their
    // ServeStats exactly (at the default gating level, where the paths are
    // defined to coincide).
    let b = check_batched;
    b(
        OffloadPolicy::GpuOnly,
        false,
        false,
        BatchGolden {
            qos_hash: 0xf2b75cbbd6edf7e3,
            total_tokens: 42,
            peak: 7928272896,
            fetch_bytes: 0,
        },
    );
    b(
        OffloadPolicy::Pregated,
        false,
        false,
        BatchGolden {
            qos_hash: 0xed335ccc070cbac,
            total_tokens: 42,
            peak: 1151023104,
            fetch_bytes: 16382951424,
        },
    );
    b(
        OffloadPolicy::OnDemand,
        false,
        false,
        BatchGolden {
            qos_hash: 0x6a7a61ffa7398595,
            total_tokens: 42,
            peak: 1151023104,
            fetch_bytes: 16382951424,
        },
    );
    b(
        OffloadPolicy::PrefetchAll,
        false,
        false,
        BatchGolden {
            qos_hash: 0xb21d591234f25bb9,
            total_tokens: 42,
            peak: 1887295488,
            fetch_bytes: 68853694464,
        },
    );
    b(
        OffloadPolicy::Pregated,
        true,
        false,
        BatchGolden {
            qos_hash: 0xfdab66de98df661,
            total_tokens: 42,
            peak: 804501504,
            fetch_bytes: 4527194112,
        },
    );
    b(
        OffloadPolicy::Pregated,
        false,
        true,
        BatchGolden {
            qos_hash: 0xfcea6b1e90edecf0,
            total_tokens: 42,
            peak: 1151023104,
            fetch_bytes: 16382951424,
        },
    );
}

#[test]
fn trait_schedulers_reproduce_legacy_cache_interactions_bit_exactly() {
    let g = check;
    // Zipf(1.2) routing + 20 % LRU cache: the cache-touching order of the
    // shared core must match the legacy loops exactly, or hit/miss/eviction
    // counters (and therefore latencies) drift.
    g(
        OffloadPolicy::GpuOnly,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x9136c725be126805,
            total_ns: 112414992,
            ttft_ns: 59836704,
            peak: 9374373888,
            predicted: 9374373888,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 0,
            fetch_bytes: 0,
            cache: Some((0, 0, 0)),
        },
    );
    g(
        OffloadPolicy::Pregated,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0xbb69857aa884b239,
            total_ns: 144383096,
            ttft_ns: 88805688,
            peak: 2163185664,
            predicted: 2163185664,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 91173248,
            fetch_bytes: 2868903936,
            cache: Some((16, 152, 75)),
        },
    );
    g(
        OffloadPolicy::OnDemand,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x8a0281f0d627f765,
            total_ns: 203588240,
            ttft_ns: 135414528,
            peak: 2144311296,
            predicted: 2144311296,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 91173248,
            fetch_bytes: 2868903936,
            cache: Some((16, 152, 75)),
        },
    );
    g(
        OffloadPolicy::PrefetchAll,
        Tier::Ddr,
        ExpertPrecision::F32,
        Golden {
            lat_hash: 0x1b00789ed40dc544,
            total_ns: 1036901088,
            ttft_ns: 230737632,
            peak: 3333396480,
            predicted: 3333396480,
            gpu_busy_ns: 112414992,
            pcie_busy_ns: 1036495872,
            fetch_bytes: 32614907904,
            cache: Some((0, 1728, 1651)),
        },
    );
}
