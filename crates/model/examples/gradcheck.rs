//! Full-network directional-derivative gradient check.
//!
//! Top-1 routing makes the loss piecewise smooth and f32 makes pointwise
//! central differences noisy, so this checks the *directional* derivative
//! g.v along a random direction v over the position embedding, excluding
//! trials where the perturbation flips a routing decision.
use pgmoe_model::net::{SwitchNet, SwitchNetConfig};
use pgmoe_model::GatingMode;
use pgmoe_tensor::nn::Layer;
use pgmoe_tensor::{init, ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn routes(net: &SwitchNet, tokens: &[usize]) -> Vec<Vec<usize>> {
    net.forward_inference_traced(tokens).1.iter().map(|d| d.expert.clone()).collect()
}

fn loss(net: &SwitchNet, tokens: &[usize], targets: &[usize]) -> f32 {
    let l = net.forward_inference(tokens);
    ops::cross_entropy_from_logits(&l.gather_rows(&[4, 5]), targets).0
}

fn main() {
    let tokens = [1usize, 2, 3, 4, 5, 0];
    let targets = [7usize, 9];
    for mode in [
        GatingMode::Conventional,
        GatingMode::Pregated { level: 1 },
        GatingMode::Pregated { level: 2 },
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SwitchNetConfig {
            vocab: 16,
            d_model: 8,
            d_ff: 16,
            num_blocks: 3,
            num_experts: 4,
            seq_len: 6,
            mode,
        };
        let mut net = SwitchNet::new(cfg, &mut rng);
        net.zero_grad();
        let logits = net.forward(&tokens);
        let (_, dans) = ops::cross_entropy_from_logits(&logits.gather_rows(&[4, 5]), &targets);
        let mut dlogits = Tensor::zeros([6, 16]);
        dlogits.scatter_add_rows(&[4, 5], &dans);
        net.backward(&dlogits);
        let g = net.pos_emb().grad.clone();
        let base = routes(&net, &tokens);

        let mut rng2 = StdRng::seed_from_u64(99);
        let mut ok = 0;
        let mut skipped = 0;
        for trial in 0..20 {
            let v = init::normal([6, 8], 0.0, 1.0, &mut rng2);
            let gv: f32 = g.mul(&v).sum();
            let eps = 3e-4f32;
            let orig = net.pos_emb().value.clone();
            net.pos_emb_mut().value = orig.add(&v.scale(eps));
            let flipped_p = routes(&net, &tokens) != base;
            let lp = loss(&net, &tokens, &targets);
            net.pos_emb_mut().value = orig.sub(&v.scale(eps));
            let flipped_m = routes(&net, &tokens) != base;
            let lm = loss(&net, &tokens, &targets);
            net.pos_emb_mut().value = orig;
            if flipped_p || flipped_m {
                skipped += 1;
                continue;
            }
            let numeric = (lp - lm) / (2.0 * eps);
            let diff = (gv - numeric).abs();
            let scale = gv.abs().max(numeric.abs()).max(0.1);
            assert!(
                diff / scale < 0.15,
                "{mode:?} trial {trial}: analytic {gv} vs numeric {numeric}"
            );
            ok += 1;
        }
        println!("{mode:?}: {ok} directional checks passed, {skipped} skipped (flips)");
        assert!(ok >= 8);
    }
    println!("gradient check PASSED");
}
