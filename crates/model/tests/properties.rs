//! Property-based tests for model-crate invariants: gate topology laws,
//! parameter accounting and the trainable net's routing behaviour.

use pgmoe_model::net::{SwitchNet, SwitchNetConfig};
use pgmoe_model::{GateTopology, GatingMode, ModelConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every topology routes every block exactly once, from a source that is
    /// never after the target — the well-formedness law of Fig 6.
    #[test]
    fn topology_routes_each_block_once(num_blocks in 1usize..16, level in 0usize..5) {
        prop_assume!(level == 0 || level < num_blocks);
        let mode = if level == 0 { GatingMode::Conventional } else { GatingMode::Pregated { level } };
        let topo = GateTopology::new(num_blocks, mode);
        let mut routed = vec![0usize; num_blocks];
        for host in 0..num_blocks {
            for target in topo.gates_hosted_at(host) {
                prop_assert!(topo.route_source(target) == host);
                routed[target] += 1;
            }
        }
        prop_assert!(routed.iter().all(|&c| c == 1));
        for b in 0..num_blocks {
            prop_assert!(topo.route_source(b) <= b);
            prop_assert_eq!(topo.is_preselected(b), topo.route_source(b) < b);
        }
        prop_assert_eq!(topo.total_gates(), num_blocks);
    }

    /// Under level-N pre-gating the first N blocks self-route and the last N
    /// blocks host no gates.
    #[test]
    fn pregated_edges(num_blocks in 2usize..16, level in 1usize..5) {
        prop_assume!(level < num_blocks);
        let topo = GateTopology::new(num_blocks, GatingMode::Pregated { level });
        for b in 0..level {
            prop_assert_eq!(topo.route_source(b), b);
        }
        // The last `level` blocks host no pre-gates for later targets; when
        // the stack is shallow (num_blocks < 2·level) a block can be in both
        // the "first" and "last" windows and still hosts its own first gate.
        for b in (num_blocks - level)..num_blocks {
            let hosted = topo.gates_hosted_at(b);
            if b < level {
                prop_assert_eq!(hosted, vec![b]);
            } else {
                prop_assert!(hosted.is_empty());
            }
        }
    }

    /// Parameter accounting is monotone and decomposes exactly.
    #[test]
    fn capacity_accounting_laws(experts_log in 3usize..9) {
        let experts = 1usize << experts_log;
        let cfg = ModelConfig::switch_base(experts);
        prop_assert_eq!(cfg.total_params(), cfg.moe_params() + cfg.non_moe_params());
        // Doubling experts roughly doubles MoE params (gates add slack).
        let double = ModelConfig::switch_base(experts * 2);
        let ratio = double.moe_params() as f64 / cfg.moe_params() as f64;
        prop_assert!((1.99..2.01).contains(&ratio), "ratio {ratio}");
        // Non-MoE params don't depend on the expert count.
        prop_assert_eq!(cfg.non_moe_params(), double.non_moe_params());
    }

    /// Training forward and inference forward agree exactly for every gate
    /// topology (same weights, same routing, same numerics).
    #[test]
    fn train_and_inference_forward_agree(seed in 0u64..500, num_blocks in 2usize..5) {
        let mode_strategy_level = seed as usize % num_blocks; // 0 = conventional
        let mode = if mode_strategy_level == 0 {
            GatingMode::Conventional
        } else {
            GatingMode::Pregated { level: mode_strategy_level }
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SwitchNetConfig {
            vocab: 24,
            d_model: 8,
            d_ff: 16,
            num_blocks,
            num_experts: 4,
            seq_len: 6,
            mode,
        };
        let mut net = SwitchNet::new(cfg, &mut rng);
        let tokens = [1usize, 3, 5, 7, 9, 11];
        let train_out = net.forward(&tokens);
        let infer_out = net.forward_inference(&tokens);
        prop_assert_eq!(train_out, infer_out);
    }

    /// Rewiring never changes parameters, and rewiring back restores the
    /// original routing decisions.
    #[test]
    fn rewire_round_trip(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SwitchNetConfig::small(24, 6, 4, GatingMode::Conventional);
        let mut net = SwitchNet::new(cfg, &mut rng);
        let tokens = [2usize, 4, 6, 8, 10, 1];
        let (_, before) = net.forward_inference_traced(&tokens);
        net.rewire(GatingMode::Pregated { level: 1 });
        net.rewire(GatingMode::Conventional);
        let (_, after) = net.forward_inference_traced(&tokens);
        for (a, b) in before.iter().zip(&after) {
            prop_assert_eq!(&a.expert, &b.expert);
        }
    }

    /// Gate probabilities of selected experts are valid probabilities and
    /// equal the max of each softmax row.
    #[test]
    fn selected_probs_are_row_maxima(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SwitchNetConfig::small(24, 6, 8, GatingMode::Pregated { level: 1 });
        let net = SwitchNet::new(cfg, &mut rng);
        let tokens = [1usize, 2, 3, 4, 5, 6];
        let (_, routes) = net.forward_inference_traced(&tokens);
        for dec in routes {
            for (t, &p) in dec.prob.iter().enumerate() {
                prop_assert!((0.0..=1.0).contains(&p));
                let row_max = dec.probs_full.row(t).iter().cloned().fold(f32::MIN, f32::max);
                prop_assert!((p - row_max).abs() < 1e-6);
            }
        }
    }
}
