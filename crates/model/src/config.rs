//! The paper's model zoo (Table I) as analytic configurations.

/// Numeric precision of stored parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// 32-bit floats — Table I's capacity numbers (7.5 B params = 30 GB).
    Fp32,
    /// 16-bit floats.
    Fp16,
    /// Post-quantization storage at ~0.55 B/param, the paper's Switch-XXL
    /// configuration ("217 GB in model size after quantization is applied",
    /// Fig 16).
    Quantized,
}

impl Precision {
    /// Bytes per parameter.
    pub fn bytes_per_param(self) -> f64 {
        match self {
            Precision::Fp32 => 4.0,
            Precision::Fp16 => 2.0,
            Precision::Quantized => 0.55,
        }
    }
}

/// Storage precision of *expert* parameters — the unit every offloading
/// policy migrates and the dominant term of Equation 1's peak-memory law.
///
/// Orthogonal to [`Precision`]: `precision` is the paper's analytic
/// storage precision for the whole model (Table I / Fig 16 accounting),
/// while `expert_precision` selects how the runtime stores and migrates
/// the expert FFNs specifically. [`ExpertPrecision::F32`] (the default)
/// defers to the analytic `precision`, so every Table I number is
/// unchanged; `F16`/`Int8` shrink each expert 2–3.8×, and the sub-byte
/// `Q4`/`Q4K` formats reach 7.1×/6.9× versus f32 — fetches get
/// proportionally faster and proportionally more experts fit any HBM
/// budget.
///
/// # Example: quantize → checkpoint → serve
///
/// The precision flows through the whole stack from this one enum: the
/// numeric net stores its experts in the matching
/// [`pgmoe_tensor::QuantMode`], checkpoints tag every expert bank with it,
/// and the runtime's placement/fetch accounting scales by
/// [`ExpertPrecision::bytes_per_param`].
///
/// ```
/// use pgmoe_model::net::{SwitchNet, SwitchNetConfig};
/// use pgmoe_model::{checkpoint, ExpertPrecision, GatingMode, ModelConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Quantize a numeric net's experts to Q4.
/// let cfg = SwitchNetConfig::small(64, 8, 4, GatingMode::Pregated { level: 1 });
/// let mut net = SwitchNet::new(cfg.clone(), &mut StdRng::seed_from_u64(7));
/// net.quantize_experts(ExpertPrecision::Q4);
///
/// // Checkpoint it (format v3 carries the Q4-tagged expert banks) …
/// let mut buf = Vec::new();
/// checkpoint::save_params_quantized(&mut net, ExpertPrecision::Q4, &mut buf).unwrap();
/// let mut restored = SwitchNet::new(cfg, &mut StdRng::seed_from_u64(999));
/// checkpoint::load_params_quantized(&mut restored, ExpertPrecision::Q4, &mut buf.as_slice())
///     .unwrap();
///
/// // … and serve: the analytic device model now migrates 4.5-bit experts.
/// let model = ModelConfig::switch_base(4).with_expert_precision(ExpertPrecision::Q4);
/// assert!(model.expert_bytes() < ModelConfig::switch_base(4).expert_bytes() / 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ExpertPrecision {
    /// Full-precision experts (defers to the model's analytic
    /// [`ModelConfig::precision`] for byte accounting).
    F32,
    /// IEEE binary16 expert storage: 2 bytes per parameter.
    F16,
    /// Per-group symmetric int8 (group of [`ExpertPrecision::INT8_GROUP`]
    /// weights per f32 scale): 1 + 4/group ≈ 1.0625 bytes per parameter.
    Int8,
    /// Sub-byte Q4_0 (32-wide blocks, one f16 scale each, packed nibbles):
    /// 18/32 = 0.5625 bytes per parameter — 4.5 bits per weight.
    Q4,
    /// Sub-byte K-quant Q4K (256-wide super-blocks with per-sub-block u8
    /// scale/min): 148/256 = 0.578125 bytes per parameter — 4.625 bits per
    /// weight, better tails than Q4_0 on skewed expert rows.
    Q4K,
}

impl ExpertPrecision {
    /// All precisions, in sweep order.
    pub const ALL: [ExpertPrecision; 5] = [
        ExpertPrecision::F32,
        ExpertPrecision::F16,
        ExpertPrecision::Int8,
        ExpertPrecision::Q4,
        ExpertPrecision::Q4K,
    ];

    /// Int8 quantization group used for byte accounting and checkpointing
    /// (matches `pgmoe_tensor::quant::DEFAULT_INT8_GROUP`).
    pub const INT8_GROUP: usize = 64;

    /// Stored bytes per expert parameter; `base` is the model's analytic
    /// precision, which `F32` defers to.
    pub fn bytes_per_param(self, base: Precision) -> f64 {
        match self {
            ExpertPrecision::F32 => base.bytes_per_param(),
            ExpertPrecision::F16 => 2.0,
            ExpertPrecision::Int8 => 1.0 + 4.0 / Self::INT8_GROUP as f64,
            // 16 payload bytes + one f16 scale per 32-wide block.
            ExpertPrecision::Q4 => 18.0 / 32.0,
            // 128 payload bytes + 2×f16 + 2×8×u8 per 256-wide super-block.
            ExpertPrecision::Q4K => 148.0 / 256.0,
        }
    }

    /// The numeric quantization mode behind this precision (`None` for
    /// f32: nothing to quantize).
    pub fn quant_mode(self) -> Option<pgmoe_tensor::QuantMode> {
        match self {
            ExpertPrecision::F32 => None,
            ExpertPrecision::F16 => Some(pgmoe_tensor::QuantMode::F16),
            ExpertPrecision::Int8 => {
                Some(pgmoe_tensor::QuantMode::Int8 { group: Self::INT8_GROUP })
            }
            ExpertPrecision::Q4 => Some(pgmoe_tensor::QuantMode::Q4),
            ExpertPrecision::Q4K => Some(pgmoe_tensor::QuantMode::Q4K),
        }
    }
}

impl std::fmt::Display for ExpertPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExpertPrecision::F32 => "f32",
            ExpertPrecision::F16 => "f16",
            ExpertPrecision::Int8 => "int8",
            ExpertPrecision::Q4 => "q4",
            ExpertPrecision::Q4K => "q4k",
        })
    }
}

/// An encoder-decoder SwitchTransformer (or dense T5) configuration.
///
/// Layer counting follows Table I: `moe_layers()` is the paper's "Layers"
/// column — the number of MoE blocks in the whole model. Switch replaces
/// every other FFN with an MoE block (`moe_every = 2`), so Switch-Base
/// (12 encoder + 12 decoder transformer layers) has 12 MoE blocks and
/// Switch-Large (24 + 24) has 24.
///
/// # Example
///
/// ```
/// use pgmoe_model::ModelConfig;
///
/// let cfg = ModelConfig::switch_base(128);
/// assert_eq!(cfg.moe_layers(), 12);
/// let billions = cfg.total_params() as f64 / 1e9;
/// assert!((7.0..8.0).contains(&billions)); // Table I: 7.5 B
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Human-readable name ("Switch-Base-128").
    pub name: String,
    /// Hidden width.
    pub d_model: usize,
    /// Expert/FFN inner width.
    pub d_ff: usize,
    /// Attention heads (affects FLOPs accounting only).
    pub num_heads: usize,
    /// Encoder transformer layers.
    pub encoder_layers: usize,
    /// Decoder transformer layers.
    pub decoder_layers: usize,
    /// An MoE block replaces every `moe_every`-th FFN (2 for Switch; a value
    /// larger than `encoder_layers + decoder_layers` yields a dense model).
    pub moe_every: usize,
    /// Experts per MoE block (1 for dense).
    pub num_experts: usize,
    /// Experts activated per token (Switch: top-1).
    pub top_k: usize,
    /// Vocabulary size (T5: 32 128).
    pub vocab: usize,
    /// Parameter storage precision.
    pub precision: Precision,
    /// Storage precision of the expert FFNs (the migrated/cached unit).
    /// Defaults to [`ExpertPrecision::F32`], which defers to `precision`.
    pub expert_precision: ExpertPrecision,
}

impl ModelConfig {
    /// Switch-Base with the given expert count (Table I rows 1–3, plus the
    /// 256-expert point of Fig 12).
    pub fn switch_base(num_experts: usize) -> Self {
        ModelConfig {
            name: format!("Switch-Base-{num_experts}"),
            d_model: 768,
            d_ff: 3072,
            num_heads: 12,
            encoder_layers: 12,
            decoder_layers: 12,
            moe_every: 2,
            num_experts,
            top_k: 1,
            vocab: 32_128,
            precision: Precision::Fp32,
            expert_precision: ExpertPrecision::F32,
        }
    }

    /// Switch-Large-128 (Table I row 4).
    pub fn switch_large_128() -> Self {
        ModelConfig {
            name: "Switch-Large-128".to_string(),
            d_model: 1024,
            d_ff: 4096,
            num_heads: 16,
            encoder_layers: 24,
            decoder_layers: 24,
            moe_every: 2,
            num_experts: 128,
            top_k: 1,
            vocab: 32_128,
            precision: Precision::Fp32,
            expert_precision: ExpertPrecision::F32,
        }
    }

    /// Switch-XXL: Switch-Large with feature dimension and head count scaled
    /// 4×, quantized storage — the 217 GB model of Fig 16.
    pub fn switch_xxl() -> Self {
        ModelConfig {
            name: "Switch-XXL-128".to_string(),
            d_model: 4096,
            d_ff: 16_384,
            num_heads: 64,
            encoder_layers: 24,
            decoder_layers: 24,
            moe_every: 2,
            num_experts: 128,
            top_k: 1,
            vocab: 32_128,
            precision: Precision::Quantized,
            expert_precision: ExpertPrecision::F32,
        }
    }

    /// The FLOPs-equivalent dense T5 (Fig 2/3's "Dense" bars): identical
    /// stack with exactly one expert per FFN position.
    pub fn dense_equivalent(&self) -> ModelConfig {
        ModelConfig {
            name: format!("{}-dense-T5", self.name),
            moe_every: 1,
            num_experts: 1,
            top_k: 1,
            ..self.clone()
        }
    }

    /// Changes stored precision (builder style).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Changes expert storage precision (builder style) — the precision
    /// axis of the offloading experiments: every `expert_bytes()`-derived
    /// quantity (fetch latency, Equation-1 transients, cache capacity)
    /// scales with it.
    pub fn with_expert_precision(mut self, precision: ExpertPrecision) -> Self {
        self.expert_precision = precision;
        self
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Total transformer layers (encoder + decoder).
    pub fn total_layers(&self) -> usize {
        self.encoder_layers + self.decoder_layers
    }

    /// Number of MoE blocks in the whole model (Table I's "Layers" column).
    pub fn moe_layers(&self) -> usize {
        self.total_layers() / self.moe_every
    }

    /// Number of MoE blocks executed per decoder iteration.
    pub fn decoder_moe_layers(&self) -> usize {
        self.decoder_layers / self.moe_every
    }

    /// Number of dense (non-MoE) FFN positions in the whole model.
    pub fn dense_ffn_layers(&self) -> usize {
        self.total_layers() - self.moe_layers()
    }

    // ------------------------------------------------------------------
    // Parameter accounting (Table I, Fig 3)
    // ------------------------------------------------------------------

    /// Parameters of a single expert FFN (two projection matrices).
    pub fn expert_params(&self) -> u64 {
        2 * self.d_model as u64 * self.d_ff as u64
    }

    /// Bytes of a single expert at the configured *expert* precision — the
    /// unit of CPU→GPU migration in every offloading design. With the
    /// default [`ExpertPrecision::F32`] this is the analytic-precision
    /// byte count of Table I; at `F16`/`Int8` each expert shrinks 2–3.8×
    /// and every fetch, transient, and cache slot shrinks with it.
    pub fn expert_bytes(&self) -> u64 {
        (self.expert_params() as f64 * self.expert_precision.bytes_per_param(self.precision))
            .round() as u64
    }

    /// Parameters of one gate/pre-gate router (`d_model × num_experts`).
    pub fn gate_params(&self) -> u64 {
        self.d_model as u64 * self.num_experts as u64
    }

    /// All MoE parameters: experts + gate functions (the paper's Fig 3
    /// "MoE parameters" series).
    pub fn moe_params(&self) -> u64 {
        self.moe_layers() as u64
            * (self.num_experts as u64 * self.expert_params() + self.gate_params())
    }

    /// All non-MoE parameters: embeddings, attention, dense FFNs, norms.
    pub fn non_moe_params(&self) -> u64 {
        let d = self.d_model as u64;
        let embedding = self.vocab as u64 * d;
        // Encoder self-attention: 4 d² per layer. Decoder adds cross-attention.
        let enc_attn = self.encoder_layers as u64 * 4 * d * d;
        let dec_attn = self.decoder_layers as u64 * 8 * d * d;
        let dense_ffn = self.dense_ffn_layers() as u64 * 2 * d * self.d_ff as u64;
        let norms = (self.total_layers() as u64 * 2 + 1) * 2 * d;
        embedding + enc_attn + dec_attn + dense_ffn + norms
    }

    /// Total parameters.
    pub fn total_params(&self) -> u64 {
        self.moe_params() + self.non_moe_params()
    }

    /// Model capacity in bytes: MoE parameters at the expert precision plus
    /// everything else at the analytic precision (Table I's "Capacity"
    /// column when `expert_precision` is the default `F32`).
    pub fn capacity_bytes(&self) -> u64 {
        self.moe_bytes() + self.non_moe_bytes()
    }

    /// Bytes of the non-MoE parameters (pinned in GPU memory under every
    /// CPU-offloading design, Fig 4).
    pub fn non_moe_bytes(&self) -> u64 {
        (self.non_moe_params() as f64 * self.precision.bytes_per_param()).round() as u64
    }

    /// Bytes of the MoE parameters (offloaded to CPU/SSD): experts at the
    /// expert precision, gate weights at the analytic precision.
    pub fn moe_bytes(&self) -> u64 {
        let gates = (self.gate_params() as f64 * self.precision.bytes_per_param()).round() as u64;
        self.moe_layers() as u64 * (self.num_experts as u64 * self.expert_bytes() + gates)
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I cross-check: parameters (B) and capacity (GB).
    #[test]
    fn table1_switch_base_8() {
        let cfg = ModelConfig::switch_base(8);
        let b = cfg.total_params() as f64 / 1e9;
        let gb = cfg.capacity_bytes() as f64 / 1e9;
        assert!((0.55..0.85).contains(&b), "params {b} B vs Table I 0.7 B");
        assert!((2.2..3.4).contains(&gb), "capacity {gb} GB vs Table I 2.8 GB");
    }

    #[test]
    fn table1_switch_base_64() {
        let cfg = ModelConfig::switch_base(64);
        let b = cfg.total_params() as f64 / 1e9;
        assert!((3.4..4.2).contains(&b), "params {b} B vs Table I 3.8 B");
    }

    #[test]
    fn table1_switch_base_128() {
        let cfg = ModelConfig::switch_base(128);
        let b = cfg.total_params() as f64 / 1e9;
        let gb = cfg.capacity_bytes() as f64 / 1e9;
        assert!((7.0..8.0).contains(&b), "params {b} B vs Table I 7.5 B");
        assert!((28.0..32.0).contains(&gb), "capacity {gb} GB vs Table I 30 GB");
    }

    #[test]
    fn table1_switch_large_128() {
        let cfg = ModelConfig::switch_large_128();
        let b = cfg.total_params() as f64 / 1e9;
        let gb = cfg.capacity_bytes() as f64 / 1e9;
        assert!((25.0..27.5).contains(&b), "params {b} B vs Table I 26.4 B");
        assert!((100.0..110.0).contains(&gb), "capacity {gb} GB vs Table I 105.6 GB");
        assert_eq!(cfg.moe_layers(), 24);
    }

    #[test]
    fn switch_xxl_is_about_400b_params_217gb() {
        let cfg = ModelConfig::switch_xxl();
        let b = cfg.total_params() as f64 / 1e9;
        let gb = cfg.capacity_bytes() as f64 / 1e9;
        assert!((390.0..430.0).contains(&b), "params {b} B vs paper 395 B");
        assert!((210.0..240.0).contains(&gb), "capacity {gb} GB vs paper 217 GB");
    }

    #[test]
    fn moe_params_dominate_capacity() {
        // Fig 3's point: experts are the overwhelming majority of capacity.
        for experts in [8, 64, 128] {
            let cfg = ModelConfig::switch_base(experts);
            let frac = cfg.moe_params() as f64 / cfg.total_params() as f64;
            assert!(frac > 0.7, "{experts} experts: moe fraction {frac}");
        }
        let frac128 = ModelConfig::switch_base(128).moe_params() as f64
            / ModelConfig::switch_base(128).total_params() as f64;
        assert!(frac128 > 0.95);
    }

    #[test]
    fn dense_equivalent_has_one_expert_everywhere() {
        let dense = ModelConfig::switch_base(128).dense_equivalent();
        assert_eq!(dense.num_experts, 1);
        assert_eq!(dense.moe_layers(), dense.total_layers());
        assert_eq!(dense.dense_ffn_layers(), 0);
        // ≈ T5-Base size (paper: MoE up to 75× larger than FLOPs-matched T5).
        let ratio =
            ModelConfig::switch_base(256).total_params() as f64 / dense.total_params() as f64;
        assert!(ratio > 30.0, "Switch-Base-256 / T5-Base ratio {ratio}");
    }

    #[test]
    fn expert_bytes_matches_hand_math() {
        let cfg = ModelConfig::switch_base(8);
        // 2 × 768 × 3072 × 4 B = 18 874 368 B ≈ 18.9 MB.
        assert_eq!(cfg.expert_bytes(), 18_874_368);
    }

    #[test]
    fn precision_changes_capacity_only() {
        let fp32 = ModelConfig::switch_base(8);
        let fp16 = fp32.clone().with_precision(Precision::Fp16);
        assert_eq!(fp32.total_params(), fp16.total_params());
        assert_eq!(fp16.capacity_bytes() * 2, fp32.capacity_bytes());
    }

    #[test]
    fn expert_precision_scales_expert_bytes() {
        let f32_cfg = ModelConfig::switch_base(8);
        let f16_cfg = f32_cfg.clone().with_expert_precision(ExpertPrecision::F16);
        let int8_cfg = f32_cfg.clone().with_expert_precision(ExpertPrecision::Int8);
        assert_eq!(f16_cfg.expert_bytes() * 2, f32_cfg.expert_bytes());
        // Int8 group-64: 1.0625 B/param → 4 / 1.0625 ≈ 3.76x smaller.
        let ratio = f32_cfg.expert_bytes() as f64 / int8_cfg.expert_bytes() as f64;
        assert!((3.7..3.8).contains(&ratio), "int8 shrink {ratio}");
        // Experts shrink; non-MoE parameters do not.
        assert_eq!(int8_cfg.non_moe_bytes(), f32_cfg.non_moe_bytes());
        assert!(int8_cfg.moe_bytes() < f32_cfg.moe_bytes() / 3);
        assert!(int8_cfg.capacity_bytes() < f32_cfg.capacity_bytes());
        // Parameter *counts* are precision-independent.
        assert_eq!(int8_cfg.total_params(), f32_cfg.total_params());
    }

    #[test]
    fn default_expert_precision_preserves_table1_accounting() {
        // F32 defers to the analytic precision, so the quantized Switch-XXL
        // expert still counts 0.55 B/param (Fig 16's 217 GB depends on it).
        let xxl = ModelConfig::switch_xxl();
        assert_eq!(xxl.expert_precision, ExpertPrecision::F32);
        assert_eq!(xxl.expert_bytes(), (xxl.expert_params() as f64 * 0.55).round() as u64);
        // The axes compose independently: explicit int8 (1.0625 B/param)
        // overrides even an analytic precision that is smaller (0.55).
        let int8 = xxl.with_expert_precision(ExpertPrecision::Int8);
        assert!(int8.expert_bytes() > ModelConfig::switch_xxl().expert_bytes());
    }

    #[test]
    fn expert_precision_quant_modes_match() {
        assert!(ExpertPrecision::F32.quant_mode().is_none());
        assert_eq!(
            ExpertPrecision::Int8.quant_mode(),
            Some(pgmoe_tensor::QuantMode::Int8 { group: ExpertPrecision::INT8_GROUP })
        );
        assert_eq!(ExpertPrecision::F16.quant_mode(), Some(pgmoe_tensor::QuantMode::F16));
        assert_eq!(ExpertPrecision::Int8.to_string(), "int8");
    }
}
