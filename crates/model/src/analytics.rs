//! Analytic FLOPs and memory accounting behind Table I and Figs 2–3.

use crate::ModelConfig;

/// FLOPs required to process one sequence of `seq_len` tokens end to end
/// (encoder over the sequence + one decoder pass per token), in floating
/// point operations.
///
/// This is the quantity plotted in Fig 2 (GFLOPs/seq): because only `top_k`
/// experts run per token, MoE FLOPs are *independent of the expert count*,
/// while the dense model's FLOPs match the MoE's at `num_experts = 1`.
pub fn flops_per_sequence(cfg: &ModelConfig, seq_len: usize) -> f64 {
    // Encoder processes seq_len tokens, decoder generates seq_len tokens
    // attending over growing context; per-token costs below.
    let enc = seq_len as f64 * flops_per_token_encoder(cfg, seq_len);
    let dec = seq_len as f64 * flops_per_token_decoder(cfg, seq_len);
    enc + dec
}

/// FLOPs of one encoder token at context length `ctx`.
fn flops_per_token_encoder(cfg: &ModelConfig, ctx: usize) -> f64 {
    let d = cfg.d_model as f64;
    let per_layer = attn_flops(d, ctx, false) + ffn_flops(cfg);
    cfg.encoder_layers as f64 * per_layer
}

/// FLOPs of one decoder token at (average) context length `ctx`.
fn flops_per_token_decoder(cfg: &ModelConfig, ctx: usize) -> f64 {
    let d = cfg.d_model as f64;
    let per_layer = attn_flops(d, ctx, true) + ffn_flops(cfg);
    cfg.decoder_layers as f64 * per_layer
}

/// Attention FLOPs per token: projections (4d² MACs) + score/context terms;
/// decoders add cross-attention.
fn attn_flops(d: f64, ctx: usize, decoder: bool) -> f64 {
    let proj = 2.0 * 4.0 * d * d;
    let mix = 2.0 * 2.0 * d * ctx as f64;
    let self_attn = proj + mix;
    if decoder {
        2.0 * self_attn // self + cross attention
    } else {
        self_attn
    }
}

/// FFN FLOPs per token: `top_k` experts of `2·d·ff` MACs each (the dense
/// model is the `num_experts = 1, top_k = 1` special case).
fn ffn_flops(cfg: &ModelConfig) -> f64 {
    2.0 * 2.0 * cfg.d_model as f64 * cfg.d_ff as f64 * cfg.top_k as f64
}

/// One row of the Fig 3 capacity decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityBreakdown {
    /// Model name.
    pub name: String,
    /// Expert + gate parameter bytes.
    pub moe_bytes: u64,
    /// Everything else.
    pub non_moe_bytes: u64,
}

impl CapacityBreakdown {
    /// Computes the decomposition for a configuration.
    pub fn of(cfg: &ModelConfig) -> Self {
        CapacityBreakdown {
            name: cfg.name.clone(),
            moe_bytes: cfg.moe_bytes(),
            non_moe_bytes: cfg.non_moe_bytes(),
        }
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.moe_bytes + self.non_moe_bytes
    }

    /// Fraction of capacity held by MoE parameters.
    pub fn moe_fraction(&self) -> f64 {
        self.moe_bytes as f64 / self.total_bytes() as f64
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Model name.
    pub name: String,
    /// Experts per MoE block.
    pub experts: usize,
    /// MoE blocks in the model (Table I "Layers").
    pub layers: usize,
    /// Total parameters, billions.
    pub params_b: f64,
    /// Capacity, GB (decimal).
    pub capacity_gb: f64,
}

impl Table1Row {
    /// Computes the row for a configuration.
    pub fn of(cfg: &ModelConfig) -> Self {
        Table1Row {
            name: cfg.name.clone(),
            experts: cfg.num_experts,
            layers: cfg.moe_layers(),
            params_b: cfg.total_params() as f64 / 1e9,
            capacity_gb: cfg.capacity_bytes() as f64 / 1e9,
        }
    }
}

/// The model zoo of Table I, in row order.
pub fn table1_configs() -> Vec<ModelConfig> {
    vec![
        ModelConfig::switch_base(8),
        ModelConfig::switch_base(64),
        ModelConfig::switch_base(128),
        ModelConfig::switch_large_128(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_moe_flops_independent_of_expert_count() {
        let seq = 256;
        let f8 = flops_per_sequence(&ModelConfig::switch_base(8), seq);
        let f256 = flops_per_sequence(&ModelConfig::switch_base(256), seq);
        assert!((f8 - f256).abs() / f8 < 1e-9, "MoE FLOPs must not scale with experts");
    }

    #[test]
    fn fig2_dense_equivalent_matches_moe_flops() {
        let seq = 256;
        let moe = flops_per_sequence(&ModelConfig::switch_base(64), seq);
        let dense = flops_per_sequence(&ModelConfig::switch_base(64).dense_equivalent(), seq);
        // Dense has FFNs at every layer vs MoE every other layer, but each
        // token runs exactly one expert either way: iso-FLOPs to within the
        // dense/Moe FFN placement. The paper treats T5-Base as the
        // FLOPs-equivalent of Switch-Base.
        let ratio = dense / moe;
        assert!((0.8..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig2_base_magnitude_matches_paper_axis() {
        // Paper's Fig 2 shows Switch-Base around ~100 GFLOPs/seq at seq 256.
        let g = flops_per_sequence(&ModelConfig::switch_base(128), 256) / 1e9;
        assert!((40.0..250.0).contains(&g), "got {g} GFLOPs/seq");
    }

    #[test]
    fn fig2_large_is_several_times_base() {
        let base = flops_per_sequence(&ModelConfig::switch_base(128), 256);
        let large = flops_per_sequence(&ModelConfig::switch_large_128(), 256);
        let ratio = large / base;
        assert!((2.0..6.0).contains(&ratio), "Large/Base FLOPs ratio {ratio}");
    }

    #[test]
    fn fig3_moe_fraction_grows_with_experts() {
        let f8 = CapacityBreakdown::of(&ModelConfig::switch_base(8)).moe_fraction();
        let f64_ = CapacityBreakdown::of(&ModelConfig::switch_base(64)).moe_fraction();
        let f128 = CapacityBreakdown::of(&ModelConfig::switch_base(128)).moe_fraction();
        assert!(f8 < f64_ && f64_ < f128);
        assert!(f128 > 0.95);
    }

    #[test]
    fn fig3_memory_ratio_vs_dense_is_large() {
        // Paper: SwitchTransformer consumes up to 75× more memory than T5.
        let moe = ModelConfig::switch_base(256).capacity_bytes() as f64;
        let dense = ModelConfig::switch_base(256).dense_equivalent().capacity_bytes() as f64;
        let ratio = moe / dense;
        assert!(ratio > 25.0, "Switch-Base-256 / T5 capacity ratio {ratio}");
    }

    #[test]
    fn table1_rows_have_expected_layer_counts() {
        let rows: Vec<Table1Row> = table1_configs().iter().map(Table1Row::of).collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].layers, 12);
        assert_eq!(rows[3].layers, 24);
        assert!(rows[3].capacity_gb > 100.0);
    }
}
