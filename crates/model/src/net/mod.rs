//! Trainable scaled-down Switch transformers with pre-gating.
//!
//! This module implements a *real* (numerically trained) Switch transformer
//! over `pgmoe-tensor`, used by the accuracy experiments (Table II, Fig 13):
//! token + position embeddings, causal self-attention, and top-1-routed
//! expert FFNs whose gate placement follows [`crate::GateTopology`] — i.e.
//! the same pre-gating algorithm the paper fine-tunes into SwitchTransformer,
//! at a scale a CPU can train in seconds.
//!
//! The paper's recipe (Section IV-B) is preserved structurally: start from a
//! "pretrained" conventional checkpoint, re-wire the gate topology
//! (first blocks gain a dual gate, last blocks lose theirs — Fig 6), then
//! fine-tune every variant with identical steps and learning rate.

mod expert;
mod moe;
mod router;
mod switch;

pub use expert::{ExpertFfn, QuantizedExpertFfn};
pub use moe::{MoeFfn, RouteDecision};
pub use router::Router;
pub use switch::{SwitchNet, SwitchNetConfig};
