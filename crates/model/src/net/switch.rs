//! The trainable Switch transformer with pluggable gate topology.

use super::{MoeFfn, RouteDecision, Router};
use crate::{ExpertPrecision, GateTopology, GatingMode};
use pgmoe_tensor::nn::{CausalSelfAttention, Embedding, Layer, LayerNorm, Linear, Param};
use pgmoe_tensor::{init, ScratchArena, Tensor};
use rand::Rng;

/// Configuration of a trainable scaled-down Switch transformer.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchNetConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Expert inner width.
    pub d_ff: usize,
    /// Number of MoE transformer blocks (every block is MoE at this scale).
    pub num_blocks: usize,
    /// Experts per block.
    pub num_experts: usize,
    /// Fixed input sequence length.
    pub seq_len: usize,
    /// Gate topology mode (conventional or pre-gated level N).
    pub mode: GatingMode,
}

impl SwitchNetConfig {
    /// A small default suitable for CPU fine-tuning experiments.
    pub fn small(vocab: usize, seq_len: usize, num_experts: usize, mode: GatingMode) -> Self {
        SwitchNetConfig { vocab, d_model: 32, d_ff: 64, num_blocks: 4, num_experts, seq_len, mode }
    }
}

#[derive(Debug, Clone)]
struct Block {
    attn: CausalSelfAttention,
    ln1: LayerNorm,
    ln2: LayerNorm,
    moe: MoeFfn,
}

/// A trainable Switch transformer whose expert selection follows a
/// [`GateTopology`] — the numeric embodiment of the paper's algorithm
/// (Section IV-B, Figs 5–6).
///
/// The network is decoder-only at this scale: token + learned position
/// embeddings, `num_blocks` blocks of (causal self-attention → LayerNorm →
/// routed expert FFN → LayerNorm), a final LayerNorm and a vocabulary
/// projection. Answers are read from the last positions of the sequence.
///
/// Pre-gating is implemented exactly as the paper describes: the router that
/// selects block `b`'s experts is *evaluated on the activations of block
/// `route_source(b)`* during the forward pass, and its gradient flows back
/// into those earlier activations during the backward pass.
#[derive(Debug, Clone)]
pub struct SwitchNet {
    cfg: SwitchNetConfig,
    topo: GateTopology,
    tok_emb: Embedding,
    pos_emb: Param,
    blocks: Vec<Block>,
    /// `routers[b]` selects experts for block `b`; where it is *evaluated*
    /// is decided by the topology.
    routers: Vec<Router>,
    final_ln: LayerNorm,
    out_proj: Linear,
    last_decisions: Vec<RouteDecision>,
    expert_precision: ExpertPrecision,
}

impl SwitchNet {
    /// Builds a network with seeded initialisation.
    pub fn new(cfg: SwitchNetConfig, rng: &mut impl Rng) -> Self {
        let topo = GateTopology::new(cfg.num_blocks, cfg.mode);
        let blocks = (0..cfg.num_blocks)
            .map(|_| Block {
                attn: CausalSelfAttention::new(cfg.d_model, rng),
                ln1: LayerNorm::new(cfg.d_model),
                ln2: LayerNorm::new(cfg.d_model),
                moe: MoeFfn::new(cfg.num_experts, cfg.d_model, cfg.d_ff, rng),
            })
            .collect();
        let routers =
            (0..cfg.num_blocks).map(|_| Router::new(cfg.d_model, cfg.num_experts, rng)).collect();
        SwitchNet {
            tok_emb: Embedding::new(cfg.vocab, cfg.d_model, rng),
            pos_emb: Param::new(init::normal([cfg.seq_len, cfg.d_model], 0.0, 0.02, rng)),
            blocks,
            routers,
            final_ln: LayerNorm::new(cfg.d_model),
            out_proj: Linear::new(cfg.d_model, cfg.vocab, true, rng),
            topo,
            cfg,
            last_decisions: Vec::new(),
            expert_precision: ExpertPrecision::F32,
        }
    }

    /// The network's configuration.
    pub fn config(&self) -> &SwitchNetConfig {
        &self.cfg
    }

    /// The gate topology currently in force.
    pub fn topology(&self) -> GateTopology {
        self.topo
    }

    /// Snapshots every block's expert bank at `precision`: inference
    /// forwards run the experts through the fused dequantizing GEMM while
    /// attention, norms, routers, and embeddings stay f32 — the numeric
    /// counterpart of serving with reduced-precision expert storage.
    /// [`ExpertPrecision::F32`] restores full-precision inference. Training
    /// always uses the f32 parameters; mutations made through
    /// [`Layer::visit_params`] (optimizer steps, checkpoint loads)
    /// re-snapshot the banks automatically.
    pub fn quantize_experts(&mut self, precision: ExpertPrecision) {
        for block in &mut self.blocks {
            block.moe.quantize_experts(precision);
        }
        self.expert_precision = precision;
    }

    /// The expert storage precision inference currently runs at.
    pub fn expert_precision(&self) -> ExpertPrecision {
        self.expert_precision
    }

    /// Re-wires the gate topology while keeping every parameter — the
    /// paper's conversion of a pretrained conventional checkpoint into a
    /// pre-gated architecture before fine-tuning ("we utilize existing
    /// pretrained MoE model parameters as-is but change the MoE model
    /// architecture", Section IV-B).
    pub fn rewire(&mut self, mode: GatingMode) {
        self.topo = GateTopology::new(self.cfg.num_blocks, mode);
        self.cfg.mode = mode;
    }

    /// Training forward pass over one sequence. Returns `[seq_len, vocab]`
    /// logits and caches everything needed by [`SwitchNet::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != seq_len`.
    pub fn forward(&mut self, tokens: &[usize]) -> Tensor {
        assert_eq!(tokens.len(), self.cfg.seq_len, "sequence length mismatch");
        let mut x = self.tok_emb.forward(tokens).add(&self.pos_emb.value);
        let mut pending: Vec<Option<RouteDecision>> = vec![None; self.cfg.num_blocks];
        self.last_decisions.clear();
        for b in 0..self.cfg.num_blocks {
            let a = self.blocks[b].attn.forward(&x);
            let h = self.blocks[b].ln1.forward(&x.add(&a));
            for target in self.topo.gates_hosted_at(b) {
                pending[target] = Some(self.routers[target].route(&h));
            }
            let dec = pending[b].take().expect("topology must route every block");
            let m = self.blocks[b].moe.forward(&h, &dec);
            self.last_decisions.push(dec);
            x = self.blocks[b].ln2.forward(&h.add(&m));
        }
        let y = self.final_ln.forward(&x);
        self.out_proj.forward(&y)
    }

    /// Inference-only forward (no gradient caching).
    pub fn forward_inference(&self, tokens: &[usize]) -> Tensor {
        let (logits, _) = self.forward_inference_traced(tokens);
        logits
    }

    /// Inference forward that also returns each block's routing decision —
    /// used for routing-fidelity diagnostics and functional validation of
    /// the runtime.
    pub fn forward_inference_traced(&self, tokens: &[usize]) -> (Tensor, Vec<RouteDecision>) {
        self.forward_inference_arena(tokens, &ScratchArena::new())
    }

    /// Inference forward through arena-recycled intermediates — the
    /// allocation-free decode path. After a warm-up pass, repeated calls
    /// with the same `arena` allocate only the routing decisions they
    /// return. The caller may recycle the returned logits tensor.
    pub fn forward_inference_arena(
        &self,
        tokens: &[usize],
        arena: &ScratchArena,
    ) -> (Tensor, Vec<RouteDecision>) {
        assert_eq!(tokens.len(), self.cfg.seq_len, "sequence length mismatch");
        let table = &self.tok_emb.table.value;
        let mut x = arena.take([self.cfg.seq_len, self.cfg.d_model]);
        for (t, &tok) in tokens.iter().enumerate() {
            x.row_mut(t).copy_from_slice(table.row(tok));
        }
        x.add_scaled_inplace(&self.pos_emb.value, 1.0);
        let mut pending: Vec<Option<RouteDecision>> = vec![None; self.cfg.num_blocks];
        let mut used = Vec::with_capacity(self.cfg.num_blocks);
        for b in 0..self.cfg.num_blocks {
            let mut a = self.blocks[b].attn.forward_inference_arena(&x, arena);
            a.add_scaled_inplace(&x, 1.0);
            arena.recycle(x);
            let h = self.blocks[b].ln1.forward_inference_arena(&a, arena);
            arena.recycle(a);
            for target in self.topo.gates_hosted_at(b) {
                pending[target] = Some(self.routers[target].route_inference(&h));
            }
            let dec = pending[b].take().expect("topology must route every block");
            let mut m = self.blocks[b].moe.forward_inference_arena(&h, &dec, arena);
            m.add_scaled_inplace(&h, 1.0);
            arena.recycle(h);
            used.push(dec);
            x = self.blocks[b].ln2.forward_inference_arena(&m, arena);
            arena.recycle(m);
        }
        let y = self.final_ln.forward_inference_arena(&x, arena);
        arena.recycle(x);
        let logits = self.out_proj.forward_inference_arena(&y, arena);
        arena.recycle(y);
        (logits, used)
    }

    /// Backward pass from `[seq_len, vocab]` logit gradients. Accumulates
    /// parameter gradients (call [`Layer::zero_grad`] between steps).
    ///
    /// Pre-gate gradients cross block boundaries here: a router consumed at
    /// block `b` was evaluated at block `route_source(b)`, so its input
    /// gradient is stashed and merged when the backward sweep reaches that
    /// earlier block.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SwitchNet::forward`].
    pub fn backward(&mut self, dlogits: &Tensor) {
        assert_eq!(
            self.last_decisions.len(),
            self.cfg.num_blocks,
            "SwitchNet::backward before forward"
        );
        let dy = self.out_proj.backward(dlogits);
        let mut dx = self.final_ln.backward(&dy);
        let mut stash: Vec<Option<Tensor>> = vec![None; self.cfg.num_blocks];
        for b in (0..self.cfg.num_blocks).rev() {
            // x_out = ln2(h + m)
            let d_hm = self.blocks[b].ln2.backward(&dx);
            let (dh_moe, dprob) = self.blocks[b].moe.backward(&d_hm);
            let mut dh = d_hm.add(&dh_moe);
            // Router that selected THIS block's experts.
            let src = self.topo.route_source(b);
            let d_src = self.routers[b].backward(&dprob);
            if src == b {
                dh = dh.add(&d_src);
            } else {
                match &mut stash[src] {
                    Some(t) => t.add_scaled_inplace(&d_src, 1.0),
                    slot @ None => *slot = Some(d_src),
                }
            }
            // Routers hosted at this block for later targets contributed
            // their input gradients when those targets were processed above.
            if let Some(s) = stash[b].take() {
                dh = dh.add(&s);
            }
            // h = ln1(x + a)
            let d_xa = self.blocks[b].ln1.backward(&dh);
            let d_attn_in = self.blocks[b].attn.backward(&d_xa);
            dx = d_xa.add(&d_attn_in);
        }
        self.tok_emb.backward(&dx);
        self.pos_emb.accumulate(&dx);
        self.last_decisions.clear();
    }

    /// Greedy prediction of the last `answer_len` tokens.
    pub fn predict(&self, tokens: &[usize], answer_len: usize) -> Vec<usize> {
        let logits = self.forward_inference(tokens);
        let start = self.cfg.seq_len - answer_len;
        (start..self.cfg.seq_len)
            .map(|t| {
                let row = logits.row(t);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// The routing decisions consumed by the most recent training forward.
    pub fn last_decisions(&self) -> &[RouteDecision] {
        &self.last_decisions
    }

    /// The learned position-embedding parameter (exposed for gradient
    /// checking and weight surgery in tests/tools).
    pub fn pos_emb(&self) -> &Param {
        &self.pos_emb
    }

    /// Mutable access to the position-embedding parameter.
    pub fn pos_emb_mut(&mut self) -> &mut Param {
        &mut self.pos_emb
    }
}

impl Layer for SwitchNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok_emb.visit_params(f);
        f(&mut self.pos_emb);
        for block in &mut self.blocks {
            block.attn.visit_params(f);
            block.ln1.visit_params(f);
            block.ln2.visit_params(f);
            block.moe.visit_params(f);
        }
        for r in &mut self.routers {
            r.visit_params(f);
        }
        self.final_ln.visit_params(f);
        self.out_proj.visit_params(f);
    }

    fn visit_expert_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for block in &mut self.blocks {
            block.moe.visit_expert_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmoe_tensor::ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny(mode: GatingMode) -> SwitchNet {
        tiny_seeded(mode, 7)
    }

    fn tiny_seeded(mode: GatingMode, seed: u64) -> SwitchNet {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SwitchNetConfig {
            vocab: 16,
            d_model: 8,
            d_ff: 16,
            num_blocks: 3,
            num_experts: 4,
            seq_len: 6,
            mode,
        };
        SwitchNet::new(cfg, &mut rng)
    }

    #[test]
    fn forward_shapes_for_all_modes() {
        for mode in [
            GatingMode::Conventional,
            GatingMode::Pregated { level: 1 },
            GatingMode::Pregated { level: 2 },
        ] {
            let mut net = tiny(mode);
            let logits = net.forward(&[1, 2, 3, 4, 5, 0]);
            assert_eq!(logits.dims(), &[6, 16], "{mode:?}");
            assert!(logits.all_finite());
        }
    }

    #[test]
    fn training_step_reduces_loss_conventional() {
        training_step_reduces_loss(GatingMode::Conventional);
    }

    #[test]
    fn training_step_reduces_loss_pregated() {
        training_step_reduces_loss(GatingMode::Pregated { level: 1 });
    }

    fn training_step_reduces_loss(mode: GatingMode) {
        use pgmoe_tensor::nn::optim::Adam;
        let mut net = tiny(mode);
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let targets = [7usize, 9]; // answers at the last two positions
        let mut opt = Adam::new(3e-3);
        let loss_of = |net: &mut SwitchNet| {
            let logits = net.forward(&tokens);
            let ans = logits.gather_rows(&[4, 5]);
            ops::cross_entropy_from_logits(&ans, &targets).0
        };
        let initial = loss_of(&mut net);
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward(&tokens);
            let ans = logits.gather_rows(&[4, 5]);
            let (_, dans) = ops::cross_entropy_from_logits(&ans, &targets);
            let mut dlogits = Tensor::zeros([6, 16]);
            dlogits.scatter_add_rows(&[4, 5], &dans);
            net.backward(&dlogits);
            opt.begin_step();
            net.visit_params(&mut |p| opt.step(p));
        }
        let fin = loss_of(&mut net);
        assert!(fin < initial * 0.5, "{mode:?}: loss {initial} → {fin}");
    }

    #[test]
    fn arena_inference_matches_training_forward_numerics() {
        let mut net = tiny(GatingMode::Pregated { level: 1 });
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let train_logits = net.forward(&tokens);
        let arena = ScratchArena::new();
        let (arena_logits, decisions) = net.forward_inference_arena(&tokens, &arena);
        assert_eq!(decisions.len(), 3);
        for (a, b) in arena_logits.as_slice().iter().zip(train_logits.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        arena.recycle(arena_logits);
    }

    #[test]
    fn arena_decode_is_allocation_free_in_steady_state() {
        let net = tiny(GatingMode::Conventional);
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let arena = ScratchArena::new();
        // Warm-up iterations populate the free list (routing can activate
        // different expert-group shapes, so warm several).
        for _ in 0..3 {
            let (logits, _) = net.forward_inference_arena(&tokens, &arena);
            arena.recycle(logits);
        }
        let warm = arena.stats();
        for _ in 0..10 {
            let (logits, _) = net.forward_inference_arena(&tokens, &arena);
            arena.recycle(logits);
        }
        let stats = arena.stats();
        assert_eq!(
            stats.takes - warm.takes,
            stats.reuses - warm.reuses,
            "steady-state decode must serve every tensor from the free list"
        );
    }

    #[test]
    fn rewire_preserves_parameters() {
        let mut net = tiny(GatingMode::Conventional);
        let mut before = Vec::new();
        net.visit_params(&mut |p| before.push(p.value.clone()));
        net.rewire(GatingMode::Pregated { level: 1 });
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.push(p.value.clone()));
        assert_eq!(before, after);
        assert_eq!(net.topology().mode(), GatingMode::Pregated { level: 1 });
    }

    #[test]
    fn pregated_routing_is_consistent_with_topology() {
        let mut net = tiny(GatingMode::Pregated { level: 1 });
        let _ = net.forward(&[1, 2, 3, 4, 5, 0]);
        assert_eq!(net.last_decisions().len(), 3);
        // Decisions exist for every block and route real experts.
        for dec in net.last_decisions() {
            assert_eq!(dec.num_tokens(), 6);
            assert!(dec.expert.iter().all(|&e| e < 4));
        }
    }

    #[test]
    fn full_net_gradient_check_every_parameter() {
        // Directional finite-difference check for *every* parameter tensor
        // in pre-gated mode — exercises the cross-block router stash. The
        // direction is each tensor's own gradient, which keeps the check
        // away from ReLU kinks and routing-flip discontinuities that plague
        // pointwise checks of a piecewise-smooth loss.
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let targets = [7usize, 9];
        // Seed chosen so the finite-difference probe stays inside one
        // routing region of the piecewise-smooth loss (seed-sensitive by
        // nature; see the eps comment below).
        let mut net = tiny_seeded(GatingMode::Pregated { level: 1 }, 15);
        net.zero_grad();
        let logits = net.forward(&tokens);
        let (_, dans) = ops::cross_entropy_from_logits(&logits.gather_rows(&[4, 5]), &targets);
        let mut dlogits = Tensor::zeros([6, 16]);
        dlogits.scatter_add_rows(&[4, 5], &dans);
        net.backward(&dlogits);

        let mut snapshot = Vec::new();
        net.visit_params(&mut |p| snapshot.push((p.value.clone(), p.grad.clone())));
        let loss_of = |net: &SwitchNet| {
            let l = net.forward_inference(&tokens);
            ops::cross_entropy_from_logits(&l.gather_rows(&[4, 5]), &targets).0
        };
        // Small eps keeps the probe inside one routing/ReLU region; the
        // large |g| direction keeps f32 cancellation noise negligible.
        let eps = 3e-4f32;
        let mut failures = Vec::new();
        for i in 0..snapshot.len() {
            let g = &snapshot[i].1;
            let norm = g.norm_sq().sqrt();
            if norm < 1e-6 {
                continue;
            }
            let dir = g.scale(1.0 / norm);
            let gv: f32 = g.mul(&dir).sum(); // = |g|
            let set = |net: &mut SwitchNet, delta: f32| {
                let mut k = 0;
                net.visit_params(&mut |p| {
                    p.value = if k == i {
                        snapshot[k].0.add(&dir.scale(delta))
                    } else {
                        snapshot[k].0.clone()
                    };
                    k += 1;
                });
            };
            set(&mut net, eps);
            let lp = loss_of(&net);
            set(&mut net, -eps);
            let lm = loss_of(&net);
            set(&mut net, 0.0);
            let numeric = (lp - lm) / (2.0 * eps);
            let rel = (gv - numeric).abs() / gv.abs().max(numeric.abs()).max(1e-3);
            if rel > 0.08 {
                failures.push((i, gv, numeric));
            }
        }
        assert!(
            failures.len() <= 1, // allow one ReLU-kink casualty
            "gradient mismatches: {failures:?}"
        );
    }

    #[test]
    #[should_panic(expected = "sequence length mismatch")]
    fn wrong_length_panics() {
        let mut net = tiny(GatingMode::Conventional);
        let _ = net.forward(&[1, 2, 3]);
    }
}
