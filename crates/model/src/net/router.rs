//! The gate / pre-gate function: a compact routing MLP.

use super::RouteDecision;
use pgmoe_tensor::nn::{Layer, Linear, Param};
use pgmoe_tensor::{ops, Tensor};
use rand::Rng;

/// A gate function: one linear projection `d_model → num_experts` followed by
/// a softmax and a top-1 selection, as in SwitchTransformer.
///
/// Whether a `Router` acts as a *conventional gate* or a *pre-gate* is purely
/// a matter of where it is evaluated and which block consumes its decision —
/// that wiring lives in [`crate::GateTopology`] and
/// [`super::SwitchNet`]; the function itself is identical, matching the
/// paper's claim that the pre-gate "is trained to preemptively select the
/// experts to activate for the next MoE block" with no architectural change
/// beyond placement (Section IV-B).
#[derive(Debug, Clone)]
pub struct Router {
    linear: Linear,
    cached: Option<RouteDecision>,
}

impl Router {
    /// Creates a router over `num_experts` experts for width `d_model`.
    pub fn new(d_model: usize, num_experts: usize, rng: &mut impl Rng) -> Self {
        Router { linear: Linear::new(d_model, num_experts, false, rng), cached: None }
    }

    /// Number of experts this router selects over.
    pub fn num_experts(&self) -> usize {
        self.linear.out_features()
    }

    /// Routes a token batch `[t, d]`, returning the per-token top-1 decision.
    ///
    /// Caches activations for [`Router::backward`].
    pub fn route(&mut self, h: &Tensor) -> RouteDecision {
        let mut probs = self.linear.forward(h);
        probs.softmax_rows_inplace();
        let decision = RouteDecision::from_probs(probs);
        self.cached = Some(decision.clone());
        decision
    }

    /// Inference-only routing (no caching). The softmax runs in place on
    /// the logits buffer; the only allocation is the returned decision,
    /// which owns its probability matrix.
    pub fn route_inference(&self, h: &Tensor) -> RouteDecision {
        let mut probs = self.linear.forward_inference(h);
        probs.softmax_rows_inplace();
        RouteDecision::from_probs(probs)
    }

    /// Backward pass given the upstream gradient on each token's selected
    /// gate probability. Returns the gradient w.r.t. the router's input —
    /// which, for a pre-gate, belongs to an *earlier* block's activations.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Router::route`] or if `dprob` length
    /// mismatches.
    pub fn backward(&mut self, dprob: &[f32]) -> Tensor {
        let dec = self.cached.take().expect("Router::backward before route");
        assert_eq!(dprob.len(), dec.num_tokens(), "dprob length mismatch");
        // Upstream gradient only touches each row's selected probability.
        let mut dprobs = Tensor::zeros(dec.probs_full.shape().clone());
        for (t, (&e, &dp)) in dec.expert.iter().zip(dprob).enumerate() {
            dprobs.set(&[t, e], dp);
        }
        let dlogits = ops::softmax_backward(&dec.probs_full, &dprobs);
        self.linear.backward(&dlogits)
    }
}

impl Layer for Router {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.linear.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn route_selects_argmax_with_its_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut r = Router::new(4, 3, &mut rng);
        let h = pgmoe_tensor::init::normal([6, 4], 0.0, 1.0, &mut rng);
        let dec = r.route(&h);
        assert_eq!(dec.num_tokens(), 6);
        for t in 0..6 {
            let row = dec.probs_full.row(t);
            let best = (0..3).max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap()).unwrap();
            assert_eq!(dec.expert[t], best);
            assert!((dec.prob[t] - row[best]).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Router::new(4, 3, &mut rng);
        let h = pgmoe_tensor::init::normal([2, 4], 0.0, 1.0, &mut rng);
        // Loss = sum of selected probabilities (selection held fixed).
        let dec0 = r.route(&h);
        let dprob = vec![1.0; 2];
        let dx = r.backward(&dprob);
        let eps = 1e-3;
        for i in 0..h.len() {
            let mut hp = h.clone();
            hp.as_mut_slice()[i] += eps;
            let mut hm = h.clone();
            hm.as_mut_slice()[i] -= eps;
            // Hold the original selection fixed (routing is piecewise
            // constant; gradients flow through the probability only).
            let lp: f32 =
                (0..2).map(|t| r.route_inference(&hp).probs_full.at(&[t, dec0.expert[t]])).sum();
            let lm: f32 =
                (0..2).map(|t| r.route_inference(&hm).probs_full.at(&[t, dec0.expert[t]])).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[i] - numeric).abs() < 1e-2,
                "elem {i}: {} vs {numeric}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn deterministic_given_same_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = Router::new(4, 8, &mut rng);
        let h = pgmoe_tensor::init::normal([3, 4], 0.0, 1.0, &mut rng);
        assert_eq!(r.route_inference(&h), r.route_inference(&h));
    }
}
