//! A single expert: the two-matrix ReLU FFN of Switch/T5.

use pgmoe_tensor::nn::{Layer, Linear, Param, QuantizedLinear};
use pgmoe_tensor::quant::QuantMode;
use pgmoe_tensor::{ops, ScratchArena, Tensor};
use rand::Rng;

/// One expert FFN: `lin2(relu(lin1(x)))`, dimensions `d → ff → d`.
///
/// Experts are the unit of routing, migration and caching throughout the
/// reproduction; this is the trainable counterpart of the analytic
/// [`crate::ModelConfig::expert_bytes`] descriptor.
#[derive(Debug, Clone)]
pub struct ExpertFfn {
    lin1: Linear,
    lin2: Linear,
    cached_pre: Option<Tensor>,
}

impl ExpertFfn {
    /// Creates an expert of width `d_model` with inner width `d_ff`.
    pub fn new(d_model: usize, d_ff: usize, rng: &mut impl Rng) -> Self {
        ExpertFfn {
            lin1: Linear::new(d_model, d_ff, true, rng),
            lin2: Linear::new(d_ff, d_model, true, rng),
            cached_pre: None,
        }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.lin1.in_features()
    }

    /// Forward over a token batch `[n, d]`, caching for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let pre = self.lin1.forward(x);
        let act = ops::relu(&pre);
        self.cached_pre = Some(pre);
        self.lin2.forward(&act)
    }

    /// Inference-only forward (no caching).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        self.lin2.forward_inference(&ops::relu(&self.lin1.forward_inference(x)))
    }

    /// Inference forward through arena-recycled intermediates — the
    /// allocation-free serving path. The caller recycles the returned
    /// tensor when done.
    pub fn forward_inference_arena(&self, x: &Tensor, arena: &ScratchArena) -> Tensor {
        let mut pre = self.lin1.forward_inference_arena(x, arena);
        pre.map_inplace(|v| v.max(0.0));
        let y = self.lin2.forward_inference_arena(&pre, arena);
        arena.recycle(pre);
        y
    }

    /// Backward pass; accumulates grads, returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ExpertFfn::forward`].
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let pre = self.cached_pre.take().expect("ExpertFfn::backward before forward");
        let dact = self.lin2.backward(dy);
        let dpre = ops::relu_backward(&pre, &dact);
        self.lin1.backward(&dpre)
    }

    /// Snapshots this expert's weights at reduced precision for inference
    /// (see [`QuantizedExpertFfn`]).
    pub fn quantized(&self, mode: QuantMode) -> QuantizedExpertFfn {
        QuantizedExpertFfn {
            lin1: QuantizedLinear::from_linear(&self.lin1, mode),
            lin2: QuantizedLinear::from_linear(&self.lin2, mode),
        }
    }
}

/// An inference-only expert whose projection matrices stay quantized: the
/// forward pass runs the fused dequantizing GEMM, so the expert's f32 form
/// is never materialised — the numeric counterpart of migrating and caching
/// experts at [`crate::ExpertPrecision::F16`]/[`crate::ExpertPrecision::Int8`].
///
/// A quantized expert is a *snapshot*: re-quantize after any weight update.
#[derive(Debug, Clone)]
pub struct QuantizedExpertFfn {
    lin1: QuantizedLinear,
    lin2: QuantizedLinear,
}

impl QuantizedExpertFfn {
    /// Stored weight bytes (payload + scale metadata) — what this expert
    /// would cost to migrate or cache.
    pub fn weight_bytes(&self) -> usize {
        self.lin1.weight_bytes() + self.lin2.weight_bytes()
    }

    /// Inference-only forward over a token batch `[n, d]`.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        self.lin2.forward_inference(&ops::relu(&self.lin1.forward_inference(x)))
    }

    /// Inference forward through arena-recycled intermediates — the
    /// allocation-free serving path. The caller recycles the returned
    /// tensor when done.
    pub fn forward_inference_arena(&self, x: &Tensor, arena: &ScratchArena) -> Tensor {
        let mut pre = self.lin1.forward_inference_arena(x, arena);
        pre.map_inplace(|v| v.max(0.0));
        let y = self.lin2.forward_inference_arena(&pre, arena);
        arena.recycle(pre);
        y
    }
}

impl Layer for ExpertFfn {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }

    fn visit_expert_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = ExpertFfn::new(8, 32, &mut rng);
        let x = pgmoe_tensor::init::normal([5, 8], 0.0, 1.0, &mut rng);
        let y = e.forward(&x);
        assert_eq!(y.dims(), &[5, 8]);
        let dx = e.backward(&Tensor::ones([5, 8]));
        assert_eq!(dx.dims(), &[5, 8]);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = ExpertFfn::new(4, 8, &mut rng);
        let x = pgmoe_tensor::init::normal([3, 4], 0.0, 1.0, &mut rng);
        let w = pgmoe_tensor::init::normal([3, 4], 0.0, 1.0, &mut rng);
        let _ = e.forward(&x);
        let dx = e.backward(&w);
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = e.forward_inference(&xp).mul(&w).sum();
            let lm = e.forward_inference(&xm).mul(&w).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[i] - numeric).abs() < 3e-2,
                "elem {i}: {} vs {numeric}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn param_count_matches_analytic_expert() {
        // 2·d·ff weights + ff + d biases.
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = ExpertFfn::new(16, 64, &mut rng);
        assert_eq!(e.param_count(), 2 * 16 * 64 + 64 + 16);
    }
}
