//! The MoE FFN sub-layer: routed expert execution.

use super::expert::QuantizedExpertFfn;
use super::ExpertFfn;
use crate::ExpertPrecision;
use pgmoe_tensor::nn::{Layer, Param};
use pgmoe_tensor::{ScratchArena, Tensor};
use rand::Rng;
use std::cell::RefCell;

/// A per-token top-1 routing decision, produced by a [`super::Router`].
///
/// Carries the full softmax for the backward pass: Switch scales each
/// expert's output by its gate probability, which is the path through which
/// the router receives gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// Selected expert per token.
    pub expert: Vec<usize>,
    /// Gate probability of the selected expert per token.
    pub prob: Vec<f32>,
    /// Full `[tokens, experts]` softmax (cached for backward).
    pub probs_full: Tensor,
}

impl RouteDecision {
    /// Builds the top-1 decision from a `[tokens, experts]` probability
    /// matrix.
    pub fn from_probs(probs: Tensor) -> Self {
        let expert = probs.argmax_rows();
        let prob = expert.iter().enumerate().map(|(t, &e)| probs.at(&[t, e])).collect();
        RouteDecision { expert, prob, probs_full: probs }
    }

    /// Number of routed tokens.
    pub fn num_tokens(&self) -> usize {
        self.expert.len()
    }

    /// The distinct experts activated by this decision, sorted.
    pub fn active_experts(&self) -> Vec<usize> {
        let mut e = self.expert.clone();
        e.sort_unstable();
        e.dedup();
        e
    }
}

/// The expert bank of one MoE block: `num_experts` independent FFNs executed
/// on the token subsets a [`RouteDecision`] assigns them.
#[derive(Debug, Clone)]
pub struct MoeFfn {
    experts: Vec<ExpertFfn>,
    /// Quantized inference snapshot of the expert bank (see
    /// [`MoeFfn::quantize_experts`]); inference routes through it when set.
    quantized: Option<QuantizedBank>,
    cache: Option<MoeCache>,
    /// Reusable per-expert token-index buffers for the inference path:
    /// cleared (capacity kept) every call, so steady-state decode builds its
    /// expert groups without allocating.
    group_scratch: RefCell<Vec<Vec<usize>>>,
}

/// A quantized snapshot of the expert bank, remembering its precision so
/// [`Layer::visit_params`] can re-snapshot after parameter mutations.
#[derive(Debug, Clone)]
struct QuantizedBank {
    precision: ExpertPrecision,
    experts: Vec<QuantizedExpertFfn>,
}

#[derive(Debug, Clone)]
struct MoeCache {
    decision: RouteDecision,
    groups: Vec<Vec<usize>>,
    raw_out: Tensor,
}

impl MoeFfn {
    /// Creates `num_experts` experts of shape `d_model → d_ff → d_model`.
    pub fn new(num_experts: usize, d_model: usize, d_ff: usize, rng: &mut impl Rng) -> Self {
        assert!(num_experts >= 1, "need at least one expert");
        MoeFfn {
            experts: (0..num_experts).map(|_| ExpertFfn::new(d_model, d_ff, rng)).collect(),
            quantized: None,
            cache: None,
            group_scratch: RefCell::new(vec![Vec::new(); num_experts]),
        }
    }

    /// Snapshots the expert bank at `precision` for inference: subsequent
    /// inference forwards run every expert through the fused dequantizing
    /// GEMM instead of the f32 weights. [`ExpertPrecision::F32`] clears the
    /// snapshot (back to full-precision inference). Training always uses
    /// the f32 parameters; any mutation made through
    /// [`Layer::visit_params`] (optimizer steps, checkpoint loads)
    /// automatically re-snapshots, so the quantized bank never serves
    /// stale weights.
    pub fn quantize_experts(&mut self, precision: ExpertPrecision) {
        self.quantized = precision.quant_mode().map(|mode| QuantizedBank {
            precision,
            experts: self.experts.iter().map(|e| e.quantized(mode)).collect(),
        });
    }

    /// Re-snapshots the quantized bank (if any) from the current f32
    /// weights — called after every parameter visit, since visitors get
    /// mutable access.
    fn refresh_quantized(&mut self) {
        if let Some(bank) = &self.quantized {
            self.quantize_experts(bank.precision);
        }
    }

    /// Whether inference currently runs through a quantized snapshot.
    pub fn is_quantized(&self) -> bool {
        self.quantized.is_some()
    }

    /// Stored bytes of the quantized expert bank (`None` at f32).
    pub fn quantized_bytes(&self) -> Option<usize> {
        self.quantized.as_ref().map(|bank| bank.experts.iter().map(|e| e.weight_bytes()).sum())
    }

    /// Number of experts in the bank.
    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }

    /// Immutable access to an expert (for weight surgery in tests/tools).
    pub fn expert(&self, e: usize) -> &ExpertFfn {
        &self.experts[e]
    }

    /// Executes the routed experts: token `t` flows through
    /// `expert[decision.expert[t]]` and is scaled by `decision.prob[t]`.
    ///
    /// # Panics
    ///
    /// Panics if the decision's token count differs from `h.rows()` or an
    /// expert index is out of range.
    pub fn forward(&mut self, h: &Tensor, decision: &RouteDecision) -> Tensor {
        assert_eq!(decision.num_tokens(), h.rows(), "decision/token mismatch");
        let groups = self.group_tokens(decision);
        let mut raw_out = Tensor::zeros([h.rows(), h.cols()]);
        for (e, idxs) in groups.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let sub = h.gather_rows(idxs);
            let out = self.experts[e].forward(&sub);
            for (row, &t) in idxs.iter().enumerate() {
                raw_out.row_mut(t).copy_from_slice(out.row(row));
            }
        }
        let mut scaled = raw_out.clone();
        for t in 0..scaled.rows() {
            let p = decision.prob[t];
            for v in scaled.row_mut(t) {
                *v *= p;
            }
        }
        self.cache = Some(MoeCache { decision: decision.clone(), groups, raw_out });
        scaled
    }

    /// Inference-only forward (no caching).
    ///
    /// Tokens are grouped by expert and each expert runs **once** on its
    /// whole token batch (the old path built a 1-row tensor per token).
    pub fn forward_inference(&self, h: &Tensor, decision: &RouteDecision) -> Tensor {
        self.forward_inference_arena(h, decision, &ScratchArena::new())
    }

    /// Grouped inference through arena-recycled buffers — the
    /// allocation-free serving path. The caller recycles the returned
    /// tensor when done.
    pub fn forward_inference_arena(
        &self,
        h: &Tensor,
        decision: &RouteDecision,
        arena: &ScratchArena,
    ) -> Tensor {
        assert_eq!(decision.num_tokens(), h.rows(), "decision/token mismatch");
        let cols = h.cols();
        let mut groups = self.group_scratch.borrow_mut();
        debug_assert_eq!(groups.len(), self.experts.len());
        for g in groups.iter_mut() {
            g.clear();
        }
        for (t, &e) in decision.expert.iter().enumerate() {
            assert!(e < self.experts.len(), "expert {e} out of range");
            groups[e].push(t);
        }
        let mut out = arena.take([h.rows(), cols]);
        for (e, idxs) in groups.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut sub = arena.take([idxs.len(), cols]);
            for (row, &t) in idxs.iter().enumerate() {
                sub.row_mut(row).copy_from_slice(h.row(t));
            }
            // A quantized snapshot, when present, is the serving truth: the
            // fused kernel consumes the stored int8/f16 panels directly.
            let y = match &self.quantized {
                Some(bank) => bank.experts[e].forward_inference_arena(&sub, arena),
                None => self.experts[e].forward_inference_arena(&sub, arena),
            };
            for (row, &t) in idxs.iter().enumerate() {
                let p = decision.prob[t];
                for (o, &v) in out.row_mut(t).iter_mut().zip(y.row(row)) {
                    *o = v * p;
                }
            }
            arena.recycle(sub);
            arena.recycle(y);
        }
        out
    }

    /// Backward pass. Returns `(dh, dprob)`: the gradient w.r.t. the block
    /// input and, per token, w.r.t. the selected gate probability (to be fed
    /// to [`super::Router::backward`]).
    ///
    /// # Panics
    ///
    /// Panics if called before [`MoeFfn::forward`].
    pub fn backward(&mut self, dy: &Tensor) -> (Tensor, Vec<f32>) {
        let cache = self.cache.take().expect("MoeFfn::backward before forward");
        let t_count = cache.decision.num_tokens();
        assert_eq!(dy.rows(), t_count, "dy/token mismatch");
        // dprob[t] = <dy[t], raw_out[t]>
        let mut dprob = Vec::with_capacity(t_count);
        for t in 0..t_count {
            let dot: f32 = dy.row(t).iter().zip(cache.raw_out.row(t)).map(|(a, b)| a * b).sum();
            dprob.push(dot);
        }
        // d_raw[t] = prob[t] · dy[t], routed back through each expert.
        let mut dh = Tensor::zeros([dy.rows(), dy.cols()]);
        for (e, idxs) in cache.groups.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut d_sub = dy.gather_rows(idxs);
            for (row, &t) in idxs.iter().enumerate() {
                let p = cache.decision.prob[t];
                for v in d_sub.row_mut(row) {
                    *v *= p;
                }
            }
            let dx_sub = self.experts[e].backward(&d_sub);
            for (row, &t) in idxs.iter().enumerate() {
                for (o, &v) in dh.row_mut(t).iter_mut().zip(dx_sub.row(row)) {
                    *o += v;
                }
            }
        }
        (dh, dprob)
    }

    fn group_tokens(&self, decision: &RouteDecision) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.experts.len()];
        for (t, &e) in decision.expert.iter().enumerate() {
            assert!(e < self.experts.len(), "expert {e} out of range");
            groups[e].push(t);
        }
        groups
    }
}

impl Layer for MoeFfn {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for e in &mut self.experts {
            e.visit_params(f);
        }
        // The visitor had mutable access; a stale snapshot would silently
        // serve the old expert weights.
        self.refresh_quantized();
    }

    fn visit_expert_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_decision(tokens: usize, experts: &[usize], num_experts: usize) -> RouteDecision {
        // Hand-built decision with prob 1.0 on given experts.
        let mut probs = Tensor::zeros([tokens, num_experts]);
        for (t, &e) in experts.iter().enumerate() {
            probs.set(&[t, e], 1.0);
        }
        RouteDecision::from_probs(probs)
    }

    #[test]
    fn tokens_flow_through_their_selected_expert() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut moe = MoeFfn::new(2, 4, 8, &mut rng);
        let h = pgmoe_tensor::init::normal([3, 4], 0.0, 1.0, &mut rng);
        let dec = uniform_decision(3, &[1, 0, 1], 2);
        let out = moe.forward(&h, &dec);
        // Compare against running each expert directly.
        for (t, &e) in [1usize, 0, 1].iter().enumerate() {
            let row = Tensor::from_vec([1, 4], h.row(t).to_vec()).unwrap();
            let direct = moe.experts[e].forward_inference(&row);
            for (a, b) in out.row(t).iter().zip(direct.row(0)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn output_scales_with_gate_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut moe = MoeFfn::new(2, 4, 8, &mut rng);
        let h = pgmoe_tensor::init::normal([1, 4], 0.0, 1.0, &mut rng);
        let mut probs = Tensor::zeros([1, 2]);
        probs.set(&[0, 0], 0.5);
        probs.set(&[0, 1], 0.5); // tie → argmax picks 0
        let dec = RouteDecision::from_probs(probs);
        assert_eq!(dec.expert[0], 0);
        let out_half = moe.forward(&h, &dec);
        let full = uniform_decision(1, &[0], 2);
        let out_full = moe.forward(&h, &full);
        for (a, b) in out_half.row(0).iter().zip(out_full.row(0)) {
            assert!((a * 2.0 - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_gradient_check_with_fixed_routing() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut moe = MoeFfn::new(3, 4, 6, &mut rng);
        let h = pgmoe_tensor::init::normal([4, 4], 0.0, 1.0, &mut rng);
        let dec = uniform_decision(4, &[2, 0, 1, 2], 3);
        let w = pgmoe_tensor::init::normal([4, 4], 0.0, 1.0, &mut rng);
        let _ = moe.forward(&h, &dec);
        let (dh, _) = moe.backward(&w);
        let eps = 1e-2;
        for i in 0..h.len() {
            let mut hp = h.clone();
            hp.as_mut_slice()[i] += eps;
            let mut hm = h.clone();
            hm.as_mut_slice()[i] -= eps;
            let lp = moe.forward_inference(&hp, &dec).mul(&w).sum();
            let lm = moe.forward_inference(&hm, &dec).mul(&w).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dh.as_slice()[i] - numeric).abs() < 3e-2,
                "elem {i}: {} vs {numeric}",
                dh.as_slice()[i]
            );
        }
    }

    #[test]
    fn dprob_matches_directional_derivative() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut moe = MoeFfn::new(2, 4, 6, &mut rng);
        let h = pgmoe_tensor::init::normal([2, 4], 0.0, 1.0, &mut rng);
        let dec = uniform_decision(2, &[0, 1], 2);
        let w = pgmoe_tensor::init::normal([2, 4], 0.0, 1.0, &mut rng);
        let _ = moe.forward(&h, &dec);
        let (_, dprob) = moe.backward(&w);
        // Perturb token 0's prob.
        let eps = 1e-3;
        let mut dec_p = dec.clone();
        dec_p.prob[0] += eps;
        let mut dec_m = dec.clone();
        dec_m.prob[0] -= eps;
        let lp = moe.forward_inference(&h, &dec_p).mul(&w).sum();
        let lm = moe.forward_inference(&h, &dec_m).mul(&w).sum();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((dprob[0] - numeric).abs() < 1e-2, "{} vs {numeric}", dprob[0]);
    }

    #[test]
    fn active_experts_deduplicates() {
        let dec = uniform_decision(4, &[1, 1, 0, 1], 3);
        assert_eq!(dec.active_experts(), vec![0, 1]);
    }

    #[test]
    fn quantized_bank_tracks_dense_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut moe = MoeFfn::new(3, 8, 16, &mut rng);
        let h = pgmoe_tensor::init::normal([5, 8], 0.0, 1.0, &mut rng);
        let dec = uniform_decision(5, &[2, 0, 1, 2, 0], 3);
        let dense = moe.forward_inference(&h, &dec);
        for precision in [ExpertPrecision::Int8, ExpertPrecision::F16] {
            moe.quantize_experts(precision);
            assert!(moe.is_quantized());
            assert!(
                moe.quantized_bytes().unwrap() < 3 * (8 * 16 * 2) * 4,
                "{precision}: quantized bank must be smaller than f32"
            );
            let q = moe.forward_inference(&h, &dec);
            let denom = dense.norm_sq().sqrt().max(1e-6);
            let err = dense.sub(&q).norm_sq().sqrt() / denom;
            assert!(err < 0.02, "{precision}: relative error {err}");
        }
        moe.quantize_experts(ExpertPrecision::F32);
        assert!(!moe.is_quantized());
        assert_eq!(moe.forward_inference(&h, &dec), dense);
    }
}
