//! Binary checkpointing for trainable networks.
//!
//! The paper's recipe starts every variant from one *pretrained* checkpoint
//! (Section IV-B). This module gives that checkpoint a durable form: a
//! simple versioned little-endian binary format (no external serializers)
//! holding every parameter tensor in `visit_params` order.
//!
//! Version 1 (f32): magic `PGMOE\0` + u32 version + u64 tensor count, then
//! per tensor: u32 rank, u64 extents…, f32 data….
//!
//! Version 2 (quantized, [`save_params_quantized`]): magic + u32 version +
//! u8 precision tag (0 = f32, 1 = f16, 2 = int8) + u64 tensor count, then
//! per tensor: u32 rank, u64 extents…, u8 payload tag, payload. Only the
//! *expert FFN* weight matrices (per [`Layer::visit_expert_params`]) carry
//! the checkpoint's precision — experts dominate the bytes and are the
//! unit the precision axis quantizes; routers, attention, embeddings,
//! norms, and biases stay f32, so routing survives a round-trip at full
//! precision. Int8 payloads store the quantization group, the per-group
//! f32 scales, then the raw i8 data; loading dequantizes, so a quantized
//! checkpoint round-trips its *stored* values exactly.
//!
//! Version 3 extends v2 with the sub-byte payload tags (3 = Q4_0,
//! 4 = Q4K); the header layout is identical. The writer emits version 2
//! whenever the precision only needs v2 tags — old-precision streams stay
//! byte-identical to what v2 writers produced — and version 3 only for
//! `Q4`/`Q4K`. The loader accepts both versions but rejects sub-byte tags
//! inside a v2 stream, so a v2-era reader's error behaviour is preserved
//! exactly. Q4_0 payloads store the per-block f16 scale words then the
//! packed nibble data; Q4K payloads store the super-block `d`/`dmin` f16
//! words, the per-sub-block `sc`/`mn` codes, then the packed nibble data.
//! Loading dequantizes the *stored* codes exactly, same as every other
//! payload kind (Q4_0 re-quantization is additionally a fixed point, so
//! load-then-resave stays byte-identical; Q4K is not, which is why the
//! loader round-trip is specified in terms of stored values).

use crate::config::ExpertPrecision;
use pgmoe_tensor::nn::Layer;
use pgmoe_tensor::quant::{Q4K_SUB, Q4K_SUPER, Q4_BLOCK};
use pgmoe_tensor::{QuantMode, QuantizedTensor, Tensor};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 6] = b"PGMOE\0";
const VERSION: u32 = 1;
const QUANT_VERSION: u32 = 2;
const QUANT_VERSION_V3: u32 = 3;

const TAG_F32: u8 = 0;
const TAG_F16: u8 = 1;
const TAG_INT8: u8 = 2;
const TAG_Q4: u8 = 3;
const TAG_Q4K: u8 = 4;

fn precision_tag(p: ExpertPrecision) -> u8 {
    match p {
        ExpertPrecision::F32 => TAG_F32,
        ExpertPrecision::F16 => TAG_F16,
        ExpertPrecision::Int8 => TAG_INT8,
        ExpertPrecision::Q4 => TAG_Q4,
        ExpertPrecision::Q4K => TAG_Q4K,
    }
}

fn tag_precision(tag: u8) -> Option<ExpertPrecision> {
    match tag {
        TAG_F32 => Some(ExpertPrecision::F32),
        TAG_F16 => Some(ExpertPrecision::F16),
        TAG_INT8 => Some(ExpertPrecision::Int8),
        TAG_Q4 => Some(ExpertPrecision::Q4),
        TAG_Q4K => Some(ExpertPrecision::Q4K),
        _ => None,
    }
}

/// The stream version a quantized save at `p` produces: v2 unless the
/// precision needs the sub-byte tags v2 readers don't know.
fn quant_stream_version(p: ExpertPrecision) -> u32 {
    match p {
        ExpertPrecision::F32 | ExpertPrecision::F16 | ExpertPrecision::Int8 => QUANT_VERSION,
        ExpertPrecision::Q4 | ExpertPrecision::Q4K => QUANT_VERSION_V3,
    }
}

/// Error produced by checkpoint encode/decode.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a checkpoint or is of an unsupported version.
    BadHeader,
    /// The checkpoint's tensors do not match the target network's shapes.
    ShapeMismatch {
        /// Index of the mismatching tensor.
        index: usize,
    },
    /// The checkpoint holds a different number of tensors than the network.
    CountMismatch {
        /// Tensors in the checkpoint.
        stored: usize,
        /// Parameters in the network.
        expected: usize,
    },
    /// A quantized checkpoint's precision differs from the one the caller
    /// expects (the network is left untouched).
    PrecisionMismatch {
        /// Precision recorded in the checkpoint header.
        stored: ExpertPrecision,
        /// Precision the caller asked to load.
        expected: ExpertPrecision,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadHeader => write!(f, "not a pgmoe checkpoint (bad magic/version)"),
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "tensor {index} shape mismatch")
            }
            CheckpointError::CountMismatch { stored, expected } => {
                write!(f, "checkpoint holds {stored} tensors, network has {expected}")
            }
            CheckpointError::PrecisionMismatch { stored, expected } => {
                write!(f, "checkpoint stores {stored} parameters, caller expected {expected}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes every parameter of `layer` into `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(layer: &mut dyn Layer, w: &mut W) -> Result<(), CheckpointError> {
    let mut tensors: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |p| tensors.push(p.value.clone()));
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(tensors.len() as u64).to_le_bytes())?;
    for t in &tensors {
        w.write_all(&(t.dims().len() as u32).to_le_bytes())?;
        for &d in t.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for v in t.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores every parameter of `layer` from `r`, in `visit_params` order.
///
/// Gradients are zeroed (a restored checkpoint starts a fresh optimisation).
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed streams or shape mismatches; the
/// network is left unmodified on any error.
pub fn load_params<R: Read>(layer: &mut dyn Layer, r: &mut R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::BadHeader);
    }
    let count = read_u64(r)? as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(r)? as usize);
        }
        let len: usize = dims.iter().product();
        let mut data = vec![0f32; len];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        tensors.push(Tensor::from_vec(dims, data).map_err(|_| CheckpointError::BadHeader)?);
    }
    // Validate against the target before mutating anything.
    let mut shapes = Vec::new();
    layer.visit_params(&mut |p| shapes.push(p.value.shape().clone()));
    if shapes.len() != tensors.len() {
        return Err(CheckpointError::CountMismatch {
            stored: tensors.len(),
            expected: shapes.len(),
        });
    }
    for (i, (shape, t)) in shapes.iter().zip(&tensors).enumerate() {
        if shape != t.shape() {
            return Err(CheckpointError::ShapeMismatch { index: i });
        }
    }
    let mut iter = tensors.into_iter();
    layer.visit_params(&mut |p| {
        p.value = iter.next().expect("validated count");
        p.zero_grad();
    });
    Ok(())
}

/// Serializes every parameter of `layer` at `precision` (format v2, or
/// v3 for the sub-byte `Q4`/`Q4K` precisions).
///
/// Only *expert* weight matrices — the parameters the layer reports via
/// [`Layer::visit_expert_params`], identified by [`Param::id`] — are
/// quantized per the precision's [`ExpertPrecision::quant_mode`].
/// Everything else (routers, attention, embeddings, norms, and all
/// rank-0/1 tensors such as biases) stays f32, matching the
/// `ExpertPrecision` semantics everywhere else in the system: experts are
/// the quantized/migrated unit, and routing survives a checkpoint
/// round-trip at full precision. Saving at [`ExpertPrecision::F32`] writes
/// a v2 stream with f32 payloads — useful for precision-tagged
/// full-precision checkpoints.
///
/// [`Param::id`]: pgmoe_tensor::nn::Param::id
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params_quantized<W: Write>(
    layer: &mut dyn Layer,
    precision: ExpertPrecision,
    w: &mut W,
) -> Result<(), CheckpointError> {
    let mut expert_ids = std::collections::HashSet::new();
    layer.visit_expert_params(&mut |p| {
        expert_ids.insert(p.id());
    });
    let mut tensors: Vec<(bool, Tensor)> = Vec::new();
    layer.visit_params(&mut |p| tensors.push((expert_ids.contains(&p.id()), p.value.clone())));
    w.write_all(MAGIC)?;
    w.write_all(&quant_stream_version(precision).to_le_bytes())?;
    w.write_all(&[precision_tag(precision)])?;
    w.write_all(&(tensors.len() as u64).to_le_bytes())?;
    for (is_expert, t) in &tensors {
        w.write_all(&(t.dims().len() as u32).to_le_bytes())?;
        for &d in t.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        let mode = if *is_expert && t.shape().rank() == 2 { precision.quant_mode() } else { None };
        match mode {
            None => {
                w.write_all(&[TAG_F32])?;
                for v in t.as_slice() {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
            Some(QuantMode::F16) => {
                let q = QuantizedTensor::quantize(t, QuantMode::F16);
                w.write_all(&[TAG_F16])?;
                for &h in q.f16_bits().expect("f16 storage") {
                    w.write_all(&h.to_le_bytes())?;
                }
            }
            Some(mode @ QuantMode::Int8 { .. }) => {
                let q = QuantizedTensor::quantize(t, mode);
                let (data, scales, group) = q.int8_parts().expect("int8 storage");
                w.write_all(&[TAG_INT8])?;
                w.write_all(&(group as u32).to_le_bytes())?;
                w.write_all(&(scales.len() as u64).to_le_bytes())?;
                for s in scales {
                    w.write_all(&s.to_le_bytes())?;
                }
                // i8 → u8 reinterpretation is a no-op byte-wise.
                let bytes: Vec<u8> = data.iter().map(|&v| v as u8).collect();
                w.write_all(&bytes)?;
            }
            Some(QuantMode::Q4) => {
                let q = QuantizedTensor::quantize(t, QuantMode::Q4);
                let (data, scales) = q.q4_parts().expect("q4 storage");
                w.write_all(&[TAG_Q4])?;
                w.write_all(&(scales.len() as u64).to_le_bytes())?;
                for s in scales {
                    w.write_all(&s.to_le_bytes())?;
                }
                w.write_all(data)?;
            }
            Some(QuantMode::Q4K) => {
                let q = QuantizedTensor::quantize(t, QuantMode::Q4K);
                let (data, d, dmin, sc, mn) = q.q4k_parts().expect("q4k storage");
                w.write_all(&[TAG_Q4K])?;
                w.write_all(&(d.len() as u64).to_le_bytes())?;
                for v in d.iter().chain(dmin) {
                    w.write_all(&v.to_le_bytes())?;
                }
                w.write_all(&(sc.len() as u64).to_le_bytes())?;
                w.write_all(sc)?;
                w.write_all(mn)?;
                w.write_all(data)?;
            }
        }
    }
    Ok(())
}

/// Restores every parameter of `layer` from a v2 or v3 quantized
/// checkpoint, dequantizing payloads into f32 parameters (gradients are
/// zeroed). Sub-byte payload tags are only accepted in v3 streams — a v2
/// stream carrying them is malformed, exactly as a v2-era reader would
/// judge it.
///
/// # Errors
///
/// Returns [`CheckpointError::PrecisionMismatch`] if the header's precision
/// differs from `expected`, and the usual header/shape/count errors
/// otherwise. **The network is left unmodified on any error.**
pub fn load_params_quantized<R: Read>(
    layer: &mut dyn Layer,
    expected: ExpertPrecision,
    r: &mut R,
) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let version = read_u32(r)?;
    if version != QUANT_VERSION && version != QUANT_VERSION_V3 {
        return Err(CheckpointError::BadHeader);
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let stored = tag_precision(tag[0]).ok_or(CheckpointError::BadHeader)?;
    if stored != expected {
        return Err(CheckpointError::PrecisionMismatch { stored, expected });
    }
    let count = read_u64(r)? as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(r)? as usize);
        }
        let len: usize = dims.iter().product();
        let mut payload_tag = [0u8; 1];
        r.read_exact(&mut payload_tag)?;
        let t = match payload_tag[0] {
            TAG_F32 => {
                let mut data = vec![0f32; len];
                for v in &mut data {
                    let mut buf = [0u8; 4];
                    r.read_exact(&mut buf)?;
                    *v = f32::from_le_bytes(buf);
                }
                Tensor::from_vec(dims, data).map_err(|_| CheckpointError::BadHeader)?
            }
            TAG_F16 => {
                let mut data = vec![0u16; len];
                for v in &mut data {
                    let mut buf = [0u8; 2];
                    r.read_exact(&mut buf)?;
                    *v = u16::from_le_bytes(buf);
                }
                if dims.len() != 2 {
                    return Err(CheckpointError::BadHeader);
                }
                QuantizedTensor::from_f16_bits(dims, data).dequantize()
            }
            TAG_INT8 => {
                let group = read_u32(r)? as usize;
                let scale_count = read_u64(r)? as usize;
                if dims.len() != 2 || group == 0 || scale_count != dims[0] * dims[1].div_ceil(group)
                {
                    return Err(CheckpointError::BadHeader);
                }
                let mut scales = vec![0f32; scale_count];
                for s in &mut scales {
                    let mut buf = [0u8; 4];
                    r.read_exact(&mut buf)?;
                    *s = f32::from_le_bytes(buf);
                }
                let mut bytes = vec![0u8; len];
                r.read_exact(&mut bytes)?;
                let data: Vec<i8> = bytes.into_iter().map(|b| b as i8).collect();
                QuantizedTensor::from_int8_parts(dims, data, scales, group).dequantize()
            }
            TAG_Q4 if version >= QUANT_VERSION_V3 => {
                let scale_count = read_u64(r)? as usize;
                if dims.len() != 2 || scale_count != dims[0] * dims[1].div_ceil(Q4_BLOCK) {
                    return Err(CheckpointError::BadHeader);
                }
                let mut scales = vec![0u16; scale_count];
                for s in &mut scales {
                    let mut buf = [0u8; 2];
                    r.read_exact(&mut buf)?;
                    *s = u16::from_le_bytes(buf);
                }
                let mut data = vec![0u8; dims[0] * dims[1].div_ceil(2)];
                r.read_exact(&mut data)?;
                QuantizedTensor::from_q4_parts(dims, data, scales).dequantize()
            }
            TAG_Q4K if version >= QUANT_VERSION_V3 => {
                let super_count = read_u64(r)? as usize;
                if dims.len() != 2 || super_count != dims[0] * dims[1].div_ceil(Q4K_SUPER) {
                    return Err(CheckpointError::BadHeader);
                }
                let mut words = vec![0u16; 2 * super_count];
                for v in &mut words {
                    let mut buf = [0u8; 2];
                    r.read_exact(&mut buf)?;
                    *v = u16::from_le_bytes(buf);
                }
                let dmin = words.split_off(super_count);
                let d = words;
                let sub_count = read_u64(r)? as usize;
                if sub_count != dims[0] * dims[1].div_ceil(Q4K_SUB) {
                    return Err(CheckpointError::BadHeader);
                }
                let mut sc = vec![0u8; sub_count];
                r.read_exact(&mut sc)?;
                let mut mn = vec![0u8; sub_count];
                r.read_exact(&mut mn)?;
                let mut data = vec![0u8; dims[0] * dims[1].div_ceil(2)];
                r.read_exact(&mut data)?;
                QuantizedTensor::from_q4k_parts(dims, data, d, dmin, sc, mn).dequantize()
            }
            _ => return Err(CheckpointError::BadHeader),
        };
        tensors.push(t);
    }
    // Validate against the target before mutating anything.
    let mut shapes = Vec::new();
    layer.visit_params(&mut |p| shapes.push(p.value.shape().clone()));
    if shapes.len() != tensors.len() {
        return Err(CheckpointError::CountMismatch {
            stored: tensors.len(),
            expected: shapes.len(),
        });
    }
    for (i, (shape, t)) in shapes.iter().zip(&tensors).enumerate() {
        if shape != t.shape() {
            return Err(CheckpointError::ShapeMismatch { index: i });
        }
    }
    let mut iter = tensors.into_iter();
    layer.visit_params(&mut |p| {
        p.value = iter.next().expect("validated count");
        p.zero_grad();
    });
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{SwitchNet, SwitchNetConfig};
    use crate::GatingMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> SwitchNet {
        let mut rng = StdRng::seed_from_u64(seed);
        SwitchNet::new(SwitchNetConfig::small(16, 6, 4, GatingMode::Conventional), &mut rng)
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut b = net(2); // different weights
        load_params(&mut b, &mut buf.as_slice()).unwrap();
        let tokens = [1usize, 2, 3, 4, 5, 0];
        assert_eq!(a.forward_inference(&tokens), b.forward_inference(&tokens));
    }

    #[test]
    fn load_rejects_garbage() {
        let mut n = net(1);
        let garbage = vec![0u8; 64];
        assert!(matches!(
            load_params(&mut n, &mut garbage.as_slice()),
            Err(CheckpointError::BadHeader)
        ));
    }

    #[test]
    fn load_rejects_shape_mismatch_without_mutating() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        // Different architecture: more experts.
        let mut rng = StdRng::seed_from_u64(3);
        let mut b =
            SwitchNet::new(SwitchNetConfig::small(16, 6, 8, GatingMode::Conventional), &mut rng);
        let before = b.forward_inference(&[1, 2, 3, 4, 5, 0]);
        let err = load_params(&mut b, &mut buf.as_slice());
        assert!(err.is_err());
        assert_eq!(b.forward_inference(&[1, 2, 3, 4, 5, 0]), before, "failed load must not mutate");
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = net(2);
        assert!(matches!(load_params(&mut b, &mut buf.as_slice()), Err(CheckpointError::Io(_))));
    }

    #[test]
    fn quantized_save_load_round_trips_exactly() {
        // Quantize-then-save is lossy once; load-then-save must be a fixed
        // point: the dequantized values re-quantize to the identical stream.
        // (Q4_0 qualifies — the block max pins the stored scale exactly —
        // but Q4K does not, so it has its own stored-value test below.)
        for precision in
            [ExpertPrecision::Int8, ExpertPrecision::F16, ExpertPrecision::F32, ExpertPrecision::Q4]
        {
            let mut a = net(1);
            let mut buf = Vec::new();
            save_params_quantized(&mut a, precision, &mut buf).unwrap();
            let mut b = net(2);
            load_params_quantized(&mut b, precision, &mut buf.as_slice()).unwrap();
            let mut buf2 = Vec::new();
            save_params_quantized(&mut b, precision, &mut buf2).unwrap();
            assert_eq!(buf, buf2, "{precision}: reload+resave must be byte-identical");
            // And the loaded params are exactly the dequantized stored values.
            let mut c = net(3);
            load_params_quantized(&mut c, precision, &mut buf.as_slice()).unwrap();
            let tokens = [1usize, 2, 3, 4, 5, 0];
            assert_eq!(b.forward_inference(&tokens), c.forward_inference(&tokens));
        }
    }

    #[test]
    fn q4k_checkpoint_loads_exact_stored_values() {
        // Q4K re-quantization is not a fixed point, so the contract is the
        // direct one: loaded params are exactly the dequantized stored
        // codes — i.e. exactly what quantizing the original experts yields.
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let mut a = net(8);
        let mut buf = Vec::new();
        save_params_quantized(&mut a, ExpertPrecision::Q4K, &mut buf).unwrap();
        let mut b = net(9);
        load_params_quantized(&mut b, ExpertPrecision::Q4K, &mut buf.as_slice()).unwrap();
        let mut expert_ids = std::collections::HashSet::new();
        a.visit_expert_params(&mut |p| {
            expert_ids.insert(p.id());
        });
        let collect = |n: &mut SwitchNet| {
            let mut experts = Vec::new();
            n.visit_params(&mut |p| {
                if expert_ids.contains(&p.id()) && p.value.shape().rank() == 2 {
                    experts.push(p.value.clone());
                }
            });
            experts
        };
        // Same architecture from the same constructor: param ids line up.
        for (orig, loaded) in collect(&mut a).iter().zip(collect(&mut b)) {
            let stored = QuantizedTensor::quantize(orig, QuantMode::Q4K).dequantize();
            assert_eq!(stored, loaded, "loaded expert must equal dequantized stored codes");
        }
        let mut aq = a.clone();
        aq.quantize_experts(ExpertPrecision::Q4K);
        assert_eq!(b.forward_inference(&tokens), aq.forward_inference(&tokens));
    }

    #[test]
    fn sub_byte_streams_are_v3_and_legacy_streams_stay_v2() {
        let mut a = net(1);
        let version_of = |buf: &[u8]| u32::from_le_bytes(buf[6..10].try_into().unwrap());
        let mut int8_buf = Vec::new();
        save_params_quantized(&mut a, ExpertPrecision::Int8, &mut int8_buf).unwrap();
        assert_eq!(version_of(&int8_buf), 2, "old precisions must keep emitting v2 streams");
        let mut q4_buf = Vec::new();
        save_params_quantized(&mut a, ExpertPrecision::Q4, &mut q4_buf).unwrap();
        assert_eq!(version_of(&q4_buf), 3);
        let mut q4k_buf = Vec::new();
        save_params_quantized(&mut a, ExpertPrecision::Q4K, &mut q4k_buf).unwrap();
        assert_eq!(version_of(&q4k_buf), 3);
        // A v2 stream may not smuggle sub-byte payload tags: patch the Q4
        // stream's version down to 2 and the loader must call it malformed
        // (exactly as a v2-era reader would), without mutating the target.
        let mut patched = q4_buf.clone();
        patched[6..10].copy_from_slice(&2u32.to_le_bytes());
        let mut b = net(2);
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let before = b.forward_inference(&tokens);
        let err = load_params_quantized(&mut b, ExpertPrecision::Q4, &mut patched.as_slice());
        assert!(matches!(err, Err(CheckpointError::BadHeader)));
        assert_eq!(b.forward_inference(&tokens), before, "failed load must not mutate");
        // Sub-byte streams really are smaller than the int8 ones.
        assert!(q4_buf.len() < int8_buf.len());
        assert!(q4k_buf.len() < int8_buf.len());
    }

    #[test]
    fn quantized_checkpoint_is_smaller_and_close() {
        let mut a = net(4);
        let mut f32_buf = Vec::new();
        save_params(&mut a, &mut f32_buf).unwrap();
        let mut int8_buf = Vec::new();
        save_params_quantized(&mut a, ExpertPrecision::Int8, &mut int8_buf).unwrap();
        assert!(
            int8_buf.len() * 2 < f32_buf.len(),
            "int8 checkpoint ({}) should be well under half the f32 one ({})",
            int8_buf.len(),
            f32_buf.len()
        );
        // Dequantized weights stay close to the originals.
        let mut b = net(5);
        load_params_quantized(&mut b, ExpertPrecision::Int8, &mut int8_buf.as_slice()).unwrap();
        let mut worst = 0.0f32;
        let mut originals = Vec::new();
        a.visit_params(&mut |p| originals.push(p.value.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            for (x, y) in p.value.as_slice().iter().zip(originals[i].as_slice()) {
                worst = worst.max((x - y).abs());
            }
            i += 1;
        });
        assert!(worst < 0.05, "worst int8 reconstruction error {worst}");
    }

    #[test]
    fn quantized_checkpoint_keeps_routers_full_precision() {
        use crate::net::SwitchNet;
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let mut a = net(6);
        let mut buf = Vec::new();
        save_params_quantized(&mut a, ExpertPrecision::Int8, &mut buf).unwrap();
        let mut b = net(7);
        load_params_quantized(&mut b, ExpertPrecision::Int8, &mut buf.as_slice()).unwrap();
        // Only expert weights were quantized, so the loaded net must be
        // numerically identical to the original running through a
        // quantized-expert snapshot: routers/attention/embeddings agree
        // bit-for-bit and expert outputs agree because the fused kernel is
        // bitwise dequantize-then-matmul.
        let mut aq = a.clone();
        aq.quantize_experts(ExpertPrecision::Int8);
        assert_eq!(b.forward_inference(&tokens), aq.forward_inference(&tokens));
        // Router weights specifically round-trip exactly (f32 payloads).
        let collect = |n: &mut SwitchNet| {
            let mut non_expert = Vec::new();
            let mut expert_ids = std::collections::HashSet::new();
            n.visit_expert_params(&mut |p| {
                expert_ids.insert(p.id());
            });
            n.visit_params(&mut |p| {
                if !expert_ids.contains(&p.id()) {
                    non_expert.push(p.value.clone());
                }
            });
            non_expert
        };
        assert_eq!(collect(&mut a), collect(&mut b), "non-expert params must be exact");
    }

    #[test]
    fn loading_params_refreshes_quantized_snapshot() {
        // Regression: a net serving through a quantized snapshot must not
        // keep serving the OLD experts after a checkpoint load.
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut b = net(2);
        b.quantize_experts(ExpertPrecision::Int8);
        let stale = b.forward_inference(&tokens);
        load_params(&mut b, &mut buf.as_slice()).unwrap();
        let mut aq = a.clone();
        aq.quantize_experts(ExpertPrecision::Int8);
        let fresh = b.forward_inference(&tokens);
        assert_ne!(fresh, stale, "load must invalidate the old snapshot");
        assert_eq!(fresh, aq.forward_inference(&tokens), "snapshot must serve loaded weights");
    }

    #[test]
    fn load_rejects_precision_mismatch_without_mutating() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params_quantized(&mut a, ExpertPrecision::Int8, &mut buf).unwrap();
        let mut b = net(2);
        let tokens = [1usize, 2, 3, 4, 5, 0];
        let before = b.forward_inference(&tokens);
        let err = load_params_quantized(&mut b, ExpertPrecision::F16, &mut buf.as_slice());
        assert!(matches!(
            err,
            Err(CheckpointError::PrecisionMismatch {
                stored: ExpertPrecision::Int8,
                expected: ExpertPrecision::F16,
            })
        ));
        assert_eq!(b.forward_inference(&tokens), before, "failed load must not mutate");
        // The v1 loader must also reject a v2 stream cleanly.
        let err = load_params(&mut b, &mut buf.as_slice());
        assert!(matches!(err, Err(CheckpointError::BadHeader)));
        assert_eq!(b.forward_inference(&tokens), before);
        // And the v2 loader must reject a v1 stream.
        let mut v1 = Vec::new();
        save_params(&mut a, &mut v1).unwrap();
        let err = load_params_quantized(&mut b, ExpertPrecision::Int8, &mut v1.as_slice());
        assert!(matches!(err, Err(CheckpointError::BadHeader)));
        assert_eq!(b.forward_inference(&tokens), before);
    }

    #[test]
    fn checkpoint_grads_are_zeroed_on_load() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut b = net(2);
        // Dirty b's grads.
        b.visit_params(&mut |p| {
            for g in p.grad.as_mut_slice() {
                *g = 1.0;
            }
        });
        load_params(&mut b, &mut buf.as_slice()).unwrap();
        let mut total = 0.0;
        b.visit_params(&mut |p| total += p.grad.norm_sq());
        assert_eq!(total, 0.0);
    }
}
