//! Binary checkpointing for trainable networks.
//!
//! The paper's recipe starts every variant from one *pretrained* checkpoint
//! (Section IV-B). This module gives that checkpoint a durable form: a
//! simple versioned little-endian binary format (no external serializers)
//! holding every parameter tensor in `visit_params` order.
//!
//! Format: magic `PGMOE\0` + u32 version + u64 tensor count, then per
//! tensor: u32 rank, u64 extents…, f32 data….

use pgmoe_tensor::nn::Layer;
use pgmoe_tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 6] = b"PGMOE\0";
const VERSION: u32 = 1;

/// Error produced by checkpoint encode/decode.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a checkpoint or is of an unsupported version.
    BadHeader,
    /// The checkpoint's tensors do not match the target network's shapes.
    ShapeMismatch {
        /// Index of the mismatching tensor.
        index: usize,
    },
    /// The checkpoint holds a different number of tensors than the network.
    CountMismatch {
        /// Tensors in the checkpoint.
        stored: usize,
        /// Parameters in the network.
        expected: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadHeader => write!(f, "not a pgmoe checkpoint (bad magic/version)"),
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "tensor {index} shape mismatch")
            }
            CheckpointError::CountMismatch { stored, expected } => {
                write!(f, "checkpoint holds {stored} tensors, network has {expected}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes every parameter of `layer` into `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(layer: &mut dyn Layer, w: &mut W) -> Result<(), CheckpointError> {
    let mut tensors: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |p| tensors.push(p.value.clone()));
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(tensors.len() as u64).to_le_bytes())?;
    for t in &tensors {
        w.write_all(&(t.dims().len() as u32).to_le_bytes())?;
        for &d in t.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for v in t.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores every parameter of `layer` from `r`, in `visit_params` order.
///
/// Gradients are zeroed (a restored checkpoint starts a fresh optimisation).
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed streams or shape mismatches; the
/// network is left unmodified on any error.
pub fn load_params<R: Read>(layer: &mut dyn Layer, r: &mut R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::BadHeader);
    }
    let count = read_u64(r)? as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(r)? as usize);
        }
        let len: usize = dims.iter().product();
        let mut data = vec![0f32; len];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        tensors.push(Tensor::from_vec(dims, data).map_err(|_| CheckpointError::BadHeader)?);
    }
    // Validate against the target before mutating anything.
    let mut shapes = Vec::new();
    layer.visit_params(&mut |p| shapes.push(p.value.shape().clone()));
    if shapes.len() != tensors.len() {
        return Err(CheckpointError::CountMismatch {
            stored: tensors.len(),
            expected: shapes.len(),
        });
    }
    for (i, (shape, t)) in shapes.iter().zip(&tensors).enumerate() {
        if shape != t.shape() {
            return Err(CheckpointError::ShapeMismatch { index: i });
        }
    }
    let mut iter = tensors.into_iter();
    layer.visit_params(&mut |p| {
        p.value = iter.next().expect("validated count");
        p.zero_grad();
    });
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{SwitchNet, SwitchNetConfig};
    use crate::GatingMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> SwitchNet {
        let mut rng = StdRng::seed_from_u64(seed);
        SwitchNet::new(SwitchNetConfig::small(16, 6, 4, GatingMode::Conventional), &mut rng)
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut b = net(2); // different weights
        load_params(&mut b, &mut buf.as_slice()).unwrap();
        let tokens = [1usize, 2, 3, 4, 5, 0];
        assert_eq!(a.forward_inference(&tokens), b.forward_inference(&tokens));
    }

    #[test]
    fn load_rejects_garbage() {
        let mut n = net(1);
        let garbage = vec![0u8; 64];
        assert!(matches!(
            load_params(&mut n, &mut garbage.as_slice()),
            Err(CheckpointError::BadHeader)
        ));
    }

    #[test]
    fn load_rejects_shape_mismatch_without_mutating() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        // Different architecture: more experts.
        let mut rng = StdRng::seed_from_u64(3);
        let mut b =
            SwitchNet::new(SwitchNetConfig::small(16, 6, 8, GatingMode::Conventional), &mut rng);
        let before = b.forward_inference(&[1, 2, 3, 4, 5, 0]);
        let err = load_params(&mut b, &mut buf.as_slice());
        assert!(err.is_err());
        assert_eq!(b.forward_inference(&[1, 2, 3, 4, 5, 0]), before, "failed load must not mutate");
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = net(2);
        assert!(matches!(load_params(&mut b, &mut buf.as_slice()), Err(CheckpointError::Io(_))));
    }

    #[test]
    fn checkpoint_grads_are_zeroed_on_load() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut b = net(2);
        // Dirty b's grads.
        b.visit_params(&mut |p| {
            for g in p.grad.as_mut_slice() {
                *g = 1.0;
            }
        });
        load_params(&mut b, &mut buf.as_slice()).unwrap();
        let mut total = 0.0;
        b.visit_params(&mut |p| total += p.grad.norm_sq());
        assert_eq!(total, 0.0);
    }
}
