//! The gating topology of Fig 6: which block computes which block's routing.
//!
//! In a conventional MoE, block `b`'s gate runs at block `b` and selects
//! experts for block `b` — expert selection and expert execution are
//! sequentially dependent within the block. The paper's pre-gate instead runs
//! at block `b` and selects experts for block `b + N` (activation level `N`,
//! default 1). Fig 6's consequences, encoded here:
//!
//! * the **first `N` blocks** keep a conventional "first gate" for their own
//!   routing (there is no earlier block to pre-select for them) — and block
//!   `b < N` *also* hosts the pre-gate targeting `b + N`, so the first block
//!   carries two gate functions when `N = 1`;
//! * the **last `N` blocks** host no gate at all (there is no block `b + N`
//!   to pre-select for);
//! * pre-gating never crosses a decoder-iteration boundary.

use serde::{Deserialize, Serialize};

/// Whether gates select for their own block or `level` blocks ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatingMode {
    /// Conventional MoE: each block's gate selects for that block.
    Conventional,
    /// The paper's pre-gated MoE with activation level `level ≥ 1`
    /// (Fig 13 evaluates levels 1–3; level 1 is the paper's default).
    Pregated {
        /// How many blocks ahead a pre-gate selects for.
        level: usize,
    },
}

impl GatingMode {
    /// The activation level: 0 for conventional gating.
    pub fn level(self) -> usize {
        match self {
            GatingMode::Conventional => 0,
            GatingMode::Pregated { level } => level,
        }
    }
}

/// The complete gate wiring for a stack of MoE blocks.
///
/// # Example
///
/// ```
/// use pgmoe_model::{GateTopology, GatingMode};
///
/// // Fig 6: three pre-gated blocks at level 1.
/// let topo = GateTopology::new(3, GatingMode::Pregated { level: 1 });
/// assert_eq!(topo.gates_hosted_at(0), vec![0, 1]); // first gate + pre-gate
/// assert_eq!(topo.gates_hosted_at(1), vec![2]);
/// assert_eq!(topo.gates_hosted_at(2), vec![]);     // last block: no gate
/// assert_eq!(topo.route_source(2), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateTopology {
    num_blocks: usize,
    mode: GatingMode,
}

impl GateTopology {
    /// Creates a topology over `num_blocks` MoE blocks.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0`, or if a pre-gated level is 0 or ≥
    /// `num_blocks` (no block would ever be pre-selected).
    pub fn new(num_blocks: usize, mode: GatingMode) -> Self {
        assert!(num_blocks > 0, "topology needs at least one block");
        if let GatingMode::Pregated { level } = mode {
            assert!(level >= 1, "pre-gated level must be >= 1 (0 is conventional)");
            assert!(level < num_blocks, "level {level} >= num_blocks {num_blocks}");
        }
        GateTopology { num_blocks, mode }
    }

    /// Conventional gating over `num_blocks` blocks.
    pub fn conventional(num_blocks: usize) -> Self {
        GateTopology::new(num_blocks, GatingMode::Conventional)
    }

    /// The paper's default: pre-gating at activation level 1.
    pub fn pregated(num_blocks: usize) -> Self {
        GateTopology::new(num_blocks, GatingMode::Pregated { level: 1 })
    }

    /// Number of MoE blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Gating mode.
    pub fn mode(&self) -> GatingMode {
        self.mode
    }

    /// The block at whose input block `b`'s expert selection is computed.
    ///
    /// Conventional: `b`. Pre-gated level N: `b − N`, except the first N
    /// blocks which self-route through their "first gate".
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_blocks`.
    pub fn route_source(&self, b: usize) -> usize {
        assert!(b < self.num_blocks, "block {b} out of range");
        let level = self.mode.level();
        if b < level {
            b // "first gate": the first N blocks self-route (Fig 6)
        } else {
            b - level
        }
    }

    /// Whether block `b`'s expert selection is known *before* block `b`
    /// begins — the property that lets the runtime prefetch its experts.
    pub fn is_preselected(&self, b: usize) -> bool {
        self.route_source(b) < b
    }

    /// The routing targets whose gates are *hosted* (evaluated) at block `b`,
    /// in execution order. Matches Fig 6: under level-1 pre-gating the first
    /// block hosts two gates and the last hosts none.
    pub fn gates_hosted_at(&self, b: usize) -> Vec<usize> {
        assert!(b < self.num_blocks, "block {b} out of range");
        (0..self.num_blocks).filter(|&target| self.route_source(target) == b).collect()
    }

    /// Total number of gate evaluations per pass over the stack (equals
    /// `num_blocks` in every mode — pre-gating moves gates, it does not add
    /// parameters beyond the first blocks' dual role).
    pub fn total_gates(&self) -> usize {
        (0..self.num_blocks).map(|b| self.gates_hosted_at(b).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_routes_at_own_block() {
        let topo = GateTopology::conventional(4);
        for b in 0..4 {
            assert_eq!(topo.route_source(b), b);
            assert!(!topo.is_preselected(b));
            assert_eq!(topo.gates_hosted_at(b), vec![b]);
        }
    }

    #[test]
    fn fig6_level1_first_block_has_two_gates_last_has_none() {
        let topo = GateTopology::pregated(3);
        assert_eq!(topo.gates_hosted_at(0), vec![0, 1]);
        assert_eq!(topo.gates_hosted_at(1), vec![2]);
        assert_eq!(topo.gates_hosted_at(2), Vec::<usize>::new());
        assert!(!topo.is_preselected(0), "first block self-routes");
        assert!(topo.is_preselected(1));
        assert!(topo.is_preselected(2));
    }

    #[test]
    fn level2_first_two_blocks_self_route() {
        let topo = GateTopology::new(5, GatingMode::Pregated { level: 2 });
        assert_eq!(topo.route_source(0), 0);
        assert_eq!(topo.route_source(1), 1);
        assert_eq!(topo.route_source(2), 0);
        assert_eq!(topo.route_source(4), 2);
        assert_eq!(topo.gates_hosted_at(0), vec![0, 2]);
        assert_eq!(topo.gates_hosted_at(1), vec![1, 3]);
        assert_eq!(topo.gates_hosted_at(3), Vec::<usize>::new());
        assert_eq!(topo.gates_hosted_at(4), Vec::<usize>::new());
    }

    #[test]
    fn every_block_is_routed_exactly_once() {
        for num_blocks in [1usize, 2, 3, 6, 12] {
            for mode in [
                GatingMode::Conventional,
                GatingMode::Pregated { level: 1 },
                GatingMode::Pregated { level: 2 },
                GatingMode::Pregated { level: 3 },
            ] {
                if mode.level() >= num_blocks {
                    continue;
                }
                let topo = GateTopology::new(num_blocks, mode);
                let mut routed = vec![0; num_blocks];
                for host in 0..num_blocks {
                    for target in topo.gates_hosted_at(host) {
                        routed[target] += 1;
                    }
                }
                assert!(
                    routed.iter().all(|&c| c == 1),
                    "{mode:?} × {num_blocks} blocks: {routed:?}"
                );
                assert_eq!(topo.total_gates(), num_blocks);
            }
        }
    }

    #[test]
    fn route_source_never_after_target() {
        let topo = GateTopology::new(8, GatingMode::Pregated { level: 3 });
        for b in 0..8 {
            assert!(topo.route_source(b) <= b);
        }
    }

    #[test]
    #[should_panic(expected = "level")]
    fn level_must_be_smaller_than_stack() {
        let _ = GateTopology::new(3, GatingMode::Pregated { level: 3 });
    }
}
