//! # pgmoe-model
//!
//! SwitchTransformer-style Mixture-of-Experts models for the Pre-gated MoE
//! reproduction (ISCA 2024), at two scales:
//!
//! * **Paper scale, analytic** — [`ModelConfig`] describes the exact model
//!   zoo of Table I (Switch-Base 8/64/128/256, Switch-Large-128, Switch-XXL)
//!   plus FLOPs-equivalent dense T5 baselines, and [`analytics`] reproduces
//!   the parameter/FLOPs/capacity numbers behind Table I and Figs 2–3.
//!   These configs drive the inference-runtime experiments, which never
//!   materialise weights.
//! * **Trainable scale, numeric** — [`net`] implements a real, trainable
//!   Switch transformer (embedding → attention → top-1-routed expert FFNs)
//!   over `pgmoe-tensor`, with the paper's **pre-gate** wired per the
//!   topology of Fig 6. This is what the accuracy experiments (Table II,
//!   Fig 13) fine-tune.
//!
//! The gating topology itself — which block's input computes which block's
//! expert selection — lives in [`topology`] and is shared by both scales, so
//! the system simulated by `pgmoe-runtime` and the network trained by
//! `pgmoe-train` agree on the algorithm by construction.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analytics;
pub mod checkpoint;
pub mod config;
pub mod net;
pub mod topology;

pub use checkpoint::{
    load_params, load_params_quantized, save_params, save_params_quantized, CheckpointError,
};
pub use config::{ExpertPrecision, ModelConfig, Precision};
pub use topology::{GateTopology, GatingMode};
