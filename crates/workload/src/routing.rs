//! Expert-routing traces for the systems experiments.
//!
//! The inference-side experiments (Figs 10–12, 14–16) need to know *which*
//! experts each token activates at every MoE block, but not the weight
//! values. A [`RoutingTrace`] supplies those decisions with controllable
//! statistics:
//!
//! * [`RoutingKind::Uniform`] — every expert equally likely; the conservative
//!   assumption used for the latency/memory experiments.
//! * [`RoutingKind::Zipf`] — a few hot experts dominate, the behaviour Huang
//!   et al. observed and that the paper's Fig 15 caching study relies on.
//! * [`RoutingKind::DomainSticky`] — consecutive tokens tend to reuse the
//!   previous token's expert (temporal locality across decode iterations).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statistical family of a routing trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingKind {
    /// Independent uniform choice over experts.
    Uniform,
    /// Independent Zipf-distributed choice with exponent `s` (rank 1 is the
    /// hottest expert). `s ≈ 1.0` reproduces the "few hot experts" shape.
    Zipf {
        /// Zipf exponent; larger = more skew.
        s: f64,
    },
    /// Zipf routing with per-request *domain* structure: the trace's seed
    /// deterministically picks one of `domains` rotations of the expert
    /// ranking, so requests of the same domain share a hot-expert set while
    /// different domains hammer disjoint regions of the expert space. This
    /// is the population heterogeneity real serving fleets see (different
    /// tenants/tasks route to different experts) and what cache-affinity
    /// dispatch exploits.
    ZipfDomains {
        /// Zipf exponent within each domain; larger = more skew.
        s: f64,
        /// Number of distinct domains the seed space maps onto (>= 1).
        domains: usize,
    },
    /// Markovian reuse: with probability `stickiness` a token keeps its
    /// previous block's expert, otherwise it re-samples uniformly.
    DomainSticky {
        /// Probability of reusing the previous expert.
        stickiness: f64,
    },
}

/// A complete routing decision tensor: `trace[token][block]` is the sorted
/// set of experts activated by decode-token `token` at MoE block `block`.
///
/// # Example
///
/// ```
/// use pgmoe_workload::{RoutingKind, RoutingTrace};
///
/// let trace = RoutingTrace::generate(16, 12, 64, 1, RoutingKind::Uniform, 7);
/// assert_eq!(trace.num_tokens(), 16);
/// assert_eq!(trace.num_blocks(), 12);
/// assert_eq!(trace.experts(0, 0).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTrace {
    num_experts: usize,
    top_k: usize,
    decisions: Vec<Vec<Vec<usize>>>,
}

impl RoutingTrace {
    /// Generates a seeded trace for `num_tokens` decode iterations over
    /// `num_blocks` MoE blocks, activating `top_k` of `num_experts` experts.
    ///
    /// # Panics
    ///
    /// Panics if `top_k == 0` or `top_k > num_experts`.
    pub fn generate(
        num_tokens: usize,
        num_blocks: usize,
        num_experts: usize,
        top_k: usize,
        kind: RoutingKind,
        seed: u64,
    ) -> Self {
        assert!(top_k >= 1 && top_k <= num_experts, "top_k out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf_cdf = match kind {
            RoutingKind::Zipf { s } | RoutingKind::ZipfDomains { s, .. } => {
                Some(zipf_cdf(num_experts, s))
            }
            _ => None,
        };
        // Domain rotation: rank r lands on expert (r + offset) mod E, so
        // each domain's hot set occupies its own region of the expert space.
        let domain_offset = match kind {
            RoutingKind::ZipfDomains { domains, .. } => {
                let d = domain_of(seed, domains);
                d * (num_experts / domains.clamp(1, num_experts)).max(1)
            }
            _ => 0,
        };
        let mut decisions = Vec::with_capacity(num_tokens);
        let mut prev: Vec<Vec<usize>> = Vec::new();
        for token in 0..num_tokens {
            let mut per_block = Vec::with_capacity(num_blocks);
            for block in 0..num_blocks {
                let experts = match kind {
                    RoutingKind::Uniform => sample_distinct(num_experts, top_k, &mut rng, |r| {
                        r.gen_range(0..num_experts)
                    }),
                    RoutingKind::Zipf { .. } => {
                        let cdf = zipf_cdf.as_ref().expect("zipf cdf");
                        sample_distinct(num_experts, top_k, &mut rng, |r| sample_from_cdf(cdf, r))
                    }
                    RoutingKind::ZipfDomains { .. } => {
                        let cdf = zipf_cdf.as_ref().expect("zipf cdf");
                        sample_distinct(num_experts, top_k, &mut rng, |r| {
                            (sample_from_cdf(cdf, r) + domain_offset) % num_experts
                        })
                    }
                    RoutingKind::DomainSticky { stickiness } => {
                        if token > 0 && rng.gen_bool(stickiness.clamp(0.0, 1.0)) {
                            prev[block].clone()
                        } else {
                            sample_distinct(num_experts, top_k, &mut rng, |r| {
                                r.gen_range(0..num_experts)
                            })
                        }
                    }
                };
                per_block.push(experts);
            }
            prev = per_block.clone();
            decisions.push(per_block);
        }
        RoutingTrace { num_experts, top_k, decisions }
    }

    /// Number of decode iterations in the trace.
    pub fn num_tokens(&self) -> usize {
        self.decisions.len()
    }

    /// Number of MoE blocks per iteration.
    pub fn num_blocks(&self) -> usize {
        self.decisions.first().map_or(0, Vec::len)
    }

    /// Number of experts per block.
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// Experts activated per token per block (`top_k` of them).
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// The sorted expert set activated by `token` at `block`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn experts(&self, token: usize, block: usize) -> &[usize] {
        &self.decisions[token][block]
    }

    /// Per-expert activation counts across the whole trace (for skew
    /// diagnostics and cache-hit analysis).
    pub fn activation_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.num_experts];
        for per_block in &self.decisions {
            for experts in per_block {
                for &e in experts {
                    hist[e] += 1;
                }
            }
        }
        hist
    }
}

/// Draws `k` *distinct* experts using `draw`, resampling duplicates; sorted.
fn sample_distinct(
    num_experts: usize,
    k: usize,
    rng: &mut StdRng,
    mut draw: impl FnMut(&mut StdRng) -> usize,
) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    // Resampling terminates quickly because k ≪ num_experts in every
    // experiment; fall back to a linear fill for k close to num_experts.
    let mut attempts = 0;
    while chosen.len() < k {
        let e = draw(rng);
        if !chosen.contains(&e) {
            chosen.push(e);
        }
        attempts += 1;
        if attempts > 64 * k {
            for e in 0..num_experts {
                if chosen.len() == k {
                    break;
                }
                if !chosen.contains(&e) {
                    chosen.push(e);
                }
            }
        }
    }
    chosen.sort_unstable();
    chosen
}

/// The domain a routing seed maps onto under [`RoutingKind::ZipfDomains`] —
/// exposed so a dispatcher can predict a request's hot-expert region from
/// its route seed alone.
pub fn domain_of(seed: u64, domains: usize) -> usize {
    if domains <= 1 {
        return 0;
    }
    ((seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize) % domains
}

/// Cumulative distribution of a Zipf law over ranks `0..n` with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in weights {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

fn sample_from_cdf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_dimensions() {
        let t = RoutingTrace::generate(8, 6, 32, 2, RoutingKind::Uniform, 1);
        assert_eq!(t.num_tokens(), 8);
        assert_eq!(t.num_blocks(), 6);
        assert_eq!(t.top_k(), 2);
        for token in 0..8 {
            for block in 0..6 {
                let e = t.experts(token, block);
                assert_eq!(e.len(), 2);
                assert!(e.windows(2).all(|w| w[0] < w[1]), "distinct & sorted");
                assert!(e.iter().all(|&x| x < 32));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RoutingTrace::generate(4, 4, 16, 1, RoutingKind::Zipf { s: 1.2 }, 9);
        let b = RoutingTrace::generate(4, 4, 16, 1, RoutingKind::Zipf { s: 1.2 }, 9);
        let c = RoutingTrace::generate(4, 4, 16, 1, RoutingKind::Zipf { s: 1.2 }, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_concentrates_on_hot_experts() {
        let t = RoutingTrace::generate(500, 4, 64, 1, RoutingKind::Zipf { s: 1.2 }, 3);
        let hist = t.activation_histogram();
        let total: u64 = hist.iter().sum();
        let mut sorted = hist.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top8: u64 = sorted.iter().take(8).sum();
        assert!(
            top8 as f64 / total as f64 > 0.5,
            "top-8 experts should dominate a Zipf(1.2) trace, got {top8}/{total}"
        );
        // Uniform comparison: top-8 of 64 ≈ 12.5 %.
        let u = RoutingTrace::generate(500, 4, 64, 1, RoutingKind::Uniform, 3);
        let uh = u.activation_histogram();
        let mut us = uh.clone();
        us.sort_unstable_by(|a, b| b.cmp(a));
        let utop8: u64 = us.iter().take(8).sum();
        assert!(top8 > utop8);
    }

    #[test]
    fn zipf_domains_rotate_hot_sets_by_seed() {
        let kind = RoutingKind::ZipfDomains { s: 1.4, domains: 4 };
        // Find two seeds in different domains and one pair sharing a domain.
        let d = |seed| domain_of(seed, 4);
        let mut by_domain: [Option<u64>; 4] = [None; 4];
        for seed in 0..64u64 {
            by_domain[d(seed)].get_or_insert(seed);
        }
        let hot = |seed: u64| {
            let t = RoutingTrace::generate(300, 2, 64, 1, kind, seed);
            let hist = t.activation_histogram();
            let mut idx: Vec<usize> = (0..64).collect();
            idx.sort_unstable_by_key(|&e| std::cmp::Reverse(hist[e]));
            idx.truncate(8);
            idx.sort_unstable();
            idx
        };
        let (a, b) = (by_domain[0].unwrap(), by_domain[1].unwrap());
        let (ha, hb) = (hot(a), hot(b));
        let overlap = ha.iter().filter(|e| hb.contains(e)).count();
        assert!(overlap <= 2, "different domains must have disjoint hot sets, overlap {overlap}");
        // Same-domain seeds share their hot set.
        let a2 = (0..999u64).find(|&s| s != a && d(s) == d(a)).unwrap();
        let ha2 = hot(a2);
        let same = ha.iter().filter(|e| ha2.contains(e)).count();
        assert!(same >= 6, "same-domain seeds must share hot experts, overlap {same}");
        // Still a valid skewed trace: within one request the hot set dominates.
        let t = RoutingTrace::generate(300, 2, 64, 1, kind, a);
        let hist = t.activation_histogram();
        let total: u64 = hist.iter().sum();
        let top: u64 = ha.iter().map(|&e| hist[e]).sum();
        assert!(top as f64 / total as f64 > 0.5, "domain hot set must dominate");
    }

    #[test]
    fn domain_of_is_stable_and_in_range() {
        for seed in 0..100u64 {
            assert_eq!(domain_of(seed, 1), 0);
            assert!(domain_of(seed, 5) < 5);
            assert_eq!(domain_of(seed, 5), domain_of(seed, 5));
        }
        // The seed space actually spreads across domains.
        let mut seen = [false; 4];
        for seed in 0..64u64 {
            seen[domain_of(seed, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 seeds must cover 4 domains");
    }

    #[test]
    fn sticky_routing_reuses_previous_experts() {
        let t =
            RoutingTrace::generate(200, 2, 32, 1, RoutingKind::DomainSticky { stickiness: 0.9 }, 5);
        let mut reused = 0;
        for token in 1..200 {
            if t.experts(token, 0) == t.experts(token - 1, 0) {
                reused += 1;
            }
        }
        assert!(reused > 120, "expected heavy reuse, got {reused}/199");
    }

    #[test]
    fn full_activation_uses_every_expert() {
        let t = RoutingTrace::generate(2, 2, 8, 8, RoutingKind::Uniform, 1);
        assert_eq!(t.experts(0, 0), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "top_k out of range")]
    fn zero_top_k_panics() {
        let _ = RoutingTrace::generate(1, 1, 4, 0, RoutingKind::Uniform, 0);
    }
}
