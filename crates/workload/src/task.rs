//! Synthetic sequence-to-sequence tasks with latent domain structure.
//!
//! The paper fine-tunes SwitchTransformer on Xsum (summarization), CB Web QA
//! and SQuAD (closed-book QA). The accuracy claim being reproduced is
//! *relative*: the pre-gate function matches the conventional gate at
//! activation level N=1 and degrades at N=2/3 (Table II, Fig 13). To exercise
//! that mechanism, a task must (a) be learnable by a small MoE transformer
//! and (b) contain *latent domains* so routing carries real signal — a gate
//! that routes by domain helps, and a pre-gate must predict the next block's
//! useful routing from the current block's activations.
//!
//! Every example therefore belongs to a hidden domain `d`. Content tokens are
//! drawn from domain-specific vocabulary bands, and the answer depends on the
//! domain through a domain-specific token permutation, mimicking how real
//! tasks route topically related tokens to the same experts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's three datasets a synthetic task stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Xsum-like extreme summarization: emit the domain marker and the most
    /// frequent content token of the input ("topic + gist", 2-token summary).
    /// Scored with Rouge-1/Rouge-2 analogues.
    XsumLike,
    /// CB-Web-QA-like noisy key-value recall: small vocabulary, distractor
    /// keys, 1-token answer. Scored with ExactMatch/F1.
    WebQaLike,
    /// SQuAD-like key-value recall: larger vocabulary, cleaner inputs,
    /// 2-token answer span. Scored with ExactMatch/F1.
    SquadLike,
}

impl TaskKind {
    /// All three tasks in the order Table II lists them.
    pub const ALL: [TaskKind; 3] = [TaskKind::XsumLike, TaskKind::WebQaLike, TaskKind::SquadLike];

    /// Human-readable dataset analogue name.
    pub fn dataset_name(self) -> &'static str {
        match self {
            TaskKind::XsumLike => "Xsum-like",
            TaskKind::WebQaLike => "CB-WebQA-like",
            TaskKind::SquadLike => "SQuAD-like",
        }
    }
}

/// One input/target pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Encoder/decoder input token ids.
    pub input: Vec<usize>,
    /// Ground-truth answer token ids.
    pub target: Vec<usize>,
    /// The latent domain the example was drawn from (not shown to models;
    /// used by diagnostics to measure routing/domain alignment).
    pub domain: usize,
}

/// A fully specified synthetic task: vocabulary layout + example sampler.
///
/// # Example
///
/// ```
/// use pgmoe_workload::{TaskKind, TaskSpec};
///
/// let task = TaskSpec::new(TaskKind::SquadLike, 4, 42);
/// let batch = task.sample_batch(8);
/// assert_eq!(batch.len(), 8);
/// assert!(batch.iter().all(|e| e.target.len() == task.answer_len()));
/// ```
#[derive(Debug, Clone)]
pub struct TaskSpec {
    kind: TaskKind,
    num_domains: usize,
    tokens_per_domain: usize,
    seq_len: usize,
    answer_len: usize,
    noise: f64,
    seed: u64,
    counter: std::cell::Cell<u64>,
}

impl TaskSpec {
    /// Creates a task with `num_domains` latent domains and a fixed seed.
    pub fn new(kind: TaskKind, num_domains: usize, seed: u64) -> Self {
        assert!(num_domains >= 1, "need at least one domain");
        // Difficulty tuned so a 4-block d=32 Switch model fine-tuned for a
        // few hundred steps lands in the paper's score bands (SQuAD EM ~80,
        // WebQA EM ~30, Xsum R1 ~35-40) — hard enough to separate gating
        // variants, easy enough to be learnable at this scale.
        let (tokens_per_domain, seq_len, answer_len, noise) = match kind {
            TaskKind::XsumLike => (12, 24, 2, 0.15),
            TaskKind::WebQaLike => (6, 12, 1, 0.30),
            TaskKind::SquadLike => (6, 14, 2, 0.02),
        };
        TaskSpec {
            kind,
            num_domains,
            tokens_per_domain,
            seq_len,
            answer_len,
            noise,
            seed,
            counter: std::cell::Cell::new(0),
        }
    }

    /// The dataset analogue this task stands in for.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Total vocabulary size: special tokens + domain markers + content
    /// bands.
    pub fn vocab_size(&self) -> usize {
        self.special_tokens() + self.num_domains + self.num_domains * self.tokens_per_domain
    }

    /// Input sequence length (fixed per task).
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Answer length in tokens.
    pub fn answer_len(&self) -> usize {
        self.answer_len
    }

    /// Number of latent domains.
    pub fn num_domains(&self) -> usize {
        self.num_domains
    }

    fn special_tokens(&self) -> usize {
        3 // PAD=0, BOS=1, QUERY=2
    }

    /// Token id of the domain-`d` marker.
    pub fn domain_marker(&self, d: usize) -> usize {
        self.special_tokens() + d
    }

    /// Token id of content token `t` of domain `d`.
    pub fn content_token(&self, d: usize, t: usize) -> usize {
        self.special_tokens() + self.num_domains + d * self.tokens_per_domain + t
    }

    /// Latent domain of a content token, if it is one.
    pub fn domain_of_token(&self, token: usize) -> Option<usize> {
        let base = self.special_tokens() + self.num_domains;
        if token >= base && token < self.vocab_size() {
            Some((token - base) / self.tokens_per_domain)
        } else {
            None
        }
    }

    /// Samples one example (deterministic stream per `TaskSpec` seed).
    pub fn sample(&self) -> Example {
        let n = self.counter.get();
        self.counter.set(n + 1);
        self.sample_indexed(n)
    }

    /// Samples the `index`-th example of the deterministic stream.
    pub fn sample_indexed(&self, index: u64) -> Example {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let d = rng.gen_range(0..self.num_domains);
        match self.kind {
            TaskKind::XsumLike => self.sample_xsum(d, &mut rng),
            TaskKind::WebQaLike | TaskKind::SquadLike => self.sample_qa(d, &mut rng),
        }
    }

    /// Samples a batch of examples from the deterministic stream.
    pub fn sample_batch(&self, n: usize) -> Vec<Example> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Xsum-like: input is a "document" of domain-d content with one topic
    /// token over-represented; summary = [domain marker, topic token].
    fn sample_xsum(&self, d: usize, rng: &mut StdRng) -> Example {
        let topic = rng.gen_range(0..self.tokens_per_domain);
        let mut input = vec![1]; // BOS
        while input.len() < self.seq_len {
            let tok = if rng.gen_bool(self.noise) {
                // Cross-domain noise token.
                let od = rng.gen_range(0..self.num_domains);
                self.content_token(od, rng.gen_range(0..self.tokens_per_domain))
            } else if rng.gen_bool(0.5) {
                self.content_token(d, topic)
            } else {
                self.content_token(d, rng.gen_range(0..self.tokens_per_domain))
            };
            input.push(tok);
        }
        let target = vec![self.domain_marker(d), self.content_token(d, topic)];
        Example { input, target, domain: d }
    }

    /// QA-like: input holds key→value pairs from domain d, then QUERY and a
    /// probe key; the answer is the value(s) bound to that key, passed
    /// through a domain-specific permutation (so experts specialise).
    fn sample_qa(&self, d: usize, rng: &mut StdRng) -> Example {
        let pairs = (self.seq_len - 3) / 2;
        let mut keys: Vec<usize> = (0..self.tokens_per_domain).collect();
        // Fisher–Yates prefix shuffle for distinct keys.
        for i in 0..pairs.min(keys.len() - 1) {
            let j = rng.gen_range(i..keys.len());
            keys.swap(i, j);
        }
        let mut input = vec![1]; // BOS
        let mut bindings = Vec::new();
        for &k in keys.iter().take(pairs) {
            let v = rng.gen_range(0..self.tokens_per_domain);
            bindings.push((k, v));
            let key_tok = self.content_token(d, k);
            let val_tok = if rng.gen_bool(self.noise) {
                // Noisy binding: the stored value token is corrupted.
                self.content_token(d, rng.gen_range(0..self.tokens_per_domain))
            } else {
                self.content_token(d, v)
            };
            input.push(key_tok);
            input.push(val_tok);
        }
        let (probe_key, probe_val) = bindings[rng.gen_range(0..bindings.len())];
        input.push(2); // QUERY
        input.push(self.content_token(d, probe_key));
        while input.len() < self.seq_len {
            input.push(0); // PAD
        }
        // Domain-specific answer transformation. SQuAD-like answers start
        // with a literal copy of the recalled value (span extraction);
        // subsequent tokens — and the single WebQA-like answer — are rotated
        // by the domain index, so experts can specialise per domain.
        let answer_tok = |v: usize, offset: usize| {
            let rotated = (v + (d + 1) * offset) % self.tokens_per_domain;
            self.content_token(d, rotated)
        };
        let target: Vec<usize> = match self.kind {
            TaskKind::SquadLike => (0..self.answer_len).map(|i| answer_tok(probe_val, i)).collect(),
            _ => (0..self.answer_len).map(|i| answer_tok(probe_val, i + 1)).collect(),
        };
        Example { input, target, domain: d }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_partitions_are_disjoint() {
        let task = TaskSpec::new(TaskKind::SquadLike, 4, 0);
        let mut seen = std::collections::HashSet::new();
        for d in 0..4 {
            assert!(seen.insert(task.domain_marker(d)));
            for t in 0..6 {
                assert!(seen.insert(task.content_token(d, t)));
            }
        }
        assert!(seen.iter().all(|&t| t < task.vocab_size()));
        assert!(!seen.contains(&0) && !seen.contains(&1) && !seen.contains(&2));
    }

    #[test]
    fn domain_of_token_inverts_content_token() {
        let task = TaskSpec::new(TaskKind::XsumLike, 3, 0);
        for d in 0..3 {
            for t in 0..12 {
                assert_eq!(task.domain_of_token(task.content_token(d, t)), Some(d));
            }
        }
        assert_eq!(task.domain_of_token(0), None);
        assert_eq!(task.domain_of_token(task.domain_marker(1)), None);
    }

    #[test]
    fn examples_are_deterministic_by_index() {
        let a = TaskSpec::new(TaskKind::WebQaLike, 4, 5).sample_indexed(17);
        let b = TaskSpec::new(TaskKind::WebQaLike, 4, 5).sample_indexed(17);
        assert_eq!(a, b);
    }

    #[test]
    fn xsum_summary_is_domain_marker_plus_topic() {
        let task = TaskSpec::new(TaskKind::XsumLike, 4, 1);
        for i in 0..20 {
            let ex = task.sample_indexed(i);
            assert_eq!(ex.target.len(), 2);
            assert_eq!(ex.target[0], task.domain_marker(ex.domain));
            assert_eq!(task.domain_of_token(ex.target[1]), Some(ex.domain));
            assert_eq!(ex.input.len(), task.seq_len());
        }
    }

    #[test]
    fn qa_answer_is_derivable_from_input() {
        // With zero noise, the answer must be a deterministic function of the
        // probe key's binding — sanity-check by re-deriving it.
        let task = TaskSpec::new(TaskKind::SquadLike, 2, 2);
        for i in 0..20 {
            let ex = task.sample_indexed(i);
            let d = ex.domain;
            // Find the probe key after QUERY(=2).
            let qpos = ex.input.iter().position(|&t| t == 2).unwrap();
            let probe = ex.input[qpos + 1];
            // Find its bound value earlier in the sequence.
            let mut val_tok = None;
            let mut j = 1;
            while j + 1 < qpos {
                if ex.input[j] == probe {
                    val_tok = Some(ex.input[j + 1]);
                }
                j += 2;
            }
            let val_tok = val_tok.expect("probe key must appear");
            if let Some(vd) = task.domain_of_token(val_tok) {
                assert_eq!(vd, d);
                // SQuAD-like answers begin with a literal copy of the bound
                // value; mismatches are allowed only under the 2% noise.
                if ex.target[0] != val_tok {
                    continue;
                }
            }
        }
    }

    #[test]
    fn batches_advance_the_stream() {
        let task = TaskSpec::new(TaskKind::WebQaLike, 4, 3);
        let b1 = task.sample_batch(4);
        let b2 = task.sample_batch(4);
        assert_ne!(b1, b2);
    }

    #[test]
    fn all_tasks_produce_valid_token_ids() {
        for kind in TaskKind::ALL {
            let task = TaskSpec::new(kind, 4, 9);
            for ex in task.sample_batch(16) {
                assert!(ex.input.iter().all(|&t| t < task.vocab_size()), "{kind:?}");
                assert!(ex.target.iter().all(|&t| t < task.vocab_size()), "{kind:?}");
            }
        }
    }
}
