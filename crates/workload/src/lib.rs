//! # pgmoe-workload
//!
//! Synthetic workloads for the Pre-gated MoE reproduction (ISCA 2024).
//!
//! The paper evaluates on three NLP datasets (Xsum summarization, CB Web QA
//! and SQuAD closed-book question answering) plus routing traces implied by
//! real SwitchTransformer inference. None of those datasets ship with this
//! repository, and per the substitution policy in DESIGN.md we replace them
//! with *seeded synthetic equivalents that exercise the same mechanisms*:
//!
//! * [`task`] — sequence-to-sequence tasks with **latent domain structure**,
//!   so that expert routing is learnable and the pre-gate function has a real
//!   signal to predict (Table II, Fig 13).
//! * [`routing`] — expert-selection traces with uniform, Zipf-skewed (hot
//!   experts, Fig 15's caching study) or domain-conditioned statistics.
//! * [`requests`] — decode request streams (batch-1 is the paper's serving
//!   point, Section VI-A) and open-loop arrival processes (Poisson, bursty,
//!   diurnal, flash-crowd) for the continuous-batching and fleet-control
//!   serving experiments.
//! * [`faults`] — deterministic, seed-driven fault schedules (replica
//!   kills, stalls, link degradations) for the chaos experiments.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod faults;
pub mod requests;
pub mod routing;
pub mod task;

pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use requests::{
    mixed_context_trace, split_by_assignment, stamp_domain_rotation, stamp_route_seeds,
    ArrivalProcess, ArrivalStream, ArrivedRequest, DecodeRequest, LiveClock, RequestStream,
    SharedPrefix,
};
pub use routing::{domain_of, RoutingKind, RoutingTrace};
pub use task::{Example, TaskKind, TaskSpec};
