//! Deterministic fault schedules for chaos experiments.
//!
//! A serving fleet's failure modes are part of its workload: replicas die
//! mid-decode, host links degrade, and machines stall for garbage-collection
//! or preemption pauses. [`FaultPlan`] describes those events as *data* —
//! placement-level instants and durations, with no dependency on the
//! runtime that executes them — so the same plan can be replayed against
//! any fleet implementation and a chaos run is exactly as reproducible as
//! the arrival trace it rides on.
//!
//! Plans are built either explicitly ([`FaultPlan::kill_at`],
//! [`FaultPlan::stall_at`], [`FaultPlan::degrade_link_at`]) or drawn from a
//! seed ([`FaultPlan::random`]) for fuzz-style chaos drills; both produce
//! the identical schedule on every run with the same inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What happens to the targeted replica when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The replica dies: its in-flight and queued requests must be drained
    /// and redispatched, and it serves nothing afterwards.
    KillReplica,
    /// The replica freezes for `for_ns` (GC pause, preemption, thermal
    /// throttle): its clock jumps forward, work queued behind the stall
    /// pays the delay, and service then resumes.
    StallReplica {
        /// Length of the freeze, nanoseconds.
        for_ns: u64,
    },
    /// The replica's host link degrades: decode iterations stretch by
    /// `factor` (≥ 1.0) until `for_ns` elapses.
    DegradeLink {
        /// Iteration wall-time multiplier while degraded (≥ 1.0).
        factor: f64,
        /// How long the degradation lasts, nanoseconds.
        for_ns: u64,
    },
}

/// One scheduled fault: `kind` hits `replica` at `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Fleet time the fault fires, nanoseconds.
    pub at_ns: u64,
    /// Replica index the fault targets.
    pub replica: usize,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, sorted by fire time.
///
/// # Example
///
/// ```
/// use pgmoe_workload::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .kill_at(2_000_000_000, 1)
///     .stall_at(500_000_000, 0, 100_000_000);
/// assert_eq!(plan.events().len(), 2);
/// // Events iterate in fire order regardless of builder order.
/// assert_eq!(plan.events()[0].kind, FaultKind::StallReplica { for_ns: 100_000_000 });
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: no faults ever fire (the healthy-fleet baseline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder: kill `replica` at `at_ns`.
    pub fn kill_at(mut self, at_ns: u64, replica: usize) -> Self {
        self.push(FaultEvent { at_ns, replica, kind: FaultKind::KillReplica });
        self
    }

    /// Builder: stall `replica` for `for_ns` starting at `at_ns`.
    pub fn stall_at(mut self, at_ns: u64, replica: usize, for_ns: u64) -> Self {
        self.push(FaultEvent { at_ns, replica, kind: FaultKind::StallReplica { for_ns } });
        self
    }

    /// Builder: degrade `replica`'s link by `factor` for `for_ns` starting
    /// at `at_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` — a degradation cannot speed a link up.
    pub fn degrade_link_at(mut self, at_ns: u64, replica: usize, factor: f64, for_ns: u64) -> Self {
        assert!(factor >= 1.0, "link degradation factor must be >= 1.0, got {factor}");
        self.push(FaultEvent { at_ns, replica, kind: FaultKind::DegradeLink { factor, for_ns } });
        self
    }

    /// A seed-driven plan of `events` faults over `replicas` replicas,
    /// spread uniformly over `(0, horizon_ns]`. Kill, stall and degrade
    /// events are drawn with equal probability; stalls and degradations
    /// last 1–10 % of the horizon. Never kills replica 0, so a fleet that
    /// started with one replica keeps a survivor to drain onto.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or `horizon_ns == 0`.
    pub fn random(seed: u64, replicas: usize, horizon_ns: u64, events: usize) -> Self {
        assert!(replicas > 0, "a fault plan needs at least one replica to target");
        assert!(horizon_ns > 0, "fault horizon must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..events {
            let at_ns = rng.gen_range(1..=horizon_ns);
            let dur = rng.gen_range(horizon_ns / 100..=horizon_ns / 10).max(1);
            match rng.gen_range(0..3u8) {
                0 if replicas > 1 => {
                    let replica = rng.gen_range(1..replicas);
                    plan.push(FaultEvent { at_ns, replica, kind: FaultKind::KillReplica });
                }
                1 => {
                    let replica = rng.gen_range(0..replicas);
                    plan.push(FaultEvent {
                        at_ns,
                        replica,
                        kind: FaultKind::StallReplica { for_ns: dur },
                    });
                }
                _ => {
                    let replica = rng.gen_range(0..replicas);
                    let factor = 1.5 + rng.gen_range(0.0..2.5);
                    plan.push(FaultEvent {
                        at_ns,
                        replica,
                        kind: FaultKind::DegradeLink { factor, for_ns: dur },
                    });
                }
            }
        }
        plan
    }

    /// The scheduled events, sorted by fire time (stable for ties).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when no fault ever fires.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| e.at_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_sort_by_fire_time() {
        let plan =
            FaultPlan::new().kill_at(300, 2).degrade_link_at(100, 0, 2.0, 50).stall_at(200, 1, 25);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![100, 200, 300]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_and_in_bounds() {
        let a = FaultPlan::random(7, 4, 1_000_000, 12);
        let b = FaultPlan::random(7, 4, 1_000_000, 12);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 12);
        for e in a.events() {
            assert!(e.at_ns >= 1 && e.at_ns <= 1_000_000);
            assert!(e.replica < 4);
            if let FaultKind::KillReplica = e.kind {
                assert_ne!(e.replica, 0, "replica 0 is never killed");
            }
            if let FaultKind::DegradeLink { factor, .. } = e.kind {
                assert!(factor >= 1.0);
            }
        }
        let c = FaultPlan::random(8, 4, 1_000_000, 12);
        assert_ne!(a, c, "different seeds draw different schedules");
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1.0")]
    fn speedup_degradation_is_rejected() {
        let _ = FaultPlan::new().degrade_link_at(0, 0, 0.5, 10);
    }
}
