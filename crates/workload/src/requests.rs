//! Decode request streams for the serving experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One inference request: a prompt to encode and a number of decoder
/// iterations to run.
///
/// The paper serves batch 1 ("real-world production ML serving systems are
/// optimized for a batch size of 1", Section VI-A), so batch size defaults
/// to 1 and the throughput experiments never change it; the batch-size
/// ablation bench raises it explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeRequest {
    /// Number of input tokens processed by the encoder.
    pub input_tokens: usize,
    /// Number of output tokens generated (= decoder iterations).
    pub output_tokens: usize,
    /// Sequences decoded together.
    pub batch_size: usize,
}

impl DecodeRequest {
    /// The paper's fine-tuning/serving shape: 256-token inputs, 64 generated
    /// tokens, batch 1.
    pub fn paper_default() -> Self {
        DecodeRequest { input_tokens: 256, output_tokens: 64, batch_size: 1 }
    }

    /// A request with a custom output length, batch 1.
    pub fn with_output_tokens(output_tokens: usize) -> Self {
        DecodeRequest { output_tokens, ..DecodeRequest::paper_default() }
    }
}

/// A seeded stream of decode requests with jittered output lengths, for
/// multi-request serving simulations.
#[derive(Debug, Clone)]
pub struct RequestStream {
    rng: StdRng,
    base: DecodeRequest,
    jitter: usize,
}

impl RequestStream {
    /// Creates a stream around `base`, jittering output length by ±`jitter`.
    pub fn new(base: DecodeRequest, jitter: usize, seed: u64) -> Self {
        RequestStream { rng: StdRng::seed_from_u64(seed), base, jitter }
    }
}

impl Iterator for RequestStream {
    type Item = DecodeRequest;

    fn next(&mut self) -> Option<DecodeRequest> {
        let jitter = if self.jitter == 0 {
            0
        } else {
            self.rng.gen_range(0..=2 * self.jitter) as isize - self.jitter as isize
        };
        let output = (self.base.output_tokens as isize + jitter).max(1) as usize;
        Some(DecodeRequest { output_tokens: output, ..self.base })
    }
}

/// Declaration that the leading `tokens` of a request's prompt are a
/// shared prefix (e.g. a tenant's system prompt), identified by a content
/// hash. A paged-KV serving layer uses this to point multiple requests'
/// block tables at one physical copy of the prefix's KV cache.
///
/// The hash is over prompt *content*: two requests declaring the same
/// `(hash, tokens)` pair promise their first `tokens` prompt tokens are
/// identical. [`SharedPrefix::of_tokens`] derives the hash from real token
/// ids; synthetic traces pick tenant constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedPrefix {
    /// Content hash of the shared prefix (FNV-1a over the token ids).
    pub hash: u64,
    /// Number of leading prompt tokens covered by the prefix.
    pub tokens: usize,
}

impl SharedPrefix {
    /// Hashes real prompt `tokens` into a prefix declaration covering all
    /// of them (FNV-1a over the token ids), for serving layers that see
    /// the actual prompt.
    pub fn of_tokens(tokens: &[usize]) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &t in tokens {
            for byte in (t as u64).to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        SharedPrefix { hash, tokens: tokens.len() }
    }
}

/// A request stamped with its (simulated) arrival time, for open-loop
/// serving experiments where requests arrive while earlier ones are still
/// decoding.
///
/// Arrival times are plain nanoseconds so this crate stays independent of
/// the device simulator's clock types; the runtime converts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivedRequest {
    /// Arrival instant, in nanoseconds since the start of the experiment.
    pub arrival_ns: u64,
    /// The request itself.
    pub request: DecodeRequest,
    /// Explicit routing-trace seed for this request. `None` (the default)
    /// lets the serving scheduler derive a seed from the request's position
    /// in its stream; a fleet dispatcher sets it so a request activates the
    /// *same* experts no matter which replica serves it (routing identity
    /// must be a property of the request, not of its placement).
    pub route_seed: Option<u64>,
    /// Declared shared prompt prefix, if any (see [`SharedPrefix`]). Ignored
    /// by unpaged serving paths.
    pub shared_prefix: Option<SharedPrefix>,
}

impl ArrivedRequest {
    /// A request arriving at `arrival_ns` — handy for deterministic traces
    /// in tests.
    pub fn at_nanos(arrival_ns: u64, request: DecodeRequest) -> Self {
        ArrivedRequest { arrival_ns, request, route_seed: None, shared_prefix: None }
    }

    /// Builder: pin this request's routing-trace seed (see
    /// [`ArrivedRequest::route_seed`]).
    pub fn with_route_seed(mut self, seed: u64) -> Self {
        self.route_seed = Some(seed);
        self
    }

    /// Builder: declare that the leading `tokens` of this request's prompt
    /// are the shared prefix identified by `hash` (see [`SharedPrefix`]).
    /// The declared length is clamped to the prompt by consumers.
    pub fn with_shared_prefix(mut self, hash: u64, tokens: usize) -> Self {
        self.shared_prefix = Some(SharedPrefix { hash, tokens });
        self
    }
}

/// Stamps every *unseeded* request with a placement-independent routing
/// seed derived from `base_seed` and its global arrival index; requests the
/// caller already pinned via [`ArrivedRequest::with_route_seed`] keep their
/// seed. A multi-replica dispatcher calls this once before splitting the
/// stream, so the same request draws the same routing trace on every
/// replica it could land on.
pub fn stamp_route_seeds(arrivals: &mut [ArrivedRequest], base_seed: u64) {
    for (idx, arr) in arrivals.iter_mut().enumerate() {
        if arr.route_seed.is_none() {
            arr.route_seed = Some(base_seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
}

/// Stamps every request with a route seed whose
/// [`crate::routing::RoutingKind::ZipfDomains`] domain *rotates over time*:
/// requests arriving in window `w = arrival_ns / rotate_every_ns` map to
/// domain `w % domains`. This is the drift scenario an online
/// policy-switching controller must detect — the population's hot-expert
/// set moves mid-stream, so whatever a scheduler pinned or learned before
/// the rotation starts missing afterwards.
///
/// Existing seeds are overwritten (drift is a property of the *trace*, so
/// the stamper owns routing identity end to end); seeds remain
/// placement-independent and deterministic in `base_seed`.
///
/// # Panics
///
/// Panics if `domains == 0` or `rotate_every_ns == 0`.
pub fn stamp_domain_rotation(
    arrivals: &mut [ArrivedRequest],
    domains: usize,
    rotate_every_ns: u64,
    base_seed: u64,
) {
    assert!(domains > 0, "domain rotation needs at least one domain");
    assert!(rotate_every_ns > 0, "rotation window must be positive");
    for (idx, arr) in arrivals.iter_mut().enumerate() {
        let target = ((arr.arrival_ns / rotate_every_ns) as usize) % domains;
        // Start from the placement-independent default seed and walk until
        // the seed hashes into the scheduled domain; the walk is bounded in
        // expectation by `domains` steps and fully deterministic.
        let mut seed = base_seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        while crate::routing::domain_of(seed, domains) != target {
            seed = seed.wrapping_add(0x9E37_79B9);
        }
        arr.route_seed = Some(seed);
    }
}

/// Splits an arrival stream into `replicas` per-replica sub-streams per the
/// given assignment (`assignment[i]` is request `i`'s replica). Arrival
/// order — and therefore sortedness — is preserved within each sub-stream.
///
/// # Panics
///
/// Panics if lengths differ or an assignment is out of range.
pub fn split_by_assignment(
    arrivals: &[ArrivedRequest],
    assignment: &[usize],
    replicas: usize,
) -> Vec<Vec<ArrivedRequest>> {
    assert_eq!(arrivals.len(), assignment.len(), "one assignment per arrival");
    let mut streams = vec![Vec::new(); replicas];
    for (arr, &r) in arrivals.iter().zip(assignment) {
        assert!(r < replicas, "assignment {r} out of range for {replicas} replicas");
        streams[r].push(*arr);
    }
    streams
}

/// Statistical family of an arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps with the given
    /// mean rate — the standard open-loop load model for serving systems.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// Bursty arrivals: groups of `burst` requests arrive together, with
    /// exponential gaps between groups scaled so the *mean* rate still
    /// equals `rate_per_sec` — stresses queueing and admission much harder
    /// than Poisson at the same average load.
    Bursty {
        /// Mean arrival rate in requests per second (across bursts).
        rate_per_sec: f64,
        /// Requests per burst (>= 1).
        burst: usize,
    },
    /// Deterministic arrivals with a fixed inter-arrival gap.
    Uniform {
        /// Gap between consecutive arrivals, nanoseconds.
        interval_ns: u64,
    },
    /// Diurnal (non-stationary Poisson) arrivals: the instantaneous rate
    /// swings sinusoidally between `trough_per_sec` (at time zero) and
    /// `peak_per_sec` (half a period later), sampled by thinning — the load
    /// shape a day/night traffic cycle presents to an autoscaler.
    Diurnal {
        /// Rate at the bottom of the cycle, requests per second (> 0).
        trough_per_sec: f64,
        /// Rate at the top of the cycle, requests per second (≥ trough).
        peak_per_sec: f64,
        /// Length of one full cycle, seconds (> 0).
        period_s: f64,
    },
    /// Flash-crowd arrivals: Poisson at `base_per_sec`, except during the
    /// window `[flash_start_s, flash_start_s + flash_len_s)` where the rate
    /// jumps to `flash_per_sec` — the sudden-viral-event shape that
    /// overwhelms a statically-sized fleet.
    FlashCrowd {
        /// Steady-state rate outside the flash window, per second (> 0).
        base_per_sec: f64,
        /// Rate during the flash window, per second (> 0).
        flash_per_sec: f64,
        /// When the flash starts, seconds.
        flash_start_s: f64,
        /// How long the flash lasts, seconds (> 0).
        flash_len_s: f64,
    },
}

impl ArrivalProcess {
    /// The instantaneous arrival rate at `t_ns`, requests per second.
    /// Constant for the stationary processes.
    pub fn rate_at(&self, t_ns: u64) -> f64 {
        let t_s = t_ns as f64 / 1e9;
        match *self {
            ArrivalProcess::Poisson { rate_per_sec }
            | ArrivalProcess::Bursty { rate_per_sec, .. } => rate_per_sec,
            ArrivalProcess::Uniform { interval_ns } => {
                if interval_ns == 0 {
                    0.0
                } else {
                    1e9 / interval_ns as f64
                }
            }
            ArrivalProcess::Diurnal { trough_per_sec, peak_per_sec, period_s } => {
                let phase = 2.0 * std::f64::consts::PI * (t_s / period_s);
                trough_per_sec + (peak_per_sec - trough_per_sec) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalProcess::FlashCrowd {
                base_per_sec,
                flash_per_sec,
                flash_start_s,
                flash_len_s,
            } => {
                if t_s >= flash_start_s && t_s < flash_start_s + flash_len_s {
                    flash_per_sec
                } else {
                    base_per_sec
                }
            }
        }
    }

    /// An upper bound on the instantaneous rate — the thinning envelope for
    /// the non-stationary processes.
    fn max_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Diurnal { trough_per_sec, peak_per_sec, .. } => {
                trough_per_sec.max(peak_per_sec)
            }
            ArrivalProcess::FlashCrowd { base_per_sec, flash_per_sec, .. } => {
                base_per_sec.max(flash_per_sec)
            }
            other => other.rate_at(0),
        }
    }
}

/// A seeded open-loop arrival stream: request shapes from a
/// [`RequestStream`], arrival instants from an [`ArrivalProcess`].
///
/// # Example
///
/// ```
/// use pgmoe_workload::{ArrivalProcess, ArrivalStream, DecodeRequest};
///
/// let stream = ArrivalStream::new(
///     ArrivalProcess::Poisson { rate_per_sec: 10.0 },
///     DecodeRequest { input_tokens: 16, output_tokens: 4, batch_size: 1 },
///     1,
///     42,
/// );
/// let arrivals: Vec<_> = stream.take(8).collect();
/// assert!(arrivals.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    process: ArrivalProcess,
    requests: RequestStream,
    rng: StdRng,
    clock_ns: u64,
    burst_left: usize,
}

impl ArrivalStream {
    /// Creates a stream around `base`, jittering output length by ±`jitter`
    /// (see [`RequestStream::new`]) and drawing arrival gaps per `process`.
    pub fn new(process: ArrivalProcess, base: DecodeRequest, jitter: usize, seed: u64) -> Self {
        match process {
            ArrivalProcess::Poisson { rate_per_sec }
            | ArrivalProcess::Bursty { rate_per_sec, .. } => {
                assert!(rate_per_sec > 0.0, "arrival rate must be positive");
            }
            ArrivalProcess::Uniform { .. } => {}
            ArrivalProcess::Diurnal { trough_per_sec, peak_per_sec, period_s } => {
                assert!(trough_per_sec > 0.0, "trough rate must be positive");
                assert!(peak_per_sec >= trough_per_sec, "peak rate must be >= trough rate");
                assert!(period_s > 0.0, "diurnal period must be positive");
            }
            ArrivalProcess::FlashCrowd { base_per_sec, flash_per_sec, flash_len_s, .. } => {
                assert!(base_per_sec > 0.0, "base rate must be positive");
                assert!(flash_per_sec > 0.0, "flash rate must be positive");
                assert!(flash_len_s > 0.0, "flash window must have positive length");
            }
        }
        if let ArrivalProcess::Bursty { burst, .. } = process {
            assert!(burst >= 1, "burst size must be >= 1");
        }
        ArrivalStream {
            process,
            requests: RequestStream::new(base, jitter, seed ^ 0xA5A5_5A5A),
            rng: StdRng::seed_from_u64(seed),
            clock_ns: 0,
            burst_left: 0,
        }
    }

    /// One exponential gap with the given mean rate, in nanoseconds.
    fn exp_gap_ns(&mut self, rate_per_sec: f64) -> u64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln() / rate_per_sec) * 1e9).round() as u64
    }

    /// Next arrival of a non-stationary Poisson process by thinning: draw
    /// candidate gaps at the envelope rate and accept each with probability
    /// `rate(t) / max_rate` — the standard exact sampler for rate functions
    /// bounded by a constant envelope.
    fn thinned_gap_to(&mut self, process: ArrivalProcess) -> u64 {
        let envelope = process.max_rate();
        let mut t = self.clock_ns;
        loop {
            t += self.exp_gap_ns(envelope).max(1);
            let accept: f64 = self.rng.gen();
            if accept < process.rate_at(t) / envelope {
                return t;
            }
        }
    }
}

impl Iterator for ArrivalStream {
    type Item = ArrivedRequest;

    fn next(&mut self) -> Option<ArrivedRequest> {
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                self.clock_ns += self.exp_gap_ns(rate_per_sec);
            }
            ArrivalProcess::Uniform { interval_ns } => {
                self.clock_ns += interval_ns;
            }
            ArrivalProcess::Bursty { rate_per_sec, burst } => {
                if self.burst_left == 0 {
                    // Gaps separate whole bursts: mean gap = burst/rate keeps
                    // the long-run request rate at `rate_per_sec`.
                    let burst_rate = rate_per_sec / burst as f64;
                    self.clock_ns += self.exp_gap_ns(burst_rate);
                    self.burst_left = burst;
                }
                self.burst_left -= 1;
            }
            p @ (ArrivalProcess::Diurnal { .. } | ArrivalProcess::FlashCrowd { .. }) => {
                self.clock_ns = self.thinned_gap_to(p);
            }
        }
        let request = self.requests.next()?;
        Some(ArrivedRequest::at_nanos(self.clock_ns, request))
    }
}

/// A deterministic mixed short/long-context arrival trace for paged-KV
/// experiments: short chat-style requests interleaved with long-context
/// requests whose prompts open with a per-tenant shared system prefix.
///
/// The trace alternates short (32-in/16-out) and long (`long_input`-in/
/// 24-out) requests; long requests rotate across `tenants` tenants, each
/// declaring the same [`SharedPrefix`] (`prefix_tokens` tokens, hash keyed
/// on the tenant id) so a prefix-sharing KV pool stores each tenant's
/// system prompt once. Arrivals are uniformly spaced `gap_ns` apart, which
/// keeps queueing pressure high enough that admission capacity — not
/// arrival spacing — bounds the concurrent batch.
pub fn mixed_context_trace(
    n: usize,
    long_input: usize,
    prefix_tokens: usize,
    tenants: usize,
    gap_ns: u64,
) -> Vec<ArrivedRequest> {
    let tenants = tenants.max(1);
    (0..n)
        .map(|i| {
            let arrival_ns = i as u64 * gap_ns;
            if i % 2 == 0 {
                let short = DecodeRequest { input_tokens: 32, output_tokens: 16, batch_size: 1 };
                ArrivedRequest::at_nanos(arrival_ns, short)
            } else {
                let tenant = (i / 2) % tenants;
                let long =
                    DecodeRequest { input_tokens: long_input, output_tokens: 24, batch_size: 1 };
                let hash = 0x7e1a_57ab_c0ff_ee00 ^ (tenant as u64).wrapping_mul(0x9E37_79B9);
                ArrivedRequest::at_nanos(arrival_ns, long)
                    .with_shared_prefix(hash, prefix_tokens.min(long_input))
            }
        })
        .collect()
}

/// Stamps *live* arrivals — requests that materialise on real sockets
/// rather than from a pre-generated [`ArrivalStream`] — with nanoseconds
/// since the clock's epoch, in the same `arrival_ns` convention the
/// simulated streams use. A serving front door creates one clock when it
/// starts listening and stamps every accepted request with it, so the
/// open-loop serving machinery (admission queues, queueing-delay and TTFT
/// accounting) works identically whether arrivals were synthesised or
/// carried by HTTP.
///
/// Stamps from one clock are monotone non-decreasing (`std::time::Instant`
/// is monotonic), which is exactly the sortedness contract
/// [`ArrivedRequest`] consumers validate.
///
/// # Example
///
/// ```
/// use pgmoe_workload::{DecodeRequest, LiveClock};
///
/// let clock = LiveClock::start();
/// let a = clock.stamp(DecodeRequest::paper_default());
/// let b = clock.stamp(DecodeRequest::paper_default());
/// assert!(a.arrival_ns <= b.arrival_ns);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LiveClock {
    epoch: std::time::Instant,
}

impl LiveClock {
    /// Starts a clock; its epoch is "now".
    pub fn start() -> Self {
        LiveClock { epoch: std::time::Instant::now() }
    }

    /// Nanoseconds elapsed since the epoch (saturating at `u64::MAX`,
    /// ~584 years).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Wraps `request` as an [`ArrivedRequest`] arriving "now".
    pub fn stamp(&self, request: DecodeRequest) -> ArrivedRequest {
        ArrivedRequest::at_nanos(self.now_ns(), request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_batch_one() {
        let r = DecodeRequest::paper_default();
        assert_eq!(r.batch_size, 1);
        assert_eq!(r.input_tokens, 256);
    }

    #[test]
    fn stream_jitters_within_bounds() {
        let stream = RequestStream::new(DecodeRequest::paper_default(), 8, 1);
        for r in stream.take(100) {
            assert!((56..=72).contains(&r.output_tokens));
        }
    }

    #[test]
    fn zero_jitter_is_constant() {
        let stream = RequestStream::new(DecodeRequest::paper_default(), 0, 1);
        assert!(stream.take(10).all(|r| r.output_tokens == 64));
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let rate = 100.0; // 10 ms mean gap
        let n = 4_000;
        let stream = ArrivalStream::new(
            ArrivalProcess::Poisson { rate_per_sec: rate },
            DecodeRequest::paper_default(),
            0,
            7,
        );
        let arrivals: Vec<_> = stream.take(n).collect();
        let span_s = arrivals.last().unwrap().arrival_ns as f64 / 1e9;
        let measured = n as f64 / span_s;
        assert!((measured / rate - 1.0).abs() < 0.1, "measured rate {measured} vs {rate}");
    }

    #[test]
    fn arrivals_are_monotone_and_deterministic() {
        let mk = || {
            ArrivalStream::new(
                ArrivalProcess::Poisson { rate_per_sec: 50.0 },
                DecodeRequest::paper_default(),
                4,
                9,
            )
            .take(64)
            .collect::<Vec<_>>()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
    }

    #[test]
    fn bursty_clusters_arrivals_at_equal_mean_rate() {
        let rate = 200.0;
        let n = 4_000;
        let burst = 8;
        let arrivals: Vec<_> = ArrivalStream::new(
            ArrivalProcess::Bursty { rate_per_sec: rate, burst },
            DecodeRequest::paper_default(),
            0,
            13,
        )
        .take(n)
        .collect();
        // Mean rate preserved.
        let span_s = arrivals.last().unwrap().arrival_ns as f64 / 1e9;
        let measured = n as f64 / span_s;
        assert!((measured / rate - 1.0).abs() < 0.15, "measured rate {measured} vs {rate}");
        // Bursts: most consecutive gaps are zero.
        let zero_gaps = arrivals.windows(2).filter(|w| w[1].arrival_ns == w[0].arrival_ns).count();
        assert!(
            zero_gaps >= n * (burst - 1) / burst - 1,
            "expected clustered arrivals, saw {zero_gaps} zero gaps"
        );
    }

    #[test]
    fn route_seed_stamping_is_placement_independent() {
        let req = DecodeRequest::paper_default();
        let mut arrivals: Vec<ArrivedRequest> =
            (0..6).map(|i| ArrivedRequest::at_nanos(i * 100, req)).collect();
        assert!(arrivals.iter().all(|a| a.route_seed.is_none()), "streams default unseeded");
        // A pinned seed survives stamping; only unseeded requests are filled.
        arrivals[2] = arrivals[2].with_route_seed(777);
        stamp_route_seeds(&mut arrivals, 42);
        assert_eq!(arrivals[2].route_seed, Some(777), "pinned seeds must not be clobbered");
        let seeds: Vec<u64> = arrivals.iter().map(|a| a.route_seed.unwrap()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 6, "seeds must be distinct per request");
        // Splitting does not disturb the stamped identity.
        let streams = split_by_assignment(&arrivals, &[0, 1, 0, 1, 0, 1], 2);
        assert_eq!(streams[0].len(), 3);
        assert_eq!(streams[1][1].route_seed, Some(seeds[3]));
        assert_eq!(ArrivedRequest::at_nanos(0, req).with_route_seed(9).route_seed, Some(9));
    }

    #[test]
    fn split_preserves_arrival_order_per_replica() {
        let req = DecodeRequest::paper_default();
        let arrivals: Vec<ArrivedRequest> =
            (0..8).map(|i| ArrivedRequest::at_nanos(i * 10, req)).collect();
        let streams = split_by_assignment(&arrivals, &[2, 0, 2, 1, 0, 2, 1, 0], 3);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 8);
        for s in &streams {
            assert!(s.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_rejects_out_of_range_assignment() {
        let req = DecodeRequest::paper_default();
        let arrivals = vec![ArrivedRequest::at_nanos(0, req)];
        let _ = split_by_assignment(&arrivals, &[3], 2);
    }

    #[test]
    fn diurnal_rate_tracks_the_cycle() {
        let process =
            ArrivalProcess::Diurnal { trough_per_sec: 20.0, peak_per_sec: 200.0, period_s: 20.0 };
        assert!((process.rate_at(0) - 20.0).abs() < 1e-9, "cycle starts at the trough");
        assert!((process.rate_at(10_000_000_000) - 200.0).abs() < 1e-9, "peak at half period");
        let arrivals: Vec<_> = ArrivalStream::new(process, DecodeRequest::paper_default(), 0, 11)
            .take(2_000)
            .collect();
        assert!(arrivals.windows(2).all(|w| w[0].arrival_ns < w[1].arrival_ns));
        // The valley (first quarter-period) must be materially sparser than
        // the crest (the quarter around the peak).
        let count_in = |lo_s: f64, hi_s: f64| {
            arrivals
                .iter()
                .filter(|a| {
                    let t = a.arrival_ns as f64 / 1e9;
                    t >= lo_s && t < hi_s
                })
                .count()
        };
        let valley = count_in(0.0, 5.0).max(1);
        let crest = count_in(7.5, 12.5);
        assert!(
            crest > 3 * valley,
            "peak window must out-arrive the trough window ({crest} vs {valley})"
        );
        // Determinism.
        let again: Vec<_> = ArrivalStream::new(process, DecodeRequest::paper_default(), 0, 11)
            .take(2_000)
            .collect();
        assert_eq!(arrivals, again);
    }

    #[test]
    fn flash_crowd_spikes_inside_its_window() {
        let process = ArrivalProcess::FlashCrowd {
            base_per_sec: 10.0,
            flash_per_sec: 400.0,
            flash_start_s: 2.0,
            flash_len_s: 1.0,
        };
        assert!((process.rate_at(0) - 10.0).abs() < 1e-9);
        assert!((process.rate_at(2_500_000_000) - 400.0).abs() < 1e-9);
        assert!((process.rate_at(3_500_000_000) - 10.0).abs() < 1e-9);
        let arrivals: Vec<_> =
            ArrivalStream::new(process, DecodeRequest::paper_default(), 0, 5).take(600).collect();
        let inside = arrivals
            .iter()
            .filter(|a| (2_000_000_000..3_000_000_000).contains(&a.arrival_ns))
            .count();
        let before = arrivals.iter().filter(|a| a.arrival_ns < 2_000_000_000).count();
        assert!(
            inside > 5 * before.max(1),
            "the one-second flash ({inside}) must dwarf two seconds of base load ({before})"
        );
    }

    #[test]
    fn domain_rotation_follows_the_schedule() {
        use crate::routing::domain_of;
        let req = DecodeRequest::paper_default();
        // Arrivals spread over 4 windows of 1 ms each.
        let mut arrivals: Vec<ArrivedRequest> =
            (0..40).map(|i| ArrivedRequest::at_nanos(i * 100_000, req)).collect();
        stamp_domain_rotation(&mut arrivals, 3, 1_000_000, 42);
        for arr in &arrivals {
            let expected = ((arr.arrival_ns / 1_000_000) as usize) % 3;
            assert_eq!(domain_of(arr.route_seed.unwrap(), 3), expected, "at {}", arr.arrival_ns);
        }
        // Deterministic and distinct.
        let mut again = arrivals.clone();
        for a in &mut again {
            a.route_seed = None;
        }
        stamp_domain_rotation(&mut again, 3, 1_000_000, 42);
        assert_eq!(arrivals, again);
        let mut seeds: Vec<u64> = arrivals.iter().map(|a| a.route_seed.unwrap()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 40, "seeds stay distinct per request");
    }

    #[test]
    fn uniform_interval_is_exact() {
        let arrivals: Vec<_> = ArrivalStream::new(
            ArrivalProcess::Uniform { interval_ns: 1_000 },
            DecodeRequest::paper_default(),
            0,
            1,
        )
        .take(5)
        .collect();
        let times: Vec<u64> = arrivals.iter().map(|a| a.arrival_ns).collect();
        assert_eq!(times, vec![1_000, 2_000, 3_000, 4_000, 5_000]);
    }
}
