//! Decode request streams for the serving experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One inference request: a prompt to encode and a number of decoder
/// iterations to run.
///
/// The paper serves batch 1 ("real-world production ML serving systems are
/// optimized for a batch size of 1", Section VI-A), so batch size defaults
/// to 1 and the throughput experiments never change it; the batch-size
/// ablation bench raises it explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeRequest {
    /// Number of input tokens processed by the encoder.
    pub input_tokens: usize,
    /// Number of output tokens generated (= decoder iterations).
    pub output_tokens: usize,
    /// Sequences decoded together.
    pub batch_size: usize,
}

impl DecodeRequest {
    /// The paper's fine-tuning/serving shape: 256-token inputs, 64 generated
    /// tokens, batch 1.
    pub fn paper_default() -> Self {
        DecodeRequest { input_tokens: 256, output_tokens: 64, batch_size: 1 }
    }

    /// A request with a custom output length, batch 1.
    pub fn with_output_tokens(output_tokens: usize) -> Self {
        DecodeRequest { output_tokens, ..DecodeRequest::paper_default() }
    }
}

/// A seeded stream of decode requests with jittered output lengths, for
/// multi-request serving simulations.
#[derive(Debug, Clone)]
pub struct RequestStream {
    rng: StdRng,
    base: DecodeRequest,
    jitter: usize,
}

impl RequestStream {
    /// Creates a stream around `base`, jittering output length by ±`jitter`.
    pub fn new(base: DecodeRequest, jitter: usize, seed: u64) -> Self {
        RequestStream { rng: StdRng::seed_from_u64(seed), base, jitter }
    }
}

impl Iterator for RequestStream {
    type Item = DecodeRequest;

    fn next(&mut self) -> Option<DecodeRequest> {
        let jitter = if self.jitter == 0 {
            0
        } else {
            self.rng.gen_range(0..=2 * self.jitter) as isize - self.jitter as isize
        };
        let output = (self.base.output_tokens as isize + jitter).max(1) as usize;
        Some(DecodeRequest { output_tokens: output, ..self.base })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_batch_one() {
        let r = DecodeRequest::paper_default();
        assert_eq!(r.batch_size, 1);
        assert_eq!(r.input_tokens, 256);
    }

    #[test]
    fn stream_jitters_within_bounds() {
        let stream = RequestStream::new(DecodeRequest::paper_default(), 8, 1);
        for r in stream.take(100) {
            assert!((56..=72).contains(&r.output_tokens));
        }
    }

    #[test]
    fn zero_jitter_is_constant() {
        let stream = RequestStream::new(DecodeRequest::paper_default(), 0, 1);
        assert!(stream.take(10).all(|r| r.output_tokens == 64));
    }
}
