//! Property-based tests for workload generators.

use pgmoe_workload::{DecodeRequest, RequestStream, RoutingKind, RoutingTrace, TaskKind, TaskSpec};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = RoutingKind> {
    prop_oneof![
        Just(RoutingKind::Uniform),
        (0.5f64..2.5).prop_map(|s| RoutingKind::Zipf { s }),
        (0.0f64..1.0).prop_map(|stickiness| RoutingKind::DomainSticky { stickiness }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Traces are well-formed for every kind: right dimensions, distinct
    /// sorted experts in range, exact top-k cardinality.
    #[test]
    fn routing_traces_are_well_formed(
        kind in arb_kind(),
        tokens in 1usize..16,
        blocks in 1usize..8,
        experts_log in 2usize..7,
        seed in 0u64..1_000,
    ) {
        let experts = 1usize << experts_log;
        let top_k = 1 + (seed as usize % 2.min(experts - 1).max(1));
        let trace = RoutingTrace::generate(tokens, blocks, experts, top_k, kind, seed);
        prop_assert_eq!(trace.num_tokens(), tokens);
        prop_assert_eq!(trace.num_blocks(), blocks);
        for t in 0..tokens {
            for b in 0..blocks {
                let e = trace.experts(t, b);
                prop_assert_eq!(e.len(), top_k);
                prop_assert!(e.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(e.iter().all(|&x| x < experts));
            }
        }
        let hist = trace.activation_histogram();
        prop_assert_eq!(hist.iter().sum::<u64>(), (tokens * blocks * top_k) as u64);
    }

    /// Zipf skew is monotone in the exponent: larger `s` concentrates more
    /// activations on the hottest experts.
    #[test]
    fn zipf_skew_monotone_in_exponent(seed in 0u64..200) {
        let mass_top4 = |s: f64| {
            let t = RoutingTrace::generate(400, 2, 64, 1, RoutingKind::Zipf { s }, seed);
            let mut h = t.activation_histogram();
            h.sort_unstable_by(|a, b| b.cmp(a));
            h.iter().take(4).sum::<u64>() as f64 / h.iter().sum::<u64>() as f64
        };
        prop_assert!(mass_top4(1.8) > mass_top4(0.6));
    }

    /// Task examples are well-formed for every kind/domain-count/seed.
    #[test]
    fn task_examples_are_well_formed(
        kind in prop_oneof![Just(TaskKind::XsumLike), Just(TaskKind::WebQaLike), Just(TaskKind::SquadLike)],
        domains in 1usize..8,
        seed in 0u64..1_000,
        index in 0u64..1_000,
    ) {
        let task = TaskSpec::new(kind, domains, seed);
        let ex = task.sample_indexed(index);
        prop_assert_eq!(ex.input.len(), task.seq_len());
        prop_assert_eq!(ex.target.len(), task.answer_len());
        prop_assert!(ex.domain < domains);
        prop_assert!(ex.input.iter().all(|&t| t < task.vocab_size()));
        prop_assert!(ex.target.iter().all(|&t| t < task.vocab_size()));
        // Answers are always content tokens of the example's own domain.
        for &t in &ex.target {
            if kind == TaskKind::XsumLike && t == task.domain_marker(ex.domain) {
                continue;
            }
            prop_assert_eq!(task.domain_of_token(t), Some(ex.domain));
        }
    }

    /// The example stream is reproducible and index-disjoint: distinct
    /// indices (almost always) give distinct examples, same index always
    /// gives the same example.
    #[test]
    fn task_stream_is_deterministic(seed in 0u64..1_000, index in 0u64..1_000) {
        let a = TaskSpec::new(TaskKind::SquadLike, 4, seed).sample_indexed(index);
        let b = TaskSpec::new(TaskKind::SquadLike, 4, seed).sample_indexed(index);
        prop_assert_eq!(a, b);
    }

    /// Request streams jitter within bounds and never produce empty
    /// generations.
    #[test]
    fn request_stream_respects_bounds(jitter in 0usize..32, seed in 0u64..1_000) {
        let base = DecodeRequest { input_tokens: 8, output_tokens: 16, batch_size: 1 };
        let stream = RequestStream::new(base, jitter, seed);
        for r in stream.take(50) {
            prop_assert!(r.output_tokens >= 1);
            let lo = 16isize - jitter as isize;
            let hi = 16isize + jitter as isize;
            prop_assert!((r.output_tokens as isize) >= lo.max(1) && (r.output_tokens as isize) <= hi);
            prop_assert_eq!(r.input_tokens, 8);
        }
    }
}
