//! HTTP/1.1 wire protocol: request parsing and response encoding.
//!
//! The parser is deliberately incremental and allocation-light: the
//! connection layer accumulates bytes into a buffer and calls
//! [`parse_request`] after every read. The parser either returns a complete
//! request (plus how many bytes it consumed, so keep-alive pipelining can
//! resume from the remainder), asks for more bytes, or rejects the
//! connection with a specific protocol error that maps 1:1 onto an HTTP
//! status code (400/413/431).
//!
//! Responses are plain byte vectors. Token streams use chunked
//! transfer-encoding ([`chunk`] / [`LAST_CHUNK`]) so the client sees each
//! token the moment the engine emits it.

use std::fmt;

/// Per-connection protocol limits.
///
/// These bound untrusted input before it reaches any allocation-heavy
/// path: a slowloris peer is cut off by `header_deadline_ms` (enforced by
/// the connection layer), an oversized header block by
/// `max_header_bytes`, and an oversized body by `max_body_bytes`.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for the request line + headers (431 beyond this).
    pub max_header_bytes: usize,
    /// Maximum bytes for the declared body (413 beyond this).
    pub max_body_bytes: usize,
    /// Wall-clock milliseconds a connection may take to deliver complete
    /// headers before it is answered 408 and closed.
    pub header_deadline_ms: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_header_bytes: 8 * 1024, max_body_bytes: 256 * 1024, header_deadline_ms: 2_000 }
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/generate`.
    pub path: String,
    /// Header name/value pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == lower).map(|(_, v)| v.as_str())
    }
}

/// Outcome of a parse attempt over the bytes buffered so far.
#[derive(Debug, PartialEq)]
pub enum Parsed {
    /// Not enough bytes yet; read more and retry.
    Incomplete,
    /// A complete request, and the number of buffered bytes it consumed.
    Complete(Request, usize),
}

/// Protocol violations detected while parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Structurally invalid request (bad request line, header, or length).
    Malformed(&'static str),
    /// Header block exceeded [`Limits::max_header_bytes`].
    HeadersTooLarge,
    /// Declared body exceeded [`Limits::max_body_bytes`].
    BodyTooLarge,
}

impl ParseError {
    /// The HTTP status code this violation maps to.
    pub fn status(self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::HeadersTooLarge => 431,
            ParseError::BodyTooLarge => 413,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::HeadersTooLarge => write!(f, "header block too large"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Attempts to parse one request from the front of `buf`.
///
/// # Errors
///
/// Returns a [`ParseError`] when the buffered bytes can never become a
/// valid request under `limits`; the connection should answer with
/// [`ParseError::status`] and close.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, ParseError> {
    // Locate the end of the header block.
    let Some(head_end) = find_subslice(buf, b"\r\n\r\n") else {
        if buf.len() > limits.max_header_bytes {
            return Err(ParseError::HeadersTooLarge);
        }
        return Ok(Parsed::Incomplete);
    };
    if head_end + 4 > limits.max_header_bytes {
        return Err(ParseError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Malformed("non-utf8 header block"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::Malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method =
        parts.next().filter(|m| !m.is_empty()).ok_or(ParseError::Malformed("no method"))?;
    let path =
        parts.next().filter(|p| p.starts_with('/')).ok_or(ParseError::Malformed("bad target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("no version"))?;
    if parts.next().is_some() || !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(ParseError::Malformed("bad request line"));
    }

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or(ParseError::Malformed("bad header"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        // Chunked *requests* are refused: bodies must carry Content-Length
        // so the size cap can be enforced before buffering.
        return Err(ParseError::Malformed("chunked request bodies unsupported"));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| ParseError::Malformed("bad content-length"))?
        }
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(Parsed::Incomplete);
    }
    Ok(Parsed::Complete(
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: buf[body_start..total].to_vec(),
        },
        total,
    ))
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// The canonical reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Encodes a complete (non-chunked) response with `Content-Length`.
pub fn response(status: u16, content_type: &str, body: &[u8], extra: &[(&str, &str)]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    )
    .into_bytes();
    for (name, value) in extra {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Encodes the head of a chunked streaming response.
pub fn chunked_head(status: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\n\r\n",
        status,
        status_text(status),
        content_type
    )
    .into_bytes()
}

/// Encodes one chunk of a chunked response body.
pub fn chunk(payload: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating chunk of a chunked response.
pub const LAST_CHUNK: &[u8] = b"0\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits { max_header_bytes: 256, max_body_bytes: 64, header_deadline_ms: 1_000 }
    }

    #[test]
    fn parses_get_without_body() {
        let buf = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        let Parsed::Complete(req, used) = parse_request(buf, &limits()).unwrap() else {
            panic!("expected complete");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("Host"), Some("x"));
        assert_eq!(used, buf.len());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_reports_leftover() {
        let buf = b"POST /v1/generate HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET ...";
        let Parsed::Complete(req, used) = parse_request(buf, &limits()).unwrap() else {
            panic!("expected complete");
        };
        assert_eq!(req.body, b"abcd");
        assert_eq!(&buf[used..], b"GET ...");
    }

    #[test]
    fn incomplete_until_headers_and_body_arrive() {
        let l = limits();
        assert!(matches!(parse_request(b"POST / HTTP/1.1\r\n", &l).unwrap(), Parsed::Incomplete));
        let partial = b"POST / HTTP/1.1\r\ncontent-length: 8\r\n\r\nabc";
        assert!(matches!(parse_request(partial, &l).unwrap(), Parsed::Incomplete));
    }

    #[test]
    fn rejects_oversized_header_block() {
        let long = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "a".repeat(300));
        assert_eq!(parse_request(long.as_bytes(), &limits()), Err(ParseError::HeadersTooLarge));
        // Even with no terminator yet, an over-limit accumulation is fatal.
        let drip = "a".repeat(300);
        assert_eq!(parse_request(drip.as_bytes(), &limits()), Err(ParseError::HeadersTooLarge));
    }

    #[test]
    fn rejects_oversized_body_before_buffering_it() {
        let buf = b"POST / HTTP/1.1\r\ncontent-length: 9999\r\n\r\n";
        assert_eq!(parse_request(buf, &limits()), Err(ParseError::BodyTooLarge));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"BOGUS\r\n\r\n"[..],
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"GET / HTTP/1.1\r\ncontent-length: nan\r\n\r\n",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse_request(bad, &limits()), Err(ParseError::Malformed(_))),
                "{:?} should be malformed",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn chunk_encoding_round_trip_shape() {
        assert_eq!(chunk(b"hello"), b"5\r\nhello\r\n");
        assert_eq!(LAST_CHUNK, b"0\r\n\r\n");
        let head = String::from_utf8(chunked_head(200, "application/x-ndjson")).unwrap();
        assert!(head.contains("transfer-encoding: chunked"));
        let full =
            String::from_utf8(response(429, "application/json", b"{}", &[("retry-after", "1")]))
                .unwrap();
        assert!(full.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(full.contains("retry-after: 1"));
        assert!(full.ends_with("\r\n\r\n{}"));
    }
}
