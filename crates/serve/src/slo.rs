//! SLO-aware admission: shed load *before* the latency target is broken.
//!
//! The governor keeps an exponentially weighted moving average of the
//! engine's decode-iteration wall time and a live count of queued
//! requests. A fresh arrival's time-to-first-token is projected as the
//! number of admission "waves" ahead of it (the queue drains at most
//! `max_batch` requests per iteration) times the iteration EWMA, plus one
//! iteration for its own first decode. When that projection exceeds the
//! configured p99 TTFT target, the request is refused with 429 at the
//! front door — cheaply, on the IO thread, without touching the engine —
//! so that requests already admitted keep meeting the target. This is
//! classic early load shedding: a 429 now is strictly better than a
//! blown SLO later, because the client can retry against a replica.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Admission targets for the [`SloGovernor`].
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Projected-TTFT ceiling: arrivals whose projection exceeds this are
    /// shed with 429.
    pub target_ttft: Duration,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { target_ttft: Duration::from_secs(2) }
    }
}

/// Outcome of an admission query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Projected TTFT is within target; enqueue the request.
    Admit,
    /// Projected TTFT exceeds the target; answer 429.
    Shed {
        /// The projection that triggered the shed, for the error body.
        projected: Duration,
    },
}

/// Shared admission state (IO threads query, the engine thread feeds it).
#[derive(Debug)]
pub struct SloGovernor {
    cfg: SloConfig,
    max_batch: u64,
    /// EWMA of decode-iteration wall time, nanoseconds (1/8 gain).
    iter_nanos: AtomicU64,
    /// Requests accepted but not yet admitted into the batch.
    queued: AtomicU64,
}

impl SloGovernor {
    /// A governor targeting `cfg` for an engine admitting at most
    /// `max_batch` requests per iteration.
    pub fn new(cfg: SloConfig, max_batch: usize) -> Self {
        SloGovernor {
            cfg,
            max_batch: max_batch.max(1) as u64,
            iter_nanos: AtomicU64::new(0),
            queued: AtomicU64::new(0),
        }
    }

    /// The configured TTFT target.
    pub fn target_ttft(&self) -> Duration {
        self.cfg.target_ttft
    }

    /// Feeds one measured decode-iteration wall time into the EWMA.
    pub fn observe_iteration(&self, wall: Duration) {
        let sample = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.iter_nanos.load(Ordering::Relaxed);
        let next = if prev == 0 { sample } else { prev - prev / 8 + sample / 8 };
        self.iter_nanos.store(next, Ordering::Relaxed);
    }

    /// Current iteration-time estimate.
    pub fn iteration_estimate(&self) -> Duration {
        Duration::from_nanos(self.iter_nanos.load(Ordering::Relaxed))
    }

    /// A request entered the admission queue.
    pub fn on_enqueue(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left the admission queue (admitted or failed).
    pub fn on_dequeue(&self) {
        // Saturating: a lost race just under-counts the queue briefly.
        let _ = self
            .queued
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |q| Some(q.saturating_sub(1)));
    }

    /// Requests currently counted as queued.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Projects a fresh arrival's TTFT from the iteration EWMA and the
    /// queue ahead of it (see the module docs for the wave model).
    pub fn projected_ttft(&self) -> Duration {
        let iter = self.iter_nanos.load(Ordering::Relaxed);
        let queued = self.queued.load(Ordering::Relaxed);
        let waves = queued.div_ceil(self.max_batch);
        Duration::from_nanos(iter.saturating_mul(waves + 1))
    }

    /// Admission decision for a fresh arrival.
    pub fn verdict(&self) -> Verdict {
        let projected = self.projected_ttft();
        if projected > self.cfg.target_ttft {
            Verdict::Shed { projected }
        } else {
            Verdict::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(target_ms: u64, max_batch: usize) -> SloGovernor {
        SloGovernor::new(SloConfig { target_ttft: Duration::from_millis(target_ms) }, max_batch)
    }

    #[test]
    fn admits_until_iterations_are_observed() {
        let g = governor(10, 4);
        for _ in 0..100 {
            g.on_enqueue();
        }
        // No iteration data yet: projection is zero, everything admits.
        assert_eq!(g.verdict(), Verdict::Admit);
    }

    #[test]
    fn sheds_when_queue_projects_past_target() {
        let g = governor(10, 4);
        g.observe_iteration(Duration::from_millis(4));
        assert_eq!(g.verdict(), Verdict::Admit, "empty queue projects one iteration");
        for _ in 0..8 {
            g.on_enqueue();
        }
        // 8 queued / batch 4 = 2 waves + 1 own iteration = ~12ms > 10ms.
        match g.verdict() {
            Verdict::Shed { projected } => assert!(projected > Duration::from_millis(10)),
            v => panic!("expected shed, got {v:?}"),
        }
        for _ in 0..8 {
            g.on_dequeue();
        }
        assert_eq!(g.verdict(), Verdict::Admit, "drained queue admits again");
    }

    #[test]
    fn admission_depth_scales_inversely_with_iteration_speed() {
        // The wave-model bound the serving e2e test cannot measure
        // speed-independently, pinned with synthetic iteration times
        // instead of a wall clock: every arrival the governor admits
        // projects within the target (bounded TTFT by construction), and
        // the queue depth it tolerates shrinks as iterations slow.
        let depth = |iter: Duration| {
            let g = governor(100, 4);
            g.observe_iteration(iter);
            let mut admitted = 0u64;
            loop {
                match g.verdict() {
                    Verdict::Admit => {
                        assert!(
                            g.projected_ttft() <= g.target_ttft(),
                            "an admitted arrival projects within the target"
                        );
                        g.on_enqueue();
                        admitted += 1;
                        assert!(admitted < 1_000_000, "governor never saturates");
                    }
                    Verdict::Shed { projected } => {
                        assert!(projected > g.target_ttft());
                        break;
                    }
                }
            }
            admitted
        };
        let fast = depth(Duration::from_micros(50));
        let mid = depth(Duration::from_millis(1));
        let slow = depth(Duration::from_millis(12));
        assert!(fast > mid && mid > slow, "depths {fast} / {mid} / {slow}");

        // A sub-iteration target sheds even an empty queue once the EWMA
        // is warm — the deterministic regime the serving e2e test pins.
        let g = governor(0, 4);
        g.observe_iteration(Duration::from_micros(50));
        assert!(matches!(g.verdict(), Verdict::Shed { .. }));
    }

    #[test]
    fn ewma_tracks_load_and_dequeue_saturates() {
        let g = governor(1_000, 1);
        g.observe_iteration(Duration::from_millis(8));
        let first = g.iteration_estimate();
        for _ in 0..64 {
            g.observe_iteration(Duration::from_millis(1));
        }
        assert!(g.iteration_estimate() < first);
        g.on_dequeue(); // must not underflow
        assert_eq!(g.queued(), 0);
    }
}
