//! The generation engine: one thread that owns the model and the device.
//!
//! Everything stateful about generation lives on this single thread — the
//! numeric [`SwitchNet`], its [`ScratchArena`], and the simulated-device
//! [`BatchSession`] — so no lock is ever held across a forward pass. IO
//! threads talk to it through two queues:
//!
//! * inbound, a bounded [`std::sync::mpsc::sync_channel`] of
//!   [`EngineJob`]s (the admission queue; its bound is the server's
//!   backpressure limit), and
//! * outbound, one [`Outbox`] per request that the owning connection
//!   drains into HTTP chunks.
//!
//! Each engine iteration follows the paper's serving discipline:
//! admission only at iteration boundaries (continuous batching), then one
//! *real* forward pass per in-flight request through the pre-gated
//! `SwitchNet`, then one [`BatchSession::step_routed`] where the model's
//! actual routing decisions — not a synthetic trace — drive the simulated
//! expert fetch/cache bookkeeping. The token streamed to the client and
//! the expert traffic accounted on the device therefore come from the
//! same forward pass.

use crate::metrics::{ServerMetrics, SimSnapshot};
use crate::slo::SloGovernor;
use pgmoe_device::SimTime;
use pgmoe_model::net::{RouteDecision, SwitchNet, SwitchNetConfig};
use pgmoe_model::{GatingMode, ModelConfig};
use pgmoe_runtime::{Admission, BatchConfig, BatchSession, LiveRouting, OffloadPolicy, SimOptions};
use pgmoe_tensor::ScratchArena;
use pgmoe_workload::{ArrivedRequest, DecodeRequest, LiveClock, SharedPrefix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of the generation engine (model + device + batching).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Analytic model for the simulated device (costs, expert bytes).
    pub model: ModelConfig,
    /// Device/policy options for the simulated serving run.
    pub opts: SimOptions,
    /// Continuous-batching limits (max batch, HBM admission budget).
    pub batch: BatchConfig,
    /// The numeric network that actually generates tokens.
    pub net: SwitchNetConfig,
    /// Seed for the network's parameter initialisation.
    pub net_seed: u64,
    /// Chaos knob: crash the engine replica after this many decode
    /// iterations (`None` disables). The supervisor in
    /// [`Server`](crate::Server) restarts the engine with this cleared, so
    /// a seeded run fails exactly once — the deterministic fault the chaos
    /// tests inject.
    pub fail_after_iterations: Option<u64>,
    /// How long the supervisor waits before restarting a crashed engine.
    /// During this window `/v1/generate` answers `503` with a
    /// `retry-after` header instead of queueing into a dead replica.
    pub restart_backoff_ms: u64,
}

impl EngineConfig {
    /// A small CPU-friendly engine: pre-gated policy over the paper's
    /// Switch-Base(8) analytic model, and a tiny pre-gated numeric network
    /// (vocab 64, 16-token window) that decodes in well under a
    /// millisecond per iteration.
    pub fn demo() -> Self {
        EngineConfig {
            model: ModelConfig::switch_base(8),
            opts: SimOptions::new(OffloadPolicy::Pregated),
            batch: BatchConfig::new(8),
            net: SwitchNetConfig::small(64, 16, 8, GatingMode::Pregated { level: 1 }),
            net_seed: 7,
            fail_after_iterations: None,
            restart_backoff_ms: 0,
        }
    }

    /// Cross-field validation (the per-crate configs validate themselves
    /// when the session is built).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.net.vocab < 2 {
            return Err("numeric network needs a vocabulary of at least 2".into());
        }
        if self.net.seq_len == 0 {
            return Err("numeric network needs a non-zero sequence window".into());
        }
        Ok(())
    }
}

/// One event streamed from the engine to a request's connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum OutMsg {
    /// One generated token (`index` is its position in the output).
    Token {
        /// Zero-based output position.
        index: usize,
        /// The generated vocabulary id.
        token: usize,
    },
    /// The request finished; `tokens` is the full output for the client's
    /// integrity check.
    Done {
        /// Every generated token, in order.
        tokens: Vec<usize>,
    },
    /// The request cannot be served (e.g. it can never fit the device
    /// budget, or the server is shutting down).
    Failed {
        /// Human-readable reason, sent to the client.
        reason: &'static str,
    },
}

/// A single-producer event queue from the engine to one connection.
#[derive(Debug, Default)]
pub(crate) struct Outbox {
    events: Mutex<VecDeque<OutMsg>>,
    /// Set by the IO layer when the owning connection died. The engine
    /// sweeps closed outboxes every iteration and aborts their requests so
    /// a disconnected client never holds batch slots or HBM reservation.
    closed: AtomicBool,
}

impl Outbox {
    pub(crate) fn push(&self, msg: OutMsg) {
        self.events.lock().expect("outbox poisoned").push_back(msg);
    }

    /// Moves every pending event into `into`.
    pub(crate) fn drain_into(&self, into: &mut Vec<OutMsg>) {
        let mut q = self.events.lock().expect("outbox poisoned");
        into.extend(q.drain(..));
    }

    /// Marks the receiving connection as gone.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// A generate request as the IO layer hands it to the engine.
#[derive(Debug)]
pub(crate) struct EngineJob {
    /// Server-assigned request id (also the routing-trace seed input).
    pub id: u64,
    /// Validated prompt token ids (each `< net.vocab`).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate.
    pub max_tokens: usize,
    /// Arrival stamp from the server's [`LiveClock`].
    pub arrival_ns: u64,
    /// Where generated tokens are delivered.
    pub outbox: Arc<Outbox>,
}

/// State the engine shares with the IO threads.
#[derive(Debug)]
pub(crate) struct EngineShared {
    pub metrics: Arc<ServerMetrics>,
    pub governor: Arc<SloGovernor>,
    pub shutdown: Arc<AtomicBool>,
    pub clock: LiveClock,
}

/// One request mid-generation on the engine thread.
struct Decoding {
    /// Prompt followed by everything generated so far.
    ctx: Vec<usize>,
    /// Generated tokens only.
    emitted: Vec<usize>,
    /// Token produced by this iteration's forward pass, streamed once the
    /// simulated device retires the iteration.
    next_token: usize,
    /// This iteration's per-block routing decisions from the real network.
    decisions: Vec<RouteDecision>,
    /// Reused window buffer for the fixed-length forward pass.
    window: Vec<usize>,
    outbox: Arc<Outbox>,
    arrival_ns: u64,
}

impl Decoding {
    fn new(job: EngineJob, seq_len: usize) -> Self {
        Decoding {
            ctx: job.prompt,
            emitted: Vec::with_capacity(job.max_tokens),
            next_token: 0,
            decisions: Vec::new(),
            window: vec![0; seq_len],
            outbox: job.outbox,
            arrival_ns: job.arrival_ns,
        }
    }

    /// The last `seq_len` context tokens, left-padded with token 0.
    fn fill_window(&mut self) -> &[usize] {
        let seq_len = self.window.len();
        let tail_len = self.ctx.len().min(seq_len);
        let tail = &self.ctx[self.ctx.len() - tail_len..];
        self.window[..seq_len - tail_len].fill(0);
        self.window[seq_len - tail_len..].copy_from_slice(tail);
        &self.window
    }
}

/// The model's own routing decisions as the session's routing source:
/// block `b`'s experts are whatever the pre-gated network activated at the
/// last window position during this iteration's forward pass. Blocks the
/// (smaller) numeric network does not have fall back to the synthetic
/// trace.
struct DecisionRouting<'a> {
    active: &'a HashMap<u64, Decoding>,
}

impl LiveRouting for DecisionRouting<'_> {
    fn experts(&mut self, id: u64, _generated: usize, block: usize, out: &mut Vec<usize>) -> bool {
        let Some(d) = self.active.get(&id) else { return false };
        let Some(dec) = d.decisions.get(block) else { return false };
        let Some(&expert) = dec.expert.last() else { return false };
        out.push(expert);
        true
    }
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Why one engine run ended.
pub(crate) enum EngineExit {
    /// Clean exit: shutdown flag, closed channel, or device error. The
    /// server is done serving.
    Shutdown(pgmoe_runtime::ServeStats),
    /// The replica crashed (the seeded `fail_after_iterations` fault).
    /// Ownership of the inbound channel and the still-queued work comes
    /// back so the supervisor can hand both to a fresh replica — queued
    /// requests survive the crash; only mid-decode streams are failed.
    Crashed {
        /// Final statistics of the dead replica's simulated device.
        #[allow(dead_code)]
        stats: pgmoe_runtime::ServeStats,
        /// The admission queue, returned for the next replica.
        rx: Receiver<EngineJob>,
        /// Jobs accepted but not yet admitted into the decode batch.
        carryover: VecDeque<EngineJob>,
    },
}

/// Runs one engine replica until shutdown, channel close, or injected
/// crash; [`EngineExit`] says which.
pub(crate) fn run_engine(
    cfg: EngineConfig,
    rx: Receiver<EngineJob>,
    carryover: VecDeque<EngineJob>,
    shared: Arc<EngineShared>,
) -> EngineExit {
    let mut rng = StdRng::seed_from_u64(cfg.net_seed);
    let mut net = SwitchNet::new(cfg.net.clone(), &mut rng);
    if let Some(p) = cfg.opts.expert_precision {
        // Keep the numeric experts at the same storage precision the
        // simulated device accounts for.
        net.quantize_experts(p);
    }
    let arena = ScratchArena::new();
    let seq_len = cfg.net.seq_len;
    // The migration unit at the precision actually served (the options
    // override wins over the model tag) — exported as a gauge so byte
    // counters above it are interpretable in experts, not just bytes.
    let expert_bytes = {
        let p = cfg.opts.expert_precision.unwrap_or(cfg.model.expert_precision);
        cfg.model.clone().with_expert_precision(p).expert_bytes()
    };
    let mut session = BatchSession::new(cfg.model, cfg.opts, cfg.batch)
        .expect("engine config validated before spawn");

    let mut waiting = carryover;
    let mut active: HashMap<u64, Decoding> = HashMap::new();
    let mut iterations_run: u64 = 0;
    // A fresh replica is serving again: lift the failover gate.
    shared.metrics.failover_active.set(0);

    let fail = |shared: &EngineShared, outbox: &Outbox, reason: &'static str| {
        outbox.push(OutMsg::Failed { reason });
        shared.governor.on_dequeue();
        shared.metrics.queue_depth.dec();
    };

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Ingest: block briefly when fully idle, otherwise just drain.
        if waiting.is_empty() && active.is_empty() {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(job) => waiting.push_back(job),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        while let Ok(job) = rx.try_recv() {
            waiting.push_back(job);
        }

        // Disconnect sweep: a request whose connection died is dropped
        // from the queue or aborted on the device, so a vanished client
        // never holds a batch slot or its HBM admission reservation.
        waiting.retain(|job| {
            let gone = job.outbox.is_closed();
            if gone {
                shared.governor.on_dequeue();
                shared.metrics.queue_depth.dec();
                shared.metrics.streams_aborted.inc();
            }
            !gone
        });
        let disconnected: Vec<u64> =
            active.iter().filter(|(_, d)| d.outbox.is_closed()).map(|(&id, _)| id).collect();
        for id in disconnected {
            let _ = session.abort(id);
            active.remove(&id);
            shared.metrics.inflight.dec();
            shared.metrics.streams_aborted.inc();
        }

        // Admission, only at the iteration boundary (continuous batching).
        session.advance_clock(SimTime::from_nanos(shared.clock.now_ns()));
        while let Some(job) = waiting.front() {
            let request = DecodeRequest {
                input_tokens: job.prompt.len(),
                output_tokens: job.max_tokens,
                batch_size: 1,
            };
            // Declare the whole prompt as the sharable-prefix region: under
            // a paged session, requests carrying an identical prompt (the
            // common shared-system-prompt shape) land on one physical KV
            // copy instead of one per stream.
            let prefix = SharedPrefix::of_tokens(&job.prompt);
            let arrived = ArrivedRequest::at_nanos(job.arrival_ns, request)
                .with_shared_prefix(prefix.hash, prefix.tokens);
            match session.try_admit(job.id, arrived) {
                Ok(Admission::Admitted { .. }) => {
                    let job = waiting.pop_front().expect("front exists");
                    shared.governor.on_dequeue();
                    shared.metrics.queue_depth.dec();
                    shared.metrics.inflight.inc();
                    active.insert(job.id, Decoding::new(job, seq_len));
                }
                Ok(Admission::BatchFull | Admission::OverBudget) => break,
                Err(_) => {
                    // This request can never be admitted (e.g. it alone
                    // exceeds the HBM budget): fail it, keep serving.
                    let job = waiting.pop_front().expect("front exists");
                    fail(&shared, &job.outbox, "request cannot fit the device budget");
                }
            }
        }
        if active.is_empty() {
            continue;
        }

        let iter_start = Instant::now();
        // Real forward pass per in-flight request: produces both the next
        // token and the routing decisions that drive the device step.
        for d in active.values_mut() {
            d.fill_window();
            let (logits, decisions) = net.forward_inference_arena(&d.window, &arena);
            d.next_token = argmax(logits.row(seq_len - 1));
            d.decisions = decisions;
            arena.recycle(logits);
        }

        let events = match session.step_routed(&mut DecisionRouting { active: &active }) {
            Ok(events) => events,
            Err(_) => {
                // The simulated device failed mid-iteration (e.g. HBM
                // exhaustion): fail every live request and stop serving.
                for d in active.values() {
                    d.outbox.push(OutMsg::Failed { reason: "device error mid-iteration" });
                    shared.metrics.inflight.dec();
                }
                active.clear();
                break;
            }
        };
        let now_ns = shared.clock.now_ns();
        for ev in events {
            let d = active.get_mut(&ev.id).expect("event for live request");
            let token = d.next_token;
            d.ctx.push(token);
            d.emitted.push(token);
            d.outbox.push(OutMsg::Token { index: ev.index, token });
            shared.metrics.tokens_total.inc();
            if ev.index == 0 {
                let ttft = Duration::from_nanos(now_ns.saturating_sub(d.arrival_ns));
                shared.metrics.ttft_seconds.observe(ttft);
            }
            if ev.done {
                let d = active.remove(&ev.id).expect("done request is live");
                let latency = Duration::from_nanos(now_ns.saturating_sub(d.arrival_ns));
                shared.metrics.request_seconds.observe(latency);
                shared.metrics.inflight.dec();
                shared.metrics.streams_completed.inc();
                d.outbox.push(OutMsg::Done { tokens: d.emitted });
            }
        }
        shared.metrics.engine_iterations.inc();
        shared.governor.observe_iteration(iter_start.elapsed());
        shared.metrics.publish_sim(SimSnapshot {
            total_tokens: session.total_tokens() as u64,
            peak_hbm_bytes: session.peak_hbm_bytes(),
            expert_fetch_bytes: session.expert_fetch_bytes(),
            demand_fetch_bytes: session.demand_fetch_bytes(),
            plan_cache_hits: session.plan_cache_stats().hits,
            plan_cache_misses: session.plan_cache_stats().misses,
            expert_bytes,
        });

        iterations_run += 1;
        if cfg.fail_after_iterations.is_some_and(|n| iterations_run >= n) {
            // Injected replica crash. Raise the failover gate *before*
            // failing the live streams so a client that watches its stream
            // die and retries immediately gets a clean 503 + retry-after
            // instead of a queue slot on a dead replica.
            shared.metrics.failover_active.set(1);
            for d in active.values() {
                d.outbox.push(OutMsg::Failed { reason: "engine replica failed; retry" });
                shared.metrics.inflight.dec();
            }
            active.clear();
            return EngineExit::Crashed { stats: session.finish(), rx, carryover: waiting };
        }
    }

    // Shutdown: everything still queued or decoding is failed explicitly
    // so no connection is left hanging.
    for job in waiting {
        fail(&shared, &job.outbox, "server shutting down");
    }
    for d in active.values() {
        d.outbox.push(OutMsg::Failed { reason: "server shutting down" });
        shared.metrics.inflight.dec();
    }
    EngineExit::Shutdown(session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloConfig;
    use std::sync::mpsc::sync_channel;

    fn shared() -> Arc<EngineShared> {
        Arc::new(EngineShared {
            metrics: Arc::new(ServerMetrics::default()),
            governor: Arc::new(SloGovernor::new(SloConfig::default(), 8)),
            shutdown: Arc::new(AtomicBool::new(false)),
            clock: LiveClock::start(),
        })
    }

    fn job(
        id: u64,
        shared: &EngineShared,
        prompt: Vec<usize>,
        n: usize,
    ) -> (EngineJob, Arc<Outbox>) {
        let outbox = Arc::new(Outbox::default());
        shared.governor.on_enqueue();
        shared.metrics.queue_depth.inc();
        (
            EngineJob {
                id,
                prompt,
                max_tokens: n,
                arrival_ns: shared.clock.now_ns(),
                outbox: Arc::clone(&outbox),
            },
            outbox,
        )
    }

    fn collect(outbox: &Outbox) -> Vec<OutMsg> {
        let mut events = Vec::new();
        outbox.drain_into(&mut events);
        events
    }

    fn run_to_shutdown(
        cfg: EngineConfig,
        rx: Receiver<EngineJob>,
        shared: Arc<EngineShared>,
    ) -> pgmoe_runtime::ServeStats {
        match run_engine(cfg, rx, VecDeque::new(), shared) {
            EngineExit::Shutdown(stats) => stats,
            EngineExit::Crashed { .. } => panic!("engine crashed without a fault injected"),
        }
    }

    #[test]
    fn generates_streams_tokens_and_reports_stats() {
        let shared = shared();
        let (tx, rx) = sync_channel(16);
        let (job_a, out_a) = job(1, &shared, vec![1, 2, 3], 4);
        let (job_b, out_b) = job(2, &shared, vec![9, 8], 3);
        tx.send(job_a).unwrap();
        tx.send(job_b).unwrap();
        drop(tx); // channel closes once drained → engine exits when idle
        let stats = run_to_shutdown(EngineConfig::demo(), rx, Arc::clone(&shared));

        let a = collect(&out_a);
        let b = collect(&out_b);
        // Each stream: max_tokens Token events in order, then Done.
        let check = |events: &[OutMsg], n: usize| {
            assert_eq!(events.len(), n + 1, "{events:?}");
            let mut streamed = Vec::new();
            for (i, ev) in events[..n].iter().enumerate() {
                match ev {
                    OutMsg::Token { index, token } => {
                        assert_eq!(*index, i);
                        streamed.push(*token);
                    }
                    other => panic!("expected token, got {other:?}"),
                }
            }
            match &events[n] {
                OutMsg::Done { tokens } => assert_eq!(*tokens, streamed, "stream corrupted"),
                other => panic!("expected done, got {other:?}"),
            }
            streamed
        };
        check(&a, 4);
        check(&b, 3);
        assert_eq!(stats.total_tokens, 7, "simulated device decoded every streamed token");
        assert_eq!(shared.metrics.tokens_total.get(), 7);
        assert_eq!(shared.metrics.streams_completed.get(), 2);
        assert_eq!(shared.metrics.inflight.get(), 0);
        assert_eq!(shared.governor.queued(), 0);
        assert!(stats.expert_fetch_bytes > 0, "pre-gated policy migrates experts");
    }

    #[test]
    fn identical_prompts_generate_identical_tokens() {
        let run = |id: u64| {
            let shared = shared();
            let (tx, rx) = sync_channel(4);
            let (j, out) = job(id, &shared, vec![5, 6, 7], 5);
            tx.send(j).unwrap();
            drop(tx);
            run_to_shutdown(EngineConfig::demo(), rx, shared);
            collect(&out)
        };
        // Token content is a pure function of the prompt and the net seed —
        // not of the request id or batch composition.
        assert_eq!(run(1), run(99));
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(start.elapsed() < Duration::from_secs(10), "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn injected_crash_hands_queued_work_to_the_next_replica() {
        let shared = shared();
        let mut cfg = EngineConfig::demo();
        cfg.batch = BatchConfig::new(1); // job 2 must wait behind job 1
        cfg.fail_after_iterations = Some(1);
        let (tx, rx) = sync_channel(16);
        let (job_a, out_a) = job(1, &shared, vec![1, 2, 3], 4);
        let (job_b, out_b) = job(2, &shared, vec![9, 8], 3);
        tx.send(job_a).unwrap();
        tx.send(job_b).unwrap();
        drop(tx);

        let (rx, carryover) = match run_engine(cfg.clone(), rx, VecDeque::new(), shared.clone()) {
            EngineExit::Crashed { rx, carryover, .. } => (rx, carryover),
            EngineExit::Shutdown(_) => panic!("seeded fault must crash the replica"),
        };
        // Mid-decode stream failed; queued work survived; gate is up.
        assert_eq!(carryover.len(), 1, "job 2 must ride into the next replica");
        assert_eq!(shared.metrics.failover_active.get(), 1);
        assert_eq!(shared.metrics.inflight.get(), 0);
        let a = collect(&out_a);
        assert!(
            a.iter().any(|m| matches!(m, OutMsg::Failed { reason } if reason.contains("retry"))),
            "crashed stream must tell the client to retry: {a:?}"
        );

        // Restart with the fault cleared: the carried-over job completes.
        cfg.fail_after_iterations = None;
        let stats = match run_engine(cfg, rx, carryover, shared.clone()) {
            EngineExit::Shutdown(stats) => stats,
            EngineExit::Crashed { .. } => panic!("fault was cleared"),
        };
        assert_eq!(shared.metrics.failover_active.get(), 0, "fresh replica lifts the gate");
        let b = collect(&out_b);
        assert!(matches!(b.last(), Some(OutMsg::Done { tokens }) if tokens.len() == 3), "{b:?}");
        assert_eq!(stats.total_tokens, 3, "replacement replica decodes only the survivor");
        assert_eq!(shared.governor.queued(), 0);
    }

    #[test]
    fn a_closed_outbox_in_the_queue_is_dropped_without_decoding() {
        let shared = shared();
        let (tx, rx) = sync_channel(4);
        let (j, out) = job(1, &shared, vec![1, 2], 5);
        out.close(); // client hung up before the engine ever saw the job
        tx.send(j).unwrap();
        drop(tx);
        let stats = run_to_shutdown(EngineConfig::demo(), rx, Arc::clone(&shared));
        assert_eq!(stats.total_tokens, 0, "nothing decodes for a dead connection");
        assert_eq!(shared.metrics.streams_aborted.get(), 1);
        assert_eq!(shared.governor.queued(), 0, "admission slot released");
        assert!(collect(&out).is_empty());
    }

    #[test]
    fn a_disconnected_active_stream_is_aborted_mid_decode() {
        let shared = shared();
        let (tx, rx) = sync_channel(4);
        // Long enough that only the abort can end this stream in test
        // time, small enough to clear the HBM admission budget.
        let (j, out) = job(1, &shared, vec![1, 2, 3], 50_000);
        tx.send(j).unwrap();
        let engine = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_to_shutdown(EngineConfig::demo(), rx, shared))
        };
        wait_until("admission", || shared.metrics.inflight.get() == 1);
        out.close();
        wait_until("abort sweep", || shared.metrics.streams_aborted.get() == 1);
        drop(tx);
        let stats = engine.join().expect("engine thread");
        assert_eq!(shared.metrics.inflight.get(), 0, "batch slot released");
        assert!(stats.total_tokens < 50_000, "stream did not run to completion");
    }

    #[test]
    fn shutdown_fails_queued_work_instead_of_hanging() {
        let shared = shared();
        shared.shutdown.store(true, Ordering::Release);
        let (tx, rx) = sync_channel(4);
        let (j, out) = job(1, &shared, vec![1], 2);
        tx.send(j).unwrap();
        let stats = run_to_shutdown(EngineConfig::demo(), rx, Arc::clone(&shared));
        // recv_timeout path may or may not pull the job before noticing the
        // flag; either way nothing decodes and nothing hangs.
        let events = collect(&out);
        if !events.is_empty() {
            assert!(matches!(events[0], OutMsg::Failed { .. }));
        }
        assert_eq!(stats.total_tokens, 0);
        drop(tx);
    }
}
