//! # pgmoe-serve
//!
//! The serving front door for the Pre-gated MoE reproduction (ISCA 2024):
//! a dependency-free, hand-rolled streaming HTTP/1.1 server that puts the
//! repository's whole stack behind a socket.
//!
//! The paper's thesis is that pre-gating makes expert offloading *cheap
//! enough to serve from*; this crate is where "serve" stops being a
//! simulated arrival trace and becomes real sockets, real wall-clock
//! deadlines, and real backpressure:
//!
//! * **`POST /v1/generate`** runs the numeric pre-gated [`SwitchNet`]
//!   forward pass for every decode iteration and streams each token back
//!   as a chunked NDJSON line the moment the continuous-batching engine
//!   emits it. The model's *actual* routing decisions drive the simulated
//!   device's expert fetch/cache bookkeeping through
//!   [`pgmoe_runtime::LiveRouting`] — the streamed token and the accounted
//!   expert traffic come from the same forward pass.
//! * **SLO-aware admission** ([`slo`]) projects the time-to-first-token a
//!   fresh arrival would see and sheds it with `429` *before* the target
//!   is breached, at the IO layer, without engine involvement.
//! * **Bounded everything**: connection caps, header/body limits and a
//!   slowloris deadline ([`http::Limits`]), and a bounded admission queue
//!   (`503` when full) carry backpressure from the socket to the engine.
//! * **`GET /metrics`** exposes the registry ([`metrics`]) in Prometheus
//!   text format; **`GET /healthz`** answers while serving.
//!
//! There are no crates.io dependencies: JSON ([`json`]), HTTP ([`http`]),
//! and readiness polling ([`poll`]) are small hand-rolled modules.
//!
//! # Quickstart
//!
//! ```
//! use pgmoe_serve::{client, ServeConfig, Server};
//! use std::time::Duration;
//!
//! let handle = Server::start(ServeConfig::demo())?;
//! let reply = client::generate(handle.addr(), &[1, 2, 3], 4, Duration::from_secs(30))?;
//! assert_eq!(reply.status, 200);
//! assert_eq!(reply.tokens.len(), 4);
//! assert!(reply.verified(), "stream matches the server's declared output");
//!
//! let (status, metrics) = client::get(handle.addr(), "/metrics", Duration::from_secs(5))?;
//! assert_eq!(status, 200);
//! assert!(metrics.contains("pgmoe_tokens_streamed_total"));
//!
//! let stats = handle.shutdown().expect("engine stats");
//! assert_eq!(stats.total_tokens, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`SwitchNet`]: pgmoe_model::net::SwitchNet

#![deny(missing_docs)]

pub mod client;
mod engine;
pub mod http;
pub mod json;
pub mod metrics;
pub mod poll;
mod server;
pub mod slo;

pub use engine::EngineConfig;
pub use server::{ServeConfig, ServeError, Server, ServerHandle};
pub use slo::{SloConfig, SloGovernor, Verdict};
